// Reproduces the Section IV baseline result of Cooper, Schielke &
// Subramanian: a genetic algorithm over compilation sequences minimizing
// CODE SIZE, "successful at reducing code size by as much as 40%". As in
// the original, the comparison point is the compiler's standard
// speed-oriented sequence (our FAST pipeline, whose unrolling and
// inlining bloat code); the GA finds sequences that trade that expansion
// away. Also demonstrates the technique's stated weakness — it is
// application-specific (re-run per program), the gap the intelligent
// compiler's knowledge base closes.
#include <cstdio>

#include "bench_common.hpp"
#include "search/strategies.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

int main() {
  const unsigned budget = bench::env_unsigned("ILC_GA_BUDGET", 120);
  const sim::MachineConfig machine = sim::amd_like();
  const search::SequenceSpace space;

  std::printf("=== Cooper et al. baseline: GA search for code size "
              "(%u evaluations per program, vs the speed-oriented FAST "
              "sequence) ===\n\n", budget);

  support::Table table({"benchmark", "FAST size", "GA-best size",
                        "reduction", "GA cycles / FAST cycles"});
  std::vector<double> reductions;
  for (const auto& name : wl::workload_names()) {
    wl::Workload w = wl::make_workload(name);
    search::Evaluator eval(w.module, machine);
    const auto fast = eval.eval_flags(opt::fast_flags());
    support::Rng rng(0x6a + w.module.code_size());
    const auto trace = search::genetic_search(
        eval, space, rng, budget, search::Objective::CodeSize);
    const double reduction =
        100.0 * (1.0 - static_cast<double>(trace.best_metric) /
                           static_cast<double>(fast.code_size));
    reductions.push_back(reduction);
    // What did the size-optimal sequence cost in performance?
    const auto best_res = eval.eval_sequence(trace.best_seq);
    const double cyc_ratio = static_cast<double>(best_res.cycles) /
                             static_cast<double>(fast.cycles);
    table.add_row({name,
                   support::Table::num(
                       static_cast<long long>(fast.code_size)),
                   support::Table::num(
                       static_cast<long long>(trace.best_metric)),
                   support::Table::num(reduction, 1) + "%",
                   support::Table::num(cyc_ratio, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Mean reduction %.1f%%, max %.1f%% "
              "(paper: 'as much as 40%%')\n",
              support::mean(reductions), support::max_of(reductions));
  std::printf("Shape check: %s\n",
              support::max_of(reductions) >= 30.0
                  ? "PASS — GA finds code-size reductions of the same "
                    "order as Cooper et al."
                  : "MISMATCH — see EXPERIMENTS.md");
  return 0;
}
