// Reproduces the Section IV baseline result of Cooper, Schielke &
// Subramanian: a genetic algorithm over compilation sequences minimizing
// CODE SIZE, "successful at reducing code size by as much as 40%". As in
// the original, the comparison point is the compiler's standard
// speed-oriented sequence (our FAST pipeline, whose unrolling and
// inlining bloat code); the GA finds sequences that trade that expansion
// away. Also demonstrates the technique's stated weakness — it is
// application-specific (re-run per program), the gap the intelligent
// compiler's knowledge base closes.
//
// Round two also runs the multi-objective GA (Objective::Pareto) per
// program and records the (cycles, code size) front and its hypervolume
// against the -O0 corner in the `--json` artifact, so CI tracks the
// trade-off frontier, not just the single-objective extreme.
#include <cstdio>

#include "bench_common.hpp"
#include "search/pareto.hpp"
#include "search/strategies.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const unsigned budget =
      bench::env_unsigned("ILC_GA_BUDGET", args.smoke ? 40 : 120);
  const sim::MachineConfig machine = sim::amd_like();
  const search::SequenceSpace space;

  std::printf("=== Cooper et al. baseline: GA search for code size "
              "(%u evaluations per program, vs the speed-oriented FAST "
              "sequence) ===\n\n", budget);

  support::Table table({"benchmark", "FAST size", "GA-best size",
                        "reduction", "GA cycles / FAST cycles",
                        "Pareto front", "hypervolume"});
  std::vector<double> reductions;
  std::vector<std::string> row_docs;
  unsigned empty_fronts = 0;
  for (const auto& name : wl::workload_names()) {
    wl::Workload w = wl::make_workload(name);
    search::Evaluator eval(w.module, machine);
    const auto fast = eval.eval_flags(opt::fast_flags());
    support::Rng rng(0x6a + w.module.code_size());
    const auto trace = search::genetic_search(
        eval, space, rng, budget, search::Objective::CodeSize);
    const double reduction =
        100.0 * (1.0 - static_cast<double>(trace.best_metric) /
                           static_cast<double>(fast.code_size));
    reductions.push_back(reduction);
    // What did the size-optimal sequence cost in performance?
    const auto best_res = eval.eval_sequence(trace.best_seq);
    const double cyc_ratio = static_cast<double>(best_res.cycles) /
                             static_cast<double>(fast.cycles);

    // The explicit trade-off frontier: a Pareto GA at the same budget,
    // hypervolume measured against the -O0 corner (reference one past
    // it, so matching -O0 already counts as dominated area).
    const auto o0 = eval.eval_sequence({});
    support::Rng prng(0x9a + w.module.code_size());
    const auto ptrace = search::genetic_search(
        eval, space, prng, budget, search::Objective::Pareto);
    const double hv = ptrace.pareto.hypervolume(o0.cycles + 1,
                                                o0.code_size + 1);
    empty_fronts += ptrace.pareto.empty() ? 1 : 0;

    table.add_row({name,
                   support::Table::num(
                       static_cast<long long>(fast.code_size)),
                   support::Table::num(
                       static_cast<long long>(trace.best_metric)),
                   support::Table::num(reduction, 1) + "%",
                   support::Table::num(cyc_ratio, 2),
                   support::Table::num(
                       static_cast<long long>(ptrace.pareto.size())),
                   support::Table::num(hv, 0)});

    bench::Json row;
    row.string("benchmark", name)
        .integer("fast_code_size", fast.code_size)
        .integer("ga_best_code_size", trace.best_metric)
        .number("reduction_pct", reduction)
        .number("cycles_ratio_vs_fast", cyc_ratio)
        .integer("pareto_front", ptrace.pareto.size())
        .number("hypervolume", hv);
    row_docs.push_back(row.render(2));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Mean reduction %.1f%%, max %.1f%% "
              "(paper: 'as much as 40%%')\n",
              support::mean(reductions), support::max_of(reductions));
  const bool shape_pass = support::max_of(reductions) >= 30.0;
  std::printf("Shape check: %s\n",
              shape_pass
                  ? "PASS — GA finds code-size reductions of the same "
                    "order as Cooper et al."
                  : "MISMATCH — see EXPERIMENTS.md");

  if (!args.json_path.empty()) {
    bench::Json summary;
    summary.string("bench", "ga_codesize")
        .boolean("smoke", args.smoke)
        .integer("budget_per_program", budget)
        .number("mean_reduction_pct", support::mean(reductions))
        .number("max_reduction_pct", support::max_of(reductions))
        .boolean("shape_pass", shape_pass)
        .raw("benchmarks", bench::Json::array(row_docs));
    if (bench::write_json(args.json_path, std::move(summary)))
      std::printf("Wrote %s.\n", args.json_path.c_str());
  }

  // Smoke gates only well-definedness (every workload produced a front);
  // the 30%-reduction shape check needs the full budget and stays
  // report-only, as before.
  if (args.smoke) return empty_fronts == 0 ? 0 : 1;
  return 0;
}
