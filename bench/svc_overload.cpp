// Overload behaviour of the tuning service: sustained over-capacity load
// (multiple client threads submitting far faster than the worker pool can
// drain, against a deliberately small admission queue) followed by a burst
// in which every KB persist is forced to fail via the "svc.persist"
// failpoint. Reports reject/shed/timeout rates and p95 latency per phase.
//
// The gate — enforced in --smoke and full runs alike — is the request
// lifecycle guarantee: every submitted future resolves (zero hung
// clients), every request is accounted to exactly one outcome, overload
// actually produced load-shedding, and the fault phase produced persist
// errors without stranding a single client.
//
//   ILC_SVC_OVERLOAD_CLIENTS  submitting threads        (default 4)
//   ILC_SVC_OVERLOAD_PASSES   passes over the matrix    (default 6; smoke 2)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "support/failpoint.hpp"
#include "support/table.hpp"
#include "svc/service.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

namespace {

using Clock = std::chrono::steady_clock;

struct Phase {
  std::string name;
  std::uint64_t submitted = 0;
  std::uint64_t hung = 0;  // futures not ready after the generous wait
  double wall_s = 0.0;
  svc::Metrics m;

  std::uint64_t outcomes() const {
    return m.warm_hits + m.coalesced + m.searches + m.errors + m.rejected +
           m.timed_out + m.shed;
  }
};

/// Hammer a fresh service instance from `clients` threads, `passes` times
/// over a (program x machine) request matrix, then wait on every future
/// with a generous deadline so a genuinely hung client is detected rather
/// than blocking the bench forever.
Phase run_phase(const std::string& name, std::size_t max_queue,
                unsigned clients, unsigned passes, std::size_t nprograms,
                bool with_deadlines) {
  Phase out;
  out.name = name;

  svc::TuningService::Options opts;
  opts.workers = 2;
  opts.kb_path = "";  // in-memory: overload dynamics, not disk speed
  opts.autosave = false;
  opts.max_queue = max_queue;
  opts.evaluator_cache = 16;
  svc::TuningService service(opts);

  const auto& names = wl::workload_names();
  const std::size_t n = std::min(nprograms, names.size());
  const sim::MachineConfig machines[2] = {sim::amd_like(), sim::c6713_like()};

  std::mutex fmu;
  std::vector<std::shared_future<svc::TuningResponse>> futures;
  const Clock::time_point t0 = Clock::now();

  std::vector<std::thread> pool;
  for (unsigned c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      for (unsigned pass = 0; pass < passes; ++pass) {
        for (std::size_t i = 0; i < n; ++i) {
          for (const sim::MachineConfig& machine : machines) {
            svc::TuningRequest req;
            req.program = names[i];
            req.machine = machine;
            req.budget = 4;
            req.objective = pass % 2 == 0 ? search::Objective::Cycles
                                          : search::Objective::CodeSize;
            req.priority = static_cast<int>(i % 3);
            if (with_deadlines && (i + pass + c) % 5 == 0) req.timeout_ms = 2;
            std::shared_future<svc::TuningResponse> f =
                service.submit(std::move(req));
            std::lock_guard<std::mutex> lock(fmu);
            futures.push_back(std::move(f));
          }
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();

  out.submitted = futures.size();
  for (auto& f : futures) {
    if (f.wait_for(std::chrono::seconds(120)) != std::future_status::ready)
      ++out.hung;  // the bug class this bench exists to catch
  }
  out.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  service.drain();
  out.m = service.metrics();
  return out;
}

std::string pct(std::uint64_t part, std::uint64_t whole) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%",
                whole ? 100.0 * static_cast<double>(part) /
                            static_cast<double>(whole)
                      : 0.0);
  return buf;
}

std::string phase_json(const Phase& p) {
  bench::Json j;
  j.integer("requests", p.m.requests)
      .integer("hung", p.hung)
      .integer("warm_hits", p.m.warm_hits)
      .integer("coalesced", p.m.coalesced)
      .integer("searches", p.m.searches)
      .integer("errors", p.m.errors)
      .integer("rejected", p.m.rejected)
      .integer("timed_out", p.m.timed_out)
      .integer("shed", p.m.shed)
      .integer("persist_errors", p.m.persist_errors)
      .integer("p95_latency_us", p.m.p95_latency_us)
      .number("wall_s", p.wall_s);
  return j.render(2);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const unsigned clients = bench::env_unsigned("ILC_SVC_OVERLOAD_CLIENTS", 4);
  const unsigned passes = bench::env_unsigned("ILC_SVC_OVERLOAD_PASSES",
                                              args.smoke ? 2 : 6);
  const std::size_t nprograms = args.smoke ? 8 : wl::workload_names().size();
  const std::size_t max_queue = 8;  // small on purpose: force admission
                                    // decisions under the client firehose

  std::printf(
      "Tuning-service overload: %u clients x %u passes x %zu programs x 2 "
      "machines, queue depth %zu, 2 workers\n\n",
      clients, passes, nprograms, max_queue);

  // Phase 1: sustained over-capacity load with a mix of deadlines.
  const Phase overload = run_phase("overload", max_queue, clients, passes,
                                   nprograms, /*with_deadlines=*/true);

  // Phase 2: same shape of burst while every KB persist fails. Clients
  // must still all resolve (ok=false / stale), never hang.
  support::Failpoints::instance().configure("svc.persist=error");
  const Phase faults = run_phase("persist-fault", max_queue, clients,
                                 /*passes=*/1, nprograms,
                                 /*with_deadlines=*/false);
  support::Failpoints::instance().unset_all();

  support::Table table({"phase", "requests", "hung", "rejected", "timed out",
                        "shed", "persist err", "p95 us", "req/s"});
  for (const Phase* p : {&overload, &faults}) {
    char rps[32];
    std::snprintf(rps, sizeof rps, "%.0f",
                  static_cast<double>(p->submitted) / p->wall_s);
    table.add_row({p->name, std::to_string(p->m.requests),
                   std::to_string(p->hung),
                   pct(p->m.rejected, p->m.requests),
                   pct(p->m.timed_out, p->m.requests),
                   pct(p->m.shed, p->m.requests),
                   std::to_string(p->m.persist_errors),
                   std::to_string(p->m.p95_latency_us), rps});
  }
  table.print(std::cout);

  // The lifecycle gate. Every clause here is a bug if violated.
  bool ok = true;
  auto require = [&ok](bool cond, const char* what) {
    if (!cond) std::fprintf(stderr, "FAIL: %s\n", what);
    ok = ok && cond;
  };
  require(overload.hung == 0 && faults.hung == 0,
          "every submitted future resolved (zero hung clients)");
  require(overload.m.requests == overload.submitted &&
              faults.m.requests == faults.submitted,
          "service counted every submission");
  require(overload.outcomes() == overload.m.requests &&
              faults.outcomes() == faults.m.requests,
          "every request accounted to exactly one outcome");
  require(overload.m.rejected + overload.m.shed + overload.m.timed_out > 0,
          "overload phase actually shed load");
  require(faults.m.persist_errors > 0,
          "fault phase injected persist failures");
  require(overload.m.queued == 0 && overload.m.in_flight == 0 &&
              faults.m.queued == 0 && faults.m.in_flight == 0,
          "gauges returned to zero after drain");

  if (!args.json_path.empty()) {
    bench::Json doc;
    doc.integer("clients", clients)
        .integer("passes", passes)
        .integer("programs", nprograms)
        .integer("max_queue", max_queue)
        .boolean("smoke", args.smoke)
        .boolean("ok", ok)
        .raw("overload", phase_json(overload))
        .raw("persist_fault", phase_json(faults));
    if (!bench::write_json(args.json_path, std::move(doc))) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
  }

  std::printf("\nzero hung futures, all outcomes accounted: %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
