// Genetic-search wall-clock at 1, 2, and 4 evaluation workers on the
// Fig. 2 target (adpcm). Every width re-runs the identical fixed-seed GA
// from a cold evaluator and program cache; the bench fails unless each
// parallel trace is bit-identical to the sequential one (same best_so_far
// curve, best sequence, and best metric) — speed is only admissible if
// determinism held. Speedups are bounded by the host's core count, which
// is recorded alongside the numbers.
//
//   ILC_GA_BUDGET  evaluations per run   (default 400)
//   ILC_GA_SEED    GA seed               (default 2008)
//   --smoke        budget 60 (CI correctness pass)
//   --json <path>  machine-readable summary
#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "search/strategies.hpp"
#include "sim/program_cache.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

namespace {

using Clock = std::chrono::steady_clock;

struct Run {
  search::SearchTrace trace;
  double secs = 0.0;
};

Run run_ga(const ir::Module& mod, unsigned budget, std::uint64_t seed,
           unsigned workers) {
  // Cold start per width: a fresh evaluator (empty memo cache) and an
  // empty decoded-program cache, so no width inherits the previous one's
  // work.
  sim::ProgramCache::instance().clear();
  search::Evaluator eval(mod, sim::amd_like());
  support::Rng rng(seed);
  search::SequenceSpace space;
  search::GaParams params;
  params.workers = workers;

  Run out;
  const Clock::time_point t0 = Clock::now();
  out.trace = search::genetic_search(eval, space, rng, budget,
                                     search::Objective::Cycles, params);
  out.secs = std::chrono::duration<double>(Clock::now() - t0).count();
  return out;
}

bool identical(const search::SearchTrace& a, const search::SearchTrace& b) {
  return a.evaluations == b.evaluations && a.best_metric == b.best_metric &&
         a.best_seq == b.best_seq && a.best_so_far == b.best_so_far;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const unsigned budget =
      args.smoke ? 60 : bench::env_unsigned("ILC_GA_BUDGET", 400);
  const std::uint64_t seed = bench::env_unsigned("ILC_GA_SEED", 2008);
  const unsigned host_threads = std::thread::hardware_concurrency();

  const wl::Workload w = wl::make_workload("adpcm");
  std::printf("GA throughput on %s, budget %u, seed %llu, host threads %u\n\n",
              w.name.c_str(), budget, static_cast<unsigned long long>(seed),
              host_threads);

  support::Table table(
      {"workers", "secs", "evals/s", "speedup", "trace == seq"});
  std::vector<std::string> json_rows;
  bool ok = true;
  double base_secs = 0.0;
  search::SearchTrace reference;

  for (const unsigned workers : {1u, 2u, 4u}) {
    const Run run = run_ga(w.module, budget, seed, workers);
    if (workers == 1) {
      base_secs = run.secs;
      reference = run.trace;
    }
    const bool same = identical(run.trace, reference);
    ok = ok && same;

    const double speedup = base_secs / run.secs;
    const double eps = run.trace.evaluations / run.secs;
    table.add_row({std::to_string(workers), fmt(run.secs), fmt(eps),
                   fmt(speedup), same ? "yes" : "NO"});
    json_rows.push_back(bench::Json()
                            .integer("workers", workers)
                            .number("secs", run.secs)
                            .number("evals_per_s", eps)
                            .number("speedup_vs_1", speedup)
                            .boolean("trace_identical", same)
                            .render());
  }
  table.print(std::cout);
  std::printf("\nall parallel traces bit-identical to sequential: %s\n",
              ok ? "PASS" : "FAIL");

  if (!args.json_path.empty()) {
    const bench::Json doc = bench::Json()
                                .string("bench", "ga_throughput")
                                .string("workload", w.name)
                                .integer("budget", budget)
                                .integer("seed", seed)
                                .integer("host_threads", host_threads)
                                .boolean("deterministic", ok)
                                .raw("widths", bench::Json::array(json_rows));
    if (!bench::write_json(args.json_path, doc)) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
  }
  return ok ? 0 : 1;
}
