// Reproduces the Section III-D claim: a dynamic optimization module with
// runtime monitoring (phase detection) and online performance auditing
// adapts to changing runtime contexts where any single statically-chosen
// version ("one-size-fits-all") loses. Reports, per kernel workload, the
// cycles of each static version, the audited dynamic optimizer, and the
// per-item oracle.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "dynopt/dynopt.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

int main() {
  std::printf("=== Section III-D: dynamic optimization via runtime "
              "monitoring + performance auditing ===\n\n");

  support::Table table({"workload", "version", "cycles", "vs audited"});
  for (const auto& name : wl::workload_names()) {
    wl::Workload w = wl::make_workload(name);
    if (w.kernel.empty()) continue;
    dyn::DynamicOptimizer opt(dyn::default_versions(w.module),
                              sim::amd_like());
    const dyn::KernelSpec spec{w.kernel, w.kernel_setup, w.kernel_items};

    const auto audited = opt.run_audited(spec);
    if (audited.checksum != w.kernel_checksum) {
      std::printf("CHECKSUM MISMATCH on %s — aborting\n", name.c_str());
      return 1;
    }

    std::vector<dyn::AuditReport> statics;
    for (unsigned v = 0; v < opt.versions().size(); ++v)
      statics.push_back(opt.run_static(spec, v));

    for (unsigned v = 0; v < statics.size(); ++v) {
      const double ratio = static_cast<double>(statics[v].total_cycles) /
                           static_cast<double>(audited.total_cycles);
      table.add_row({name, "static " + opt.versions()[v].name,
                     support::Table::num(
                         static_cast<long long>(statics[v].total_cycles)),
                     support::Table::num(ratio, 2) + "x"});
    }
    table.add_row(
        {name,
         "audited (switches=" + std::to_string(audited.switches) +
             ", audits=" + std::to_string(audited.audits) + ")",
         support::Table::num(static_cast<long long>(audited.total_cycles)),
         "1.00x"});
  }
  std::printf("%s\n", table.render().c_str());

  // Focused look at the phased workload: the one-size-fits-all failure.
  wl::Workload phased = wl::make_workload("phased_mix");
  dyn::DynamicOptimizer opt(dyn::default_versions(phased.module),
                            sim::amd_like());
  const dyn::KernelSpec spec{phased.kernel, phased.kernel_setup,
                             phased.kernel_items};
  const auto audited = opt.run_audited(spec);
  std::uint64_t best_static = ~0ULL, worst_static = 0;
  for (unsigned v = 0; v < opt.versions().size(); ++v) {
    const auto rep = opt.run_static(spec, v);
    best_static = std::min(best_static, rep.total_cycles);
    worst_static = std::max(worst_static, rep.total_cycles);
  }
  std::printf("phased_mix: audited %llu vs best static %llu (%.2fx) and "
              "worst static %llu (%.2fx)\n",
              static_cast<unsigned long long>(audited.total_cycles),
              static_cast<unsigned long long>(best_static),
              static_cast<double>(audited.total_cycles) /
                  static_cast<double>(best_static),
              static_cast<unsigned long long>(worst_static),
              static_cast<double>(worst_static) /
                  static_cast<double>(audited.total_cycles));
  std::printf("Shape check: %s\n",
              audited.total_cycles < worst_static && audited.audits >= 2
                  ? "PASS — auditor adapts across phases and beats "
                    "mischosen static versions"
                  : "MISMATCH — see EXPERIMENTS.md");
  return 0;
}
