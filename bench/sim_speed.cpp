// Simulator throughput: Minstr/s of the legacy tree-walking interpreter
// vs the pre-decoded execution path (sim::DecodedProgram) over the whole
// workload suite. Both paths are run on identical modules and the bench
// asserts they agree on return value, cycle count, and instruction count
// for every workload — the speedup is only meaningful if the decoded path
// is bit-identical.
//
// Each path is timed as the best (minimum) of several interleaved trials:
// a single sample folds scheduler noise straight into the ratio, while
// the per-path minimum converges on the true cost.
//
//   ILC_SIMSPEED_REPS    simulator invocations per timed trial (default 5)
//   ILC_SIMSPEED_TRIALS  timed trials per path, best-of     (default 3)
//   --smoke              1 rep, 1 trial (CI correctness pass)
//   --json <path>        machine-readable summary
//   --baseline <json>    compare against a prior --json record; non-smoke
//                        runs exit nonzero when the geomean regresses
//                        beyond the noise margin or any workload drops
//                        below 1.0x
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/interpreter.hpp"
#include "sim/program_cache.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

namespace {

using Clock = std::chrono::steady_clock;

struct PathResult {
  std::int64_t ret = 0;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  double secs = 0.0;
};

/// Time `reps` full runs of `main` on one path; results must be invariant
/// across reps (the simulator is deterministic), so the last one is kept.
PathResult run_path(const ir::Module& mod, bool decoded, bool counters,
                    unsigned reps) {
  sim::MachineConfig cfg = sim::amd_like();
  cfg.decoded_execution = decoded;
  cfg.collect_counters = counters;
  PathResult out;
  const Clock::time_point t0 = Clock::now();
  for (unsigned r = 0; r < reps; ++r) {
    sim::Simulator sim(mod, cfg);
    const sim::RunResult rr = sim.run();
    out.ret = rr.ret;
    out.cycles = rr.cycles;
    out.instructions = rr.instructions;
  }
  out.secs = std::chrono::duration<double>(Clock::now() - t0).count();
  return out;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

/// Prior sim_speed --json record: geomean plus per-workload speedups.
/// Parsed by scanning for the exact key/value shapes our own emitter
/// writes — not a general JSON reader.
struct Baseline {
  bool loaded = false;
  double geomean = 0.0;
  std::map<std::string, double> speedup;
};

Baseline load_baseline(const std::string& path) {
  Baseline b;
  std::ifstream in(path);
  if (!in) return b;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  const auto number_after = [&](std::size_t pos, double* out) {
    const std::size_t colon = text.find(':', pos);
    if (colon == std::string::npos) return false;
    *out = std::strtod(text.c_str() + colon + 1, nullptr);
    return true;
  };

  const std::size_t g = text.find("\"geomean_speedup\"");
  if (g == std::string::npos || !number_after(g, &b.geomean)) return b;

  std::size_t pos = 0;
  while ((pos = text.find("\"workload\"", pos)) != std::string::npos) {
    const std::size_t q0 = text.find('"', text.find(':', pos) + 1);
    const std::size_t q1 = text.find('"', q0 + 1);
    const std::size_t sp = text.find("\"speedup\"", pos);
    if (q0 == std::string::npos || q1 == std::string::npos ||
        sp == std::string::npos)
      break;
    double v = 0.0;
    if (!number_after(sp, &v)) break;
    b.speedup[text.substr(q0 + 1, q1 - q0 - 1)] = v;
    pos = sp + 1;
  }
  b.loaded = true;
  return b;
}

/// Machine-noise allowance for the geomean regression gate: back-to-back
/// runs on an otherwise idle box differ by a few percent even with
/// best-of-trials timing.
constexpr double kGeomeanNoiseMargin = 0.90;

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const unsigned reps =
      args.smoke ? 1 : bench::env_unsigned("ILC_SIMSPEED_REPS", 5);
  const unsigned trials =
      args.smoke ? 1 : bench::env_unsigned("ILC_SIMSPEED_TRIALS", 3);

  std::printf(
      "Simulator throughput, legacy vs decoded, %u reps/trial, best of %u\n\n",
      reps, trials);

  support::Table table({"workload", "instrs", "legacy Mi/s", "decoded Mi/s",
                        "fast Mi/s", "speedup"});
  std::vector<std::string> json_rows;
  std::map<std::string, double> speedups;
  double log_speedup_sum = 0.0;
  std::size_t n = 0;
  bool ok = true;

  for (const auto& name : wl::workload_names()) {
    const wl::Workload w = wl::make_workload(name);
    // Drop cached decodings so each workload pays its own decode cost
    // inside the timed region (the honest amortized comparison).
    sim::ProgramCache::instance().clear();

    // Three configurations: the legacy reference, the decoded path with
    // full counter collection, and the decoded "fast" path (counters off
    // — the dispatch table with all counter bookkeeping compiled out,
    // i.e. the configuration the evaluation loop runs). The fast path
    // must still agree on ret/cycles/instructions: the cache and branch
    // models drive timing and stay on.
    PathResult legacy, decoded, fast;
    for (unsigned t = 0; t < trials; ++t) {
      // Interleave the paths so slow drift (thermal, noisy neighbors)
      // hits all sides of the ratio equally.
      const PathResult l = run_path(w.module, false, true, reps);
      const PathResult d = run_path(w.module, true, true, reps);
      const PathResult f = run_path(w.module, true, false, reps);
      if (t == 0 || l.secs < legacy.secs) legacy = l;
      if (t == 0 || d.secs < decoded.secs) decoded = d;
      if (t == 0 || f.secs < fast.secs) fast = f;
    }

    if (legacy.ret != decoded.ret || legacy.cycles != decoded.cycles ||
        legacy.instructions != decoded.instructions ||
        legacy.ret != fast.ret || legacy.cycles != fast.cycles ||
        legacy.instructions != fast.instructions) {
      std::fprintf(stderr, "MISMATCH on %s: legacy(ret=%lld cyc=%llu i=%llu) "
                           "decoded(ret=%lld cyc=%llu i=%llu)\n",
                   name.c_str(), static_cast<long long>(legacy.ret),
                   static_cast<unsigned long long>(legacy.cycles),
                   static_cast<unsigned long long>(legacy.instructions),
                   static_cast<long long>(decoded.ret),
                   static_cast<unsigned long long>(decoded.cycles),
                   static_cast<unsigned long long>(decoded.instructions));
      ok = false;
      continue;
    }

    const double total_mi =
        static_cast<double>(legacy.instructions) * reps / 1e6;
    const double legacy_mips = total_mi / legacy.secs;
    const double decoded_mips = total_mi / decoded.secs;
    const double fast_mips = total_mi / fast.secs;
    // The headline speedup is the evaluation hot path (fast) vs legacy;
    // the instrumented ratio rides along in the JSON record.
    const double speedup = legacy.secs / fast.secs;
    const double speedup_instr = legacy.secs / decoded.secs;
    log_speedup_sum += std::log(speedup);
    speedups[name] = speedup;
    ++n;

    table.add_row({name, std::to_string(legacy.instructions),
                   fmt(legacy_mips), fmt(decoded_mips), fmt(fast_mips),
                   fmt(speedup)});
    json_rows.push_back(bench::Json()
                            .string("workload", name)
                            .integer("instructions", legacy.instructions)
                            .number("legacy_minstr_per_s", legacy_mips)
                            .number("decoded_minstr_per_s", decoded_mips)
                            .number("fast_minstr_per_s", fast_mips)
                            .number("speedup", speedup)
                            .number("speedup_instrumented", speedup_instr)
                            .render());
  }
  table.print(std::cout);

  const double geomean = n ? std::exp(log_speedup_sum / n) : 0.0;
  std::printf("\ngeomean decoded/legacy speedup: %.2fx\n", geomean);
  std::printf("legacy == decoded on ret/cycles/instructions: %s\n",
              ok ? "PASS" : "FAIL");

  // --baseline gate: compare against a prior record. Smoke runs report
  // but never fail on performance (1 rep is not a measurement).
  bool perf_ok = true;
  if (!args.baseline_path.empty()) {
    const Baseline base = load_baseline(args.baseline_path);
    if (!base.loaded) {
      std::fprintf(stderr, "cannot parse baseline %s\n",
                   args.baseline_path.c_str());
      return 1;
    }
    std::printf("\nbaseline %s: geomean %.2fx -> %.2fx\n",
                args.baseline_path.c_str(), base.geomean, geomean);
    if (geomean < base.geomean * kGeomeanNoiseMargin) {
      std::printf("  FAIL: geomean regressed beyond the %.0f%% noise margin\n",
                  (1.0 - kGeomeanNoiseMargin) * 100.0);
      perf_ok = false;
    }
    for (const auto& [name, s] : speedups) {
      if (s < 1.0) {
        std::printf("  FAIL: %s at %.2fx — decoded slower than legacy\n",
                    name.c_str(), s);
        perf_ok = false;
      }
      const auto it = base.speedup.find(name);
      if (it != base.speedup.end() && s < it->second * kGeomeanNoiseMargin) {
        std::printf("  note: %s %.2fx -> %.2fx vs baseline\n", name.c_str(),
                    it->second, s);
      }
    }
    if (perf_ok) std::printf("  baseline gate: PASS\n");
    if (args.smoke) perf_ok = true;  // smoke reports, never gates
  }

  if (!args.json_path.empty()) {
    const bench::Json doc =
        bench::Json()
            .string("bench", "sim_speed")
            .integer("reps", reps)
            .integer("trials", trials)
            .number("geomean_speedup", geomean)
            .boolean("bit_identical", ok)
            .raw("workloads", bench::Json::array(json_rows));
    if (!bench::write_json(args.json_path, doc)) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
  }
  return ok && perf_ok ? 0 : 1;
}
