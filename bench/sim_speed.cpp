// Simulator throughput: Minstr/s of the legacy tree-walking interpreter
// vs the pre-decoded execution path (sim::DecodedProgram) over the whole
// workload suite. Both paths are run on identical modules and the bench
// asserts they agree on return value, cycle count, and instruction count
// for every workload — the speedup is only meaningful if the decoded path
// is bit-identical.
//
//   ILC_SIMSPEED_REPS  simulator invocations timed per path  (default 5)
//   --smoke            1 rep (CI correctness pass)
//   --json <path>      machine-readable summary
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sim/interpreter.hpp"
#include "sim/program_cache.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

namespace {

using Clock = std::chrono::steady_clock;

struct PathResult {
  std::int64_t ret = 0;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  double secs = 0.0;
};

/// Time `reps` full runs of `main` on one path; results must be invariant
/// across reps (the simulator is deterministic), so the last one is kept.
PathResult run_path(const ir::Module& mod, bool decoded, unsigned reps) {
  sim::MachineConfig cfg = sim::amd_like();
  cfg.decoded_execution = decoded;
  PathResult out;
  const Clock::time_point t0 = Clock::now();
  for (unsigned r = 0; r < reps; ++r) {
    sim::Simulator sim(mod, cfg);
    const sim::RunResult rr = sim.run();
    out.ret = rr.ret;
    out.cycles = rr.cycles;
    out.instructions = rr.instructions;
  }
  out.secs = std::chrono::duration<double>(Clock::now() - t0).count();
  return out;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const unsigned reps =
      args.smoke ? 1 : bench::env_unsigned("ILC_SIMSPEED_REPS", 5);

  std::printf("Simulator throughput, legacy vs decoded, %u reps/path\n\n",
              reps);

  support::Table table({"workload", "instrs", "legacy Mi/s", "decoded Mi/s",
                        "speedup"});
  std::vector<std::string> json_rows;
  double log_speedup_sum = 0.0;
  std::size_t n = 0;
  bool ok = true;

  for (const auto& name : wl::workload_names()) {
    const wl::Workload w = wl::make_workload(name);
    // Drop cached decodings so each workload pays its own decode cost
    // inside the timed region (the honest amortized comparison).
    sim::ProgramCache::instance().clear();
    const PathResult legacy = run_path(w.module, /*decoded=*/false, reps);
    const PathResult decoded = run_path(w.module, /*decoded=*/true, reps);

    if (legacy.ret != decoded.ret || legacy.cycles != decoded.cycles ||
        legacy.instructions != decoded.instructions) {
      std::fprintf(stderr, "MISMATCH on %s: legacy(ret=%lld cyc=%llu i=%llu) "
                           "decoded(ret=%lld cyc=%llu i=%llu)\n",
                   name.c_str(), static_cast<long long>(legacy.ret),
                   static_cast<unsigned long long>(legacy.cycles),
                   static_cast<unsigned long long>(legacy.instructions),
                   static_cast<long long>(decoded.ret),
                   static_cast<unsigned long long>(decoded.cycles),
                   static_cast<unsigned long long>(decoded.instructions));
      ok = false;
      continue;
    }

    const double total_mi =
        static_cast<double>(legacy.instructions) * reps / 1e6;
    const double legacy_mips = total_mi / legacy.secs;
    const double decoded_mips = total_mi / decoded.secs;
    const double speedup = legacy.secs / decoded.secs;
    log_speedup_sum += std::log(speedup);
    ++n;

    table.add_row({name, std::to_string(legacy.instructions),
                   fmt(legacy_mips), fmt(decoded_mips), fmt(speedup)});
    json_rows.push_back(bench::Json()
                            .string("workload", name)
                            .integer("instructions", legacy.instructions)
                            .number("legacy_minstr_per_s", legacy_mips)
                            .number("decoded_minstr_per_s", decoded_mips)
                            .number("speedup", speedup)
                            .render());
  }
  table.print(std::cout);

  const double geomean = n ? std::exp(log_speedup_sum / n) : 0.0;
  std::printf("\ngeomean decoded/legacy speedup: %.2fx\n", geomean);
  std::printf("legacy == decoded on ret/cycles/instructions: %s\n",
              ok ? "PASS" : "FAIL");

  if (!args.json_path.empty()) {
    const bench::Json doc =
        bench::Json()
            .string("bench", "sim_speed")
            .integer("reps", reps)
            .number("geomean_speedup", geomean)
            .boolean("bit_identical", ok)
            .raw("workloads", bench::Json::array(json_rows));
    if (!bench::write_json(args.json_path, doc)) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
  }
  return ok ? 0 : 1;
}
