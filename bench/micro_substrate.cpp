// google-benchmark micro-benchmarks of the substrate itself: interpreter
// throughput, per-pass cost, cache-model ops, feature extraction, and the
// fingerprint-memoization ablation (DESIGN.md design decision #4).
#include <benchmark/benchmark.h>

#include "features/features.hpp"
#include "ir/fingerprint.hpp"
#include "opt/pass.hpp"
#include "opt/pipelines.hpp"
#include "search/evaluator.hpp"
#include "search/space.hpp"
#include "sim/cache.hpp"
#include "sim/interpreter.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

static void BM_InterpreterThroughput(benchmark::State& state) {
  wl::Workload w = wl::make_workload("adpcm");
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    sim::Simulator sim(w.module, sim::amd_like());
    const auto rr = sim.run();
    instructions += rr.instructions;
    benchmark::DoNotOptimize(rr.ret);
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterThroughput);

static void BM_Pass(benchmark::State& state) {
  const auto id = static_cast<opt::PassId>(state.range(0));
  wl::Workload w = wl::make_workload("adpcm");
  for (auto _ : state) {
    ir::Module m = w.module;
    opt::run_pass(id, m);
    benchmark::DoNotOptimize(m.code_size());
  }
  state.SetLabel(opt::pass_name(id));
}
BENCHMARK(BM_Pass)->DenseRange(0, static_cast<int>(opt::kNumPasses) - 1);

static void BM_FastPipeline(benchmark::State& state) {
  wl::Workload w = wl::make_workload("mcf_lite");
  const auto pipeline = opt::fast_pipeline();
  for (auto _ : state) {
    ir::Module m = w.module;
    opt::run_sequence(m, pipeline);
    benchmark::DoNotOptimize(m.code_size());
  }
}
BENCHMARK(BM_FastPipeline);

static void BM_CacheAccess(benchmark::State& state) {
  sim::Cache cache({32768, 64, 8, 1});
  support::Rng rng(1);
  std::uint64_t hits = 0;
  for (auto _ : state) {
    hits += cache.access(rng.next_below(1 << 20)) ? 1 : 0;
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_CacheAccess);

static void BM_Fingerprint(benchmark::State& state) {
  wl::Workload w = wl::make_workload("mcf_lite");
  for (auto _ : state)
    benchmark::DoNotOptimize(ir::fingerprint(w.module));
}
BENCHMARK(BM_Fingerprint);

static void BM_StaticFeatures(benchmark::State& state) {
  wl::Workload w = wl::make_workload("mcf_lite");
  for (auto _ : state)
    benchmark::DoNotOptimize(feat::extract_static(w.module));
}
BENCHMARK(BM_StaticFeatures);

/// Ablation: sequence evaluation with and without the fingerprint memo
/// cache, over a stream of random sequences (many collapse to the same
/// optimized code).
static void BM_EvalSequence(benchmark::State& state) {
  const bool cache_on = state.range(0) != 0;
  wl::Workload w = wl::make_workload("crc32");
  search::Evaluator eval(w.module, sim::amd_like());
  eval.set_cache_enabled(cache_on);
  search::SequenceSpace space;
  support::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval.eval_sequence(space.sample(rng)).cycles);
  }
  state.SetLabel(cache_on ? "memo-cache on" : "memo-cache off");
  state.counters["simulations"] =
      static_cast<double>(eval.simulations());
}
BENCHMARK(BM_EvalSequence)->Arg(0)->Arg(1);

BENCHMARK_MAIN();
