// kbstore throughput and recovery bench: upsert and append rates into the
// WAL-backed store under each flush policy, concurrent lookup rate against
// a populated store, compaction cost, and recovery time for a WAL-heavy
// vs. a compacted store. Doubles as a correctness gate: a torn-tail
// injection must recover exactly the acknowledged prefix, and the run
// fails (exit 1) when any gate is violated.
//
//   kb_store [--smoke] [--json <path>]
//
//   ILC_KBSTORE_RECORDS   records per pass        (default 20000)
//   ILC_KBSTORE_READERS   lookup threads          (default 4)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "kbstore/log_format.hpp"
#include "kbstore/store.hpp"
#include "support/table.hpp"

using namespace ilc;

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

kb::ExperimentRecord record(std::size_t i, const char* kind) {
  kb::ExperimentRecord r;
  r.program = "prog-" + std::to_string(i % 97);
  r.machine = "amd-like";
  r.kind = kind;
  r.config = "constprop,dce,licm,peephole";
  r.cycles = 10000 + i;
  r.code_size = 128;
  r.instructions = 5000 + i;
  r.static_features = {1.0, 2.0, 3.0, 4.0};
  r.dynamic_features = {0.5, 0.25};
  return r;
}

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f", v);
  return buf;
}

/// One timed pass: `n` appends (or upserts) under the given flush policy.
double write_pass(const std::string& dir, std::size_t n,
                  kbstore::Options::Flush flush, bool upserts) {
  fs::remove_all(dir);
  kbstore::Options opts;
  opts.flush = flush;
  opts.background_compaction = false;
  auto store = kbstore::Store::open(dir, opts);
  if (!store) {
    std::fprintf(stderr, "cannot open store at %s\n", dir.c_str());
    std::exit(1);
  }
  const Clock::time_point t0 = Clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    if (upserts)
      store->upsert(record(i, "flags"));
    else
      store->append(record(i, "sequence"));
  }
  store->sync();
  return static_cast<double>(n) / secs_since(t0);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const std::size_t n =
      args.smoke ? 2000 : bench::env_unsigned("ILC_KBSTORE_RECORDS", 20000);
  const std::size_t readers = bench::env_unsigned("ILC_KBSTORE_READERS", 4);
  const std::string dir = "kb_store_bench.kbd";
  bool ok = true;

  std::printf("kbstore bench: %zu records per pass, %zu reader threads\n\n",
              n, readers);
  support::Table table({"pass", "ops/s"});

  // Write throughput under each flush policy.
  const double append_batched =
      write_pass(dir, n, kbstore::Options::Flush::Batched, false);
  const double append_every =
      write_pass(dir, n, kbstore::Options::Flush::EveryAppend, false);
  const double upsert_batched =
      write_pass(dir, n, kbstore::Options::Flush::Batched, true);
  table.add_row({"append (group commit)", fmt(append_batched)});
  table.add_row({"append (flush each)", fmt(append_every)});
  table.add_row({"upsert (group commit)", fmt(upsert_batched)});

  // Concurrent lookups against the upsert-populated store (97 live keys).
  double lookup_rate = 0.0;
  {
    auto store = kbstore::Store::open(dir);
    const std::size_t per_thread = n * 4;
    const Clock::time_point t0 = Clock::now();
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < readers; ++t)
      threads.emplace_back([&, t] {
        for (std::size_t i = 0; i < per_thread; ++i) {
          const auto hit = store->find(
              "prog-" + std::to_string((i + t) % 97), "amd-like", "flags");
          if (!hit) std::abort();  // every key must be live
        }
      });
    for (auto& t : threads) t.join();
    lookup_rate =
        static_cast<double>(per_thread * readers) / secs_since(t0);
    table.add_row({"lookup x" + std::to_string(readers), fmt(lookup_rate)});
  }

  // Recovery: WAL-heavy reopen, then compaction, then snapshot reopen.
  double recover_wal_s = 0.0, compact_s = 0.0, recover_snap_s = 0.0;
  std::size_t live = 0;
  {
    Clock::time_point t0 = Clock::now();
    kbstore::RecoveryInfo info;
    auto store = kbstore::Store::open(dir, {}, &info);
    recover_wal_s = secs_since(t0);
    live = store->size();
    ok = ok && info.wal_records > 0 && !info.torn_tail;

    t0 = Clock::now();
    ok = ok && store->compact();
    compact_s = secs_since(t0);
  }
  {
    const Clock::time_point t0 = Clock::now();
    kbstore::RecoveryInfo info;
    auto store = kbstore::Store::open(dir, {}, &info);
    recover_snap_s = secs_since(t0);
    ok = ok && store->size() == live && info.snapshot_records == live &&
         info.wal_records == 0;
  }
  table.add_row({"recover (wal) rec/s",
                 fmt(static_cast<double>(n) / recover_wal_s)});
  table.add_row({"compact rec/s", fmt(static_cast<double>(live) / compact_s)});

  // Correctness gate: torn-tail injection. Append garbage that looks like
  // the start of a frame; recovery must keep all acknowledged records.
  bool torn_ok = false;
  {
    {
      std::ofstream wal(dir + "/wal.ilc", std::ios::binary | std::ios::app);
      const char torn[] = {0x50, 0x00, 0x00, 0x00, 0x01, 0x02, 0x03};
      wal.write(torn, sizeof torn);
    }
    kbstore::RecoveryInfo info;
    auto store = kbstore::Store::open(dir, {}, &info);
    torn_ok = store && info.torn_tail && store->size() == live;
    ok = ok && torn_ok;
  }
  table.print(std::cout);

  std::printf("\nrecovered %zu live records; torn-tail injection %s\n", live,
              torn_ok ? "recovered cleanly" : "FAILED");
  std::printf("all gates: %s\n", ok ? "PASS" : "FAIL");

  if (!args.json_path.empty()) {
    bench::Json json;
    json.string("bench", "kb_store")
        .boolean("smoke", args.smoke)
        .integer("records", n)
        .number("append_batched_per_s", append_batched)
        .number("append_every_per_s", append_every)
        .number("upsert_batched_per_s", upsert_batched)
        .number("lookup_per_s", lookup_rate)
        .number("recover_wal_s", recover_wal_s)
        .number("compact_s", compact_s)
        .number("recover_snapshot_s", recover_snap_s)
        .boolean("torn_tail_recovered", torn_ok)
        .boolean("pass", ok);
    if (!bench::write_json(args.json_path, json)) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
  }

  fs::remove_all(dir);
  return ok ? 0 : 1;
}
