// Reproduces Fig. 2(a): the shape of the optimization-sequence space for
// adpcm on the C6713-like machine — sequences of length 5 over 13
// optimizations (unrolling at most once). The paper plots every point
// within 5% of the optimum against prefix (t1 t2) and suffix (t3 t4 t5)
// coordinates and observes that minima are scattered, yet a model trained
// on other programs' search data draws contours that capture the optimum.
//
// We enumerate a uniform sample of the 250,000-sequence space (the paper
// exhaustively evaluated 88,000 points of its space; set
// ILC_FIG2A_BUDGET=250000 for a full enumeration), report the scatter
// statistics, and score the FOCUSSED model's predicted-good region.
#include <algorithm>
#include <cstdio>
#include <set>

#include "bench_common.hpp"
#include "controller/controller.hpp"
#include "controller/kb_builder.hpp"
#include "search/focused.hpp"
#include "search/strategies.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

int main() {
  const unsigned budget = bench::env_unsigned("ILC_FIG2A_BUDGET", 6000);
  const unsigned kb_budget = bench::env_unsigned("ILC_FIG2A_KB", 150);
  const std::string target = "adpcm";
  const sim::MachineConfig machine = sim::c6713_like();
  const search::SequenceSpace space;

  std::printf("=== Fig. 2(a): sequence space of %s on %s ===\n",
              target.c_str(), machine.name.c_str());
  std::printf("Space: length-%u sequences over %zu passes, unroll <= once: "
              "%llu valid sequences; sampling %u "
              "(ILC_FIG2A_BUDGET overrides).\n\n",
              space.length, space.passes.size(),
              static_cast<unsigned long long>(space.count()), budget);

  // --- enumerate the space ------------------------------------------
  wl::Workload adpcm = wl::make_workload(target);
  search::Evaluator eval(adpcm.module, machine);
  support::Rng rng(0x2a2a);
  const auto points = search::enumerate_space(eval, space, rng, budget);
  const std::uint64_t o0 = eval.eval_sequence({}).cycles;

  std::uint64_t best = ~0ULL, worst = 0;
  std::size_t best_idx = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].cycles < best) {
      best = points[i].cycles;
      best_idx = i;
    }
    worst = std::max(worst, points[i].cycles);
  }

  // --- the within-5% set and its scatter ------------------------------
  const double threshold = static_cast<double>(best) * 1.05;
  std::vector<std::size_t> good;
  std::set<std::string> good_prefixes, good_suffixes;
  auto prefix_of = [](const std::vector<opt::PassId>& s) {
    return std::string(opt::pass_name(s[0])) + "," + opt::pass_name(s[1]);
  };
  auto suffix_of = [](const std::vector<opt::PassId>& s) {
    return std::string(opt::pass_name(s[2])) + "," + opt::pass_name(s[3]) +
           "," + opt::pass_name(s[4]);
  };
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (static_cast<double>(points[i].cycles) <= threshold) {
      good.push_back(i);
      good_prefixes.insert(prefix_of(points[i].seq));
      good_suffixes.insert(suffix_of(points[i].seq));
    }
  }

  support::Table shape({"quantity", "value"});
  shape.add_row({"sequences evaluated",
                 support::Table::num(static_cast<long long>(points.size()))});
  shape.add_row({"distinct optimized binaries (simulations)",
                 support::Table::num(
                     static_cast<long long>(eval.simulations()))});
  shape.add_row({"O0 cycles", support::Table::num(static_cast<long long>(o0))});
  shape.add_row({"best cycles", support::Table::num(static_cast<long long>(best))});
  shape.add_row({"worst cycles",
                 support::Table::num(static_cast<long long>(worst))});
  shape.add_row({"best sequence", search::sequence_to_string(
                                      points[best_idx].seq)});
  shape.add_row({"points within 5% of optimum",
                 support::Table::num(static_cast<long long>(good.size()))});
  shape.add_row({"distinct (t1,t2) prefixes among them",
                 support::Table::num(
                     static_cast<long long>(good_prefixes.size()))});
  shape.add_row({"distinct (t3,t4,t5) suffixes among them",
                 support::Table::num(
                     static_cast<long long>(good_suffixes.size()))});
  std::printf("%s\n", shape.render().c_str());

  // --- the model's predicted-good region (the paper's contours) --------
  std::printf("Training FOCUSSED model on the other %zu programs "
              "(%u random-search points each)...\n",
              wl::workload_names().size() - 1, kb_budget);
  std::vector<wl::Workload> suite;
  for (const auto& name : wl::workload_names())
    if (name != target) suite.push_back(wl::make_workload(name));
  std::vector<ctrl::SuiteProgram> programs;
  for (const auto& w : suite) programs.push_back({w.name, &w.module});
  const kb::KnowledgeBase base = ctrl::build_knowledge_base(
      programs, machine, kb_budget, /*flag_budget=*/0, /*seed=*/77);
  auto model = ctrl::build_focused_model(base, target, machine.name, space);
  model.set_target(feat::extract_static(adpcm.module));
  std::printf("Model selected nearest program: %s\n\n",
              model.selected_program().c_str());

  // Region = top-q% of sampled points by model density.
  std::vector<double> lp(points.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    lp[i] = model.log_prob(points[i].seq);
  const double region_frac = 0.10;
  std::vector<double> sorted_lp = lp;
  std::sort(sorted_lp.begin(), sorted_lp.end());
  const double cutoff =
      sorted_lp[static_cast<std::size_t>((1.0 - region_frac) *
                                         (sorted_lp.size() - 1))];
  std::size_t captured = 0;
  for (std::size_t i : good)
    if (lp[i] >= cutoff) ++captured;
  const bool optimum_in = lp[best_idx] >= cutoff;
  const double recall =
      good.empty() ? 0.0
                   : static_cast<double>(captured) /
                         static_cast<double>(good.size());

  support::Table contour({"quantity", "value"});
  contour.add_row({"predicted region size (fraction of space)",
                   support::Table::num(100 * region_frac, 0) + "%"});
  contour.add_row({"within-5% points captured by region",
                   support::Table::num(100 * recall, 1) + "%"});
  contour.add_row({"uniform-region baseline",
                   support::Table::num(100 * region_frac, 1) + "%"});
  contour.add_row({"optimum inside predicted region",
                   optimum_in ? "yes" : "no"});
  std::printf("%s\n", contour.render().c_str());
  std::printf("Shape check: %s\n",
              good_prefixes.size() > 5 && recall > region_frac
                  ? "PASS — minima scattered, model contours enriched for "
                    "good points (paper: contours contain the optimum)"
                  : "MISMATCH — see EXPERIMENTS.md");

  // Raw dump for external plotting of the (prefix, suffix) scatter.
  support::CsvWriter csv;
  csv.row({"sequence", "cycles", "within5", "log_prob"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    csv.row({search::sequence_to_string(points[i].seq),
             std::to_string(points[i].cycles),
             static_cast<double>(points[i].cycles) <= threshold ? "1" : "0",
             std::to_string(lp[i])});
  }
  if (csv.save("fig2a_points.csv"))
    std::printf("Wrote fig2a_points.csv (%zu rows).\n", points.size());
  return 0;
}
