// Reproduces the Section II methodology case study end-to-end: learning
// an instruction-scheduling heuristic. Reports (a) leave-one-benchmark-out
// classification accuracy for several learners — the paper's conclusion
// is that "a variety of learning algorithms all had low classification
// error rates" — and (b) whole-program cycles when the induced heuristic
// replaces the hand-tuned critical-path scheduler ("performance
// comparable to hand-tuned heuristics").
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "ml/ml.hpp"
#include "opt/pass.hpp"
#include "sched/sched.hpp"
#include "sim/interpreter.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

int main() {
  const unsigned per_block = bench::env_unsigned("ILC_SCHED_PER_BLOCK", 8);
  std::printf("=== Section II case study: learned instruction scheduling "
              "===\n\n");

  // --- generate training instances per benchmark -----------------------
  const auto names = wl::workload_names();
  ml::Dataset all;
  std::vector<int> groups;
  support::Rng rng(0x5c4ed);
  std::vector<std::size_t> per_program(names.size(), 0);
  for (std::size_t g = 0; g < names.size(); ++g) {
    wl::Workload w = wl::make_workload(names[g]);
    sched::prepare_for_scheduling(w.module);
    for (const auto& fn : w.module.functions()) {
      for (const auto& inst :
           sched::generate_instances(fn, rng, per_block)) {
        all.add(inst.features, inst.label);
        groups.push_back(static_cast<int>(g));
        ++per_program[g];
      }
    }
  }
  std::printf("Generated %zu training instances across %zu benchmarks.\n\n",
              all.size(), names.size());

  // --- leave-one-benchmark-out accuracy per learner ---------------------
  struct Learner {
    const char* name;
    ml::ClassifierFactory make;
  };
  const std::vector<Learner> learners = {
      {"logistic regression",
       [] { return std::make_unique<ml::LogisticRegression>(); }},
      {"decision tree", [] { return std::make_unique<ml::DecisionTree>(); }},
      {"naive Bayes", [] { return std::make_unique<ml::NaiveBayes>(); }},
      {"3-NN", [] { return std::make_unique<ml::KnnClassifier>(3); }},
  };

  support::Table acc_table({"learner", "LOBO accuracy (mean)",
                            "min over benchmarks"});
  for (const auto& learner : learners) {
    const auto accs = ml::logo_accuracy(learner.make, all, groups,
                                        static_cast<int>(names.size()));
    std::vector<double> nonempty;
    for (std::size_t g = 0; g < accs.size(); ++g)
      if (per_program[g] > 0) nonempty.push_back(accs[g]);
    acc_table.add_row(
        {learner.name,
         support::Table::num(100 * support::mean(nonempty), 1) + "%",
         support::Table::num(100 * support::min_of(nonempty), 1) + "%"});
  }
  std::printf("%s\n", acc_table.render().c_str());

  // --- integrate the induced heuristic and measure ----------------------
  support::Table perf({"benchmark", "no sched", "hand-tuned (CP)",
                       "learned (dtree)", "learned (logreg)",
                       "best learned / hand-tuned"});
  std::vector<double> ratios_dtree, ratios_logreg;
  for (std::size_t g = 0; g < names.size(); ++g) {
    // Leave-one-benchmark-out training for the integrated model.
    auto [train, test] = ml::Dataset::split_by_group(all, groups,
                                                     static_cast<int>(g));
    if (train.size() == 0) continue;
    ml::DecisionTree::Config tree_cfg;
    tree_cfg.max_depth = 10;
    tree_cfg.min_leaf = 1;
    ml::DecisionTree tree_model(tree_cfg);
    tree_model.fit(train);
    ml::LogisticRegression logreg_model;
    logreg_model.fit(train);

    wl::Workload base = wl::make_workload(names[g]);
    wl::Workload hand = wl::make_workload(names[g]);
    wl::Workload learned_t = wl::make_workload(names[g]);
    wl::Workload learned_l = wl::make_workload(names[g]);
    sched::prepare_for_scheduling(base.module);
    sched::prepare_for_scheduling(hand.module);
    sched::prepare_for_scheduling(learned_t.module);
    sched::prepare_for_scheduling(learned_l.module);
    for (auto& fn : hand.module.functions()) opt::schedule_blocks(fn);
    for (auto& fn : learned_t.module.functions())
      sched::schedule_with_model(fn, tree_model);
    for (auto& fn : learned_l.module.functions())
      sched::schedule_with_model(fn, logreg_model);

    sim::Simulator s0(base.module, sim::amd_like());
    sim::Simulator s1(hand.module, sim::amd_like());
    sim::Simulator s2(learned_t.module, sim::amd_like());
    sim::Simulator s3(learned_l.module, sim::amd_like());
    const auto c0 = s0.run().cycles;
    const auto c1 = s1.run().cycles;
    const auto c2 = s2.run().cycles;
    const auto c3 = s3.run().cycles;
    const double rt = static_cast<double>(c2) / static_cast<double>(c1);
    const double rl = static_cast<double>(c3) / static_cast<double>(c1);
    ratios_dtree.push_back(rt);
    ratios_logreg.push_back(rl);
    perf.add_row({names[g],
                  support::Table::num(static_cast<long long>(c0)),
                  support::Table::num(static_cast<long long>(c1)),
                  support::Table::num(static_cast<long long>(c2)),
                  support::Table::num(static_cast<long long>(c3)),
                  support::Table::num(std::min(rt, rl), 3)});
  }
  std::printf("%s\n", perf.render().c_str());

  const double geo_t = support::geomean(ratios_dtree);
  const double geo_l = support::geomean(ratios_logreg);
  std::printf("Geomean learned/hand-tuned cycle ratio: dtree %.3f, "
              "logreg %.3f (paper: learned heuristics comparable to "
              "hand-tuned)\n", geo_t, geo_l);
  const double geo = std::min(geo_t, geo_l);
  std::printf("Shape check: %s\n",
              geo < 1.05 ? "PASS — induced heuristics are comparable to "
                           "the hand-tuned scheduler"
                         : "MISMATCH — see EXPERIMENTS.md");
  return 0;
}
