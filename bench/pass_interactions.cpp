// Reproduces the Kulkarni et al. analysis the paper's related work
// describes: "exhaustive enumeration allowed them to construct
// probabilities of enabling/disabling interactions between different
// optimization passes in general and not specific to any program."
//
// For every ordered pass pair (A, B) we compare B's marginal cycle effect
// alone against its marginal effect after A, across several programs:
//   standalone(B) = cycles({B}) - cycles({})
//   given_A(B)    = cycles({A,B}) - cycles({A})
// A *enables* B when given_A(B) is meaningfully more beneficial than
// standalone(B); it *disables* B when meaningfully less. The bench prints
// the strongest interactions and the aggregate counts — the evidence that
// phase ordering matters, which is what makes Fig. 2's space worth
// searching at all.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "search/evaluator.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;
using opt::PassId;

int main() {
  // Programs spanning the suite's behaviour poles.
  const std::vector<std::string> programs = {"adpcm", "mcf_lite", "fir",
                                             "crc32", "stencil"};
  const sim::MachineConfig machine = sim::c6713_like();
  const double threshold = 0.005;  // 0.5% of O0 counts as an interaction

  std::printf("=== Kulkarni-style pass-interaction analysis (%zu programs, "
              "%u passes, %s) ===\n\n",
              programs.size(), opt::kNumPasses, machine.name.c_str());

  struct Interaction {
    PassId a, b;
    double mean_delta = 0;  // (given_A - standalone) / O0, averaged
    unsigned enables = 0, disables = 0;
  };
  std::vector<Interaction> interactions;

  std::vector<std::unique_ptr<search::Evaluator>> evals;
  std::vector<std::uint64_t> o0(programs.size());
  for (std::size_t p = 0; p < programs.size(); ++p) {
    wl::Workload w = wl::make_workload(programs[p]);
    opt::canonicalize(w.module);
    evals.push_back(
        std::make_unique<search::Evaluator>(w.module, machine));
    o0[p] = evals[p]->eval_sequence({}).cycles;
  }

  unsigned enabling_pairs = 0, disabling_pairs = 0, neutral_pairs = 0;
  for (unsigned ai = 0; ai < opt::kNumPasses; ++ai) {
    for (unsigned bi = 0; bi < opt::kNumPasses; ++bi) {
      if (ai == bi) continue;
      const auto a = static_cast<PassId>(ai);
      const auto b = static_cast<PassId>(bi);
      Interaction inter{a, b, 0, 0, 0};
      for (std::size_t p = 0; p < programs.size(); ++p) {
        const double base = static_cast<double>(o0[p]);
        const double only_a =
            static_cast<double>(evals[p]->eval_sequence({a}).cycles);
        const double only_b =
            static_cast<double>(evals[p]->eval_sequence({b}).cycles);
        const double a_then_b =
            static_cast<double>(evals[p]->eval_sequence({a, b}).cycles);
        const double standalone = (only_b - base) / base;
        const double given_a = (a_then_b - only_a) / base;
        const double delta = given_a - standalone;  // negative = enabling
        inter.mean_delta += delta / static_cast<double>(programs.size());
        if (delta < -threshold) inter.enables += 1;
        if (delta > threshold) inter.disables += 1;
      }
      if (inter.enables > 0 && inter.enables >= inter.disables)
        ++enabling_pairs;
      else if (inter.disables > 0)
        ++disabling_pairs;
      else
        ++neutral_pairs;
      interactions.push_back(inter);
    }
  }

  std::sort(interactions.begin(), interactions.end(),
            [](const Interaction& x, const Interaction& y) {
              return x.mean_delta < y.mean_delta;
            });

  support::Table top({"A (first)", "B (second)", "mean effect on B",
                      "programs enabled", "programs disabled"});
  std::printf("Strongest ENABLING interactions (A makes B more useful):\n");
  for (std::size_t k = 0; k < 8 && k < interactions.size(); ++k) {
    const auto& x = interactions[k];
    top.add_row({opt::pass_name(x.a), opt::pass_name(x.b),
                 support::Table::num(100 * x.mean_delta, 2) + "%",
                 std::to_string(x.enables), std::to_string(x.disables)});
  }
  std::printf("%s\n", top.render().c_str());

  support::Table bottom({"A (first)", "B (second)", "mean effect on B",
                         "programs enabled", "programs disabled"});
  std::printf("Strongest DISABLING interactions (A steals B's work):\n");
  for (std::size_t k = 0; k < 8 && k < interactions.size(); ++k) {
    const auto& x = interactions[interactions.size() - 1 - k];
    bottom.add_row({opt::pass_name(x.a), opt::pass_name(x.b),
                    support::Table::num(100 * x.mean_delta, 2) + "%",
                    std::to_string(x.enables), std::to_string(x.disables)});
  }
  std::printf("%s\n", bottom.render().c_str());

  const unsigned total = enabling_pairs + disabling_pairs + neutral_pairs;
  std::printf("Pairs: %u enabling, %u disabling, %u neutral (of %u); "
              "simulations: %zu\n",
              enabling_pairs, disabling_pairs, neutral_pairs, total,
              [&] {
                std::size_t s = 0;
                for (const auto& e : evals) s += e->simulations();
                return s;
              }());
  std::printf("Shape check: %s\n",
              enabling_pairs > 0 && disabling_pairs > 0
                  ? "PASS — passes both enable and disable each other, so "
                    "phase ordering is a real search problem (Kulkarni et "
                    "al.'s finding)"
                  : "MISMATCH — see EXPERIMENTS.md");
  return 0;
}
