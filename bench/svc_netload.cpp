// Network load behaviour of the TCP front-end: an in-process net::Server
// over a warm tuning service, driven by a single-threaded epoll client
// herd — thousands of concurrent loopback connections, pipelined
// requests, an open-loop send side that never waits for responses, plus
// a fault phase (injected accept drops, forced short writes, clients
// that vanish mid-request). Reports client-observed p50/p95/p99
// read-to-write latency and server-side reject/shed/timeout rates.
//
// The gate — enforced in --smoke and full runs alike — extends the
// service's lifecycle guarantee across the wire: the steady phase really
// held all its connections open at once (the smoke floor is >= 1000
// concurrent, proven by a connect-all barrier against the server's
// active gauge), every client got every response it was owed (zero hung
// clients), injected faults were observed, and after shutdown the server
// leaked nothing: accepted == closed, active == 0.
//
//   ILC_SVC_NETLOAD_CONNS  steady-phase connections (default 2000; smoke 1100)
//   ILC_SVC_NETLOAD_REQS   pipelined requests per connection (default 4;
//                          smoke 3)
#include <sys/epoll.h>
#include <sys/socket.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "support/failpoint.hpp"
#include "support/table.hpp"
#include "svc/service.hpp"

using namespace ilc;

namespace {

using Clock = std::chrono::steady_clock;

const char* const kPrograms[] = {"fir", "crc32", "rle", "dotprod"};
constexpr std::size_t kNPrograms = sizeof kPrograms / sizeof *kPrograms;

/// One loopback client connection in the herd.
struct CConn {
  enum class State {
    Connecting,  // nonblocking connect in flight
    Running,     // sending/awaiting pipelined responses
    Draining,    // all responses in; quit flushed; awaiting server close
    Done,        // clean close after every owed response
    Dropped,     // server closed early (injected accept fault)
    Aborted      // we hung up on purpose mid-request
  };

  net::Fd fd;
  State state = State::Connecting;
  bool aborter = false;
  bool quit_queued = false;
  std::uint32_t interest = 0;  // current epoll mask
  std::string inbuf;
  std::string outbuf;
  std::size_t outoff = 0;
  std::vector<Clock::time_point> send_times;  // per pipelined request
  std::size_t next_resp = 0;
  std::size_t expected = 0;

  bool terminal() const {
    return state == State::Done || state == State::Dropped ||
           state == State::Aborted;
  }
};

struct PhaseResult {
  std::string name;
  std::size_t conns = 0;
  std::uint64_t responses = 0;
  std::uint64_t hung = 0;     // conns not terminal by the deadline
  std::uint64_t dropped = 0;  // closed by the server before completion
  std::uint64_t aborted = 0;
  std::uint64_t errs = 0;        // `err` response lines
  std::int64_t peak_active = 0;  // server-side concurrent connections
  double wall_s = 0.0;
  std::vector<std::uint64_t> latencies_us;

  std::uint64_t pct(double p) const {
    if (latencies_us.empty()) return 0;
    const std::size_t idx = std::min(
        latencies_us.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(latencies_us.size())));
    return latencies_us[idx];
  }
};

/// Drives `total` connections against `server` from one epoll loop; see
/// main() for the phase shapes. Every connection pipelines `reqs` tune
/// commands in one burst and must read exactly that many response lines
/// back; the last `aborters` of them instead send one request and vanish
/// without reading — the server must shrug. With `barrier`, no request
/// is sent until every connection is registered server-side, proving the
/// concurrency is simultaneous rather than a rolling window.
PhaseResult run_phase(const std::string& name, net::Server& server,
                      std::size_t total, std::size_t reqs,
                      std::size_t aborters, bool barrier) {
  PhaseResult out;
  out.name = name;
  out.conns = total;
  const Clock::time_point t0 = Clock::now();
  const Clock::time_point deadline = t0 + std::chrono::seconds(180);

  const net::Fd ep(::epoll_create1(EPOLL_CLOEXEC));
  std::vector<CConn> conns(total);
  const std::int64_t active_before = server.stats().active;
  std::size_t terminal = 0;

  auto set_interest = [&](std::size_t i, std::uint32_t mask) {
    CConn& c = conns[i];
    if (!c.fd.valid() || mask == c.interest) return;
    epoll_event ev{};
    ev.events = mask;
    ev.data.u64 = i;
    ::epoll_ctl(ep.get(), EPOLL_CTL_MOD, c.fd.get(), &ev);
    c.interest = mask;
  };

  auto finish = [&](std::size_t i, CConn::State state) {
    CConn& c = conns[i];
    c.state = state;
    c.fd.reset();  // auto-removes from epoll
    ++terminal;
    if (state == CConn::State::Dropped) ++out.dropped;
    if (state == CConn::State::Aborted) ++out.aborted;
  };

  for (std::size_t i = 0; i < total; ++i) {
    CConn& c = conns[i];
    c.fd = net::connect_tcp(server.port());
    if (!c.fd.valid()) {
      std::fprintf(stderr, "connect %zu failed: %s\n", i,
                   std::strerror(errno));
      c.state = CConn::State::Dropped;
      ++out.dropped;
      ++terminal;
      continue;
    }
    c.aborter = i >= total - aborters;
    c.expected = c.aborter ? 0 : reqs;
    for (std::size_t r = 0; r < (c.aborter ? 1u : reqs); ++r)
      c.outbuf +=
          std::string("tune ") + kPrograms[(i + r) % kNPrograms] +
          " budget=2\n";
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP;  // EPOLLOUT: connect done
    ev.data.u64 = i;
    ::epoll_ctl(ep.get(), EPOLL_CTL_ADD, c.fd.get(), &ev);
    c.interest = ev.events;
  }

  // The concurrency barrier: every surviving connection registered on the
  // server before the first request byte.
  bool go = !barrier;
  auto barrier_reached = [&] {
    return server.stats().active - active_before >=
           static_cast<std::int64_t>(total - out.dropped);
  };

  std::array<epoll_event, 256> events;
  while (terminal < total && Clock::now() < deadline) {
    if (!go && barrier_reached()) {
      go = true;
      out.peak_active = server.stats().active - active_before;
      for (std::size_t i = 0; i < total; ++i)
        if (!conns[i].terminal() && conns[i].outoff < conns[i].outbuf.size())
          set_interest(i, EPOLLIN | EPOLLOUT | EPOLLRDHUP);
    }
    const int n = ::epoll_wait(ep.get(), events.data(),
                               static_cast<int>(events.size()), 20);
    if (n < 0 && errno != EINTR) break;
    for (int e = 0; e < n; ++e) {
      const std::size_t i = events[e].data.u64;
      CConn& c = conns[i];
      if (c.terminal()) continue;
      const std::uint32_t ev = events[e].events;

      if (c.state == CConn::State::Connecting && (ev & EPOLLOUT)) {
        int err = 0;
        socklen_t len = sizeof err;
        ::getsockopt(c.fd.get(), SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
          finish(i, CConn::State::Dropped);
          continue;
        }
        c.state = CConn::State::Running;
        if (!go) set_interest(i, EPOLLIN | EPOLLRDHUP);
      }

      // Send side: open loop — flush whenever the barrier is down and the
      // socket accepts bytes, never waiting for responses.
      if (go && !c.terminal() && c.state != CConn::State::Connecting &&
          c.outoff < c.outbuf.size()) {
        while (c.outoff < c.outbuf.size()) {
          const net::IoResult r =
              net::write_some(c.fd.get(), c.outbuf.data() + c.outoff,
                              c.outbuf.size() - c.outoff);
          if (r.status == net::IoStatus::WouldBlock) break;
          if (r.status != net::IoStatus::Ok) {
            finish(i, CConn::State::Dropped);
            break;
          }
          c.outoff += r.bytes;
        }
        if (c.terminal()) continue;
        if (c.outoff >= c.outbuf.size()) {
          if (c.aborter) {
            // Vanish mid-request: the response is in flight server-side.
            finish(i, CConn::State::Aborted);
            continue;
          }
          if (c.quit_queued) {
            c.state = CConn::State::Draining;
            set_interest(i, EPOLLIN | EPOLLRDHUP);
          } else {
            if (c.send_times.empty())
              c.send_times.assign(c.expected, Clock::now());
            set_interest(i, EPOLLIN | EPOLLRDHUP);
          }
        }
      }

      if (ev & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
        char buf[8192];
        for (;;) {
          const net::IoResult r = net::read_some(c.fd.get(), buf, sizeof buf);
          if (r.status == net::IoStatus::WouldBlock) break;
          if (r.status == net::IoStatus::Ok) {
            c.inbuf.append(buf, r.bytes);
            continue;
          }
          // EOF or reset: clean only once every owed response arrived.
          const bool clean = c.next_resp == c.expected && !c.aborter;
          finish(i, clean ? CConn::State::Done : CConn::State::Dropped);
          break;
        }
        if (c.terminal()) continue;
        std::size_t pos;
        while ((pos = c.inbuf.find('\n')) != std::string::npos) {
          const Clock::time_point now = Clock::now();
          const std::string line = c.inbuf.substr(0, pos);
          c.inbuf.erase(0, pos + 1);
          if (c.next_resp < c.send_times.size())
            out.latencies_us.push_back(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    now - c.send_times[c.next_resp])
                    .count()));
          if (line.rfind("err", 0) == 0) ++out.errs;
          ++out.responses;
          ++c.next_resp;
          if (c.next_resp == c.expected && !c.quit_queued) {
            // All responses in: say goodbye. Through the buffered path —
            // an armed net.write failpoint can truncate this write too.
            c.outbuf = "quit\n";
            c.outoff = 0;
            c.quit_queued = true;
            set_interest(i, EPOLLIN | EPOLLOUT | EPOLLRDHUP);
          }
        }
      }
    }
  }

  out.hung = static_cast<std::uint64_t>(total - terminal);
  out.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  std::sort(out.latencies_us.begin(), out.latencies_us.end());
  return out;
}

std::string phase_json(const PhaseResult& p) {
  bench::Json j;
  j.integer("conns", p.conns)
      .integer("responses", p.responses)
      .integer("hung", p.hung)
      .integer("dropped", p.dropped)
      .integer("aborted", p.aborted)
      .integer("errs", p.errs)
      .integer("peak_active",
               static_cast<std::uint64_t>(p.peak_active > 0 ? p.peak_active
                                                            : 0))
      .integer("p50_us", p.pct(0.50))
      .integer("p95_us", p.pct(0.95))
      .integer("p99_us", p.pct(0.99))
      .number("wall_s", p.wall_s);
  return j.render(2);
}

svc::TuningRequest warm_request(const char* program) {
  svc::TuningRequest req;
  req.program = program;
  req.budget = 2;
  return req;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  std::size_t conns = bench::env_unsigned("ILC_SVC_NETLOAD_CONNS",
                                          args.smoke ? 1100 : 2000);
  const std::size_t reqs =
      bench::env_unsigned("ILC_SVC_NETLOAD_REQS", args.smoke ? 3 : 4);

  // Client and server fds share this one process.
  const std::size_t capacity = net::ensure_fd_capacity(2 * conns + 256);
  if (capacity < 2 * conns + 256) {
    conns = (capacity - 256) / 2;
    std::fprintf(stderr, "fd limit %zu: scaling to %zu connections\n",
                 capacity, conns);
  }

  svc::TuningService::Options opts;
  opts.workers = 2;
  opts.kb_path = "";  // in-memory: transport dynamics, not disk speed
  opts.autosave = false;
  opts.max_queue = 64;
  svc::TuningService service(opts);
  // Warm every program the herd asks for: the phases measure transport
  // latency under concurrency, not search time.
  for (const char* p : kPrograms) service.tune(warm_request(p));

  net::ServerOptions net_opts;
  net_opts.loops = 1;
  net_opts.write_stall_ms = 30000;
  net::Server server(service, net_opts);

  std::printf(
      "TCP front-end load: %zu connections x %zu pipelined requests "
      "(open loop, connect-all barrier), then a fault phase\n\n",
      conns, reqs);

  // Phase 1: the full herd at once, every connection held open across
  // the barrier, pipelined warm requests.
  const PhaseResult steady = run_phase("steady", server, conns, reqs,
                                       /*aborters=*/0, /*barrier=*/true);

  // Phase 2: faults. A slice of accepts is dropped on the floor, writes
  // are truncated to one byte while armed, and the last quarter of the
  // clients hang up mid-request without reading their responses.
  const std::size_t fault_conns = std::max<std::size_t>(conns / 8, 64);
  const std::size_t accept_drops = 16;
  const net::Server::Stats pre_fault = server.stats();
  support::Failpoints::instance().configure(
      "net.accept=error*" + std::to_string(accept_drops) +
      ";net.write=error*4000");
  const PhaseResult faults = run_phase("faults", server, fault_conns, reqs,
                                       /*aborters=*/fault_conns / 4,
                                       /*barrier=*/false);
  const std::uint64_t short_writes =
      support::Failpoints::instance().hits("net.write");
  support::Failpoints::instance().unset_all();

  // Abandoned connections must unwind on their own, not linger.
  const Clock::time_point settle = Clock::now() + std::chrono::seconds(60);
  while (server.stats().active > 0 && Clock::now() < settle)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

  server.shutdown();
  const net::Server::Stats s = server.stats();

  support::Table table({"phase", "conns", "responses", "hung", "dropped",
                        "p50 us", "p95 us", "p99 us", "wall s"});
  for (const PhaseResult* p : {&steady, &faults}) {
    char wall[32];
    std::snprintf(wall, sizeof wall, "%.2f", p->wall_s);
    table.add_row({p->name, std::to_string(p->conns),
                   std::to_string(p->responses), std::to_string(p->hung),
                   std::to_string(p->dropped), std::to_string(p->pct(0.50)),
                   std::to_string(p->pct(0.95)), std::to_string(p->pct(0.99)),
                   wall});
  }
  table.print(std::cout);

  const svc::Metrics m = service.metrics();
  std::printf(
      "\nserver: accepted=%llu closed=%llu active=%lld accept_faults=%llu "
      "evicted=%llu bytes_in=%llu bytes_out=%llu\n"
      "service: requests=%llu rejected=%llu shed=%llu timed_out=%llu\n",
      static_cast<unsigned long long>(s.accepted),
      static_cast<unsigned long long>(s.closed),
      static_cast<long long>(s.active),
      static_cast<unsigned long long>(s.accept_faults),
      static_cast<unsigned long long>(s.evicted_idle + s.evicted_slow),
      static_cast<unsigned long long>(s.bytes_in),
      static_cast<unsigned long long>(s.bytes_out),
      static_cast<unsigned long long>(m.requests),
      static_cast<unsigned long long>(m.rejected),
      static_cast<unsigned long long>(m.shed),
      static_cast<unsigned long long>(m.timed_out));

  // The gate. Every clause is a bug if violated.
  bool ok = true;
  auto require = [&ok](bool cond, const char* what) {
    if (!cond) std::fprintf(stderr, "FAIL: %s\n", what);
    ok = ok && cond;
  };
  require(steady.peak_active >=
              static_cast<std::int64_t>(std::min<std::size_t>(conns, 1000)),
          "steady phase held >= 1000 concurrent connections");
  require(steady.hung == 0 && faults.hung == 0,
          "every client reached a terminal state (zero hung clients)");
  require(steady.dropped == 0,
          "no connection was dropped without injected faults");
  require(steady.responses == static_cast<std::uint64_t>(steady.conns) * reqs,
          "every pipelined request was answered");
  require(steady.errs == 0 && faults.errs == 0,
          "no request produced an error response");
  require(s.accept_faults - pre_fault.accept_faults == accept_drops,
          "fault phase dropped exactly the injected accepts");
  require(faults.dropped <= accept_drops,
          "only injected faults dropped connections");
  require(short_writes > 0, "fault phase exercised short writes");
  require(faults.aborted > 0, "fault phase aborted clients mid-request");
  require(s.active == 0 && s.accepted == s.closed,
          "zero leaked connections after shutdown");

  if (!args.json_path.empty()) {
    bench::Json doc;
    doc.string("bench", "svc_netload")
        .boolean("smoke", args.smoke)
        .integer("conns", conns)
        .integer("reqs_per_conn", reqs)
        .raw("steady", phase_json(steady))
        .raw("faults", phase_json(faults))
        .integer("accepted", s.accepted)
        .integer("closed", s.closed)
        .integer("accept_faults", s.accept_faults)
        .integer("short_writes", short_writes)
        .boolean("ok", ok);
    if (!bench::write_json(args.json_path, std::move(doc))) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
  }

  std::printf("\n%s\n", ok ? "PASS: zero hung clients, zero leaked "
                             "connections, faults all observed"
                           : "FAIL: see stderr");
  return ok ? 0 : 1;
}
