// Observability overhead: what does the obs instrumentation cost the
// tuning stack's hot paths, with the kill switches off and on?
//
// The workload is sim_speed-shaped — decoded-path simulation of the whole
// workload suite — plus one small random search, so counters, phase
// timers, and spans all fire. Three modes run interleaved (rep by rep, so
// frequency scaling and cache state hit all modes equally):
//
//   disabled  profiling off, tracing off — counters only (always on)
//   metrics   profiling on (clock reads + histogram records), tracing off
//   traced    profiling on and tracing on (spans into ring buffers)
//
// The <1% disabled-mode gate is *projected*, not differenced: a measured
// A/B of two seconds-scale runs cannot resolve sub-1% reliably on shared
// CI, so we count the instrumentation events a disabled run actually
// executes (from registry deltas, whose per-call-site multiplicities are
// fixed by the code), microbench each primitive's disabled cost in a
// tight loop, and budget events x cost against the run's wall time. The
// measured A/B runtimes for all three modes are reported alongside,
// honestly, noise and all.
//
//   ILC_OBSOVERHEAD_REPS  reps per mode (default 5)
//   --smoke               1 rep (CI gate)
//   --json <path>         machine-readable summary
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "search/evaluator.hpp"
#include "search/strategies.hpp"
#include "sim/interpreter.hpp"
#include "sim/program_cache.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

namespace {

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One unit of workload: simulate every suite program on the decoded path
/// and run a small random search (the search part fires spans + eval
/// timers; random_search keeps the event accounting exact, unlike the GA
/// whose generation count depends on convergence).
void run_workload(const std::vector<wl::Workload>& suite, unsigned seed) {
  sim::MachineConfig cfg = sim::amd_like();
  cfg.decoded_execution = true;
  for (const auto& w : suite) {
    sim::Simulator sim(w.module, cfg);
    (void)sim.run();
  }
  search::Evaluator eval(suite.front().module, sim::amd_like());
  search::SequenceSpace space;
  support::Rng rng(seed);
  search::random_search(eval, space, rng, /*budget=*/8,
                        search::Objective::Cycles);
}

std::uint64_t counter_delta(const obs::RegistrySnapshot& before,
                            const obs::RegistrySnapshot& after,
                            const std::string& name) {
  const obs::CounterValue* b = before.counter(name);
  const obs::CounterValue* a = after.counter(name);
  return (a ? a->value : 0) - (b ? b->value : 0);
}

/// Per-call disabled cost of one instrumentation primitive, in ns,
/// measured over `iters` back-to-back calls.
template <typename F>
double ns_per_call(std::uint64_t iters, F&& f) {
  const Clock::time_point t0 = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) f();
  return secs_since(t0) * 1e9 / static_cast<double>(iters);
}

struct Mode {
  const char* name;
  bool profiling;
  bool tracing;
  double secs = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const unsigned reps =
      args.smoke ? 1 : bench::env_unsigned("ILC_OBSOVERHEAD_REPS", 5);

  const std::vector<wl::Workload> suite = wl::make_suite();
  Mode modes[] = {
      {"disabled", false, false},
      {"metrics", true, false},
      {"traced", true, true},
  };

  // Warm-up (untimed): populate the program cache's decodings and fault
  // in every code path so the first timed rep is not paying one-time costs.
  run_workload(suite, 1);

  // Event census: registry deltas over one disabled-mode workload unit.
  // Multiplicities per call site (fixed by the instrumentation code):
  //   Simulator::call       1 timer + 5 counter adds
  //   ProgramCache::get     1 counter add (+1 timer on miss)
  //   Evaluator::simulate   1 span + 1 timer + 1 counter add
  //   eval cache hit        1 counter add
  obs::set_profiling_enabled(false);
  obs::Tracer::set_enabled(false);
  const obs::RegistrySnapshot before = obs::Registry::instance().snapshot();
  const Clock::time_point census_t0 = Clock::now();
  run_workload(suite, 2);
  const double unit_secs = secs_since(census_t0);
  const obs::RegistrySnapshot after = obs::Registry::instance().snapshot();

  const std::uint64_t inv = counter_delta(before, after, "sim.invocations");
  const std::uint64_t pc_hits =
      counter_delta(before, after, "sim.program_cache.hits");
  const std::uint64_t pc_misses =
      counter_delta(before, after, "sim.program_cache.misses");
  const std::uint64_t sims =
      counter_delta(before, after, "search.simulations");
  const std::uint64_t eval_hits =
      counter_delta(before, after, "search.eval_cache.hits");

  const std::uint64_t counter_adds =
      5 * inv + pc_hits + pc_misses + 2 * sims + eval_hits;
  const std::uint64_t timer_events = inv + pc_misses + sims;
  const std::uint64_t span_events = sims;

  // Disabled per-event costs, microbenched on this machine right now.
  obs::Registry micro;
  obs::Counter mc = micro.counter("micro.counter");
  obs::Histogram mh = micro.histogram("micro.hist");
  const std::uint64_t iters = args.smoke ? 1u << 20 : 1u << 22;
  const double counter_ns = ns_per_call(iters, [&] { mc.add(1); });
  const double timer_ns =
      ns_per_call(iters, [&] { obs::ScopedTimerUs t(mh); });
  const double span_ns = ns_per_call(iters, [&] { obs::Span s("micro"); });

  const double projected_ns = static_cast<double>(counter_adds) * counter_ns +
                              static_cast<double>(timer_events) * timer_ns +
                              static_cast<double>(span_events) * span_ns;
  const double projected_pct = projected_ns / (unit_secs * 1e9) * 100.0;
  const bool gate_ok = projected_pct < 1.0;

  // Measured A/B: interleave reps of the three modes.
  for (unsigned r = 0; r < reps; ++r) {
    for (Mode& m : modes) {
      obs::set_profiling_enabled(m.profiling);
      obs::Tracer::set_enabled(m.tracing);
      const Clock::time_point t0 = Clock::now();
      run_workload(suite, 100 + r);
      m.secs += secs_since(t0);
    }
  }
  obs::set_profiling_enabled(true);
  obs::Tracer::set_enabled(false);
  obs::Tracer::clear();

  const double metrics_pct =
      (modes[1].secs / modes[0].secs - 1.0) * 100.0;
  const double traced_pct = (modes[2].secs / modes[0].secs - 1.0) * 100.0;

  std::printf("obs overhead, %u reps/mode over %zu workloads + 1 search\n\n",
              reps, suite.size());
  std::printf("event census per workload unit (%.3fs disabled):\n",
              unit_secs);
  std::printf("  %llu counter adds, %llu timers, %llu spans\n",
              static_cast<unsigned long long>(counter_adds),
              static_cast<unsigned long long>(timer_events),
              static_cast<unsigned long long>(span_events));
  std::printf("disabled per-event cost: counter %.2fns, timer %.2fns, "
              "span %.2fns\n",
              counter_ns, timer_ns, span_ns);
  std::printf("projected disabled-mode overhead: %.4f%% (gate: <1%%): %s\n",
              projected_pct, gate_ok ? "PASS" : "FAIL");
  std::printf("measured runtimes: disabled %.3fs, metrics %.3fs (%+.2f%%), "
              "traced %.3fs (%+.2f%%)\n",
              modes[0].secs, modes[1].secs, metrics_pct, modes[2].secs,
              traced_pct);

  if (!args.json_path.empty()) {
    const bench::Json doc =
        bench::Json()
            .string("bench", "obs_overhead")
            .integer("reps", reps)
            .integer("counter_adds", counter_adds)
            .integer("timer_events", timer_events)
            .integer("span_events", span_events)
            .number("counter_add_ns", counter_ns)
            .number("disabled_timer_ns", timer_ns)
            .number("disabled_span_ns", span_ns)
            .number("workload_secs_disabled", unit_secs)
            .number("projected_disabled_overhead_pct", projected_pct)
            .number("measured_disabled_secs", modes[0].secs)
            .number("measured_metrics_secs", modes[1].secs)
            .number("measured_traced_secs", modes[2].secs)
            .number("measured_metrics_overhead_pct", metrics_pct)
            .number("measured_traced_overhead_pct", traced_pct)
            .boolean("gate_under_1pct", gate_ok);
    if (!bench::write_json(args.json_path, doc)) {
      std::fprintf(stderr, "cannot write %s\n", args.json_path.c_str());
      return 1;
    }
  }
  return gate_ok ? 0 : 1;
}
