// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace ilc::bench {

/// Integer knob from the environment (e.g. ILC_FIG2A_BUDGET=20000),
/// falling back to a default sized for a ~1-minute single-core run.
inline unsigned env_unsigned(const char* name, unsigned fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<unsigned>(parsed) : fallback;
}

/// Common bench command line. The human-readable table on stdout is
/// always produced; `--json <path>` additionally writes a machine-readable
/// summary (CI artifacts, BENCH_*.json records), `--smoke` shrinks the
/// run to a seconds-scale correctness pass for CI, and `--baseline <json>`
/// (benches that support it) compares against a prior JSON record and
/// fails on regression.
struct Args {
  std::string json_path;      // empty = no JSON output
  std::string baseline_path;  // empty = no baseline comparison
  bool smoke = false;
};

inline Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (a == "--baseline" && i + 1 < argc) {
      args.baseline_path = argv[++i];
    } else if (a == "--smoke") {
      args.smoke = true;
    }
  }
  return args;
}

/// Minimal JSON emitter for flat bench summaries: an insertion-ordered
/// object whose values are numbers, strings, booleans, or pre-rendered
/// JSON (for nested objects/arrays). No external dependency.
class Json {
 public:
  Json& number(const std::string& key, double v) {
    std::ostringstream os;
    os.precision(6);
    os << std::fixed << v;
    return put(key, os.str());
  }
  Json& integer(const std::string& key, std::uint64_t v) {
    return put(key, std::to_string(v));
  }
  Json& boolean(const std::string& key, bool v) {
    return put(key, v ? "true" : "false");
  }
  Json& string(const std::string& key, const std::string& v) {
    return put(key, quote(v));
  }
  /// `rendered` must already be valid JSON (e.g. another Json::render()).
  Json& raw(const std::string& key, const std::string& rendered) {
    return put(key, rendered);
  }

  std::string render(int indent = 0) const {
    const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += pad + quote(fields_[i].first) + ": " + fields_[i].second;
    }
    out += "\n" + std::string(static_cast<std::size_t>(indent), ' ') + "}";
    return out;
  }

  static std::string array(const std::vector<std::string>& rendered) {
    std::string out = "[";
    for (std::size_t i = 0; i < rendered.size(); ++i) {
      if (i) out += ", ";
      out += rendered[i];
    }
    return out + "]";
  }

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out += c;
      }
    }
    return out + "\"";
  }

 private:
  Json& put(const std::string& key, std::string rendered) {
    fields_.emplace_back(key, std::move(rendered));
    return *this;
  }
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Write a rendered JSON document (plus trailing newline) to `path`.
/// Returns false (after printing to stderr) when the file cannot be
/// opened, so benches can exit nonzero.
inline bool write_json(const std::string& path, const std::string& rendered) {
  std::ofstream out(path);
  if (!out) return false;
  out << rendered << "\n";
  return out.good();
}

/// Write a bench summary, appending the process-wide obs registry under a
/// "metrics" key — every JSON artifact carries the counters/histograms
/// the run produced (sim.*, search.*, kbstore.*) alongside its own fields.
inline bool write_json(const std::string& path, Json doc) {
  doc.raw("metrics",
          obs::to_json_object(obs::Registry::instance().snapshot()));
  return write_json(path, doc.render());
}

}  // namespace ilc::bench
