// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdlib>
#include <string>

namespace ilc::bench {

/// Integer knob from the environment (e.g. ILC_FIG2A_BUDGET=20000),
/// falling back to a default sized for a ~1-minute single-core run.
inline unsigned env_unsigned(const char* name, unsigned fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<unsigned>(parsed) : fallback;
}

}  // namespace ilc::bench
