// Learned unroll-factor prediction — the single-heuristic experiments
// the paper's related work builds on: Monsifrot et al. (decision trees
// deciding which loops to unroll, ~3% over the hand-tuned heuristic) and
// Stephenson & Amarasinghe (predicting unroll factors with supervised
// classification). The paper's argument: such single-optimization gains
// are modest — which is precisely what this bench shows, motivating the
// whole-compiler approach of Figs. 2-4.
//
// Per innermost unrollable loop: features -> best factor in {1,2,4,8}
// (label measured by selectively unrolling that loop, simplifying,
// scheduling, and simulating). Leave-one-benchmark-out training; then the
// induced predictor drives per-loop unrolling and is compared against no
// unrolling, fixed x4, and the per-loop oracle.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "features/features.hpp"
#include "ir/analysis.hpp"
#include "ml/ml.hpp"
#include "opt/pass.hpp"
#include "opt/pipelines.hpp"
#include "sim/interpreter.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

namespace {

constexpr unsigned kFactors[4] = {1, 2, 4, 8};

/// Cycles of the program after unrolling exactly one loop (identified by
/// the index of its header in find_loops order, within function `f`) by
/// `factor`, then cleaning up.
std::uint64_t cycles_with_factor(const ir::Module& base, std::size_t f,
                                 ir::BlockId header, unsigned factor) {
  ir::Module m = base;
  ir::Function& fn = m.functions()[f];
  if (factor > 1) opt::unroll_single_loop(fn, header, factor);
  opt::simplify_cfg(fn);
  opt::schedule_blocks(fn);
  sim::Simulator sim(m, sim::amd_like());
  return sim.run().cycles;
}

struct LoopCase {
  std::size_t program;                 // suite index
  std::size_t function;                // function index within module
  ir::BlockId header;
  std::vector<double> features;
  int best = 0;                        // index into kFactors
  std::uint64_t cycles[4] = {0, 0, 0, 0};
};

}  // namespace

int main() {
  std::printf("=== Related-work case study: learned unroll factors "
              "(Monsifrot / Stephenson) ===\n\n");

  // --- harvest loops and label them ------------------------------------
  std::vector<wl::Workload> suite;
  for (const auto& name : wl::workload_names())
    suite.push_back(wl::make_workload(name));
  // Canonicalize so the loops match what a real pipeline would see.
  for (auto& w : suite) opt::canonicalize(w.module);

  std::vector<LoopCase> cases;
  for (std::size_t p = 0; p < suite.size(); ++p) {
    const ir::Module& m = suite[p].module;
    for (std::size_t f = 0; f < m.functions().size(); ++f) {
      const ir::Function& fn = m.functions()[f];
      const auto loops = ir::find_loops(fn);
      for (const auto& loop : loops) {
        // Only loops the transform accepts (checked by attempting x2 on a
        // scratch copy).
        {
          ir::Module scratch = m;
          if (!opt::unroll_single_loop(scratch.functions()[f], loop.header,
                                       2))
            continue;
        }
        LoopCase c;
        c.program = p;
        c.function = f;
        c.header = loop.header;
        c.features = feat::extract_loop_features(fn, loop);
        for (int k = 0; k < 4; ++k)
          c.cycles[k] = cycles_with_factor(m, f, loop.header, kFactors[k]);
        c.best = 0;
        for (int k = 1; k < 4; ++k)
          if (c.cycles[k] < c.cycles[c.best]) c.best = k;
        cases.push_back(std::move(c));
      }
    }
  }
  std::printf("Labeled %zu unrollable innermost loops across %zu programs "
              "(factors 1/2/4/8, each measured on the simulator).\n\n",
              cases.size(), suite.size());

  ml::Dataset data;
  data.num_classes = 4;
  std::vector<int> groups;
  for (const auto& c : cases) {
    data.add(c.features, c.best);
    groups.push_back(static_cast<int>(c.program));
  }

  // --- leave-one-benchmark-out classification accuracy ------------------
  const auto accs = ml::logo_accuracy(
      [] {
        ml::DecisionTree::Config cfg;
        cfg.max_depth = 5;
        cfg.min_leaf = 1;
        return std::make_unique<ml::DecisionTree>(cfg);
      },
      data, groups, static_cast<int>(suite.size()));
  std::vector<double> nonempty;
  for (std::size_t g = 0; g < accs.size(); ++g) {
    bool has = false;
    for (int gg : groups)
      if (gg == static_cast<int>(g)) has = true;
    if (has) nonempty.push_back(accs[g]);
  }
  std::printf("Leave-one-benchmark-out factor-prediction accuracy "
              "(decision tree): %.1f%% mean\n\n",
              100 * support::mean(nonempty));

  // --- integrate: per-loop predicted factors vs baselines ---------------
  support::Table table({"benchmark", "no unroll", "fixed x4",
                        "learned (dtree)", "oracle", "learned / oracle"});
  std::vector<double> learned_vs_oracle, fixed_vs_oracle, none_vs_oracle;
  for (std::size_t p = 0; p < suite.size(); ++p) {
    std::vector<const LoopCase*> mine;
    for (const auto& c : cases)
      if (c.program == p) mine.push_back(&c);
    if (mine.empty()) continue;

    auto [train, test] =
        ml::Dataset::split_by_group(data, groups, static_cast<int>(p));
    ml::DecisionTree::Config cfg;
    cfg.max_depth = 5;
    cfg.min_leaf = 1;
    ml::DecisionTree model(cfg);
    model.fit(train);

    // Apply a per-loop factor assignment and measure the whole program.
    auto run_with = [&](auto pick_factor) {
      ir::Module m = suite[p].module;
      for (const LoopCase* c : mine) {
        const unsigned factor = pick_factor(*c);
        if (factor > 1)
          opt::unroll_single_loop(m.functions()[c->function], c->header,
                                  factor);
      }
      for (auto& fn : m.functions()) {
        opt::simplify_cfg(fn);
        opt::schedule_blocks(fn);
      }
      sim::Simulator sim(m, sim::amd_like());
      return sim.run().cycles;
    };

    const std::uint64_t none = run_with([](const LoopCase&) { return 1u; });
    const std::uint64_t fixed4 = run_with([](const LoopCase&) { return 4u; });
    const std::uint64_t learned = run_with([&](const LoopCase& c) {
      return kFactors[model.predict(c.features)];
    });
    const std::uint64_t oracle =
        run_with([&](const LoopCase& c) { return kFactors[c.best]; });

    const double ratio = static_cast<double>(learned) /
                         static_cast<double>(oracle);
    learned_vs_oracle.push_back(ratio);
    fixed_vs_oracle.push_back(static_cast<double>(fixed4) /
                              static_cast<double>(oracle));
    none_vs_oracle.push_back(static_cast<double>(none) /
                             static_cast<double>(oracle));
    table.add_row({wl::workload_names()[p],
                   support::Table::num(static_cast<long long>(none)),
                   support::Table::num(static_cast<long long>(fixed4)),
                   support::Table::num(static_cast<long long>(learned)),
                   support::Table::num(static_cast<long long>(oracle)),
                   support::Table::num(ratio, 3)});
  }
  std::printf("%s\n", table.render().c_str());

  const double geo_learned = support::geomean(learned_vs_oracle);
  const double geo_fixed = support::geomean(fixed_vs_oracle);
  const double geo_none = support::geomean(none_vs_oracle);
  std::printf("Geomean vs per-loop oracle: learned %.3f, fixed-x4 %.3f, "
              "no-unroll %.3f\n", geo_learned, geo_fixed, geo_none);
  std::printf("(Monsifrot et al. reported ~3%% over the hand-tuned "
              "heuristic; the paper's point is that single-optimization "
              "gains are modest.)\n");
  std::printf("Shape check: %s\n",
              geo_learned <= geo_fixed + 1e-9 && geo_learned < geo_none
                  ? "PASS — the induced per-loop heuristic matches or "
                    "beats the fixed factor and beats not unrolling"
                  : "MISMATCH — see EXPERIMENTS.md");
  return 0;
}
