// Reproduces Fig. 2(b): RANDOM vs FOCUSSED iterative search on adpcm
// (C6713-like machine), averaged over 20 trials. The paper reports that
// after 10 evaluations random search reaches ~38% of the available
// improvement while the focused (model-driven) search reaches ~86%, a
// level random search needs over 80 evaluations to match.
//
// Round two adds the clustered-seeding sweep: for every stock workload,
// a leave-one-out SeedBank warm-starts a random search and is compared
// against the cold-start search at the same budget. `--smoke` runs only
// that sweep at a seconds scale and GATES it (exit nonzero unless
// seeding reaches the cold best within the cold eval count on every
// workload and strictly improves quality-per-eval on at least half).
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "controller/controller.hpp"
#include "controller/kb_builder.hpp"
#include "search/focused.hpp"
#include "search/seedbank.hpp"
#include "search/strategies.hpp"
#include "support/csv.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

namespace {

struct SeedSweepRow {
  std::string name;
  double cold_best = 0;    // trial-mean best at the full budget
  double seeded_best = 0;  // trial-mean best at the full budget
  unsigned to_reach = 0;  // evals seeding needs to match cold's final best
  bool reached = false;   // within the cold eval count
  bool improved = false;  // strictly fewer evals, or strictly better final
};

// Cold random search vs the same budget warm-started from the
// leave-one-out seed bank, on one workload. Curves are averaged over
// `trials` independent RNG streams (the figure's own methodology), so
// the verdict measures the seeding policy, not one stream's luck.
SeedSweepRow seed_sweep_one(const std::string& name,
                            const kb::KnowledgeBase& kb,
                            const sim::MachineConfig& machine,
                            const search::SequenceSpace& space,
                            unsigned evals, unsigned trials,
                            support::Rng& root) {
  wl::Workload w = wl::make_workload(name);
  search::Evaluator eval(w.module, machine);

  search::SeedBankOptions opts;
  opts.exclude_program = name;  // never seed a program from its own runs
  opts.machine = machine.name;
  const search::SeedBank bank(kb, space, opts);
  const search::Seeding seeding =
      bank.seeding_for(feat::extract_static(w.module));

  std::vector<double> seeded_curve(evals, 0.0);
  double cold_final = 0.0, seeded_final = 0.0;
  for (unsigned t = 0; t < trials; ++t) {
    support::Rng rc = root.fork(2 * t);
    support::Rng rs = root.fork(2 * t + 1);
    const auto cold = search::random_search(eval, space, rc, evals);
    const auto seeded =
        search::seeded_random_search(eval, space, seeding, rs, evals);
    cold_final += static_cast<double>(cold.best_metric);
    seeded_final += static_cast<double>(seeded.best_metric);
    for (unsigned e = 0; e < evals; ++e)
      seeded_curve[e] += static_cast<double>(seeded.best_so_far[e]);
  }
  cold_final /= trials;
  seeded_final /= trials;
  for (double& v : seeded_curve) v /= trials;

  SeedSweepRow row;
  row.name = name;
  row.cold_best = cold_final;
  row.seeded_best = seeded_final;
  row.to_reach = evals + 1;
  for (unsigned e = 0; e < evals; ++e)
    if (seeded_curve[e] <= cold_final) {
      row.to_reach = e + 1;
      break;
    }
  row.reached = row.to_reach <= evals;
  row.improved =
      row.to_reach < evals || row.seeded_best < row.cold_best;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const unsigned trials =
      bench::env_unsigned("ILC_FIG2B_TRIALS", args.smoke ? 3 : 20);
  const unsigned evals =
      bench::env_unsigned("ILC_FIG2B_EVALS", args.smoke ? 30 : 100);
  const unsigned kb_budget =
      bench::env_unsigned("ILC_FIG2B_KB", args.smoke ? 40 : 150);
  const unsigned ref_budget =
      bench::env_unsigned("ILC_FIG2B_REF", args.smoke ? 400 : 4000);
  const std::string target = "adpcm";
  const sim::MachineConfig machine = sim::c6713_like();
  const search::SequenceSpace space;

  // --- clustered-seeding sweep over the whole suite ---------------------
  // One full-suite training KB; each workload is then seeded strictly
  // leave-one-out via SeedBankOptions::exclude_program.
  const unsigned seed_trials =
      bench::env_unsigned("ILC_FIG2B_SEED_TRIALS", args.smoke ? 3 : 5);
  std::printf("=== Clustered KB seeding: cold vs warm start, "
              "%u evaluations per workload, %u trials ===\n\n", evals,
              seed_trials);
  std::vector<ctrl::SuiteProgram> all_programs;
  std::vector<wl::Workload> all_suite = wl::make_suite();
  for (const auto& w : all_suite) all_programs.push_back({w.name, &w.module});
  const kb::KnowledgeBase full_kb = ctrl::build_knowledge_base(
      all_programs, machine, kb_budget, 0, /*seed=*/1234);

  support::Table seed_table({"benchmark", "cold best", "seeded best",
                             "seeded evals to cold best", "verdict"});
  std::vector<SeedSweepRow> rows;
  support::Rng seed_root(0x5eed);
  for (const auto& name : wl::workload_names()) {
    support::Rng wroot = seed_root.fork(rows.size());
    rows.push_back(seed_sweep_one(name, full_kb, machine, space, evals,
                                  seed_trials, wroot));
    const SeedSweepRow& r = rows.back();
    seed_table.add_row(
        {r.name, support::Table::num(r.cold_best, 0),
         support::Table::num(r.seeded_best, 0),
         r.reached ? std::to_string(r.to_reach) : "never",
         !r.reached ? "REGRESSION" : r.improved ? "improved" : "parity"});
  }
  std::printf("%s\n", seed_table.render().c_str());

  unsigned improved = 0, regressions = 0;
  for (const auto& r : rows) {
    improved += r.improved ? 1 : 0;
    regressions += r.reached ? 0 : 1;
  }
  const bool gate_pass =
      regressions == 0 && 2 * improved >= rows.size();
  std::printf("Seeding improved quality-per-eval on %u/%zu workloads, "
              "%u regressions.\n", improved, rows.size(), regressions);
  std::printf("Seeding gate: %s — warm start must match the cold-start "
              "best within the cold eval count everywhere and win on "
              ">= half the suite\n\n", gate_pass ? "PASS" : "FAIL");

  if (!args.json_path.empty()) {
    std::vector<std::string> row_docs;
    for (const auto& r : rows) {
      bench::Json doc;
      doc.string("benchmark", r.name)
          .number("cold_best_cycles", r.cold_best)
          .number("seeded_best_cycles", r.seeded_best)
          .integer("evals", evals)
          .integer("seeded_evals_to_cold_best", r.to_reach)
          .boolean("reached", r.reached)
          .boolean("improved", r.improved);
      row_docs.push_back(doc.render(2));
    }
    bench::Json summary;
    summary.string("bench", "fig2b_search")
        .boolean("smoke", args.smoke)
        .integer("evals_per_workload", evals)
        .integer("seed_trials", seed_trials)
        .integer("kb_budget_per_program", kb_budget)
        .integer("workloads", rows.size())
        .integer("improved", improved)
        .integer("regressions", regressions)
        .boolean("seeding_gate_pass", gate_pass)
        .raw("seed_sweep", bench::Json::array(row_docs));
    if (bench::write_json(args.json_path, std::move(summary)))
      std::printf("Wrote %s.\n\n", args.json_path.c_str());
  }

  if (args.smoke) {
    // Smoke mode is the CI gate for the seeding claim alone; the figure
    // reproduction below is a minutes-scale run.
    return gate_pass ? 0 : 1;
  }

  std::printf("=== Fig. 2(b): RANDOM vs FOCUSSED search on %s (%s), "
              "%u trials x %u evaluations ===\n\n",
              target.c_str(), machine.name.c_str(), trials, evals);

  wl::Workload adpcm = wl::make_workload(target);
  search::Evaluator eval(adpcm.module, machine);
  const std::uint64_t o0 = eval.eval_sequence({}).cycles;

  // Reference "100%" point: a large random search (cache-accelerated).
  std::uint64_t best_known = o0;
  {
    support::Rng ref_rng(0x42ef);
    const auto t = search::random_search(eval, space, ref_rng, ref_budget);
    best_known = t.best_metric;
  }
  std::printf("O0 = %llu cycles; best known = %llu "
              "(from %u reference evaluations)\n\n",
              static_cast<unsigned long long>(o0),
              static_cast<unsigned long long>(best_known), ref_budget);

  // Train the model on the rest of the suite (leave adpcm out).
  std::vector<wl::Workload> suite;
  for (const auto& name : wl::workload_names())
    if (name != target) suite.push_back(wl::make_workload(name));
  std::vector<ctrl::SuiteProgram> programs;
  for (const auto& w : suite) programs.push_back({w.name, &w.module});
  const kb::KnowledgeBase base = ctrl::build_knowledge_base(
      programs, machine, kb_budget, 0, /*seed=*/1234);
  auto model = ctrl::build_focused_model(base, target, machine.name, space);
  model.set_target(feat::extract_static(adpcm.module));
  // Model-class ablation (Agakov et al. compared exactly these): an IID
  // per-position model vs the first-order Markov model.
  auto iid_model = ctrl::build_focused_model(base, target, machine.name,
                                             space, 0.1,
                                             search::FocusedKind::Iid);
  iid_model.set_target(feat::extract_static(adpcm.module));

  // percent of achievable improvement for a cycle count.
  auto pct = [&](std::uint64_t c) {
    if (o0 <= best_known) return 0.0;
    const double num = static_cast<double>(o0) - static_cast<double>(c);
    const double den =
        static_cast<double>(o0) - static_cast<double>(best_known);
    return std::clamp(100.0 * num / den, 0.0, 100.0);
  };

  // --- run the trials ---------------------------------------------------
  std::vector<double> random_curve(evals, 0.0), focused_curve(evals, 0.0),
      iid_curve(evals, 0.0);
  support::Rng root(0xf2b);
  for (unsigned t = 0; t < trials; ++t) {
    support::Rng r1 = root.fork(3 * t);
    support::Rng r2 = root.fork(3 * t + 1);
    support::Rng r3 = root.fork(3 * t + 2);
    const auto rnd = search::random_search(eval, space, r1, evals);
    const auto foc = search::generator_search(
        eval, [&] { return model.sample(r2); }, evals);
    const auto iid = search::generator_search(
        eval, [&] { return iid_model.sample(r3); }, evals);
    for (unsigned e = 0; e < evals; ++e) {
      random_curve[e] += pct(rnd.best_so_far[e]);
      focused_curve[e] += pct(foc.best_so_far[e]);
      iid_curve[e] += pct(iid.best_so_far[e]);
    }
  }
  for (double& v : random_curve) v /= trials;
  for (double& v : focused_curve) v /= trials;
  for (double& v : iid_curve) v /= trials;

  // --- report ----------------------------------------------------------
  support::Table table({"evaluations", "RANDOM %", "FOCUSSED (Markov) %",
                        "FOCUSSED (IID) %"});
  for (unsigned e : {1u, 2u, 5u, 10u, 20u, 40u, 60u, 80u, 100u}) {
    if (e > evals) break;
    table.add_row({std::to_string(e),
                   support::Table::num(random_curve[e - 1], 1),
                   support::Table::num(focused_curve[e - 1], 1),
                   support::Table::num(iid_curve[e - 1], 1)});
  }
  std::printf("%s\n", table.render().c_str());

  const double rand10 = random_curve[std::min(9u, evals - 1)];
  const double foc10 = focused_curve[std::min(9u, evals - 1)];
  unsigned crossover = evals + 1;
  for (unsigned e = 0; e < evals; ++e)
    if (random_curve[e] >= foc10) {
      crossover = e + 1;
      break;
    }
  std::printf("At 10 evaluations: RANDOM %.0f%%, FOCUSSED %.0f%% "
              "(paper: 38%% vs 86%%)\n", rand10, foc10);
  if (crossover <= evals)
    std::printf("RANDOM needs %u evaluations to reach FOCUSSED@10 "
                "(paper: > 80)\n", crossover);
  else
    std::printf("RANDOM never reaches FOCUSSED@10 within %u evaluations "
                "(paper: > 80)\n", evals);
  std::printf("Shape check: %s\n",
              foc10 > rand10 + 10.0 && crossover > 10
                  ? "PASS — focused search dominates early evaluations"
                  : "MISMATCH — see EXPERIMENTS.md");

  support::CsvWriter csv;
  csv.row({"evaluations", "random_pct", "focused_markov_pct",
           "focused_iid_pct"});
  for (unsigned e = 0; e < evals; ++e)
    csv.row({std::to_string(e + 1), std::to_string(random_curve[e]),
             std::to_string(focused_curve[e]),
             std::to_string(iid_curve[e])});
  if (csv.save("fig2b_curves.csv"))
    std::printf("Wrote fig2b_curves.csv (%u rows).\n", evals);
  return 0;
}
