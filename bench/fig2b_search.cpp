// Reproduces Fig. 2(b): RANDOM vs FOCUSSED iterative search on adpcm
// (C6713-like machine), averaged over 20 trials. The paper reports that
// after 10 evaluations random search reaches ~38% of the available
// improvement while the focused (model-driven) search reaches ~86%, a
// level random search needs over 80 evaluations to match.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "controller/controller.hpp"
#include "controller/kb_builder.hpp"
#include "search/focused.hpp"
#include "search/strategies.hpp"
#include "support/csv.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

int main() {
  const unsigned trials = bench::env_unsigned("ILC_FIG2B_TRIALS", 20);
  const unsigned evals = bench::env_unsigned("ILC_FIG2B_EVALS", 100);
  const unsigned kb_budget = bench::env_unsigned("ILC_FIG2B_KB", 150);
  const unsigned ref_budget = bench::env_unsigned("ILC_FIG2B_REF", 4000);
  const std::string target = "adpcm";
  const sim::MachineConfig machine = sim::c6713_like();
  const search::SequenceSpace space;

  std::printf("=== Fig. 2(b): RANDOM vs FOCUSSED search on %s (%s), "
              "%u trials x %u evaluations ===\n\n",
              target.c_str(), machine.name.c_str(), trials, evals);

  wl::Workload adpcm = wl::make_workload(target);
  search::Evaluator eval(adpcm.module, machine);
  const std::uint64_t o0 = eval.eval_sequence({}).cycles;

  // Reference "100%" point: a large random search (cache-accelerated).
  std::uint64_t best_known = o0;
  {
    support::Rng ref_rng(0x42ef);
    const auto t = search::random_search(eval, space, ref_rng, ref_budget);
    best_known = t.best_metric;
  }
  std::printf("O0 = %llu cycles; best known = %llu "
              "(from %u reference evaluations)\n\n",
              static_cast<unsigned long long>(o0),
              static_cast<unsigned long long>(best_known), ref_budget);

  // Train the model on the rest of the suite (leave adpcm out).
  std::vector<wl::Workload> suite;
  for (const auto& name : wl::workload_names())
    if (name != target) suite.push_back(wl::make_workload(name));
  std::vector<ctrl::SuiteProgram> programs;
  for (const auto& w : suite) programs.push_back({w.name, &w.module});
  const kb::KnowledgeBase base = ctrl::build_knowledge_base(
      programs, machine, kb_budget, 0, /*seed=*/1234);
  auto model = ctrl::build_focused_model(base, target, machine.name, space);
  model.set_target(feat::extract_static(adpcm.module));
  // Model-class ablation (Agakov et al. compared exactly these): an IID
  // per-position model vs the first-order Markov model.
  auto iid_model = ctrl::build_focused_model(base, target, machine.name,
                                             space, 0.1,
                                             search::FocusedKind::Iid);
  iid_model.set_target(feat::extract_static(adpcm.module));

  // percent of achievable improvement for a cycle count.
  auto pct = [&](std::uint64_t c) {
    if (o0 <= best_known) return 0.0;
    const double num = static_cast<double>(o0) - static_cast<double>(c);
    const double den =
        static_cast<double>(o0) - static_cast<double>(best_known);
    return std::clamp(100.0 * num / den, 0.0, 100.0);
  };

  // --- run the trials ---------------------------------------------------
  std::vector<double> random_curve(evals, 0.0), focused_curve(evals, 0.0),
      iid_curve(evals, 0.0);
  support::Rng root(0xf2b);
  for (unsigned t = 0; t < trials; ++t) {
    support::Rng r1 = root.fork(3 * t);
    support::Rng r2 = root.fork(3 * t + 1);
    support::Rng r3 = root.fork(3 * t + 2);
    const auto rnd = search::random_search(eval, space, r1, evals);
    const auto foc = search::generator_search(
        eval, [&] { return model.sample(r2); }, evals);
    const auto iid = search::generator_search(
        eval, [&] { return iid_model.sample(r3); }, evals);
    for (unsigned e = 0; e < evals; ++e) {
      random_curve[e] += pct(rnd.best_so_far[e]);
      focused_curve[e] += pct(foc.best_so_far[e]);
      iid_curve[e] += pct(iid.best_so_far[e]);
    }
  }
  for (double& v : random_curve) v /= trials;
  for (double& v : focused_curve) v /= trials;
  for (double& v : iid_curve) v /= trials;

  // --- report ----------------------------------------------------------
  support::Table table({"evaluations", "RANDOM %", "FOCUSSED (Markov) %",
                        "FOCUSSED (IID) %"});
  for (unsigned e : {1u, 2u, 5u, 10u, 20u, 40u, 60u, 80u, 100u}) {
    if (e > evals) break;
    table.add_row({std::to_string(e),
                   support::Table::num(random_curve[e - 1], 1),
                   support::Table::num(focused_curve[e - 1], 1),
                   support::Table::num(iid_curve[e - 1], 1)});
  }
  std::printf("%s\n", table.render().c_str());

  const double rand10 = random_curve[std::min(9u, evals - 1)];
  const double foc10 = focused_curve[std::min(9u, evals - 1)];
  unsigned crossover = evals + 1;
  for (unsigned e = 0; e < evals; ++e)
    if (random_curve[e] >= foc10) {
      crossover = e + 1;
      break;
    }
  std::printf("At 10 evaluations: RANDOM %.0f%%, FOCUSSED %.0f%% "
              "(paper: 38%% vs 86%%)\n", rand10, foc10);
  if (crossover <= evals)
    std::printf("RANDOM needs %u evaluations to reach FOCUSSED@10 "
                "(paper: > 80)\n", crossover);
  else
    std::printf("RANDOM never reaches FOCUSSED@10 within %u evaluations "
                "(paper: > 80)\n", evals);
  std::printf("Shape check: %s\n",
              foc10 > rand10 + 10.0 && crossover > 10
                  ? "PASS — focused search dominates early evaluations"
                  : "MISMATCH — see EXPERIMENTS.md");

  support::CsvWriter csv;
  csv.row({"evaluations", "random_pct", "focused_markov_pct",
           "focused_iid_pct"});
  for (unsigned e = 0; e < evals; ++e)
    csv.row({std::to_string(e + 1), std::to_string(random_curve[e]),
             std::to_string(focused_curve[e]),
             std::to_string(iid_curve[e])});
  if (csv.save("fig2b_curves.csv"))
    std::printf("Wrote fig2b_curves.csv (%u rows).\n", evals);
  return 0;
}
