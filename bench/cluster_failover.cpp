// Failover bench: kill the shard leader under a live writer and measure
// how long until the cluster control plane has detected the death,
// promoted the most-caught-up follower, and served the first write on
// the new leader. Doubles as a correctness gate (the CI smoke): zero
// replicated-acknowledged records lost across the promotion, zero hung
// writes — every write issued during the outage retries until the new
// leader acks it, and every one is present in the promoted store.
//
//   cluster_failover [--smoke] [--json <path>]
//
//   ILC_FAILOVER_RECORDS   records in the leader store    (default 20000)
//   ILC_FAILOVER_BURST     writes issued during the outage (default 2000)
//
// Topology: one leader store, a ShipServer, two followers streaming over
// loopback TCP. The leader's death is deterministic — an injected probe
// flips from alive to dead — and a HealthMonitor debounces it through
// Suspect to Down, at which point the on_change hook runs the Promoter:
// drain both followers, pick the most-caught-up, flip its store onto a
// fenced generation, re-point the other follower. A writer thread spins
// on append-with-retry the whole time, so "failover latency" is measured
// to the first *served* write, not to an internal state change.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "cluster/health.hpp"
#include "cluster/promote.hpp"
#include "kbstore/store.hpp"
#include "repl/applier.hpp"
#include "repl/ship.hpp"
#include "repl/transport.hpp"
#include "support/table.hpp"

using namespace ilc;

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

kb::ExperimentRecord record(std::size_t i) {
  kb::ExperimentRecord r;
  r.program = "prog-" + std::to_string(i % 997);
  r.machine = "amd-like";
  r.kind = "sequence";
  r.config = "constprop,dce,licm,peephole,unroll";
  r.cycles = 10000 + i;
  r.code_size = 128 + i % 64;
  r.instructions = 5000 + i;
  r.static_features = {1.0, 2.0, 3.0, 4.0};
  r.dynamic_features = {0.5, 0.25, 0.125};
  return r;
}

/// Outage-window writes carry distinct keys so the post-failover
/// presence check is exact, not modulo the key space.
kb::ExperimentRecord outage_record(std::size_t i) {
  kb::ExperimentRecord r = record(i);
  r.program = "failover-" + std::to_string(i);
  return r;
}

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string fmts(double secs) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", secs);
  return buf;
}

[[noreturn]] void die(const std::string& why) {
  std::fprintf(stderr, "cluster_failover: FAIL: %s\n", why.c_str());
  std::exit(1);
}

/// Wait until the follower's durable position matches the leader's
/// on-disk position exactly (same gate as the replication bench).
void wait_converged(const std::string& leader_dir, const repl::Applier& a,
                    int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const auto target = repl::ShipSource(leader_dir).position();
    if (target) {
      const kbstore::WalPosition pos = a.position();
      if (pos.generation == target->generation && pos.seq == target->seq &&
          pos.chain_crc == target->chain_crc)
        return;
    }
    if (Clock::now() >= deadline) die("follower catch-up timed out");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const std::size_t n =
      args.smoke ? 2000 : bench::env_unsigned("ILC_FAILOVER_RECORDS", 20000);
  const std::size_t burst =
      args.smoke ? 200 : bench::env_unsigned("ILC_FAILOVER_BURST", 2000);
  const std::string leader_dir = "cluster_failover_leader.kbd";
  const std::string f1_dir = "cluster_failover_f1.kbd";
  const std::string f2_dir = "cluster_failover_f2.kbd";
  for (const auto* d : {&leader_dir, &f1_dir, &f2_dir}) fs::remove_all(*d);

  std::printf("cluster_failover bench: %zu records, %zu outage writes%s\n\n",
              n, burst, args.smoke ? " (smoke)" : "");
  support::Table table({"pass", "seconds"});
  bench::Json json;
  json.integer("records", n);
  json.integer("outage_writes", burst);
  json.boolean("smoke", args.smoke);

  // --- populate the leader, replicate to two followers -------------------
  const Clock::time_point t_pop = Clock::now();
  kbstore::Options lopts;
  lopts.flush = kbstore::Options::Flush::Batched;
  lopts.background_compaction = false;
  auto leader = kbstore::Store::open(leader_dir, lopts);
  if (!leader) die("cannot open leader store");
  for (std::size_t i = 0; i < n; ++i) leader->append(record(i));
  if (!leader->sync()) die("leader sync failed");
  table.add_row({"populate leader", fmts(secs_since(t_pop))});

  auto ship = repl::ShipServer::start(leader_dir, /*port=*/0);
  if (!ship) die("cannot start ship server");

  // Every-append flushing on the followers: after promotion the writer's
  // records must be durably visible the moment append() returns, or the
  // zero-lost gate would race the new leader's group commit.
  repl::Applier::Options a1o, a2o;
  a1o.metric_prefix = "failover.f1";
  a2o.metric_prefix = "failover.f2";
  a1o.store.flush = kbstore::Options::Flush::EveryAppend;
  a2o.store.flush = kbstore::Options::Flush::EveryAppend;
  std::shared_ptr<repl::Applier> a1 = repl::Applier::open(f1_dir, a1o);
  std::shared_ptr<repl::Applier> a2 = repl::Applier::open(f2_dir, a2o);
  if (!a1 || !a2) die("cannot open followers");

  const Clock::time_point t_boot = Clock::now();
  std::vector<cluster::Replica> replicas;
  replicas.push_back({f1_dir, a1, repl::ShipClient::start(*a1, ship->port())});
  replicas.push_back({f2_dir, a2, repl::ShipClient::start(*a2, ship->port())});
  wait_converged(leader_dir, *a1, 60000);
  wait_converged(leader_dir, *a2, 60000);
  table.add_row({"replicate x2", fmts(secs_since(t_boot))});
  json.number("replicate_s", secs_since(t_boot));

  // --- the control plane -------------------------------------------------
  // Synthetic endpoints: the probe is injected (the deterministic leader
  // death), so nothing ever connects to these.
  const repl::Endpoint leader_ep{"127.0.0.1", 64001};
  const repl::Endpoint f1_ep{"127.0.0.1", 64002};
  const repl::Endpoint f2_ep{"127.0.0.1", 64003};
  std::atomic<bool> leader_alive{true};

  cluster::HealthOptions hopts;
  hopts.metric_prefix = "failover";
  hopts.probe = [&](const repl::Endpoint& ep) {
    if (ep == leader_ep) return leader_alive.load();
    return true;
  };
  cluster::HealthMonitor monitor(hopts);
  monitor.add(leader_ep);
  monitor.add(f1_ep);
  monitor.add(f2_ep);

  // The writer's view of "the shard leader": swapped to the promoted
  // store by the failover hook, null during the outage.
  std::mutex handle_mu;
  std::shared_ptr<kbstore::Store> handle;

  cluster::PromoterOptions popts;
  popts.metric_prefix = "failover";
  cluster::Promoter promoter(popts);
  cluster::PromotionResult promo;
  std::atomic<bool> promoted{false};
  Clock::time_point t_kill{}, t_down{}, t_promoted{};
  monitor.on_change([&](const repl::Endpoint& ep, cluster::Health,
                        cluster::Health to) {
    if (!(ep == leader_ep) || to != cluster::Health::Down) return;
    t_down = Clock::now();
    promo = promoter.failover(replicas);
    if (!promo.ok) die("failover: " + promo.why);
    t_promoted = Clock::now();
    {
      std::lock_guard<std::mutex> lock(handle_mu);
      handle = promo.store;
    }
    promoted.store(true);
  });

  // --- kill the leader under a live writer --------------------------------
  ship->stop();
  leader.reset();
  leader_alive.store(false);
  t_kill = Clock::now();

  std::atomic<std::uint64_t> retries{0};
  std::uint64_t acked = 0;
  Clock::time_point t_first_ack{};
  std::thread writer([&] {
    for (std::size_t i = 0; i < burst; ++i) {
      for (;;) {
        {
          std::lock_guard<std::mutex> lock(handle_mu);
          if (handle) {
            handle->append(outage_record(i));
            if (acked++ == 0) t_first_ack = Clock::now();
            break;
          }
        }
        retries.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });

  // Drive deterministic probe rounds until the Down debounce fires the
  // failover hook (down_after consecutive failures; the first round
  // only reaches Suspect — that is the point of the grace period).
  while (!promoted.load()) {
    monitor.probe_all_once();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (secs_since(t_kill) > 60.0) die("promotion never happened");
  }
  writer.join();
  monitor.stop();

  const double detect_s =
      std::chrono::duration<double>(t_down - t_kill).count();
  const double promote_s =
      std::chrono::duration<double>(t_promoted - t_down).count();
  const double first_write_s =
      std::chrono::duration<double>(t_first_ack - t_kill).count();
  table.add_row({"detect (kill -> Down)", fmts(detect_s)});
  table.add_row({"promote (Down -> new leader)", fmts(promote_s)});
  table.add_row({"first served write", fmts(first_write_s)});
  json.number("detect_s", detect_s);
  json.number("promote_s", promote_s);
  json.number("first_write_s", first_write_s);
  json.integer("outage_retries", retries.load());
  json.integer("acked", acked);
  json.integer("generation", promo.generation);

  // --- gates --------------------------------------------------------------
  // Zero hung writes: the writer joined, every outage write acked once.
  if (acked != burst) die("hung writes: acked " + std::to_string(acked) +
                          " of " + std::to_string(burst));
  // Zero lost replicated-acknowledged records: both followers had
  // converged to the leader's durable position before the kill, so every
  // pre-kill key must be served by the promoted store.
  const auto& promoted_store = *promo.store;
  for (std::size_t i = 0; i < n; i += 97)
    if (!promoted_store.find("prog-" + std::to_string(i % 997), "amd-like",
                             "sequence"))
      die("lost pre-kill record prog-" + std::to_string(i % 997));
  // And every outage write landed on the new leader.
  for (std::size_t i = 0; i < burst; ++i)
    if (!promoted_store.find("failover-" + std::to_string(i), "amd-like",
                             "sequence"))
      die("lost outage write failover-" + std::to_string(i));
  // The surviving follower re-pointed and converged on the fenced
  // generation.
  const std::size_t other = promo.chosen == 0 ? 1 : 0;
  wait_converged(replicas[promo.chosen].dir, *replicas[other].applier, 60000);
  if (replicas[other].applier->position().generation != promo.generation)
    die("re-pointed follower is not on the promoted generation");
  // Bounded failover latency. Generous even for a loaded CI box: the
  // whole path is deterministic probes + an in-process promotion.
  if (args.smoke && first_write_s > 10.0)
    die("failover exceeded 10s: " + fmts(first_write_s));
  json.boolean("zero_lost", true);
  json.boolean("zero_hung", true);

  std::printf("%s\n", table.render().c_str());
  std::printf("gates: zero lost replicated-acked records, zero hung "
              "writes (%llu retried during the outage), follower on "
              "generation %llu\n",
              static_cast<unsigned long long>(retries.load()),
              static_cast<unsigned long long>(promo.generation));

  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    out << json.render() << "\n";
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  promo.ship->stop();
  for (auto& r : replicas)
    if (r.client) r.client->stop();
  replicas.clear();
  promo.store.reset();
  a1.reset();
  a2.reset();
  for (const auto* d : {&leader_dir, &f1_dir, &f2_dir}) fs::remove_all(*d);
  return 0;
}
