// Throughput of the tuning service: requests/sec over the whole workload
// suite at 1, 2, and 4 workers, cold (empty knowledge base — every request
// runs a search) vs. warm (a second service instance against the KB file
// the cold pass wrote — every request answered without simulation). The
// warm/cold ratio is the payoff of the persistent serving layer; the run
// fails if warm throughput is not at least 10x cold at every width.
//
//   ILC_SVC_BUDGET   search budget per cold request   (default 10)
//   ILC_SVC_REPEAT   submissions per program          (default 2)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "support/table.hpp"
#include "svc/service.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

namespace {

using Clock = std::chrono::steady_clock;

struct PassResult {
  double rps = 0.0;
  std::uint64_t simulations = 0;
};

/// Submit `repeat` tuning requests per suite program and drain.
PassResult run_pass(svc::TuningService& service, unsigned budget,
                    unsigned repeat) {
  const auto& names = wl::workload_names();
  const Clock::time_point t0 = Clock::now();
  std::vector<std::shared_future<svc::TuningResponse>> futures;
  for (unsigned r = 0; r < repeat; ++r) {
    for (const auto& name : names) {
      svc::TuningRequest req;
      req.program = name;
      req.budget = budget;
      futures.push_back(service.submit(req));
    }
  }
  for (auto& f : futures) {
    const svc::TuningResponse resp = f.get();
    if (!resp.ok) {
      std::fprintf(stderr, "request failed: %s\n", resp.error.c_str());
      std::exit(1);
    }
  }
  const double secs =
      std::chrono::duration<double>(Clock::now() - t0).count();
  PassResult out;
  out.rps = static_cast<double>(futures.size()) / secs;
  out.simulations = service.metrics().simulations;
  return out;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

}  // namespace

int main() {
  const unsigned budget = bench::env_unsigned("ILC_SVC_BUDGET", 10);
  const unsigned repeat = bench::env_unsigned("ILC_SVC_REPEAT", 2);
  const char* kb_path = "svc_throughput.kb";

  std::printf("Tuning-service throughput over %zu programs x%u, budget %u\n\n",
              wl::workload_names().size(), repeat, budget);

  support::Table table({"workers", "cold req/s", "cold sims", "warm req/s",
                        "warm sims", "warm/cold"});
  bool ok = true;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    std::filesystem::remove_all(kb_path);  // the KB is a store directory now

    svc::TuningService::Options opts;
    opts.workers = workers;
    opts.kb_path = kb_path;
    PassResult cold, warm;
    {
      svc::TuningService service(opts);
      cold = run_pass(service, budget, repeat);
    }
    {
      svc::TuningService service(opts);  // fresh instance, same KB file
      warm = run_pass(service, budget, repeat);
    }

    const double ratio = warm.rps / cold.rps;
    ok = ok && ratio >= 10.0 && warm.simulations == 0;
    table.add_row({std::to_string(workers), fmt(cold.rps),
                   std::to_string(cold.simulations), fmt(warm.rps),
                   std::to_string(warm.simulations), fmt(ratio)});
  }
  table.print(std::cout);

  std::filesystem::remove_all(kb_path);
  std::printf("\nwarm >= 10x cold at every width, 0 warm simulations: %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
