// Hardware design-space exploration with predictive models — the
// "quick prototyping of architectures" motivation from the paper's
// introduction and the CASES'06 / PACT'07 line of work its conclusion
// cites: learn how programs, optimizations, and architectures interact,
// then predict the performance of *unseen* machine configurations without
// simulating them.
//
// Protocol: a grid of machine configurations (L1/L2 capacity, DRAM
// latency, issue width). Each config is characterized ONLY through the
// microbenchmark prober (never by reading its parameters); each program
// by its static features. A regressor learns (arch features ⊕ program
// features) -> log cycles. Leave-one-CONFIG-out: the model ranks all
// programs' performance on a configuration it has never seen. The metric
// is Spearman rank correlation — ranking is what an architect exploring
// alternatives needs (the paper's relative-accuracy argument again).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>

#include "bench_common.hpp"
#include "features/arch_probe.hpp"
#include "features/features.hpp"
#include "ml/regress.hpp"
#include "sim/interpreter.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

namespace {

std::vector<sim::MachineConfig> design_grid() {
  std::vector<sim::MachineConfig> grid;
  int id = 0;
  for (std::uint32_t l1 : {2048u, 4096u, 8192u}) {
    for (std::uint32_t l2 : {16384u, 32768u, 65536u}) {
      for (std::uint32_t mem : {100u, 200u}) {
        for (std::uint32_t width : {1u, 2u}) {
          sim::MachineConfig m = sim::amd_like();
          m.name = "cfg" + std::to_string(id++);
          m.l1.size_bytes = l1;
          m.l2.size_bytes = l2;
          m.mem_latency = mem;
          m.issue_width = width;
          grid.push_back(std::move(m));
        }
      }
    }
  }
  return grid;
}

}  // namespace

int main() {
  const auto grid = design_grid();
  // A representative sub-suite keeps the bench fast; ILC_DSE_FULL=1 uses
  // all programs.
  std::vector<std::string> names = {"adpcm",  "mcf_lite", "matmul",
                                    "crc32",  "stencil",  "sha_lite",
                                    "linklist", "histogram"};
  if (bench::env_unsigned("ILC_DSE_FULL", 0) != 0)
    names = wl::workload_names();

  std::printf("=== Design-space exploration: predicting unseen machine "
              "configurations (%zu configs x %zu programs) ===\n\n",
              grid.size(), names.size());

  // Characterize each configuration by microbenchmark only.
  std::vector<std::vector<double>> arch_features;
  for (const auto& cfg : grid)
    arch_features.push_back(feat::probe_architecture(cfg).to_features());

  // Program features + ground-truth cycles on every configuration.
  std::vector<std::vector<double>> prog_features;
  std::vector<std::vector<double>> truth(grid.size());  // [config][program]
  for (const auto& name : names) {
    wl::Workload w = wl::make_workload(name);
    prog_features.push_back(feat::extract_static(w.module));
    for (std::size_t c = 0; c < grid.size(); ++c) {
      sim::Simulator sim(w.module, grid[c]);
      truth[c].push_back(static_cast<double>(sim.run().cycles));
    }
  }

  // Normalize the joint feature space.
  std::vector<std::vector<double>> joint_rows;
  for (std::size_t c = 0; c < grid.size(); ++c)
    for (std::size_t p = 0; p < names.size(); ++p) {
      std::vector<double> row = arch_features[c];
      row.insert(row.end(), prog_features[p].begin(),
                 prog_features[p].end());
      joint_rows.push_back(std::move(row));
    }
  feat::Scaler scaler;
  scaler.fit(joint_rows);

  // Leave-one-config-out evaluation for two model classes.
  struct ModelKind {
    const char* label;
    std::function<std::unique_ptr<ml::Regressor>()> make;
  };
  const std::vector<ModelKind> models = {
      {"ridge (linear)", [] { return std::make_unique<ml::RidgeRegression>(); }},
      {"3-NN (weighted)", [] { return std::make_unique<ml::KnnRegressor>(3); }},
  };

  support::Table table({"model", "mean Spearman (rank programs on unseen "
                        "config)", "mean Spearman (rank configs for unseen "
                        "config's programs)", "rel. RMSE of log-cycles"});
  double best_rho = -1;
  for (const auto& kind : models) {
    std::vector<double> rho_programs, rmse_rel;
    std::vector<double> rho_configs;
    for (std::size_t hold = 0; hold < grid.size(); ++hold) {
      ml::RegressionData train;
      for (std::size_t c = 0; c < grid.size(); ++c) {
        if (c == hold) continue;
        for (std::size_t p = 0; p < names.size(); ++p) {
          std::vector<double> row = arch_features[c];
          row.insert(row.end(), prog_features[p].begin(),
                     prog_features[p].end());
          train.add(scaler.transform(row), std::log(truth[c][p]));
        }
      }
      auto model = kind.make();
      model->fit(train);

      std::vector<double> pred;
      for (std::size_t p = 0; p < names.size(); ++p) {
        std::vector<double> row = arch_features[hold];
        row.insert(row.end(), prog_features[p].begin(),
                   prog_features[p].end());
        pred.push_back(model->predict(scaler.transform(row)));
      }
      std::vector<double> truth_log;
      for (double t : truth[hold]) truth_log.push_back(std::log(t));
      rho_programs.push_back(ml::spearman(pred, truth_log));

      double se = 0;
      for (std::size_t p = 0; p < names.size(); ++p) {
        const double e = pred[p] - truth_log[p];
        se += e * e;
      }
      rmse_rel.push_back(std::sqrt(se / static_cast<double>(names.size())));

      // Per-program ranking across configurations (which config is the
      // fastest for this program?) — evaluated for the held-out column.
      for (std::size_t p = 0; p < names.size(); ++p) {
        std::vector<double> pred_col, true_col;
        for (std::size_t c = 0; c < grid.size(); ++c) {
          std::vector<double> row = arch_features[c];
          row.insert(row.end(), prog_features[p].begin(),
                     prog_features[p].end());
          pred_col.push_back(model->predict(scaler.transform(row)));
          true_col.push_back(std::log(truth[c][p]));
        }
        rho_configs.push_back(ml::spearman(pred_col, true_col));
      }
    }
    const double mr = support::mean(rho_programs);
    best_rho = std::max(best_rho, mr);
    table.add_row({kind.label, support::Table::num(mr, 3),
                   support::Table::num(support::mean(rho_configs), 3),
                   support::Table::num(support::mean(rmse_rel), 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(Rank correlation 1.0 = perfect ordering; the CASES'06 "
              "models achieved strong rank fidelity on unseen designs.)\n");
  std::printf("Shape check: %s\n",
              best_rho > 0.8
                  ? "PASS — models rank programs on unseen configurations "
                    "with high fidelity from microbenchmark features alone"
                  : "MISMATCH — see EXPERIMENTS.md");
  return 0;
}
