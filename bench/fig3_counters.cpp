// Reproduces Fig. 3: performance-counter values of the memory-bound
// outlier (mcf_lite, standing in for SPEC 181.mcf) compiled at -O0,
// relative to the average values of the whole suite — the paper's
// headline observation is L2 store misses up to ~38x the average.
#include <cstdio>
#include <vector>

#include "features/features.hpp"
#include "sim/interpreter.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

int main() {
  std::printf("=== Fig. 3: mcf_lite -O0 counters relative to suite average"
              " (amd-like) ===\n\n");

  // Per-kilo-instruction counter rates for every program at -O0.
  std::vector<std::vector<double>> rates;
  std::vector<double> mcf_rate;
  const auto names = wl::workload_names();
  for (const auto& name : names) {
    wl::Workload w = wl::make_workload(name);
    sim::Simulator sim(w.module, sim::amd_like());
    const auto rr = sim.run();
    std::vector<double> row;
    const double kilo =
        static_cast<double>(rr.counters[sim::TOT_INS]) / 1000.0;
    for (unsigned c = 0; c < sim::kNumCounters; ++c) {
      const auto ctr = static_cast<sim::Counter>(c);
      if (ctr == sim::TOT_INS) continue;
      if (ctr == sim::TOT_CYC) {
        row.push_back(static_cast<double>(rr.counters[ctr]) /
                      static_cast<double>(rr.counters[sim::TOT_INS]));
      } else {
        row.push_back(static_cast<double>(rr.counters[ctr]) / kilo);
      }
    }
    if (name == "mcf_lite") mcf_rate = row;
    rates.push_back(std::move(row));
  }

  std::vector<double> avg(rates[0].size(), 0.0);
  for (const auto& row : rates)
    for (std::size_t j = 0; j < row.size(); ++j) avg[j] += row[j];
  for (double& v : avg) v /= static_cast<double>(rates.size());

  support::Table table({"counter", "mcf_lite rate", "suite avg rate",
                        "mcf / avg"});
  std::size_t j = 0;
  double max_ratio = 0.0;
  std::string max_counter;
  for (unsigned c = 0; c < sim::kNumCounters; ++c) {
    const auto ctr = static_cast<sim::Counter>(c);
    if (ctr == sim::TOT_INS) continue;
    const char* unit = ctr == sim::TOT_CYC ? " (CPI)" : "/kIns";
    const double ratio = avg[j] > 1e-12 ? mcf_rate[j] / avg[j] : 0.0;
    table.add_row({std::string(sim::counter_name(ctr)) + unit,
                   support::Table::num(mcf_rate[j], 3),
                   support::Table::num(avg[j], 3),
                   support::Table::num(ratio, 2) + "x"});
    if (ctr != sim::TOT_CYC && ratio > max_ratio) {
      max_ratio = ratio;
      max_counter = sim::counter_name(ctr);
    }
    ++j;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Largest outlier: %s at %.1fx the suite average "
              "(paper: L2_STM up to ~38x).\n",
              max_counter.c_str(), max_ratio);

  // The paper's qualitative signature: the mcf-like program's memory-miss
  // counters (store misses especially) tower over the suite average while
  // its branch counters do not. Absolute magnitudes differ — the paper's
  // testbed had a ~7 MB working set against a 512 KB L2; see
  // EXPERIMENTS.md.
  auto ratio_of = [&](const char* counter) {
    std::size_t k = 0;
    for (unsigned c = 0; c < sim::kNumCounters; ++c) {
      const auto ctr = static_cast<sim::Counter>(c);
      if (ctr == sim::TOT_INS) continue;
      if (std::string(sim::counter_name(ctr)) == counter)
        return avg[k] > 1e-12 ? mcf_rate[k] / avg[k] : 0.0;
      ++k;
    }
    return 0.0;
  };
  const bool store_outlier =
      ratio_of("L1_STM") > 5.0 || ratio_of("L2_STM") > 5.0;
  const bool l2_outlier = ratio_of("L2_TCM") > 3.0;
  const bool memory_not_branch = ratio_of("BR_MSP") < ratio_of("L2_TCM");
  std::printf("Shape check: %s\n",
              store_outlier && l2_outlier && memory_not_branch
                  ? "PASS — mcf-like program is a strong store/L2-miss "
                    "outlier, as in the paper"
                  : "MISMATCH — see EXPERIMENTS.md");
  return 0;
}
