// Section III-B / III-E: the knowledge base's characterization machinery.
//
//  Table 1 — architecture characterization by microbenchmark (after Yotov
//  et al.): the prober infers the memory hierarchy and core latencies
//  from timed IR microbenchmarks alone; we print inferred vs configured.
//
//  Table 2 — feature-usefulness analysis via mutual information (the
//  statistic the paper recommends): MI of each static program feature
//  against the label "does this program's best optimization setting
//  include pointer compression?", across the suite. The pointer-access
//  ratio should dominate — the model's ptrcompress discovery in Fig. 4 is
//  exactly this signal.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "features/arch_probe.hpp"
#include "features/features.hpp"
#include "search/strategies.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

int main() {
  std::printf("=== Knowledge-base characterization (Sections III-B, III-E) "
              "===\n\n");

  // --- Table 1: architecture characterization -------------------------
  support::Table arch({"machine", "parameter", "inferred", "configured"});
  for (const auto& cfg : {sim::amd_like(), sim::c6713_like()}) {
    const auto p = feat::probe_architecture(cfg);
    arch.add_row({cfg.name, "L1 capacity (bytes)",
                  support::Table::num(static_cast<long long>(p.l1_capacity)),
                  support::Table::num(static_cast<long long>(cfg.l1.size_bytes))});
    arch.add_row({cfg.name, "L2 capacity (bytes)",
                  support::Table::num(static_cast<long long>(p.l2_capacity)),
                  support::Table::num(static_cast<long long>(cfg.l2.size_bytes))});
    arch.add_row({cfg.name, "memory latency (cycles, load-to-use)",
                  support::Table::num(p.mem_latency, 1),
                  support::Table::num(static_cast<long long>(
                      cfg.l1.hit_latency + cfg.l2.hit_latency +
                      cfg.mem_latency))});
    arch.add_row({cfg.name, "mispredict penalty (cycles)",
                  support::Table::num(p.mispredict_penalty, 1),
                  support::Table::num(
                      static_cast<long long>(cfg.mispredict_penalty))});
  }
  std::printf("%s\n", arch.render().c_str());

  // --- Table 2: feature usefulness by mutual information ----------------
  const unsigned flag_budget = bench::env_unsigned("ILC_CHAR_FLAGS", 40);
  std::printf("Labeling each program by whether its best setting (from a "
              "%u-point flag search) uses pointer compression...\n\n",
              flag_budget);
  std::vector<std::vector<double>> feature_rows;
  std::vector<int> labels;
  for (const auto& name : wl::workload_names()) {
    wl::Workload w = wl::make_workload(name);
    feature_rows.push_back(feat::extract_static(w.module));
    search::Evaluator eval(w.module, sim::amd_like());
    support::Rng rng(0xc4a2 + feature_rows.size());
    const auto points = search::flag_search(eval, rng, flag_budget);
    const search::FlagPoint* best = &points[0];
    for (const auto& pt : points)
      if (pt.result.cycles < best->result.cycles) best = &pt;
    labels.push_back(best->flags.ptrcompress ? 1 : 0);
  }

  struct Scored {
    std::string name;
    double mi;
  };
  std::vector<Scored> scored;
  const auto& names = feat::static_feature_names();
  for (std::size_t f = 0; f < names.size(); ++f) {
    std::vector<double> column;
    for (const auto& row : feature_rows) column.push_back(row[f]);
    scored.push_back({names[f], feat::mutual_information(column, labels)});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.mi > b.mi; });

  support::Table mi({"static feature", "MI with 'ptrcompress wins' (bits)"});
  for (const auto& s : scored) mi.add_row({s.name, support::Table::num(s.mi, 3)});
  std::printf("%s\n", mi.render().c_str());

  const bool ptr_feature_top =
      scored[0].name == "ratio_ptr_mem" || scored[1].name == "ratio_ptr_mem";
  std::printf("Shape check: %s\n",
              ptr_feature_top
                  ? "PASS — the pointer-access ratio is among the most "
                    "informative features, as the Fig. 4 story requires"
                  : "MISMATCH — see EXPERIMENTS.md");
  return 0;
}
