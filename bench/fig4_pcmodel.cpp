// Reproduces Fig. 4: counter values for the mcf-like program under FAST
// (the -Ofast analogue) and under PCModel (the counter-signature model
// trained on the other programs, leave-one-out) relative to -O0, plus
// the speedup comparison. The paper's numbers: PCModel cuts L1 cache
// misses ~20% and L2 accesses ~20% where FAST doesn't move them; FAST
// gives 1.24x over -O0 while PCModel gives 2.33x (1.88x over FAST),
// having discovered the 64->32-bit pointer conversion.
#include <cstdio>

#include "bench_common.hpp"
#include "controller/controller.hpp"
#include "controller/kb_builder.hpp"
#include "search/evaluator.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

int main() {
  const unsigned flag_budget = bench::env_unsigned("ILC_FIG4_FLAGS", 60);
  const std::string target = "mcf_lite";
  const sim::MachineConfig machine = sim::amd_like();

  std::printf("=== Fig. 4: FAST vs PCModel on %s (relative to -O0, %s) ===\n",
              target.c_str(), machine.name.c_str());
  std::printf("Training period: flag search with %u settings per program "
              "on the other %zu programs (ILC_FIG4_FLAGS overrides).\n\n",
              flag_budget, wl::workload_names().size() - 1);

  // --- training period over the rest of the suite ---------------------
  std::vector<wl::Workload> suite;
  for (const auto& name : wl::workload_names())
    suite.push_back(wl::make_workload(name));
  std::vector<ctrl::SuiteProgram> programs;
  for (const auto& w : suite) programs.push_back({w.name, &w.module});
  const kb::KnowledgeBase base = ctrl::build_knowledge_base(
      programs, machine, /*sequence_budget=*/0, flag_budget, /*seed=*/2008);

  // --- one-shot prediction for the held-out target ---------------------
  wl::Workload mcf = wl::make_workload(target);
  const auto profile = ctrl::make_profile_record(target, mcf.module, machine);
  ctrl::CounterModel model(base, target, machine.name);
  const opt::OptFlags predicted = model.predict(profile.dynamic_features);

  search::Evaluator eval(mcf.module, machine);
  const auto o0 = eval.eval_flags(opt::o0_flags());
  const auto fast = eval.eval_flags(opt::fast_flags());
  const auto pc = eval.eval_flags(predicted);

  std::printf("PCModel nearest training program: %s\n",
              model.nearest_program().c_str());
  std::printf("PCModel predicted setting: %s\n\n",
              predicted.to_string().c_str());

  // --- counters relative to -O0 (the Fig. 4 bars) ----------------------
  support::Table table(
      {"counter", "FAST / O0", "PCModel / O0"});
  auto rel = [](std::uint64_t v, std::uint64_t base_v) {
    return base_v == 0 ? 0.0
                       : static_cast<double>(v) / static_cast<double>(base_v);
  };
  for (unsigned c = 0; c < sim::kNumCounters; ++c) {
    const auto ctr = static_cast<sim::Counter>(c);
    table.add_row({sim::counter_name(ctr),
                   support::Table::num(rel(fast.counters[ctr],
                                           o0.counters[ctr]), 3),
                   support::Table::num(rel(pc.counters[ctr],
                                           o0.counters[ctr]), 3)});
  }
  std::printf("%s\n", table.render().c_str());

  const double fast_speedup = static_cast<double>(o0.cycles) /
                              static_cast<double>(fast.cycles);
  const double pc_speedup = static_cast<double>(o0.cycles) /
                            static_cast<double>(pc.cycles);
  support::Table sp({"setting", "cycles", "speedup over O0"});
  sp.add_row({"O0", support::Table::num(static_cast<long long>(o0.cycles)),
              "1.00x"});
  sp.add_row({"FAST",
              support::Table::num(static_cast<long long>(fast.cycles)),
              support::Table::num(fast_speedup, 2) + "x"});
  sp.add_row({"PCModel",
              support::Table::num(static_cast<long long>(pc.cycles)),
              support::Table::num(pc_speedup, 2) + "x"});
  std::printf("%s\n", sp.render().c_str());

  std::printf("PCModel over FAST: %.2fx (paper: 1.88x; FAST 1.24x, "
              "PCModel 2.33x over O0)\n",
              pc_speedup / fast_speedup);
  const double l1_cut = 1.0 - rel(pc.counters[sim::L1_TCM],
                                  o0.counters[sim::L1_TCM]);
  const double l2_cut = 1.0 - rel(pc.counters[sim::L2_TCA],
                                  o0.counters[sim::L2_TCA]);
  std::printf("PCModel L1_TCM reduction: %.0f%%  L2_TCA reduction: %.0f%% "
              "(paper: ~20%% each)\n", 100 * l1_cut, 100 * l2_cut);
  std::printf("Shape check: %s\n",
              pc_speedup > fast_speedup && predicted.ptrcompress
                  ? "PASS — model discovered pointer compression and beat FAST"
                  : (pc_speedup > fast_speedup
                         ? "PASS — model beat FAST (without ptrcompress)"
                         : "MISMATCH — see EXPERIMENTS.md"));

  // --- ablation: the knowledge base's composition is load-bearing -------
  // Remove the other pointer-chasing programs from the KB and re-predict:
  // with no similar program to learn from, the model should lose the
  // pointer-compression discovery (design decision #7 in DESIGN.md).
  {
    kb::KnowledgeBase ablated;
    for (const auto& rec : base.records())
      if (rec.program != "linklist" && rec.program != "treewalk")
        ablated.add(rec);
    ctrl::CounterModel blind(ablated, target, machine.name);
    const opt::OptFlags blind_flags = blind.predict(profile.dynamic_features);
    const auto blind_res = eval.eval_flags(blind_flags);
    const double blind_speedup = static_cast<double>(o0.cycles) /
                                 static_cast<double>(blind_res.cycles);
    std::printf(
        "\nAblation (linklist/treewalk removed from KB): nearest program "
        "%s, setting %s, speedup %.2fx over O0\n",
        blind.nearest_program().c_str(), blind_flags.to_string().c_str(),
        blind_speedup);
    std::printf("Ablation check: %s\n",
                !blind_flags.ptrcompress && blind_speedup < pc_speedup
                    ? "PASS — without similar programs in the knowledge "
                      "base, the discovery disappears"
                    : "NOTE — ablated model still predicted well (see "
                      "EXPERIMENTS.md)");
  }
  return 0;
}
