// Replication bench: how fast a follower catches a leader, in-process and
// over TCP. Doubles as a correctness gate (the CI smoke): every pass must
// end with the follower at the leader's exact durable position and the
// store files byte-identical — catch-up is measured against the leader's
// on-disk position, never against heartbeat lag, which reads zero between
// ship batches.
//
//   kb_replication [--smoke] [--json <path>]
//
//   ILC_KBREPL_RECORDS   records in the leader store   (default 20000)
//
// Passes:
//   pipe bootstrap    cold follower, in-process ShipSource -> Applier
//                     (codec + store ceiling: no sockets, no threads)
//   tcp bootstrap     two cold followers over loopback TCP, concurrent
//   tcp live tail     write burst into the leader while both followers
//                     stream; time from last write to both converged
//   compaction        leader compacts mid-stream; followers must adopt
//                     the snapshot and converge on the new generation
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "kbstore/store.hpp"
#include "repl/applier.hpp"
#include "repl/ship.hpp"
#include "repl/transport.hpp"
#include "repl/wire.hpp"
#include "support/table.hpp"

using namespace ilc;

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

kb::ExperimentRecord record(std::size_t i) {
  kb::ExperimentRecord r;
  r.program = "prog-" + std::to_string(i % 997);
  r.machine = "amd-like";
  r.kind = "sequence";
  r.config = "constprop,dce,licm,peephole,unroll";
  r.cycles = 10000 + i;
  r.code_size = 128 + i % 64;
  r.instructions = 5000 + i;
  r.static_features = {1.0, 2.0, 3.0, 4.0};
  r.dynamic_features = {0.5, 0.25, 0.125};
  return r;
}

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f", v);
  return buf;
}

[[noreturn]] void die(const std::string& why) {
  std::fprintf(stderr, "kb_replication: FAIL: %s\n", why.c_str());
  std::exit(1);
}

std::uint64_t wal_bytes(const std::string& dir) {
  std::error_code ec;
  const auto n = fs::file_size(dir + "/wal.ilc", ec);
  return ec ? 0 : static_cast<std::uint64_t>(n);
}

/// The convergence-and-divergence gate every pass ends with: follower at
/// the leader's exact on-disk position, files byte-identical.
void require_converged(const std::string& name, const std::string& leader_dir,
                       const repl::Applier& a, const std::string& follower_dir,
                       int timeout_ms) {
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const auto target = repl::ShipSource(leader_dir).position();
    if (target) {
      const kbstore::WalPosition pos = a.position();
      if (pos.generation == target->generation && pos.seq == target->seq &&
          pos.chain_crc == target->chain_crc)
        break;
    }
    if (Clock::now() >= deadline) die(name + ": catch-up timed out");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (const auto d = repl::divergence(leader_dir, follower_dir))
    die(name + ": divergence: " + *d);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::parse_args(argc, argv);
  const std::size_t n =
      args.smoke ? 2000 : bench::env_unsigned("ILC_KBREPL_RECORDS", 20000);
  const std::string leader_dir = "kb_repl_bench_leader.kbd";
  const std::string pipe_dir = "kb_repl_bench_pipe.kbd";
  const std::string f1_dir = "kb_repl_bench_f1.kbd";
  const std::string f2_dir = "kb_repl_bench_f2.kbd";
  for (const auto* d : {&leader_dir, &pipe_dir, &f1_dir, &f2_dir})
    fs::remove_all(*d);

  std::printf("kb_replication bench: %zu records%s\n\n", n,
              args.smoke ? " (smoke)" : "");
  support::Table table({"pass", "seconds", "frames/s", "MB/s"});
  bench::Json json;
  json.integer("records", n);
  json.boolean("smoke", args.smoke);

  // --- populate the leader -----------------------------------------------
  kbstore::Options lopts;
  lopts.flush = kbstore::Options::Flush::Batched;
  lopts.background_compaction = false;
  auto leader = kbstore::Store::open(leader_dir, lopts);
  if (!leader) die("cannot open leader store");
  for (std::size_t i = 0; i < n; ++i) leader->append(record(i));
  if (!leader->sync()) die("leader sync failed");
  const double mb = static_cast<double>(wal_bytes(leader_dir)) / 1e6;

  // --- pipe bootstrap: ShipSource -> Applier, no transport ---------------
  {
    auto a = repl::Applier::open(pipe_dir);
    if (!a) die("cannot open pipe follower");
    const Clock::time_point t0 = Clock::now();
    repl::ShipSource src(leader_dir);
    std::string out, why;
    if (!src.handshake(a->hello(), out, &why)) die("pipe handshake: " + why);
    const auto target = src.position();
    while (true) {
      out.clear();
      if (!src.poll(out)) die("pipe poll failed");
      repl::MsgReader reader;
      reader.feed(out);
      repl::Msg m;
      while (reader.next(m) == repl::MsgReader::Status::Ok)
        if (!a->apply(m, &why)) die("pipe apply: " + why);
      const kbstore::WalPosition pos = a->position();
      if (target && pos.generation == target->generation &&
          pos.seq == target->seq)
        break;
    }
    const double secs = secs_since(t0);
    require_converged("pipe bootstrap", leader_dir, *a, pipe_dir, 1000);
    table.add_row({"pipe bootstrap", std::to_string(secs).substr(0, 6),
                   fmt(static_cast<double>(n) / secs), fmt(mb / secs)});
    json.number("pipe_bootstrap_s", secs);
    json.number("pipe_frames_per_s", static_cast<double>(n) / secs);
  }

  // --- tcp bootstrap: two cold followers, concurrent ---------------------
  auto ship = repl::ShipServer::start(leader_dir, /*port=*/0);
  if (!ship) die("cannot start ship server");
  repl::Applier::Options f1o, f2o;
  f1o.metric_prefix = "repl.bench.f1";
  f2o.metric_prefix = "repl.bench.f2";
  auto f1 = repl::Applier::open(f1_dir, f1o);
  auto f2 = repl::Applier::open(f2_dir, f2o);
  if (!f1 || !f2) die("cannot open tcp followers");
  {
    const Clock::time_point t0 = Clock::now();
    auto c1 = repl::ShipClient::start(*f1, ship->port());
    auto c2 = repl::ShipClient::start(*f2, ship->port());
    require_converged("tcp bootstrap", leader_dir, *f1, f1_dir, 60000);
    require_converged("tcp bootstrap", leader_dir, *f2, f2_dir, 60000);
    const double secs = secs_since(t0);
    table.add_row({"tcp bootstrap x2", std::to_string(secs).substr(0, 6),
                   fmt(static_cast<double>(2 * n) / secs),
                   fmt(2 * mb / secs)});
    json.number("tcp_bootstrap_s", secs);

    // --- tcp live tail: write burst while both followers stream ----------
    const std::size_t burst = n / 4;
    const Clock::time_point t1 = Clock::now();
    for (std::size_t i = 0; i < burst; ++i) leader->append(record(n + i));
    if (!leader->sync()) die("leader sync failed");
    require_converged("tcp live tail", leader_dir, *f1, f1_dir, 60000);
    require_converged("tcp live tail", leader_dir, *f2, f2_dir, 60000);
    const double tail_secs = secs_since(t1);
    table.add_row({"tcp live tail x2", std::to_string(tail_secs).substr(0, 6),
                   fmt(static_cast<double>(2 * burst) / tail_secs), "-"});
    json.number("tcp_live_tail_s", tail_secs);

    // --- compaction mid-stream: followers adopt the snapshot --------------
    const Clock::time_point t2 = Clock::now();
    if (!leader->compact()) die("leader compact failed");
    leader->append(record(0));
    if (!leader->sync()) die("leader sync failed");
    require_converged("compaction", leader_dir, *f1, f1_dir, 60000);
    require_converged("compaction", leader_dir, *f2, f2_dir, 60000);
    const double comp_secs = secs_since(t2);
    if (f1->position().generation != leader->wal_generation())
      die("follower did not adopt the post-compaction generation");
    table.add_row({"compaction adopt x2",
                   std::to_string(comp_secs).substr(0, 6), "-", "-"});
    json.number("compaction_adopt_s", comp_secs);
    json.boolean("zero_divergence", true);
  }
  ship->stop();

  std::printf("%s\n", table.render().c_str());
  std::printf("gates: converged to the leader's on-disk position, "
              "zero divergence, snapshot adopted\n");

  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    out << json.render() << "\n";
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  for (const auto* d : {&leader_dir, &pipe_dir, &f1_dir, &f2_dir})
    fs::remove_all(*d);
  return 0;
}
