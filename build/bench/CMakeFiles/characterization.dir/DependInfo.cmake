
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/characterization.cpp" "bench/CMakeFiles/characterization.dir/characterization.cpp.o" "gcc" "bench/CMakeFiles/characterization.dir/characterization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/controller/CMakeFiles/ilc_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/ilc_search.dir/DependInfo.cmake"
  "/root/repo/build/src/dynopt/CMakeFiles/ilc_dynopt.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ilc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/ilc_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ilc_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/ilc_features.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ilc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ilc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ilc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ilc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ilc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
