file(REMOVE_RECURSE
  "CMakeFiles/pass_interactions.dir/pass_interactions.cpp.o"
  "CMakeFiles/pass_interactions.dir/pass_interactions.cpp.o.d"
  "pass_interactions"
  "pass_interactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pass_interactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
