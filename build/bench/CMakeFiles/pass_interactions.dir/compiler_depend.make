# Empty compiler generated dependencies file for pass_interactions.
# This may be replaced when dependencies are built.
