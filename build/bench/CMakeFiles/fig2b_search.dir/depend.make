# Empty dependencies file for fig2b_search.
# This may be replaced when dependencies are built.
