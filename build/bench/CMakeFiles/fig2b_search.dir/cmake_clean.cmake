file(REMOVE_RECURSE
  "CMakeFiles/fig2b_search.dir/fig2b_search.cpp.o"
  "CMakeFiles/fig2b_search.dir/fig2b_search.cpp.o.d"
  "fig2b_search"
  "fig2b_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
