# Empty compiler generated dependencies file for dynopt_auditing.
# This may be replaced when dependencies are built.
