file(REMOVE_RECURSE
  "CMakeFiles/dynopt_auditing.dir/dynopt_auditing.cpp.o"
  "CMakeFiles/dynopt_auditing.dir/dynopt_auditing.cpp.o.d"
  "dynopt_auditing"
  "dynopt_auditing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynopt_auditing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
