file(REMOVE_RECURSE
  "CMakeFiles/fig4_pcmodel.dir/fig4_pcmodel.cpp.o"
  "CMakeFiles/fig4_pcmodel.dir/fig4_pcmodel.cpp.o.d"
  "fig4_pcmodel"
  "fig4_pcmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pcmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
