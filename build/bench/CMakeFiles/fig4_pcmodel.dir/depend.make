# Empty dependencies file for fig4_pcmodel.
# This may be replaced when dependencies are built.
