file(REMOVE_RECURSE
  "CMakeFiles/fig3_counters.dir/fig3_counters.cpp.o"
  "CMakeFiles/fig3_counters.dir/fig3_counters.cpp.o.d"
  "fig3_counters"
  "fig3_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
