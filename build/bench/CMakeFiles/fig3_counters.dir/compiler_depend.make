# Empty compiler generated dependencies file for fig3_counters.
# This may be replaced when dependencies are built.
