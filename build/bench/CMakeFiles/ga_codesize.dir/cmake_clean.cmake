file(REMOVE_RECURSE
  "CMakeFiles/ga_codesize.dir/ga_codesize.cpp.o"
  "CMakeFiles/ga_codesize.dir/ga_codesize.cpp.o.d"
  "ga_codesize"
  "ga_codesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ga_codesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
