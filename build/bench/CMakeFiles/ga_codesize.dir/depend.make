# Empty dependencies file for ga_codesize.
# This may be replaced when dependencies are built.
