file(REMOVE_RECURSE
  "CMakeFiles/fig2a_space.dir/fig2a_space.cpp.o"
  "CMakeFiles/fig2a_space.dir/fig2a_space.cpp.o.d"
  "fig2a_space"
  "fig2a_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
