# Empty dependencies file for fig2a_space.
# This may be replaced when dependencies are built.
