file(REMOVE_RECURSE
  "CMakeFiles/sched_heuristic.dir/sched_heuristic.cpp.o"
  "CMakeFiles/sched_heuristic.dir/sched_heuristic.cpp.o.d"
  "sched_heuristic"
  "sched_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
