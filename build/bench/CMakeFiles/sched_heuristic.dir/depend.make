# Empty dependencies file for sched_heuristic.
# This may be replaced when dependencies are built.
