# Empty dependencies file for unroll_factors.
# This may be replaced when dependencies are built.
