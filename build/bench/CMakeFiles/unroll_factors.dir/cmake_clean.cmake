file(REMOVE_RECURSE
  "CMakeFiles/unroll_factors.dir/unroll_factors.cpp.o"
  "CMakeFiles/unroll_factors.dir/unroll_factors.cpp.o.d"
  "unroll_factors"
  "unroll_factors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unroll_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
