file(REMOVE_RECURSE
  "CMakeFiles/dynamic_reopt.dir/dynamic_reopt.cpp.o"
  "CMakeFiles/dynamic_reopt.dir/dynamic_reopt.cpp.o.d"
  "dynamic_reopt"
  "dynamic_reopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_reopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
