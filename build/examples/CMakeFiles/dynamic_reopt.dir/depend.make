# Empty dependencies file for dynamic_reopt.
# This may be replaced when dependencies are built.
