file(REMOVE_RECURSE
  "CMakeFiles/counter_guided.dir/counter_guided.cpp.o"
  "CMakeFiles/counter_guided.dir/counter_guided.cpp.o.d"
  "counter_guided"
  "counter_guided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counter_guided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
