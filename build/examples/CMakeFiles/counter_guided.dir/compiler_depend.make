# Empty compiler generated dependencies file for counter_guided.
# This may be replaced when dependencies are built.
