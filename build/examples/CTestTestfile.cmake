# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_autotune "/root/repo/build/examples/autotune" "fir" "8")
set_tests_properties(example_autotune PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_counter_guided "/root/repo/build/examples/counter_guided" "crc32")
set_tests_properties(example_counter_guided PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dynamic_reopt "/root/repo/build/examples/dynamic_reopt")
set_tests_properties(example_dynamic_reopt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kb_tool_build "/root/repo/build/examples/kb_tool" "build" "kb_smoke.kb" "8")
set_tests_properties(example_kb_tool_build PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kb_tool_summary "/root/repo/build/examples/kb_tool" "summary" "kb_smoke.kb")
set_tests_properties(example_kb_tool_summary PROPERTIES  DEPENDS "example_kb_tool_build" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
