# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_features[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_kb[1]_include.cmake")
include("/root/repo/build/tests/test_search[1]_include.cmake")
include("/root/repo/build/tests/test_controller[1]_include.cmake")
include("/root/repo/build/tests/test_dynopt[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_loop_learning[1]_include.cmake")
include("/root/repo/build/tests/test_regress[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_edge_cases[1]_include.cmake")
