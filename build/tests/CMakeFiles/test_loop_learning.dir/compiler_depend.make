# Empty compiler generated dependencies file for test_loop_learning.
# This may be replaced when dependencies are built.
