file(REMOVE_RECURSE
  "CMakeFiles/test_loop_learning.dir/test_loop_learning.cpp.o"
  "CMakeFiles/test_loop_learning.dir/test_loop_learning.cpp.o.d"
  "test_loop_learning"
  "test_loop_learning.pdb"
  "test_loop_learning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loop_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
