file(REMOVE_RECURSE
  "CMakeFiles/test_dynopt.dir/test_dynopt.cpp.o"
  "CMakeFiles/test_dynopt.dir/test_dynopt.cpp.o.d"
  "test_dynopt"
  "test_dynopt.pdb"
  "test_dynopt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
