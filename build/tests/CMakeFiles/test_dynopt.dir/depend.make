# Empty dependencies file for test_dynopt.
# This may be replaced when dependencies are built.
