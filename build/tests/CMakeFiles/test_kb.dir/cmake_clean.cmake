file(REMOVE_RECURSE
  "CMakeFiles/test_kb.dir/test_kb.cpp.o"
  "CMakeFiles/test_kb.dir/test_kb.cpp.o.d"
  "test_kb"
  "test_kb.pdb"
  "test_kb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
