# Empty compiler generated dependencies file for ilc_kb.
# This may be replaced when dependencies are built.
