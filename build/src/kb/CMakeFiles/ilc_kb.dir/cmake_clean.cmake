file(REMOVE_RECURSE
  "CMakeFiles/ilc_kb.dir/knowledge_base.cpp.o"
  "CMakeFiles/ilc_kb.dir/knowledge_base.cpp.o.d"
  "libilc_kb.a"
  "libilc_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilc_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
