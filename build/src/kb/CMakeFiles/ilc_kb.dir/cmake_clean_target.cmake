file(REMOVE_RECURSE
  "libilc_kb.a"
)
