# Empty compiler generated dependencies file for ilc_support.
# This may be replaced when dependencies are built.
