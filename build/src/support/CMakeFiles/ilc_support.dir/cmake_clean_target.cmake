file(REMOVE_RECURSE
  "libilc_support.a"
)
