file(REMOVE_RECURSE
  "CMakeFiles/ilc_support.dir/csv.cpp.o"
  "CMakeFiles/ilc_support.dir/csv.cpp.o.d"
  "CMakeFiles/ilc_support.dir/string_utils.cpp.o"
  "CMakeFiles/ilc_support.dir/string_utils.cpp.o.d"
  "CMakeFiles/ilc_support.dir/table.cpp.o"
  "CMakeFiles/ilc_support.dir/table.cpp.o.d"
  "CMakeFiles/ilc_support.dir/thread_pool.cpp.o"
  "CMakeFiles/ilc_support.dir/thread_pool.cpp.o.d"
  "libilc_support.a"
  "libilc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
