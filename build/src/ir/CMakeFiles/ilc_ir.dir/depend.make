# Empty dependencies file for ilc_ir.
# This may be replaced when dependencies are built.
