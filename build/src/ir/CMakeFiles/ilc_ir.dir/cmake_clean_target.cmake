file(REMOVE_RECURSE
  "libilc_ir.a"
)
