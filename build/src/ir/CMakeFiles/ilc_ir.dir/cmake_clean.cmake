file(REMOVE_RECURSE
  "CMakeFiles/ilc_ir.dir/analysis.cpp.o"
  "CMakeFiles/ilc_ir.dir/analysis.cpp.o.d"
  "CMakeFiles/ilc_ir.dir/builder.cpp.o"
  "CMakeFiles/ilc_ir.dir/builder.cpp.o.d"
  "CMakeFiles/ilc_ir.dir/fingerprint.cpp.o"
  "CMakeFiles/ilc_ir.dir/fingerprint.cpp.o.d"
  "CMakeFiles/ilc_ir.dir/function.cpp.o"
  "CMakeFiles/ilc_ir.dir/function.cpp.o.d"
  "CMakeFiles/ilc_ir.dir/instruction.cpp.o"
  "CMakeFiles/ilc_ir.dir/instruction.cpp.o.d"
  "CMakeFiles/ilc_ir.dir/module.cpp.o"
  "CMakeFiles/ilc_ir.dir/module.cpp.o.d"
  "CMakeFiles/ilc_ir.dir/parser.cpp.o"
  "CMakeFiles/ilc_ir.dir/parser.cpp.o.d"
  "CMakeFiles/ilc_ir.dir/printer.cpp.o"
  "CMakeFiles/ilc_ir.dir/printer.cpp.o.d"
  "CMakeFiles/ilc_ir.dir/verifier.cpp.o"
  "CMakeFiles/ilc_ir.dir/verifier.cpp.o.d"
  "libilc_ir.a"
  "libilc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
