file(REMOVE_RECURSE
  "libilc_sim.a"
)
