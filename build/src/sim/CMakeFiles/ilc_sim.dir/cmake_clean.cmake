file(REMOVE_RECURSE
  "CMakeFiles/ilc_sim.dir/branch_predictor.cpp.o"
  "CMakeFiles/ilc_sim.dir/branch_predictor.cpp.o.d"
  "CMakeFiles/ilc_sim.dir/cache.cpp.o"
  "CMakeFiles/ilc_sim.dir/cache.cpp.o.d"
  "CMakeFiles/ilc_sim.dir/counters.cpp.o"
  "CMakeFiles/ilc_sim.dir/counters.cpp.o.d"
  "CMakeFiles/ilc_sim.dir/interpreter.cpp.o"
  "CMakeFiles/ilc_sim.dir/interpreter.cpp.o.d"
  "CMakeFiles/ilc_sim.dir/machine.cpp.o"
  "CMakeFiles/ilc_sim.dir/machine.cpp.o.d"
  "libilc_sim.a"
  "libilc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
