# Empty compiler generated dependencies file for ilc_sim.
# This may be replaced when dependencies are built.
