file(REMOVE_RECURSE
  "libilc_workloads.a"
)
