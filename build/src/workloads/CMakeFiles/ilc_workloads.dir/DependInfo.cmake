
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/adpcm.cpp" "src/workloads/CMakeFiles/ilc_workloads.dir/adpcm.cpp.o" "gcc" "src/workloads/CMakeFiles/ilc_workloads.dir/adpcm.cpp.o.d"
  "/root/repo/src/workloads/bitcount.cpp" "src/workloads/CMakeFiles/ilc_workloads.dir/bitcount.cpp.o" "gcc" "src/workloads/CMakeFiles/ilc_workloads.dir/bitcount.cpp.o.d"
  "/root/repo/src/workloads/crc32.cpp" "src/workloads/CMakeFiles/ilc_workloads.dir/crc32.cpp.o" "gcc" "src/workloads/CMakeFiles/ilc_workloads.dir/crc32.cpp.o.d"
  "/root/repo/src/workloads/dijkstra.cpp" "src/workloads/CMakeFiles/ilc_workloads.dir/dijkstra.cpp.o" "gcc" "src/workloads/CMakeFiles/ilc_workloads.dir/dijkstra.cpp.o.d"
  "/root/repo/src/workloads/dotprod.cpp" "src/workloads/CMakeFiles/ilc_workloads.dir/dotprod.cpp.o" "gcc" "src/workloads/CMakeFiles/ilc_workloads.dir/dotprod.cpp.o.d"
  "/root/repo/src/workloads/fir.cpp" "src/workloads/CMakeFiles/ilc_workloads.dir/fir.cpp.o" "gcc" "src/workloads/CMakeFiles/ilc_workloads.dir/fir.cpp.o.d"
  "/root/repo/src/workloads/histogram.cpp" "src/workloads/CMakeFiles/ilc_workloads.dir/histogram.cpp.o" "gcc" "src/workloads/CMakeFiles/ilc_workloads.dir/histogram.cpp.o.d"
  "/root/repo/src/workloads/linklist.cpp" "src/workloads/CMakeFiles/ilc_workloads.dir/linklist.cpp.o" "gcc" "src/workloads/CMakeFiles/ilc_workloads.dir/linklist.cpp.o.d"
  "/root/repo/src/workloads/matmul.cpp" "src/workloads/CMakeFiles/ilc_workloads.dir/matmul.cpp.o" "gcc" "src/workloads/CMakeFiles/ilc_workloads.dir/matmul.cpp.o.d"
  "/root/repo/src/workloads/mcf_lite.cpp" "src/workloads/CMakeFiles/ilc_workloads.dir/mcf_lite.cpp.o" "gcc" "src/workloads/CMakeFiles/ilc_workloads.dir/mcf_lite.cpp.o.d"
  "/root/repo/src/workloads/phased_mix.cpp" "src/workloads/CMakeFiles/ilc_workloads.dir/phased_mix.cpp.o" "gcc" "src/workloads/CMakeFiles/ilc_workloads.dir/phased_mix.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/ilc_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/ilc_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/rle.cpp" "src/workloads/CMakeFiles/ilc_workloads.dir/rle.cpp.o" "gcc" "src/workloads/CMakeFiles/ilc_workloads.dir/rle.cpp.o.d"
  "/root/repo/src/workloads/sha_lite.cpp" "src/workloads/CMakeFiles/ilc_workloads.dir/sha_lite.cpp.o" "gcc" "src/workloads/CMakeFiles/ilc_workloads.dir/sha_lite.cpp.o.d"
  "/root/repo/src/workloads/shellsort.cpp" "src/workloads/CMakeFiles/ilc_workloads.dir/shellsort.cpp.o" "gcc" "src/workloads/CMakeFiles/ilc_workloads.dir/shellsort.cpp.o.d"
  "/root/repo/src/workloads/stencil.cpp" "src/workloads/CMakeFiles/ilc_workloads.dir/stencil.cpp.o" "gcc" "src/workloads/CMakeFiles/ilc_workloads.dir/stencil.cpp.o.d"
  "/root/repo/src/workloads/strsearch.cpp" "src/workloads/CMakeFiles/ilc_workloads.dir/strsearch.cpp.o" "gcc" "src/workloads/CMakeFiles/ilc_workloads.dir/strsearch.cpp.o.d"
  "/root/repo/src/workloads/treewalk.cpp" "src/workloads/CMakeFiles/ilc_workloads.dir/treewalk.cpp.o" "gcc" "src/workloads/CMakeFiles/ilc_workloads.dir/treewalk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ilc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ilc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
