# Empty compiler generated dependencies file for ilc_workloads.
# This may be replaced when dependencies are built.
