# Empty dependencies file for ilc_sched.
# This may be replaced when dependencies are built.
