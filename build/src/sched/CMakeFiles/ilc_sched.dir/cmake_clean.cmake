file(REMOVE_RECURSE
  "CMakeFiles/ilc_sched.dir/instances.cpp.o"
  "CMakeFiles/ilc_sched.dir/instances.cpp.o.d"
  "CMakeFiles/ilc_sched.dir/learned_scheduler.cpp.o"
  "CMakeFiles/ilc_sched.dir/learned_scheduler.cpp.o.d"
  "libilc_sched.a"
  "libilc_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilc_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
