file(REMOVE_RECURSE
  "libilc_sched.a"
)
