
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/instances.cpp" "src/sched/CMakeFiles/ilc_sched.dir/instances.cpp.o" "gcc" "src/sched/CMakeFiles/ilc_sched.dir/instances.cpp.o.d"
  "/root/repo/src/sched/learned_scheduler.cpp" "src/sched/CMakeFiles/ilc_sched.dir/learned_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/ilc_sched.dir/learned_scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opt/CMakeFiles/ilc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ilc_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ilc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ilc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
