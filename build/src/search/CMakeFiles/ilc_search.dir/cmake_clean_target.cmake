file(REMOVE_RECURSE
  "libilc_search.a"
)
