file(REMOVE_RECURSE
  "CMakeFiles/ilc_search.dir/evaluator.cpp.o"
  "CMakeFiles/ilc_search.dir/evaluator.cpp.o.d"
  "CMakeFiles/ilc_search.dir/focused.cpp.o"
  "CMakeFiles/ilc_search.dir/focused.cpp.o.d"
  "CMakeFiles/ilc_search.dir/genetic.cpp.o"
  "CMakeFiles/ilc_search.dir/genetic.cpp.o.d"
  "CMakeFiles/ilc_search.dir/space.cpp.o"
  "CMakeFiles/ilc_search.dir/space.cpp.o.d"
  "CMakeFiles/ilc_search.dir/strategies.cpp.o"
  "CMakeFiles/ilc_search.dir/strategies.cpp.o.d"
  "libilc_search.a"
  "libilc_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilc_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
