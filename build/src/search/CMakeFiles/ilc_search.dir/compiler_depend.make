# Empty compiler generated dependencies file for ilc_search.
# This may be replaced when dependencies are built.
