file(REMOVE_RECURSE
  "libilc_opt.a"
)
