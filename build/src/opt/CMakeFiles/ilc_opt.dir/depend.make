# Empty dependencies file for ilc_opt.
# This may be replaced when dependencies are built.
