file(REMOVE_RECURSE
  "CMakeFiles/ilc_opt.dir/cfg_simplify.cpp.o"
  "CMakeFiles/ilc_opt.dir/cfg_simplify.cpp.o.d"
  "CMakeFiles/ilc_opt.dir/inline.cpp.o"
  "CMakeFiles/ilc_opt.dir/inline.cpp.o.d"
  "CMakeFiles/ilc_opt.dir/loop_opts.cpp.o"
  "CMakeFiles/ilc_opt.dir/loop_opts.cpp.o.d"
  "CMakeFiles/ilc_opt.dir/memory_opts.cpp.o"
  "CMakeFiles/ilc_opt.dir/memory_opts.cpp.o.d"
  "CMakeFiles/ilc_opt.dir/pass.cpp.o"
  "CMakeFiles/ilc_opt.dir/pass.cpp.o.d"
  "CMakeFiles/ilc_opt.dir/pipelines.cpp.o"
  "CMakeFiles/ilc_opt.dir/pipelines.cpp.o.d"
  "CMakeFiles/ilc_opt.dir/reassociate.cpp.o"
  "CMakeFiles/ilc_opt.dir/reassociate.cpp.o.d"
  "CMakeFiles/ilc_opt.dir/scalar.cpp.o"
  "CMakeFiles/ilc_opt.dir/scalar.cpp.o.d"
  "CMakeFiles/ilc_opt.dir/schedule.cpp.o"
  "CMakeFiles/ilc_opt.dir/schedule.cpp.o.d"
  "libilc_opt.a"
  "libilc_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilc_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
