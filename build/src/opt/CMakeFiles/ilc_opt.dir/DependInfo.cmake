
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/cfg_simplify.cpp" "src/opt/CMakeFiles/ilc_opt.dir/cfg_simplify.cpp.o" "gcc" "src/opt/CMakeFiles/ilc_opt.dir/cfg_simplify.cpp.o.d"
  "/root/repo/src/opt/inline.cpp" "src/opt/CMakeFiles/ilc_opt.dir/inline.cpp.o" "gcc" "src/opt/CMakeFiles/ilc_opt.dir/inline.cpp.o.d"
  "/root/repo/src/opt/loop_opts.cpp" "src/opt/CMakeFiles/ilc_opt.dir/loop_opts.cpp.o" "gcc" "src/opt/CMakeFiles/ilc_opt.dir/loop_opts.cpp.o.d"
  "/root/repo/src/opt/memory_opts.cpp" "src/opt/CMakeFiles/ilc_opt.dir/memory_opts.cpp.o" "gcc" "src/opt/CMakeFiles/ilc_opt.dir/memory_opts.cpp.o.d"
  "/root/repo/src/opt/pass.cpp" "src/opt/CMakeFiles/ilc_opt.dir/pass.cpp.o" "gcc" "src/opt/CMakeFiles/ilc_opt.dir/pass.cpp.o.d"
  "/root/repo/src/opt/pipelines.cpp" "src/opt/CMakeFiles/ilc_opt.dir/pipelines.cpp.o" "gcc" "src/opt/CMakeFiles/ilc_opt.dir/pipelines.cpp.o.d"
  "/root/repo/src/opt/reassociate.cpp" "src/opt/CMakeFiles/ilc_opt.dir/reassociate.cpp.o" "gcc" "src/opt/CMakeFiles/ilc_opt.dir/reassociate.cpp.o.d"
  "/root/repo/src/opt/scalar.cpp" "src/opt/CMakeFiles/ilc_opt.dir/scalar.cpp.o" "gcc" "src/opt/CMakeFiles/ilc_opt.dir/scalar.cpp.o.d"
  "/root/repo/src/opt/schedule.cpp" "src/opt/CMakeFiles/ilc_opt.dir/schedule.cpp.o" "gcc" "src/opt/CMakeFiles/ilc_opt.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ilc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ilc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
