file(REMOVE_RECURSE
  "libilc_controller.a"
)
