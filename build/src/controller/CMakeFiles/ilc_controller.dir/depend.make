# Empty dependencies file for ilc_controller.
# This may be replaced when dependencies are built.
