file(REMOVE_RECURSE
  "CMakeFiles/ilc_controller.dir/controller.cpp.o"
  "CMakeFiles/ilc_controller.dir/controller.cpp.o.d"
  "CMakeFiles/ilc_controller.dir/kb_builder.cpp.o"
  "CMakeFiles/ilc_controller.dir/kb_builder.cpp.o.d"
  "libilc_controller.a"
  "libilc_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilc_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
