# Empty compiler generated dependencies file for ilc_dynopt.
# This may be replaced when dependencies are built.
