file(REMOVE_RECURSE
  "libilc_dynopt.a"
)
