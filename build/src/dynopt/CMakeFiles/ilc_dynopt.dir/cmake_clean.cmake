file(REMOVE_RECURSE
  "CMakeFiles/ilc_dynopt.dir/dynamic_optimizer.cpp.o"
  "CMakeFiles/ilc_dynopt.dir/dynamic_optimizer.cpp.o.d"
  "CMakeFiles/ilc_dynopt.dir/phase_detector.cpp.o"
  "CMakeFiles/ilc_dynopt.dir/phase_detector.cpp.o.d"
  "libilc_dynopt.a"
  "libilc_dynopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilc_dynopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
