file(REMOVE_RECURSE
  "libilc_features.a"
)
