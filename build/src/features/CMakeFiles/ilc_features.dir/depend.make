# Empty dependencies file for ilc_features.
# This may be replaced when dependencies are built.
