
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/arch_probe.cpp" "src/features/CMakeFiles/ilc_features.dir/arch_probe.cpp.o" "gcc" "src/features/CMakeFiles/ilc_features.dir/arch_probe.cpp.o.d"
  "/root/repo/src/features/dynamic_features.cpp" "src/features/CMakeFiles/ilc_features.dir/dynamic_features.cpp.o" "gcc" "src/features/CMakeFiles/ilc_features.dir/dynamic_features.cpp.o.d"
  "/root/repo/src/features/loop_features.cpp" "src/features/CMakeFiles/ilc_features.dir/loop_features.cpp.o" "gcc" "src/features/CMakeFiles/ilc_features.dir/loop_features.cpp.o.d"
  "/root/repo/src/features/mutual_info.cpp" "src/features/CMakeFiles/ilc_features.dir/mutual_info.cpp.o" "gcc" "src/features/CMakeFiles/ilc_features.dir/mutual_info.cpp.o.d"
  "/root/repo/src/features/static_features.cpp" "src/features/CMakeFiles/ilc_features.dir/static_features.cpp.o" "gcc" "src/features/CMakeFiles/ilc_features.dir/static_features.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ilc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ilc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ilc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
