file(REMOVE_RECURSE
  "CMakeFiles/ilc_features.dir/arch_probe.cpp.o"
  "CMakeFiles/ilc_features.dir/arch_probe.cpp.o.d"
  "CMakeFiles/ilc_features.dir/dynamic_features.cpp.o"
  "CMakeFiles/ilc_features.dir/dynamic_features.cpp.o.d"
  "CMakeFiles/ilc_features.dir/loop_features.cpp.o"
  "CMakeFiles/ilc_features.dir/loop_features.cpp.o.d"
  "CMakeFiles/ilc_features.dir/mutual_info.cpp.o"
  "CMakeFiles/ilc_features.dir/mutual_info.cpp.o.d"
  "CMakeFiles/ilc_features.dir/static_features.cpp.o"
  "CMakeFiles/ilc_features.dir/static_features.cpp.o.d"
  "libilc_features.a"
  "libilc_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilc_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
