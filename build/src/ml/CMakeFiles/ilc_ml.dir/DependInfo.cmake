
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/ilc_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/ilc_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/ilc_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/ilc_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/ilc_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/ilc_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/logistic.cpp" "src/ml/CMakeFiles/ilc_ml.dir/logistic.cpp.o" "gcc" "src/ml/CMakeFiles/ilc_ml.dir/logistic.cpp.o.d"
  "/root/repo/src/ml/naive_bayes.cpp" "src/ml/CMakeFiles/ilc_ml.dir/naive_bayes.cpp.o" "gcc" "src/ml/CMakeFiles/ilc_ml.dir/naive_bayes.cpp.o.d"
  "/root/repo/src/ml/regress.cpp" "src/ml/CMakeFiles/ilc_ml.dir/regress.cpp.o" "gcc" "src/ml/CMakeFiles/ilc_ml.dir/regress.cpp.o.d"
  "/root/repo/src/ml/validation.cpp" "src/ml/CMakeFiles/ilc_ml.dir/validation.cpp.o" "gcc" "src/ml/CMakeFiles/ilc_ml.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ilc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
