file(REMOVE_RECURSE
  "libilc_ml.a"
)
