# Empty compiler generated dependencies file for ilc_ml.
# This may be replaced when dependencies are built.
