file(REMOVE_RECURSE
  "CMakeFiles/ilc_ml.dir/dataset.cpp.o"
  "CMakeFiles/ilc_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/ilc_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/ilc_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/ilc_ml.dir/knn.cpp.o"
  "CMakeFiles/ilc_ml.dir/knn.cpp.o.d"
  "CMakeFiles/ilc_ml.dir/logistic.cpp.o"
  "CMakeFiles/ilc_ml.dir/logistic.cpp.o.d"
  "CMakeFiles/ilc_ml.dir/naive_bayes.cpp.o"
  "CMakeFiles/ilc_ml.dir/naive_bayes.cpp.o.d"
  "CMakeFiles/ilc_ml.dir/regress.cpp.o"
  "CMakeFiles/ilc_ml.dir/regress.cpp.o.d"
  "CMakeFiles/ilc_ml.dir/validation.cpp.o"
  "CMakeFiles/ilc_ml.dir/validation.cpp.o.d"
  "libilc_ml.a"
  "libilc_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ilc_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
