// Dynamic re-optimization demo (Section III-D): a phased workload runs
// under the dynamic optimization module — multi-versioned code, runtime
// counter monitoring, phase detection, online performance auditing — and
// the per-item version choices are printed as a timeline.
//
//   $ ./dynamic_reopt
#include <cstdio>

#include "dynopt/dynopt.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

int main() {
  wl::Workload w = wl::make_workload("phased_mix");
  auto versions = dyn::default_versions(w.module);
  std::printf("Code versions carried in the binary:\n");
  for (std::size_t v = 0; v < versions.size(); ++v)
    std::printf("  [%zu] %-15s (%zu instructions)\n", v,
                versions[v].name.c_str(), versions[v].module.code_size());

  dyn::DynamicOptimizer opt(std::move(versions), sim::amd_like());
  const dyn::KernelSpec spec{w.kernel, w.kernel_setup, w.kernel_items};

  const auto audited = opt.run_audited(spec);
  std::printf("\nTimeline (one digit per item = version executed):\n  ");
  for (std::size_t i = 0; i < audited.version_per_item.size(); ++i) {
    std::printf("%u", audited.version_per_item[i]);
    if ((i + 1) % 16 == 0) std::printf("\n  ");
  }
  std::printf("\naudits=%u switches=%u  checksum %s\n", audited.audits,
              audited.switches,
              audited.checksum == w.kernel_checksum ? "OK" : "MISMATCH");

  std::printf("\nCycles:\n");
  for (unsigned v = 0; v < opt.versions().size(); ++v) {
    const auto rep = opt.run_static(spec, v);
    std::printf("  static %-15s %12llu\n", opt.versions()[v].name.c_str(),
                static_cast<unsigned long long>(rep.total_cycles));
  }
  std::printf("  audited dynamic      %12llu\n",
              static_cast<unsigned long long>(audited.total_cycles));
  return audited.checksum == w.kernel_checksum ? 0 : 1;
}
