// tuning_server — drive svc::TuningService over the line protocol from
// stdin or a scripted request file. The persistent serving mode of the
// intelligent compiler: results accumulate in the knowledge base across
// invocations, so re-running a script answers instantly from the KB.
//
//   $ ./tuning_server --kb my.kb --script requests.txt
//   $ echo "tune fir budget=10" | ./tuning_server --kb my.kb
//
// Tune commands are submitted asynchronously as they are read; responses
// are printed in submission order at the next synchronization point
// (metrics / save / quit / EOF), so a script full of tunes exercises the
// scheduler's full concurrency.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"
#include "support/failpoint.hpp"
#include "svc/protocol.hpp"
#include "svc/service.hpp"

using namespace ilc;

namespace {

struct PendingTune {
  std::shared_future<svc::TuningResponse> future;
};

void flush_pending(std::vector<PendingTune>& pending) {
  for (auto& p : pending)
    std::printf("%s\n", svc::format_response(p.future.get()).c_str());
  pending.clear();
  std::fflush(stdout);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workers N] [--queue-depth N] [--kb path] "
               "[--script file|-] [--trace out.json] [--failpoints spec]\n"
               "  --queue-depth N   bounded admission: max queued jobs "
               "(0 = unbounded; overload sheds/rejects)\n"
               "  --failpoints spec fault injection, e.g. "
               "\"svc.persist=error*3\" (also via ILC_FAILPOINTS)\n",
               argv0);
  return 2;
}

/// When --trace was given, drain every recorded span to `path` as Chrome
/// trace_event JSON on exit (constructed before the service so the trace
/// survives even an early return).
struct TraceDump {
  std::string path;
  ~TraceDump() {
    if (path.empty()) return;
    const std::string trace = obs::Tracer::drain_chrome_trace();
    if (std::FILE* f = std::fopen(path.c_str(), "wb")) {
      std::fwrite(trace.data(), 1, trace.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", path.c_str());
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  svc::TuningService::Options opts;
  std::string script = "-";
  TraceDump trace_dump;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--workers") && i + 1 < argc) {
      opts.workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--queue-depth") && i + 1 < argc) {
      opts.max_queue = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--failpoints") && i + 1 < argc) {
      if (!ilc::support::Failpoints::instance().configure(argv[++i])) {
        std::fprintf(stderr, "bad --failpoints spec\n");
        return usage(argv[0]);
      }
    } else if (!std::strcmp(argv[i], "--kb") && i + 1 < argc) {
      opts.kb_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--script") && i + 1 < argc) {
      script = argv[++i];
    } else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc) {
      trace_dump.path = argv[++i];
      obs::Tracer::set_enabled(true);
    } else {
      return usage(argv[0]);
    }
  }

  std::ifstream file;
  if (script != "-") {
    file.open(script);
    if (!file) {
      std::fprintf(stderr, "cannot open script %s\n", script.c_str());
      return 1;
    }
  }
  std::istream& in = script == "-" ? std::cin : file;

  support::Failpoints::instance().configure_from_env();

  std::optional<svc::TuningService> service;
  try {
    service.emplace(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot start service: %s\n", e.what());
    return 1;
  }
  std::vector<PendingTune> pending;
  // Inline modules registered by `module` commands, usable by `tune`.
  std::unordered_map<std::string, std::string> modules;

  std::string line;
  while (std::getline(in, line)) {
    svc::Command cmd = svc::parse_command(line);
    switch (cmd.kind) {
      case svc::Command::Kind::Empty:
        break;
      case svc::Command::Kind::Invalid:
        flush_pending(pending);
        std::printf("err %s\n", cmd.error.c_str());
        break;
      case svc::Command::Kind::Module: {
        std::ostringstream ir;
        std::string ir_line;
        for (std::size_t i = 0; i < cmd.module_lines; ++i) {
          if (!std::getline(in, ir_line)) break;
          ir << ir_line << '\n';
        }
        modules[cmd.module_name] = ir.str();
        break;
      }
      case svc::Command::Kind::Tune: {
        auto it = modules.find(cmd.request.program);
        if (it != modules.end()) cmd.request.ir_text = it->second;
        pending.push_back({service->submit(std::move(cmd.request))});
        break;
      }
      case svc::Command::Kind::Metrics:
        flush_pending(pending);
        std::printf("%s\n", svc::format_metrics(service->metrics()).c_str());
        break;
      case svc::Command::Kind::Save: {
        flush_pending(pending);
        const bool ok = cmd.path.empty() ? service->save()
                                         : service->save_to(cmd.path);
        std::printf("%s\n", ok ? "ok saved" : "err save failed");
        break;
      }
      case svc::Command::Kind::Quit:
        flush_pending(pending);
        return 0;
    }
  }
  flush_pending(pending);
  return 0;
}
