// tuning_server — drive svc::TuningService over the line protocol from
// stdin, a scripted request file, or a TCP socket. The persistent serving
// mode of the intelligent compiler: results accumulate in the knowledge
// base across invocations, so re-running a script answers instantly from
// the KB.
//
//   $ ./tuning_server --kb my.kb --script requests.txt
//   $ echo "tune fir budget=10" | ./tuning_server --kb my.kb
//   $ ./tuning_server --kb my.kb --listen 7070   # epoll TCP front-end
//
// Sharded / replicated serving (ilc::repl):
//
//   # shard 0 of 2, leader, shipping its WAL to followers on port 7100:
//   $ ./tuning_server --kb shard0.kb --listen 7070 --shard-of 0/2 --ship 7100
//   # a read-only follower of that leader, serving replicated warm hits:
//   $ ./tuning_server --kb replica0.kb --listen 7071 --shard-of 0/2 \
//                     --follower-of 7100
//
// Tune commands are submitted asynchronously as they are read; responses
// are printed in submission order (the net::Session slot FIFO), so a
// script full of tunes exercises the scheduler's full concurrency. Both
// stdin and TCP modes run the same net::Session request-handling loop —
// only the byte transport differs. In TCP mode SIGINT/SIGTERM trigger a
// graceful shutdown: stop accepting, drain in-flight requests, flush.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "cluster/registry.hpp"
#include "net/server.hpp"
#include "net/session.hpp"
#include "obs/trace.hpp"
#include "repl/applier.hpp"
#include "repl/transport.hpp"
#include "support/failpoint.hpp"
#include "svc/cache.hpp"
#include "svc/protocol.hpp"
#include "svc/service.hpp"

using namespace ilc;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workers N] [--queue-depth N] [--kb path] "
               "[--script file|-] [--trace out.json] [--failpoints spec]\n"
               "          [--listen port] [--loops N] [--max-conns N] "
               "[--idle-timeout-ms N]\n"
               "  --queue-depth N   bounded admission: max queued jobs "
               "(0 = unbounded; overload sheds/rejects)\n"
               "  --seed-kb path    legacy-CSV KB whose sequence records "
               "build the clustered seed bank; requests opt in\n"
               "                    with seeding=on (and objective=pareto "
               "tracks the (cycles, size) front)\n"
               "  --failpoints spec fault injection, e.g. "
               "\"svc.persist=error*3\" (also via ILC_FAILPOINTS)\n"
               "  --listen port     serve the protocol over TCP on "
               "127.0.0.1:port (0 = ephemeral) instead of stdin\n"
               "  --shard-of i/N    own only fingerprints with fp %% N == i; "
               "other requests answer \"wrong shard\"\n"
               "  --ship port       leader: ship the KB's WAL to replication "
               "followers on 127.0.0.1:port (0 = ephemeral)\n"
               "  --follower-of P   follower: replicate from the leader "
               "shipping on port P (or 127.0.0.1:P) into --kb,\n"
               "                    and serve it read-only (warm hits only)\n"
               "  --registry port   also serve the cluster registry (the "
               "shard map) on 127.0.0.1:port (0 = ephemeral)\n"
               "  --join host:port  announce this node to the registry at "
               "host:port once listening (leader by default,\n"
               "                    follower with --follower-of); replaces "
               "hand-wired topology on the client side\n",
               argv0);
  return 2;
}

/// When --trace was given, drain every recorded span to `path` as Chrome
/// trace_event JSON on exit (constructed before the service so the trace
/// survives even an early return).
struct TraceDump {
  std::string path;
  ~TraceDump() {
    if (path.empty()) return;
    const std::string trace = obs::Tracer::drain_chrome_trace();
    if (std::FILE* f = std::fopen(path.c_str(), "wb")) {
      std::fwrite(trace.data(), 1, trace.size(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", path.c_str());
    }
  }
};

void print_drained(net::Session& session) {
  std::string out;
  if (session.drain_ready(out) > 0) {
    std::fwrite(out.data(), 1, out.size(), stdout);
    std::fflush(stdout);
  }
}

/// The stdin/script transport: feed lines, print responses in submission
/// order as they become ready, wait out in-flight work at EOF/quit.
int run_stdio(svc::TuningService& service, std::istream& in) {
  const std::shared_ptr<net::Session> session =
      net::Session::create(service, {});
  std::string line;
  while (std::getline(in, line)) {
    session->feed_line(line);
    if (session->quit_requested()) break;
    // A metrics/save barrier is a synchronization point in stdin mode:
    // don't read past it until everything before it has resolved.
    if (session->barrier_pending()) session->wait_all();
    print_drained(*session);
  }
  session->finish_input();
  session->wait_all();
  print_drained(*session);
  return 0;
}

/// The TCP transport: start the epoll front-end, then park until a
/// SIGINT/SIGTERM arrives and shut down gracefully. `on_listening`
/// (optional) fires once with the bound port — the --join announcement
/// hook, invoked only after the node can actually serve.
int run_tcp(svc::TuningService& service, net::ServerOptions net_opts,
            sigset_t* signals,
            const std::function<void(std::uint16_t)>& on_listening) {
  std::optional<net::Server> server;
  try {
    server.emplace(service, net_opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot listen: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "listening on 127.0.0.1:%u\n",
               static_cast<unsigned>(server->port()));
  if (on_listening) on_listening(server->port());
  int sig = 0;
  sigwait(signals, &sig);
  std::fprintf(stderr, "signal %d: draining connections...\n", sig);
  server->shutdown();
  const net::Server::Stats s = server->stats();
  std::fprintf(stderr,
               "served %llu responses over %llu connections "
               "(%llu evicted), %llu bytes in / %llu bytes out\n",
               static_cast<unsigned long long>(s.responses),
               static_cast<unsigned long long>(s.accepted),
               static_cast<unsigned long long>(s.evicted_idle +
                                               s.evicted_slow),
               static_cast<unsigned long long>(s.bytes_in),
               static_cast<unsigned long long>(s.bytes_out));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  svc::TuningService::Options opts;
  net::ServerOptions net_opts;
  bool listen_mode = false;
  bool ship_mode = false;
  std::uint16_t ship_port = 0;
  bool follower_mode = false;
  std::uint16_t leader_port = 0;
  bool registry_mode = false;
  std::uint16_t registry_port = 0;
  bool join_mode = false;
  repl::Endpoint join_ep;
  std::string script = "-";
  TraceDump trace_dump;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--workers") && i + 1 < argc) {
      opts.workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--queue-depth") && i + 1 < argc) {
      opts.max_queue = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--failpoints") && i + 1 < argc) {
      if (!ilc::support::Failpoints::instance().configure(argv[++i])) {
        std::fprintf(stderr, "bad --failpoints spec\n");
        return usage(argv[0]);
      }
    } else if (!std::strcmp(argv[i], "--kb") && i + 1 < argc) {
      opts.kb_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--seed-kb") && i + 1 < argc) {
      opts.seed_kb_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--script") && i + 1 < argc) {
      script = argv[++i];
    } else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc) {
      trace_dump.path = argv[++i];
      obs::Tracer::set_enabled(true);
    } else if (!std::strcmp(argv[i], "--listen") && i + 1 < argc) {
      listen_mode = true;
      net_opts.port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--loops") && i + 1 < argc) {
      net_opts.loops = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--max-conns") && i + 1 < argc) {
      net_opts.max_conns = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--idle-timeout-ms") && i + 1 < argc) {
      net_opts.idle_timeout_ms =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "--shard-of") && i + 1 < argc) {
      unsigned idx = 0, n = 0;
      if (std::sscanf(argv[++i], "%u/%u", &idx, &n) != 2 || n == 0 ||
          idx >= n) {
        std::fprintf(stderr, "--shard-of wants i/N with i < N\n");
        return usage(argv[0]);
      }
      opts.shard_index = idx;
      opts.shard_count = n;
    } else if (!std::strcmp(argv[i], "--ship") && i + 1 < argc) {
      ship_mode = true;
      ship_port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--follower-of") && i + 1 < argc) {
      // "PORT" or "127.0.0.1:PORT" / "localhost:PORT" — loopback only,
      // like every listener in this repo (the protocol is unauthenticated).
      follower_mode = true;
      std::string arg = argv[++i];
      if (const auto colon = arg.rfind(':'); colon != std::string::npos) {
        const std::string host = arg.substr(0, colon);
        if (host != "127.0.0.1" && host != "localhost") {
          std::fprintf(stderr, "--follower-of is loopback-only\n");
          return usage(argv[0]);
        }
        arg = arg.substr(colon + 1);
      }
      leader_port = static_cast<std::uint16_t>(std::atoi(arg.c_str()));
    } else if (!std::strcmp(argv[i], "--registry") && i + 1 < argc) {
      registry_mode = true;
      registry_port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--join") && i + 1 < argc) {
      // host:port or bare port; loopback-only like --follower-of.
      join_mode = true;
      std::string arg = argv[++i];
      std::string host = "127.0.0.1";
      if (const auto colon = arg.rfind(':'); colon != std::string::npos) {
        host = arg.substr(0, colon);
        if (host != "127.0.0.1" && host != "localhost") {
          std::fprintf(stderr, "--join is loopback-only\n");
          return usage(argv[0]);
        }
        host = "127.0.0.1";
        arg = arg.substr(colon + 1);
      }
      join_ep = {host, static_cast<std::uint16_t>(std::atoi(arg.c_str()))};
    } else {
      return usage(argv[0]);
    }
  }
  if (join_mode && !listen_mode) {
    std::fprintf(stderr, "--join requires --listen (the announced port)\n");
    return usage(argv[0]);
  }

  std::ifstream file;
  if (script != "-") {
    file.open(script);
    if (!file) {
      std::fprintf(stderr, "cannot open script %s\n", script.c_str());
      return 1;
    }
  }
  std::istream& in = script == "-" ? std::cin : file;

  support::Failpoints::instance().configure_from_env();

  // In TCP mode the shutdown signals must be blocked before any thread
  // spawns (service workers and event loops inherit the mask), so the
  // only thread that sees them is the one parked in sigwait.
  sigset_t signals;
  sigemptyset(&signals);
  if (listen_mode) {
    sigaddset(&signals, SIGINT);
    sigaddset(&signals, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &signals, nullptr);
  }

  // Follower mode: --kb names the replica directory. The Applier owns it
  // (follower stores are read-only), a ShipClient streams the leader's
  // WAL into it, and the service serves it via follower_lookup with no
  // kb_path of its own — the replicated store has exactly one writer.
  std::unique_ptr<repl::Applier> applier;
  std::unique_ptr<repl::ShipClient> ship_client;
  if (follower_mode) {
    if (ship_mode) {
      std::fprintf(stderr, "--follower-of and --ship are exclusive\n");
      return usage(argv[0]);
    }
    if (opts.kb_path.empty()) {
      std::fprintf(stderr,
                   "--follower-of requires --kb (the replica directory)\n");
      return usage(argv[0]);
    }
    applier = repl::Applier::open(opts.kb_path);
    if (!applier) {
      std::fprintf(stderr, "cannot open replica store %s\n",
                   opts.kb_path.c_str());
      return 1;
    }
    ship_client = repl::ShipClient::start(*applier, leader_port);
    opts.kb_path.clear();
    opts.read_only = true;
    opts.follower_lookup = [&a = *applier](const std::string& key,
                                           const std::string& machine) {
      return svc::ResultCache::lookup_store(a.store(), key, machine);
    };
    std::fprintf(stderr, "replicating from 127.0.0.1:%u\n",
                 static_cast<unsigned>(leader_port));
  }

  std::optional<svc::TuningService> service;
  try {
    service.emplace(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot start service: %s\n", e.what());
    return 1;
  }
  if (!opts.seed_kb_path.empty())
    std::fprintf(stderr, "seed bank: %zu programs clustered\n",
                 service->seed_bank_programs());

  // Leader mode: ship this service's KB WAL to followers. Started after
  // the service so the store directory exists before the first Hello.
  std::unique_ptr<repl::ShipServer> ship_server;
  if (ship_mode) {
    if (opts.kb_path.empty()) {
      std::fprintf(stderr, "--ship requires --kb\n");
      return usage(argv[0]);
    }
    ship_server = repl::ShipServer::start(opts.kb_path, ship_port);
    if (!ship_server) {
      std::fprintf(stderr, "cannot ship on 127.0.0.1:%u\n",
                   static_cast<unsigned>(ship_port));
      return 1;
    }
    std::fprintf(stderr, "shipping WAL on 127.0.0.1:%u\n",
                 static_cast<unsigned>(ship_server->port()));
  }

  // Registry mode: this node also serves the authoritative shard map.
  // Any node can carry it (it is just another line-protocol listener);
  // by convention it rides on shard 0's leader.
  std::unique_ptr<cluster::Registry> registry;
  std::unique_ptr<cluster::RegistryServer> registry_server;
  if (registry_mode) {
    registry = std::make_unique<cluster::Registry>(
        opts.shard_count > 0 ? opts.shard_count : 1);
    registry_server = cluster::RegistryServer::start(*registry, registry_port);
    if (!registry_server) {
      std::fprintf(stderr, "cannot serve registry on 127.0.0.1:%u\n",
                   static_cast<unsigned>(registry_port));
      return 1;
    }
    std::fprintf(stderr, "registry on 127.0.0.1:%u (%u shards)\n",
                 static_cast<unsigned>(registry_server->port()),
                 static_cast<unsigned>(opts.shard_count > 0 ? opts.shard_count
                                                            : 1));
  }

  // --join: announce to the registry once the TCP front-end is bound,
  // so the map never names an endpoint that cannot serve yet. Leaders
  // carry their ship port into the map; followers just register.
  std::function<void(std::uint16_t)> on_listening;
  if (join_mode) {
    on_listening = [&join_ep, &ship_server, shard = opts.shard_index,
                    follower_mode](std::uint16_t port) {
      cluster::RegistryClient client(join_ep);
      std::string why;
      if (!client.fetch(&why)) {
        std::fprintf(stderr, "join: cannot reach registry at %s: %s\n",
                     join_ep.to_string().c_str(), why.c_str());
        return;
      }
      const repl::Endpoint self{"127.0.0.1", port};
      const bool ok =
          follower_mode
              ? client.follow(shard, self, &why)
              : client.lead(shard, self,
                            ship_server ? ship_server->port() : 0,
                            client.epoch(), &why);
      if (ok)
        std::fprintf(stderr, "joined shard %u as %s\n",
                     static_cast<unsigned>(shard),
                     follower_mode ? "follower" : "leader");
      else
        std::fprintf(stderr, "join refused: %s\n", why.c_str());
    };
  }

  return listen_mode ? run_tcp(*service, net_opts, &signals, on_listening)
                     : run_stdio(*service, in);
}
