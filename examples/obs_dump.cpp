// obs_dump — exercise the tuning stack and dump the observability state
// it produced: the process-wide metrics registry (Prometheus text format
// by default, JSON lines with --jsonl) and, with --trace, a Chrome
// trace_event file of every recorded span (open it in chrome://tracing or
// https://ui.perfetto.dev).
//
//   $ ./obs_dump                         # run searches, print Prometheus text
//   $ ./obs_dump --jsonl                 # same, one JSON object per line
//   $ ./obs_dump --trace trace.json      # also record + write span trace
//   $ ./obs_dump --budget 32             # bigger search workload
//
// The workload is a miniature training period: a random search and a
// genetic search over two suite programs, plus a kbstore round-trip, so
// the dump shows live sim.*, search.*, and kbstore.* series.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "kb/knowledge_base.hpp"
#include "kbstore/store.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "search/evaluator.hpp"
#include "search/strategies.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

namespace {

void run_searches(const char* program, unsigned budget) {
  wl::Workload w = wl::make_workload(program);
  search::Evaluator eval(w.module, sim::amd_like());
  search::SequenceSpace space;
  support::Rng rng(2008);
  search::random_search(eval, space, rng, budget, search::Objective::Cycles,
                        /*workers=*/2);
  search::GaParams ga;
  ga.workers = 2;
  search::genetic_search(eval, space, rng, budget, search::Objective::Cycles,
                         ga);
}

void run_kbstore(unsigned records) {
  const std::string dir = "obs_dump.kbd";
  std::filesystem::remove_all(dir);
  {
    auto store = kbstore::Store::open(dir);
    if (!store) return;
    for (unsigned i = 0; i < records; ++i) {
      kb::ExperimentRecord rec;
      rec.program = "obs_demo_" + std::to_string(i % 4);
      rec.machine = "amd-like";
      rec.kind = "sequence";
      rec.config = "dce";
      rec.cycles = 1000 + i;
      store->append(std::move(rec));
    }
    store->sync();
    store->compact();
  }
  std::filesystem::remove_all(dir);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--budget N] [--jsonl] [--trace out.json]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned budget = 16;
  bool jsonl = false;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--budget") && i + 1 < argc) {
      budget = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--jsonl")) {
      jsonl = true;
    } else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }

  if (!trace_path.empty()) obs::Tracer::set_enabled(true);

  run_searches("fir", budget);
  run_searches("crc32", budget);
  run_kbstore(/*records=*/64);

  const obs::RegistrySnapshot snap = obs::Registry::instance().snapshot();
  const std::string text =
      jsonl ? obs::to_json_lines(snap) : obs::to_prometheus(snap);
  std::fputs(text.c_str(), stdout);

  if (!trace_path.empty()) {
    const std::string trace = obs::Tracer::drain_chrome_trace();
    std::FILE* f = std::fopen(trace_path.c_str(), "wb");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::fwrite(trace.data(), 1, trace.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %zu bytes of trace to %s\n", trace.size(),
                 trace_path.c_str());
  }
  return 0;
}
