// cluster_demo — a 2-shard x 2-replica fleet managing itself through the
// ilc::cluster control plane, end to end on one machine:
//
//   1. A Registry serves the shard map; every node announces itself
//      (leaders with their WAL-shipping port, followers by endpoint).
//   2. A client builds its Router straight from the registry — no
//      hand-wired --shard-of/--follower-of topology — and a
//      HealthMonitor probes all four endpoints over the line protocol.
//   3. A write burst runs through both shard leaders; followers converge
//      to byte-identical stores.
//   4. Scatter-gather fans `metrics` across the shards and merges the
//      per-shard answers.
//   5. Shard 0's leader is killed. The monitor marks it Down after the
//      debounce, the Router falls back to the read-only follower, and a
//      Promoter runs the full failover: drain, pick, promote onto a new
//      WAL generation, announce to the registry.
//   6. The client observes the epoch bump and re-points at the promoted
//      leader; the dead leader's attempt to re-announce with its stale
//      epoch is fenced.
//   7. Shard 1 dies entirely; scatter degrades to an explicit partial
//      result instead of failing or hanging.
//
// Exits non-zero when any of those observations does not hold.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/health.hpp"
#include "cluster/promote.hpp"
#include "cluster/registry.hpp"
#include "cluster/scatter.hpp"
#include "ir/fingerprint.hpp"
#include "net/server.hpp"
#include "repl/applier.hpp"
#include "repl/ship.hpp"
#include "repl/transport.hpp"
#include "svc/cache.hpp"
#include "svc/service.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

namespace {

int fail(const std::string& why) {
  std::fprintf(stderr, "cluster_demo: FAIL: %s\n", why.c_str());
  return 1;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

bool wait_caught_up(const std::string& leader_dir, const repl::Applier& a,
                    int timeout_ms) {
  const auto target = repl::ShipSource(leader_dir).position();
  if (!target) return false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const kbstore::WalPosition pos = a.position();
    if (pos.generation == target->generation && pos.seq == target->seq &&
        pos.chain_crc == target->chain_crc && a.lag() == 0)
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

/// Everything one replica owns, leader or follower. The demo is the
/// supervisor: it starts nodes, kills them, and hands the survivors to
/// the Promoter.
struct Node {
  std::string dir;
  std::optional<svc::TuningService> service;
  std::optional<net::Server> server;          // line-protocol front-end
  std::unique_ptr<repl::ShipServer> ship;     // leaders only
  std::shared_ptr<repl::Applier> applier;     // followers only
  std::unique_ptr<repl::ShipClient> shipping; // followers only

  repl::Endpoint endpoint() const {
    return {"127.0.0.1", server ? server->port() : 0};
  }
  void kill() {  // abrupt: stop serving, stop shipping, drop the service
    if (server) server->shutdown();
    server.reset();
    ship.reset();
    service.reset();
  }
};

}  // namespace

int main() {
  constexpr std::size_t kShards = 2;

  // --- registry first: the fleet's single source of topology truth -------
  cluster::Registry registry(kShards);
  auto registry_server = cluster::RegistryServer::start(registry, /*port=*/0);
  if (!registry_server) return fail("cannot start registry server");
  const repl::Endpoint registry_ep{"127.0.0.1", registry_server->port()};
  std::printf("registry on %s\n", registry_ep.to_string().c_str());

  // --- two shards, each a leader + one follower ---------------------------
  Node leaders[kShards], followers[kShards];
  cluster::RegistryClient admin(registry_ep);
  for (std::size_t s = 0; s < kShards; ++s) {
    Node& l = leaders[s];
    l.dir = fresh_dir("cluster_demo_l" + std::to_string(s));
    svc::TuningService::Options lo;
    lo.workers = 1;
    lo.kb_path = l.dir;
    lo.shard_index = s;
    lo.shard_count = kShards;
    l.service.emplace(lo);
    l.server.emplace(*l.service, net::ServerOptions{});
    l.ship = repl::ShipServer::start(l.dir, /*port=*/0);
    if (!l.ship) return fail("cannot ship shard " + std::to_string(s));

    Node& f = followers[s];
    f.dir = fresh_dir("cluster_demo_f" + std::to_string(s));
    f.applier = repl::Applier::open(f.dir);
    if (!f.applier) return fail("cannot open follower " + std::to_string(s));
    f.shipping = repl::ShipClient::start(*f.applier, l.ship->port());
    svc::TuningService::Options fo;
    fo.workers = 1;
    fo.read_only = true;
    fo.shard_index = s;
    fo.shard_count = kShards;
    fo.follower_lookup = [&a = *f.applier](const std::string& key,
                                           const std::string& machine) {
      return svc::ResultCache::lookup_store(a.store(), key, machine);
    };
    f.service.emplace(fo);
    f.server.emplace(*f.service, net::ServerOptions{});

    // Announce both roles to the registry, as the nodes themselves would
    // via tuning_server --join.
    std::string ferr;
    if (!admin.fetch(&ferr)) return fail("registry fetch: " + ferr);
    std::string why;
    if (!admin.lead(s, l.endpoint(), l.ship->port(), admin.epoch(), &why))
      return fail("lead announce: " + why);
    if (!admin.follow(s, f.endpoint(), &why))
      return fail("follow announce: " + why);
  }

  // --- write burst, routed by fingerprint ownership -----------------------
  const std::vector<wl::Workload> suite = wl::make_suite();
  std::vector<std::shared_future<svc::TuningResponse>> futures;
  for (const auto& w : suite) {
    svc::TuningRequest req;
    req.program = w.name;
    req.budget = 2;
    const std::size_t owner = ir::fingerprint(w.module) % kShards;
    futures.push_back(leaders[owner].service->submit(req));
  }
  for (auto& fut : futures) {
    const svc::TuningResponse r = fut.get();
    if (!r.ok) return fail("tune failed: " + r.error);
  }
  for (Node& l : leaders) l.service->save();  // durable + shippable
  for (std::size_t s = 0; s < kShards; ++s)
    if (!wait_caught_up(leaders[s].dir, *followers[s].applier, 30000))
      return fail("follower " + std::to_string(s) + " never caught up");
  std::printf("tuned %zu programs across %zu shards; followers caught up\n",
              futures.size(), kShards);

  // --- client: registry-built router + active health probing --------------
  cluster::RegistryClient client(registry_ep);
  if (!client.fetch()) return fail("client registry fetch");
  const std::uint64_t stale_epoch = client.epoch();  // pre-failover view
  repl::Router router(client.router_shards());

  cluster::HealthOptions ho;
  ho.probe_timeout_ms = 1000;
  ho.metric_prefix = "demo";
  cluster::HealthMonitor monitor(ho);
  for (std::size_t s = 0; s < kShards; ++s) {
    monitor.add(leaders[s].endpoint());
    monitor.add(followers[s].endpoint());
  }
  monitor.watch(&router);
  monitor.probe_all_once();
  for (const auto& [ep, h] : monitor.states())
    if (h != cluster::Health::Healthy)
      return fail("expected " + ep.to_string() + " healthy, got " +
                  cluster::to_string(h));
  std::printf("health: all %zu endpoints healthy\n", monitor.states().size());

  // --- scatter-gather across the healthy fleet ----------------------------
  cluster::ScatterOptions so;
  so.timeout_ms = 5000;
  so.metric_prefix = "demo";
  cluster::ScatterClient scatter(router, so);
  cluster::ScatterResult all = scatter.query("metrics");
  if (!all.complete()) return fail("scatter over healthy fleet was partial");
  std::printf("scatter: %s\n",
              cluster::ScatterClient::merge_metrics(all).c_str());

  // --- kill shard 0's leader ----------------------------------------------
  const repl::Endpoint dead = leaders[0].endpoint();
  const std::uint16_t dead_ship = leaders[0].ship->port();
  leaders[0].kill();
  std::printf("killed shard 0 leader %s\n", dead.to_string().c_str());
  for (int i = 0; i < ho.down_after; ++i) monitor.probe_all_once();
  if (monitor.state(dead) != cluster::Health::Down)
    return fail("dead leader not marked Down after debounce");

  // The Router (fed by the monitor) now serves shard 0 read-only.
  const auto degraded = router.route_shard(0);
  if (!degraded || !degraded->read_only ||
      degraded->endpoint != followers[0].endpoint())
    return fail("expected read-only fallback to shard 0's follower");
  cluster::ScatterResult ro = scatter.query("ping");
  if (!ro.complete() || !ro.replies[0].read_only)
    return fail("expected complete scatter with shard 0 read-only");
  std::printf("shard 0 degraded to read-only follower %s\n",
              degraded->endpoint.to_string().c_str());

  // --- automatic failover: promote the follower ---------------------------
  std::vector<cluster::Replica> survivors;
  survivors.push_back({followers[0].dir, followers[0].applier,
                       std::move(followers[0].shipping)});
  cluster::Promoter promoter;
  cluster::PromotionResult promo = promoter.failover(survivors);
  if (!promo.ok) return fail("failover: " + promo.why);
  std::printf("promoted %s onto generation %llu (fencing compaction)\n",
              followers[0].endpoint().to_string().c_str(),
              static_cast<unsigned long long>(promo.generation));

  // Announce the new leader; the registry bumps the epoch.
  if (!admin.fetch()) return fail("registry fetch");
  std::string why;
  if (!admin.lead(0, followers[0].endpoint(), promo.ship->port(),
                  admin.epoch(), &why))
    return fail("promotion announce: " + why);

  // The client sees the epoch move and rebuilds its router.
  if (!client.refresh()) return fail("client refresh");
  if (client.epoch() <= stale_epoch) return fail("epoch did not advance");
  repl::Router fresh(client.router_shards());
  const auto repointed = fresh.route_shard(0);
  if (!repointed || repointed->endpoint != followers[0].endpoint() ||
      repointed->read_only)
    return fail("client did not re-point at the promoted leader");
  std::printf("client observed epoch %llu -> %llu, re-pointed shard 0\n",
              static_cast<unsigned long long>(stale_epoch),
              static_cast<unsigned long long>(client.epoch()));

  // --- the resurrected old leader is fenced -------------------------------
  if (admin.lead(0, dead, dead_ship, stale_epoch, &why))
    return fail("stale re-announcement was accepted");
  std::printf("old leader fenced: %s\n", why.c_str());

  // --- shard 1 dies entirely: scatter degrades, explicitly ----------------
  leaders[1].kill();
  followers[1].kill();
  cluster::ScatterClient scatter2(fresh, so);
  cluster::ScatterResult partial = scatter2.query("metrics");
  if (partial.complete() || partial.responded != 1 || partial.replies[1].ok)
    return fail("expected a partial scatter with only shard 0 answering");
  std::printf("scatter (shard 1 down): %s\n",
              cluster::ScatterClient::merge_metrics(partial).c_str());

  monitor.stop();
  promo.ship.reset();
  std::printf("cluster_demo: OK\n");
  return 0;
}
