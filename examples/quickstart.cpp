// Quickstart: build a small program with the IR builder, run it on the
// simulated machine, optimize it with the FAST pipeline, and compare.
//
//   $ ./quickstart
//
// This is the 60-second tour of the substrate every other component sits
// on: ir (program construction), opt (transformation), sim (the
// performance oracle with hardware counters).
#include <cstdio>

#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "opt/pipelines.hpp"
#include "sim/interpreter.hpp"

using namespace ilc;
using namespace ilc::ir;

/// sum of i*i for i in [0, n), with a needlessly invariant multiply the
/// optimizer will hoist.
Module build_program() {
  Module m;
  FunctionBuilder b(m, "main", 0);
  Reg n = b.imm(500);
  Reg scale = b.imm(3);
  Reg acc = b.fresh();
  b.imm_to(acc, 0);
  Reg i = b.fresh();
  b.imm_to(i, 0);

  BlockId head = b.new_block(), body = b.new_block(), exit = b.new_block();
  b.jump(head);
  b.switch_to(head);
  b.br(b.cmp_lt(i, n), body, exit);
  b.switch_to(body);
  Reg sq = b.mul(i, i);
  Reg factor = b.mul(scale, scale);  // loop-invariant: LICM hoists this
  b.mov_to(acc, b.add(acc, b.mul(sq, factor)));
  b.mov_to(i, b.add_i(i, 1));
  b.jump(head);
  b.switch_to(exit);
  b.ret(acc);
  b.finish();
  return m;
}

int main() {
  Module program = build_program();
  std::printf("--- the program ---\n%s\n", to_string(program).c_str());

  sim::Simulator baseline(program, sim::amd_like());
  const auto r0 = baseline.run();
  std::printf("O0:   result=%lld  cycles=%llu  instructions=%llu\n",
              static_cast<long long>(r0.ret),
              static_cast<unsigned long long>(r0.cycles),
              static_cast<unsigned long long>(r0.instructions));

  Module optimized = program;
  opt::run_sequence(optimized, opt::fast_pipeline());
  sim::Simulator fast(optimized, sim::amd_like());
  const auto r1 = fast.run();
  std::printf("FAST: result=%lld  cycles=%llu  instructions=%llu\n",
              static_cast<long long>(r1.ret),
              static_cast<unsigned long long>(r1.cycles),
              static_cast<unsigned long long>(r1.instructions));

  std::printf("\nspeedup: %.2fx  (same result: %s)\n",
              static_cast<double>(r0.cycles) / static_cast<double>(r1.cycles),
              r0.ret == r1.ret ? "yes" : "NO — bug!");
  return r0.ret == r1.ret ? 0 : 1;
}
