// One-shot counter-guided optimization (the Fig. 3/4 story as an API
// walkthrough): profile a program once at -O0, hand its hardware-counter
// signature to the counter model, and compile with the predicted setting
// — no search on the new program at all.
//
//   $ ./counter_guided [workload]          (default: mcf_lite)
#include <cstdio>
#include <string>

#include "controller/controller.hpp"
#include "controller/kb_builder.hpp"
#include "features/features.hpp"
#include "search/evaluator.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

int main(int argc, char** argv) {
  const std::string target = argc > 1 ? argv[1] : "mcf_lite";
  const sim::MachineConfig machine = sim::amd_like();
  wl::Workload w = wl::make_workload(target);

  // 1. Profile the new program once at -O0.
  const auto profile = ctrl::make_profile_record(target, w.module, machine);
  std::printf("Profiled %s at -O0: %llu cycles, CPI %.2f\n", target.c_str(),
              static_cast<unsigned long long>(profile.cycles),
              profile.dynamic_features[0]);
  std::printf("Counter signature (per kilo-instruction):\n");
  const auto& names = feat::dynamic_feature_names();
  for (std::size_t i = 1; i < names.size(); ++i)
    std::printf("  %-24s %10.3f\n", names[i].c_str(),
                profile.dynamic_features[i]);

  // 2. Training period on the rest of the suite (flag-space searches).
  std::vector<wl::Workload> suite;
  for (const auto& name : wl::workload_names())
    if (name != target) suite.push_back(wl::make_workload(name));
  std::vector<ctrl::SuiteProgram> programs;
  for (const auto& p : suite) programs.push_back({p.name, &p.module});
  const kb::KnowledgeBase base = ctrl::build_knowledge_base(
      programs, machine, /*sequence_budget=*/0, /*flag_budget=*/40,
      /*seed=*/2007);

  // 3. One-shot prediction.
  ctrl::CounterModel model(base, target, machine.name);
  const opt::OptFlags predicted = model.predict(profile.dynamic_features);
  std::printf("\nNearest program in the knowledge base: %s\n",
              model.nearest_program().c_str());
  std::printf("Predicted setting: %s\n", predicted.to_string().c_str());

  // 4. Compare against O0 and FAST.
  search::Evaluator eval(w.module, machine);
  const auto o0 = eval.eval_flags(opt::o0_flags());
  const auto fast = eval.eval_flags(opt::fast_flags());
  const auto pc = eval.eval_flags(predicted);
  std::printf("\nO0      %12llu cycles  1.00x\n",
              static_cast<unsigned long long>(o0.cycles));
  std::printf("FAST    %12llu cycles  %.2fx\n",
              static_cast<unsigned long long>(fast.cycles),
              static_cast<double>(o0.cycles) / fast.cycles);
  std::printf("PCModel %12llu cycles  %.2fx\n",
              static_cast<unsigned long long>(pc.cycles),
              static_cast<double>(o0.cycles) / pc.cycles);
  return 0;
}
