// kb_tool — build, save, load, and inspect knowledge bases in the
// standard format (paper Section III-E: "it is important to build a
// standardized database to store learning data in order to facilitate the
// communication between machine learning components, optimization
// algorithms, compiler and instrumentation tools ...").
//
//   $ ./kb_tool build my.kb 30          # training period -> my.kb (CSV)
//   $ ./kb_tool build-store my.kbd 30   # training period -> durable store,
//                                       # each record WAL-appended as it lands
//   $ ./kb_tool summary my.kb           # per-program best (CSV or store dir)
//   $ ./kb_tool predict my.kb mcf_lite  # one-shot prediction from the file
//   $ ./kb_tool import my.kb my.kbd     # legacy CSV -> durable store
//   $ ./kb_tool export my.kbd my.kb     # durable store -> legacy CSV
//   $ ./kb_tool wal-dump my.kbd         # frame-level WAL inspector
//   $ ./kb_tool repl-status my.kbd [leader-dir]
//                                       # durable WalPosition (generation /
//                                       # seq / chain CRC); with a leader
//                                       # dir, follower lag + divergence
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "controller/controller.hpp"
#include "controller/kb_builder.hpp"
#include "kbstore/log_format.hpp"
#include "kbstore/store.hpp"
#include "repl/ship.hpp"
#include "search/evaluator.hpp"
#include "support/table.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

namespace {

/// What recovery found plus how the write path behaved: records replayed
/// (snapshot + WAL), torn-tail bytes truncated, live/dead ratio, and the
/// flush/compaction counters.
void print_store_stats(const kbstore::Store& store) {
  const kbstore::RecoveryInfo info = store.recovery();
  const kbstore::StoreStats stats = store.stats();
  std::printf(
      "  recovery: %zu records replayed (%zu snapshot + %zu wal)",
      info.snapshot_records + info.wal_records, info.snapshot_records,
      info.wal_records);
  if (info.torn_tail)
    std::printf(", torn tail: %llu bytes truncated",
                static_cast<unsigned long long>(info.torn_bytes));
  if (info.stale_wal) std::printf(", stale wal discarded");
  std::printf("\n");
  const double ratio =
      stats.live ? static_cast<double>(stats.dead) /
                       static_cast<double>(stats.live)
                 : 0.0;
  std::printf(
      "  store: %zu live / %zu dead records (dead/live %.2f), "
      "%llu appends, %llu flushes, %llu compactions, wal %llu bytes\n",
      stats.live, stats.dead, ratio,
      static_cast<unsigned long long>(stats.appends),
      static_cast<unsigned long long>(stats.flushes),
      static_cast<unsigned long long>(stats.compactions),
      static_cast<unsigned long long>(stats.wal_bytes));
}

/// Load a knowledge base from either format: a kbstore directory (crash
/// recovery runs as part of open) or a legacy CSV file.
std::optional<kb::KnowledgeBase> load_any(const char* path) {
  if (std::filesystem::is_directory(path)) {
    auto store = kbstore::Store::open(path);
    if (!store) return std::nullopt;
    return store->export_kb();
  }
  return kb::KnowledgeBase::load(path);
}

int cmd_build(const char* path, unsigned budget) {
  std::vector<wl::Workload> suite = wl::make_suite();
  std::vector<ctrl::SuiteProgram> programs;
  for (const auto& w : suite) programs.push_back({w.name, &w.module});
  const kb::KnowledgeBase base = ctrl::build_knowledge_base(
      programs, sim::amd_like(), /*sequence_budget=*/budget,
      /*flag_budget=*/budget, /*seed=*/2008);
  if (!base.save(path)) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::printf("wrote %zu records for %zu programs to %s\n", base.size(),
              base.programs().size(), path);
  return 0;
}

int cmd_build_store(const char* dir, unsigned budget) {
  kbstore::RecoveryInfo info;
  auto store = kbstore::Store::open(dir, {}, &info);
  if (!store) {
    std::fprintf(stderr, "cannot open store at %s\n", dir);
    return 1;
  }
  std::vector<wl::Workload> suite = wl::make_suite();
  std::vector<ctrl::SuiteProgram> programs;
  for (const auto& w : suite) programs.push_back({w.name, &w.module});
  const std::size_t before = store->size();
  ctrl::build_store(*store, programs, sim::amd_like(),
                    /*sequence_budget=*/budget, /*flag_budget=*/budget,
                    /*seed=*/2008);
  std::printf("recovered %zu records, streamed %zu new; store now holds "
              "%zu records\n",
              before, store->size() - before, store->size());
  print_store_stats(*store);
  return 0;
}

int cmd_import(const char* csv, const char* dir) {
  const auto base = kb::KnowledgeBase::load(csv);
  if (!base) {
    std::fprintf(stderr, "cannot parse %s as an ilc knowledge base\n", csv);
    return 1;
  }
  auto store = kbstore::Store::open(dir);
  if (!store || !store->import_records(*base)) {
    std::fprintf(stderr, "cannot import into store at %s\n", dir);
    return 1;
  }
  std::printf("imported %zu records into %s (%zu total)\n", base->size(), dir,
              store->size());
  print_store_stats(*store);
  return 0;
}

int cmd_export(const char* dir, const char* csv) {
  auto store = kbstore::Store::open(dir);
  if (!store) {
    std::fprintf(stderr, "cannot open store at %s\n", dir);
    return 1;
  }
  const kb::KnowledgeBase base = store->export_kb();
  if (!base.save(csv)) {
    std::fprintf(stderr, "cannot write %s\n", csv);
    return 1;
  }
  std::printf("exported %zu records from %s to %s\n", base.size(), dir, csv);
  return 0;
}

int cmd_summary(const char* path) {
  const auto base = load_any(path);
  if (!base) {
    std::fprintf(stderr, "cannot parse %s as an ilc knowledge base\n", path);
    return 1;
  }
  support::Table table({"program", "records", "best sequence cycles",
                        "best flag setting", "flag cycles"});
  for (const auto& program : base->programs()) {
    const auto* best_seq = base->best_for_program(program, "sequence");
    const auto* best_flags = base->best_for_program(program, "flags");
    table.add_row(
        {program,
         support::Table::num(
             static_cast<long long>(base->for_program(program).size())),
         best_seq ? support::Table::num(
                        static_cast<long long>(best_seq->cycles))
                  : "-",
         best_flags ? opt::OptFlags::decode(static_cast<std::uint32_t>(
                          std::stoul(best_flags->config)))
                          .to_string()
                    : "-",
         best_flags ? support::Table::num(
                          static_cast<long long>(best_flags->cycles))
                    : "-"});
  }
  std::printf("%s", table.render().c_str());
  return 0;
}

int cmd_predict(const char* path, const char* target) {
  const auto base = load_any(path);
  if (!base) {
    std::fprintf(stderr, "cannot parse %s\n", path);
    return 1;
  }
  wl::Workload w = wl::make_workload(target);
  const auto profile =
      ctrl::make_profile_record(target, w.module, sim::amd_like());
  ctrl::CounterModel model(*base, target, "amd-like");
  const opt::OptFlags flags = model.predict(profile.dynamic_features);
  std::printf("nearest program: %s\npredicted setting: %s\n",
              model.nearest_program().c_str(), flags.to_string().c_str());
  search::Evaluator eval(w.module, sim::amd_like());
  const auto o0 = eval.eval_flags(opt::o0_flags());
  const auto pc = eval.eval_flags(flags);
  std::printf("speedup over O0: %.2fx\n",
              static_cast<double>(o0.cycles) / static_cast<double>(pc.cycles));
  return 0;
}

/// Frame-level WAL inspector: what replication ships and recovery
/// replays, one line per frame — generation, sequence, op, key, CRC
/// health — plus an honest report of any torn tail. Reads the file
/// directly (no Store::open), so it works on stores a crash just tore.
int cmd_wal_dump(const char* dir) {
  const std::string path = std::string(dir) + "/wal.ilc";
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream os;
  os << f.rdbuf();
  const std::string bytes = os.str();

  if (bytes.size() < kbstore::kHeaderSize) {
    std::printf("%s: %zu bytes — shorter than a WAL header (torn create "
                "or mid-recreation)\n",
                path.c_str(), bytes.size());
    return 1;
  }
  const kbstore::ScannedLog probe = kbstore::scan_log(
      std::string_view(bytes).substr(0, kbstore::kHeaderSize),
      kbstore::kWalType);
  if (!probe.header_ok) {
    std::printf("%s: not a WAL (bad magic or type byte)\n", path.c_str());
    return 1;
  }
  std::printf("%s: generation %llu, %zu bytes\n", path.c_str(),
              static_cast<unsigned long long>(probe.generation),
              bytes.size());

  const kbstore::WalkedFrames walked =
      kbstore::walk_frames(bytes, kbstore::kHeaderSize);
  support::Table table({"seq", "offset", "bytes", "op", "key", "crc"});
  for (std::size_t i = 0; i < walked.frames.size(); ++i) {
    const kbstore::FrameBounds& fb = walked.frames[i];
    std::string op = "?";
    std::string key = "-";
    if (fb.decodable) {
      switch (fb.op) {
        case kbstore::Op::Append: op = "append"; break;
        case kbstore::Op::Upsert: op = "upsert"; break;
        case kbstore::Op::Erase: op = "erase"; break;
      }
      const auto lr = kbstore::decode_record(std::string_view(bytes).substr(
          fb.offset + kbstore::kFrameOverhead, fb.len));
      if (lr)
        key = lr->rec.program + "|" + lr->rec.machine + "|" + lr->rec.kind;
    }
    table.add_row({support::Table::num(static_cast<long long>(i)),
                   support::Table::num(static_cast<long long>(fb.offset)),
                   support::Table::num(static_cast<long long>(fb.size())),
                   op, key,
                   fb.crc_ok ? (fb.decodable ? "ok" : "BAD DECODE")
                             : "BAD CRC"});
  }
  std::printf("%s", table.render().c_str());

  if (walked.clean) {
    std::printf("%zu frames, clean tail\n", walked.frames.size());
  } else {
    std::printf("%zu frames, %llu intact bytes; %llu torn/corrupt bytes at "
                "the tail (recovery would truncate here)\n",
                walked.frames.size(),
                static_cast<unsigned long long>(walked.good_bytes),
                static_cast<unsigned long long>(bytes.size() -
                                                walked.good_bytes));
  }
  return walked.clean ? 0 : 1;
}

/// Replication status from disk: the store's durable WalPosition — the
/// exact identity replication resumes from and promotion chooses by —
/// and, given the leader's directory, the follower's lag and a
/// byte-divergence verdict. Reads through ShipSource (flushed bytes
/// only, no Store locks), so it is safe to run against a live store.
int cmd_repl_status(const char* dir, const char* leader_dir) {
  const auto pos = repl::ShipSource(dir).position();
  if (!pos) {
    std::fprintf(stderr, "cannot read a WAL position from %s\n", dir);
    return 1;
  }
  std::printf("%s: generation=%llu seq=%llu chain_crc=%08x\n", dir,
              static_cast<unsigned long long>(pos->generation),
              static_cast<unsigned long long>(pos->seq), pos->chain_crc);
  if (leader_dir == nullptr) return 0;

  const auto lpos = repl::ShipSource(leader_dir).position();
  if (!lpos) {
    std::fprintf(stderr, "cannot read a WAL position from %s\n", leader_dir);
    return 1;
  }
  std::printf("%s: generation=%llu seq=%llu chain_crc=%08x (leader)\n",
              leader_dir, static_cast<unsigned long long>(lpos->generation),
              static_cast<unsigned long long>(lpos->seq), lpos->chain_crc);
  if (pos->generation == lpos->generation) {
    if (pos->seq > lpos->seq) {
      std::printf("lag: follower is AHEAD by %llu frames (split-brain — a "
                  "leader would reject this follower)\n",
                  static_cast<unsigned long long>(pos->seq - lpos->seq));
    } else {
      std::printf("lag: %llu frames behind the leader\n",
                  static_cast<unsigned long long>(lpos->seq - pos->seq));
    }
  } else {
    std::printf("lag: generations differ (follower %llu vs leader %llu) — "
                "snapshot bootstrap pending or stale leader\n",
                static_cast<unsigned long long>(pos->generation),
                static_cast<unsigned long long>(lpos->generation));
  }
  const auto div = repl::divergence(leader_dir, dir);
  if (div)
    std::printf("divergence: %s\n", div->c_str());
  else
    std::printf("divergence: none (files byte-identical)\n");
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: kb_tool build <file> [budget]\n"
               "       kb_tool build-store <dir> [budget]\n"
               "       kb_tool summary <file-or-dir>\n"
               "       kb_tool predict <file-or-dir> <workload>\n"
               "       kb_tool import <csv-file> <store-dir>\n"
               "       kb_tool export <store-dir> <csv-file>\n"
               "       kb_tool wal-dump <store-dir>\n"
               "       kb_tool repl-status <store-dir> [leader-dir]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage();
    return 2;
  }
  if (std::strcmp(argv[1], "build") == 0)
    return cmd_build(argv[2],
                     argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 30);
  if (std::strcmp(argv[1], "build-store") == 0)
    return cmd_build_store(
        argv[2], argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 30);
  if (std::strcmp(argv[1], "summary") == 0) return cmd_summary(argv[2]);
  if (std::strcmp(argv[1], "predict") == 0 && argc > 3)
    return cmd_predict(argv[2], argv[3]);
  if (std::strcmp(argv[1], "import") == 0 && argc > 3)
    return cmd_import(argv[2], argv[3]);
  if (std::strcmp(argv[1], "export") == 0 && argc > 3)
    return cmd_export(argv[2], argv[3]);
  if (std::strcmp(argv[1], "wal-dump") == 0) return cmd_wal_dump(argv[2]);
  if (std::strcmp(argv[1], "repl-status") == 0)
    return cmd_repl_status(argv[2], argc > 3 ? argv[3] : nullptr);
  usage();
  return 2;
}
