// Iterative compilation with the intelligent optimization controller:
// build a knowledge base from prior searches on the rest of the suite,
// then let the FOCUSSED model guide a short search on the target program.
//
//   $ ./autotune [workload] [budget]       (default: fir, 15 evaluations)
//
// Mirrors Section III-A's "the process can iterate until the selection of
// optimizations converges" with a model-focused search instead of blind
// random sampling.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "controller/controller.hpp"
#include "controller/kb_builder.hpp"
#include "search/evaluator.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

int main(int argc, char** argv) {
  const std::string target = argc > 1 ? argv[1] : "fir";
  const unsigned budget =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 15;
  const sim::MachineConfig machine = sim::amd_like();

  wl::Workload w = wl::make_workload(target);
  std::printf("Autotuning %s on %s with %u evaluations...\n\n",
              target.c_str(), machine.name.c_str(), budget);

  // Training period on every other program in the suite.
  std::vector<wl::Workload> suite;
  for (const auto& name : wl::workload_names())
    if (name != target) suite.push_back(wl::make_workload(name));
  std::vector<ctrl::SuiteProgram> programs;
  for (const auto& p : suite) programs.push_back({p.name, &p.module});
  const kb::KnowledgeBase base = ctrl::build_knowledge_base(
      programs, machine, /*sequence_budget=*/40, /*flag_budget=*/0,
      /*seed=*/42);
  std::printf("Knowledge base: %zu records from %zu programs.\n",
              base.size(), base.programs().size());

  ctrl::IntelligentController controller(base, machine.name);
  search::Evaluator eval(w.module, machine);
  support::Rng rng(7);
  const auto trace = controller.iterative(
      eval, feat::extract_static(w.module), target, budget, rng);

  const auto o0 = eval.eval_sequence({});
  std::printf("\nO0:                 %llu cycles\n",
              static_cast<unsigned long long>(o0.cycles));
  std::printf("best after %2u evals: %llu cycles (%.2fx)\n",
              trace.evaluations,
              static_cast<unsigned long long>(trace.best_metric),
              static_cast<double>(o0.cycles) /
                  static_cast<double>(trace.best_metric));
  std::printf("best sequence:      %s\n",
              search::sequence_to_string(trace.best_seq).c_str());

  // Verify the tuned binary still computes the right answer.
  ir::Module tuned = eval.optimized(trace.best_seq);
  sim::Simulator sim(tuned, machine);
  const auto rr = sim.run();
  std::printf("checksum: %lld (expected %lld) — %s\n",
              static_cast<long long>(rr.ret),
              static_cast<long long>(w.expected_checksum),
              rr.ret == w.expected_checksum ? "OK" : "MISMATCH");
  return rr.ret == w.expected_checksum ? 0 : 1;
}
