// kb_replica — one machine, one leader, two read-only followers: the
// whole ilc::repl stack end to end.
//
//   1. A leader TuningService answers tune requests and persists every
//      result into its kbstore; a ShipServer tails that store's WAL over
//      loopback TCP.
//   2. Two followers each run an Applier (a follower-mode store) fed by a
//      ShipClient. They bootstrap cold, then stream frames as the leader
//      commits them.
//   3. A write burst (the workload suite under both objectives) runs
//      through the leader; the followers converge to zero replication
//      lag, at which point their store files are byte-identical to the
//      leader's — checked, not assumed.
//   4. A read-only follower service answers the same requests from the
//      replicated KB (Source::Follower) without running a single search,
//      and a repl::Router demonstrates the failover policy: owner primary
//      first, follower fallback (read-only) when the primary is down.
//
// Exits non-zero on any divergence, missed hit, or timed-out catch-up.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "ir/fingerprint.hpp"
#include "repl/applier.hpp"
#include "repl/router.hpp"
#include "repl/ship.hpp"
#include "repl/transport.hpp"
#include "svc/cache.hpp"
#include "svc/service.hpp"
#include "workloads/workloads.hpp"

using namespace ilc;

namespace {

int fail(const std::string& why) {
  std::fprintf(stderr, "kb_replica: FAIL: %s\n", why.c_str());
  return 1;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

/// Catch-up gate: the follower's durable position must equal the
/// leader's *on-disk* position (not just the last heartbeat — heartbeat
/// lag reads zero between ship batches, which is exactly the trap a
/// convergence check must not fall into).
bool wait_caught_up(const std::string& leader_dir, const repl::Applier& a,
                    int timeout_ms) {
  const auto target = repl::ShipSource(leader_dir).position();
  if (!target) return false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    const kbstore::WalPosition pos = a.position();
    if (pos.generation == target->generation && pos.seq == target->seq &&
        pos.chain_crc == target->chain_crc && a.lag() == 0)
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

}  // namespace

int main() {
  const std::string leader_dir = fresh_dir("kb_replica_leader");
  const std::string f1_dir = fresh_dir("kb_replica_f1");
  const std::string f2_dir = fresh_dir("kb_replica_f2");

  // --- leader: tuning service + WAL shipping ------------------------------
  svc::TuningService::Options lopts;
  lopts.workers = 2;
  lopts.kb_path = leader_dir;
  svc::TuningService leader(lopts);

  auto ship = repl::ShipServer::start(leader_dir, /*port=*/0);
  if (!ship) return fail("cannot start ship server");
  std::printf("leader shipping WAL on 127.0.0.1:%u\n",
              static_cast<unsigned>(ship->port()));

  // --- two cold followers -------------------------------------------------
  repl::Applier::Options a1o, a2o;
  a1o.metric_prefix = "repl.f1";
  a2o.metric_prefix = "repl.f2";
  auto f1 = repl::Applier::open(f1_dir, a1o);
  auto f2 = repl::Applier::open(f2_dir, a2o);
  if (!f1 || !f2) return fail("cannot open follower stores");
  auto c1 = repl::ShipClient::start(*f1, ship->port());
  auto c2 = repl::ShipClient::start(*f2, ship->port());

  // --- write burst through the leader -------------------------------------
  const std::vector<wl::Workload> suite = wl::make_suite();
  std::vector<svc::TuningRequest> requests;
  for (const auto& w : suite) {
    for (const auto obj :
         {search::Objective::Cycles, search::Objective::CodeSize}) {
      svc::TuningRequest req;
      req.program = w.name;
      req.objective = obj;
      req.budget = 3;
      requests.push_back(req);
    }
  }
  std::vector<std::shared_future<svc::TuningResponse>> futures;
  for (const auto& req : requests) futures.push_back(leader.submit(req));
  std::size_t searched = 0;
  for (auto& fut : futures) {
    const svc::TuningResponse r = fut.get();
    if (!r.ok) return fail("leader tune failed: " + r.error);
    if (r.source == svc::Source::Search) ++searched;
  }
  std::printf("leader ran %zu searches over %zu requests\n", searched,
              futures.size());
  leader.save();  // group-commit barrier: everything durable, shippable

  // --- converge: zero lag, byte-identical stores --------------------------
  if (!wait_caught_up(leader_dir, *f1, 30000))
    return fail("follower 1 never caught up");
  if (!wait_caught_up(leader_dir, *f2, 30000))
    return fail("follower 2 never caught up");
  for (const auto* dir : {&f1_dir, &f2_dir}) {
    if (const auto d = repl::divergence(leader_dir, *dir))
      return fail("divergence vs " + *dir + ": " + *d);
  }
  std::printf("followers caught up: %llu frames each, stores byte-identical "
              "to leader\n",
              static_cast<unsigned long long>(f1->position().seq));

  // --- read-only serving from the replica ---------------------------------
  svc::TuningService::Options fopts;
  fopts.workers = 1;
  fopts.read_only = true;
  fopts.follower_lookup = [&a = *f1](const std::string& key,
                                     const std::string& machine) {
    return svc::ResultCache::lookup_store(a.store(), key, machine);
  };
  svc::TuningService follower_svc(fopts);
  std::size_t follower_hits = 0;
  for (const auto& req : requests) {
    const svc::TuningResponse r = follower_svc.tune(req);
    if (!r.ok) return fail("follower miss for " + req.program + ": " + r.error);
    if (r.source != svc::Source::Follower)
      return fail("expected Source::Follower for " + req.program);
    if (r.simulations != 0) return fail("follower ran a simulation");
    ++follower_hits;
  }
  std::printf("follower served %zu warm hits, zero searches\n", follower_hits);

  // --- router: owner first, read-only follower when the primary is down ---
  repl::Router router({{/*primary=*/{"127.0.0.1", 7070},
                        /*followers=*/{{"127.0.0.1", 7071},
                                       {"127.0.0.1", 7072}}}});
  const std::uint64_t fp = ir::fingerprint(suite.front().module);
  auto route = router.route(fp);
  if (!route || route->read_only) return fail("expected primary route");
  router.set_down(route->endpoint);
  route = router.route(fp);
  if (!route || !route->read_only || route->endpoint.port != 7071)
    return fail("expected read-only follower fallback");
  std::printf("router: primary down -> read-only fallback at %s\n",
              route->endpoint.to_string().c_str());

  c1.reset();
  c2.reset();
  ship.reset();
  std::printf("kb_replica: OK\n");
  return 0;
}
