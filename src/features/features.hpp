// Application characterization (paper Section III-B / III-E): static code
// features extracted by compiler analysis and dynamic features derived
// from performance counters. Both are plain double vectors with stable
// names, suitable for the ML layer and the knowledge base's standard
// format.
#pragma once

#include <string>
#include <vector>

#include "ir/analysis.hpp"
#include "ir/module.hpp"
#include "sim/counters.hpp"

namespace ilc::feat {

/// Names of the static features, index-aligned with extract_static().
const std::vector<std::string>& static_feature_names();

/// Extract static code features from a module. Instruction-mix ratios are
/// weighted by estimated block frequency (10^loop-depth), approximating
/// dynamic importance without running the program.
std::vector<double> extract_static(const ir::Module& mod);

/// Names of the per-loop features, index-aligned with
/// extract_loop_features(). Used by the learned unroll-factor case study
/// (the Stephenson/Monsifrot-style single-heuristic experiments the paper
/// discusses in related work).
const std::vector<std::string>& loop_feature_names();

/// Static features of one natural loop.
std::vector<double> extract_loop_features(const ir::Function& fn,
                                          const ir::Loop& loop);

/// Names of the dynamic features, index-aligned with extract_dynamic().
const std::vector<std::string>& dynamic_feature_names();

/// Derive dynamic features from a counter sample: CPI plus per-kilo-
/// instruction event rates — the representation the paper's Fig. 3 uses
/// (counter values relative to instruction count).
std::vector<double> extract_dynamic(const sim::Counters& counters);

/// z-score normalizer fit over a feature matrix (rows = programs).
class Scaler {
 public:
  void fit(const std::vector<std::vector<double>>& rows);
  std::vector<double> transform(const std::vector<double>& row) const;
  bool fitted() const { return !mean_.empty(); }

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

/// Euclidean distance between equal-length vectors.
double euclidean(const std::vector<double>& a, const std::vector<double>& b);

/// Mutual information (in bits) between a feature column and integer
/// labels, with the feature discretized into `bins` equal-frequency bins.
/// The paper recommends exactly this statistic for feature selection.
double mutual_information(const std::vector<double>& feature,
                          const std::vector<int>& labels, unsigned bins = 4);

}  // namespace ilc::feat
