#include <cmath>

#include "features/features.hpp"
#include "support/assert.hpp"

namespace ilc::feat {

const std::vector<std::string>& dynamic_feature_names() {
  static std::vector<std::string> names = [] {
    std::vector<std::string> out;
    out.push_back("CPI");
    for (unsigned c = 0; c < sim::kNumCounters; ++c) {
      const auto ctr = static_cast<sim::Counter>(c);
      if (ctr == sim::TOT_INS || ctr == sim::TOT_CYC) continue;
      out.push_back(std::string(sim::counter_name(ctr)) + "_per_kilo_ins");
    }
    return out;
  }();
  return names;
}

std::vector<double> extract_dynamic(const sim::Counters& counters) {
  const double ins =
      std::max<double>(1.0, static_cast<double>(counters[sim::TOT_INS]));
  std::vector<double> f;
  f.push_back(static_cast<double>(counters[sim::TOT_CYC]) / ins);
  for (unsigned c = 0; c < sim::kNumCounters; ++c) {
    const auto ctr = static_cast<sim::Counter>(c);
    if (ctr == sim::TOT_INS || ctr == sim::TOT_CYC) continue;
    f.push_back(1000.0 * static_cast<double>(counters[ctr]) / ins);
  }
  ILC_ASSERT(f.size() == dynamic_feature_names().size());
  return f;
}

void Scaler::fit(const std::vector<std::vector<double>>& rows) {
  ILC_CHECK(!rows.empty());
  const std::size_t dim = rows[0].size();
  mean_.assign(dim, 0.0);
  inv_std_.assign(dim, 1.0);
  for (const auto& r : rows) {
    ILC_CHECK(r.size() == dim);
    for (std::size_t j = 0; j < dim; ++j) mean_[j] += r[j];
  }
  for (double& m : mean_) m /= static_cast<double>(rows.size());
  std::vector<double> var(dim, 0.0);
  for (const auto& r : rows)
    for (std::size_t j = 0; j < dim; ++j)
      var[j] += (r[j] - mean_[j]) * (r[j] - mean_[j]);
  for (std::size_t j = 0; j < dim; ++j) {
    const double sd = std::sqrt(var[j] / static_cast<double>(rows.size()));
    inv_std_[j] = sd > 1e-12 ? 1.0 / sd : 0.0;  // constant feature -> 0
  }
}

std::vector<double> Scaler::transform(const std::vector<double>& row) const {
  ILC_CHECK(fitted());
  ILC_CHECK(row.size() == mean_.size());
  std::vector<double> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j)
    out[j] = (row[j] - mean_[j]) * inv_std_[j];
  return out;
}

double euclidean(const std::vector<double>& a, const std::vector<double>& b) {
  ILC_CHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(s);
}

}  // namespace ilc::feat
