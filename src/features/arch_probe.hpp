// Architecture characterization by microbenchmark (paper Section III-B:
// "for the targeted computing system, this characterization ... can be
// efficiently characterized with microbenchmarks", citing Yotov et al.'s
// automatic measurement of memory-hierarchy parameters).
//
// The prober generates IR microbenchmarks — pointer chases over working
// sets of increasing size, dependent ALU chains, branch-pattern loops —
// runs them on the target machine (the simulator), and infers the
// hierarchy's shape from the measured cycles alone, never reading the
// MachineConfig. The inferred vector goes into the knowledge base as the
// architecture's characterization.
#pragma once

#include <string>
#include <vector>

#include "sim/machine.hpp"

namespace ilc::feat {

/// Inferred machine parameters. Latencies are measured end-to-end in
/// cycles per dependent operation; capacities are the largest working set
/// that still runs at the level's latency.
struct ArchProfile {
  double l1_latency = 0;       // cycles per load, working set << L1
  double l2_latency = 0;       // cycles per load, L1 < ws <= L2
  double mem_latency = 0;      // cycles per load, ws >> L2
  std::uint64_t l1_capacity = 0;  // bytes (power of two estimate)
  std::uint64_t l2_capacity = 0;  // bytes
  double alu_latency = 0;      // cycles per dependent add
  double mul_latency = 0;      // cycles per dependent multiply
  double mispredict_penalty = 0;  // cycles per forced mispredict

  /// Flat feature vector (for the knowledge base's standard format).
  std::vector<double> to_features() const;
  static const std::vector<std::string>& feature_names();
};

/// Run the microbenchmark battery against a machine configuration.
ArchProfile probe_architecture(const sim::MachineConfig& machine);

}  // namespace ilc::feat
