#include "features/arch_probe.hpp"

#include <algorithm>
#include <cmath>

#include "ir/builder.hpp"
#include "sim/interpreter.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace ilc::feat {

using namespace ir;

const std::vector<std::string>& ArchProfile::feature_names() {
  static const std::vector<std::string> names = {
      "l1_latency",       "l2_latency", "mem_latency",
      "log2_l1_capacity", "log2_l2_capacity",
      "alu_latency",      "mul_latency", "mispredict_penalty"};
  return names;
}

std::vector<double> ArchProfile::to_features() const {
  return {l1_latency,
          l2_latency,
          mem_latency,
          std::log2(static_cast<double>(std::max<std::uint64_t>(1, l1_capacity))),
          std::log2(static_cast<double>(std::max<std::uint64_t>(1, l2_capacity))),
          alu_latency,
          mul_latency,
          mispredict_penalty};
}

namespace {

/// Pointer-chase microbenchmark over `bytes` of working set: cycles per
/// dependent load, measured warm.
double chase_cycles_per_access(const sim::MachineConfig& machine,
                               std::uint64_t bytes) {
  constexpr unsigned kPtr = 8;
  const std::uint64_t count = std::max<std::uint64_t>(16, bytes / kPtr);

  Module m;
  m.name = "probe_chase";
  Global g;
  g.name = "chain";
  g.elem_is_ptr = true;
  g.count = count;
  const GlobalId chain = 0;
  g.ptr_target = chain;
  // Random permutation cycle so hardware prefetch-like spatial locality
  // cannot help and every access depends on the previous one.
  support::Rng rng(bytes * 2654435761ULL + 1);
  std::vector<std::int64_t> perm(count);
  for (std::uint64_t i = 0; i < count; ++i)
    perm[i] = static_cast<std::int64_t>(i);
  rng.shuffle(perm);
  g.init.resize(count);
  for (std::uint64_t i = 0; i < count; ++i)
    g.init[perm[i]] = perm[(i + 1) % count];
  m.add_global(g);

  const std::uint64_t steps =
      std::max<std::uint64_t>(4096, 2 * count);
  FunctionBuilder b(m, "main", 0);
  Reg pos = b.fresh();
  b.mov_to(pos, b.global_addr(chain));
  Reg n = b.imm(static_cast<std::int64_t>(steps / 4));
  BlockId head = b.new_block(), body = b.new_block(), exit = b.new_block();
  Reg i = b.fresh();
  b.imm_to(i, 0);
  b.jump(head);
  b.switch_to(head);
  b.br(b.cmp_lt(i, n), body, exit);
  b.switch_to(body);
  for (int u = 0; u < 4; ++u)
    b.mov_to(pos, b.load(pos, 0, MemWidth::W8, /*is_ptr=*/true));
  b.mov_to(i, b.add_i(i, 1));
  b.jump(head);
  b.switch_to(exit);
  b.ret(pos);
  b.finish();

  sim::Simulator sim(m, machine);
  sim.run();  // warm the hierarchy
  const auto rr = sim.run();
  return static_cast<double>(rr.cycles) / static_cast<double>(steps);
}

/// Dependent-op chain: cycles per op for the given opcode.
double chain_cycles_per_op(const sim::MachineConfig& machine, Opcode op) {
  Module m;
  m.name = "probe_chain";
  constexpr int kIters = 2048;
  constexpr int kOpsPerIter = 8;
  FunctionBuilder b(m, "main", 0);
  Reg x = b.fresh();
  b.imm_to(x, 1);
  Reg one = b.imm(1);
  Reg n = b.imm(kIters);
  BlockId head = b.new_block(), body = b.new_block(), exit = b.new_block();
  Reg i = b.fresh();
  b.imm_to(i, 0);
  b.jump(head);
  b.switch_to(head);
  b.br(b.cmp_lt(i, n), body, exit);
  b.switch_to(body);
  for (int u = 0; u < kOpsPerIter; ++u)
    b.mov_to(x, b.binop(op, x, one));  // x = x op 1: serial chain
  b.mov_to(i, b.add_i(i, 1));
  b.jump(head);
  b.switch_to(exit);
  b.ret(x);
  b.finish();

  sim::Simulator sim(m, machine);
  sim.run();
  const auto rr = sim.run();
  // The mov in each chain link costs one slot; subtract half a cycle of
  // pairing noise by measuring the add chain the same way (callers take
  // differences where it matters).
  return static_cast<double>(rr.cycles) /
         static_cast<double>(kIters * kOpsPerIter);
}

/// Cycles per iteration of a loop whose measured branch follows `pattern`
/// (a function of the iteration counter): used to expose the mispredict
/// penalty by differencing a biased and an unpredictable pattern.
double branch_cycles_per_iter(const sim::MachineConfig& machine,
                              bool unpredictable) {
  Module m;
  m.name = "probe_branch";
  constexpr int kIters = 4096;
  FunctionBuilder b(m, "main", 0);
  Reg acc = b.fresh();
  b.imm_to(acc, 0);
  Reg lcg = b.fresh();
  b.imm_to(lcg, 12345);
  Reg n = b.imm(kIters);
  BlockId head = b.new_block(), body = b.new_block(), taken = b.new_block(),
          join = b.new_block(), exit = b.new_block();
  Reg i = b.fresh();
  b.imm_to(i, 0);
  b.jump(head);
  b.switch_to(head);
  b.br(b.cmp_lt(i, n), body, exit);
  b.switch_to(body);
  // Data-dependent forward branch. Both variants compute the LCG stream
  // (so its dependence chain cancels in the difference); only the
  // unpredictable one branches on it.
  b.mov_to(lcg, b.and_i(b.add_i(b.mul_i(lcg, 1103515245), 12345),
                        0x7fffffff));
  Reg bit = b.and_i(b.shr_i(lcg, 7), 1);
  Reg cond = unpredictable ? bit : b.and_(bit, b.imm(0));
  b.br(cond, taken, join);
  b.switch_to(taken);
  b.mov_to(acc, b.add_i(acc, 1));
  b.jump(join);
  b.switch_to(join);
  b.mov_to(i, b.add_i(i, 1));
  b.jump(head);
  b.switch_to(exit);
  b.ret(acc);
  b.finish();

  sim::Simulator sim(m, machine);
  sim.run();
  const auto rr = sim.run();
  return static_cast<double>(rr.cycles) / kIters;
}

}  // namespace

ArchProfile probe_architecture(const sim::MachineConfig& machine) {
  ArchProfile profile;

  // --- memory hierarchy: latency plateaus over working-set sizes -------
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t s = 1024; s <= (1u << 20); s *= 2) sizes.push_back(s);
  std::vector<double> cpa;
  cpa.reserve(sizes.size());
  for (std::uint64_t s : sizes) cpa.push_back(chase_cycles_per_access(machine, s));

  profile.l1_latency = cpa.front();
  profile.mem_latency = cpa.back();

  // First size whose latency clearly exceeds the L1 plateau.
  std::size_t l1_edge = sizes.size();
  for (std::size_t k = 1; k < sizes.size(); ++k) {
    if (cpa[k] > 1.5 * profile.l1_latency) {
      l1_edge = k;
      break;
    }
  }
  profile.l1_capacity = l1_edge < sizes.size() ? sizes[l1_edge - 1]
                                               : sizes.back();

  // L2 plateau: first stable level after the L1 edge.
  if (l1_edge + 1 < sizes.size()) {
    profile.l2_latency = cpa[l1_edge + 1];
    std::size_t l2_edge = sizes.size();
    for (std::size_t k = l1_edge + 1; k < sizes.size(); ++k) {
      if (cpa[k] > 1.5 * profile.l2_latency) {
        l2_edge = k;
        break;
      }
    }
    profile.l2_capacity =
        l2_edge < sizes.size() ? sizes[l2_edge - 1] : sizes.back();
  } else {
    profile.l2_latency = profile.mem_latency;
    profile.l2_capacity = sizes.back();
  }

  // --- core latencies ----------------------------------------------------
  profile.alu_latency = chain_cycles_per_op(machine, Opcode::Add);
  profile.mul_latency = chain_cycles_per_op(machine, Opcode::Mul);

  // --- branch mispredict penalty -----------------------------------------
  const double biased = branch_cycles_per_iter(machine, false);
  const double random = branch_cycles_per_iter(machine, true);
  // The random pattern mispredicts ~half the time and executes ~half an
  // extra taken-path instruction per iteration.
  profile.mispredict_penalty =
      std::max(0.0, 2.0 * (random - biased) - 1.0);
  return profile;
}

}  // namespace ilc::feat
