#include <algorithm>
#include <cmath>
#include <map>

#include "features/features.hpp"
#include "support/assert.hpp"

namespace ilc::feat {

double mutual_information(const std::vector<double>& feature,
                          const std::vector<int>& labels, unsigned bins) {
  ILC_CHECK(feature.size() == labels.size());
  ILC_CHECK(!feature.empty());
  ILC_CHECK(bins >= 2);
  const std::size_t n = feature.size();

  // Equal-frequency discretization via rank.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return feature[a] < feature[b];
  });
  std::vector<unsigned> bin_of(n);
  for (std::size_t rank = 0; rank < n; ++rank)
    bin_of[order[rank]] = static_cast<unsigned>(rank * bins / n);

  // Joint and marginal counts.
  std::map<std::pair<unsigned, int>, double> joint;
  std::map<unsigned, double> pf;
  std::map<int, double> pl;
  for (std::size_t i = 0; i < n; ++i) {
    joint[{bin_of[i], labels[i]}] += 1.0;
    pf[bin_of[i]] += 1.0;
    pl[labels[i]] += 1.0;
  }

  double mi = 0.0;
  const double dn = static_cast<double>(n);
  for (const auto& [key, count] : joint) {
    const double pxy = count / dn;
    const double px = pf[key.first] / dn;
    const double py = pl[key.second] / dn;
    mi += pxy * std::log2(pxy / (px * py));
  }
  return std::max(0.0, mi);
}

}  // namespace ilc::feat
