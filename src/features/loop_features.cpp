// Per-loop static features for single-heuristic learning experiments
// (the "which loops to unroll / what factor" problem of Monsifrot et al.
// and Stephenson & Amarasinghe, which the paper's related-work section
// positions intelligent compilers against).
#include <cmath>

#include "features/features.hpp"
#include "support/assert.hpp"

namespace ilc::feat {

using namespace ir;

const std::vector<std::string>& loop_feature_names() {
  static const std::vector<std::string> names = {
      "body_size",        // total instructions in the loop
      "num_blocks",       // basic blocks in the loop
      "ratio_loads",      // loads / body size
      "ratio_stores",
      "ratio_muldiv",
      "ratio_branches",   // conditional branches / body size
      "has_call",
      "max_block_size",   // largest straight-line stretch
      "dep_chain_est",    // serial-latency estimate of the largest block
      "uses_ptr_mem",     // any pointer-typed access in the body
  };
  return names;
}

namespace {

/// Crude serial-latency estimate of a block: sum of producer latencies
/// along the register def-use chain (upper-bounds the critical path).
double dep_chain_estimate(const BasicBlock& bb) {
  double chain = 0;
  for (const Instr& inst : bb.insts) {
    switch (inst.op) {
      case Opcode::Mul: chain += 3; break;
      case Opcode::Div:
      case Opcode::Rem: chain += 20; break;
      case Opcode::Load: chain += 4; break;
      default: chain += is_pure(inst) ? 1 : 0; break;
    }
  }
  return chain;
}

}  // namespace

std::vector<double> extract_loop_features(const Function& fn,
                                          const Loop& loop) {
  double body = 0, loads = 0, stores = 0, muldiv = 0, branches = 0;
  double has_call = 0, max_block = 0, max_chain = 0, ptr_mem = 0;
  for (BlockId b : loop.blocks) {
    const BasicBlock& bb = fn.blocks[b];
    body += static_cast<double>(bb.insts.size());
    max_block = std::max(max_block, static_cast<double>(bb.insts.size()));
    max_chain = std::max(max_chain, dep_chain_estimate(bb));
    for (const Instr& inst : bb.insts) {
      switch (inst.op) {
        case Opcode::Load:
          loads += 1;
          if (inst.is_ptr) ptr_mem = 1;
          break;
        case Opcode::Store:
          stores += 1;
          if (inst.is_ptr) ptr_mem = 1;
          break;
        case Opcode::Mul:
        case Opcode::Div:
        case Opcode::Rem:
          muldiv += 1;
          break;
        case Opcode::Br:
          branches += 1;
          break;
        case Opcode::Call:
          has_call = 1;
          break;
        default:
          break;
      }
    }
  }
  const double denom = std::max(1.0, body);
  std::vector<double> f = {body,
                           static_cast<double>(loop.blocks.size()),
                           loads / denom,
                           stores / denom,
                           muldiv / denom,
                           branches / denom,
                           has_call,
                           max_block,
                           max_chain,
                           ptr_mem};
  ILC_ASSERT(f.size() == loop_feature_names().size());
  return f;
}

}  // namespace ilc::feat
