#include <cmath>

#include "features/features.hpp"
#include "ir/analysis.hpp"

namespace ilc::feat {

using namespace ir;

const std::vector<std::string>& static_feature_names() {
  static const std::vector<std::string> names = {
      "log_total_insts",   // code size scale
      "num_functions",
      "avg_block_size",
      "num_loops",
      "max_loop_depth",
      "frac_insts_in_loops",
      "ratio_loads",       // frequency-weighted instruction mix
      "ratio_stores",
      "ratio_branches",
      "ratio_muldiv",
      "ratio_calls",
      "ratio_ptr_mem",     // pointer-typed memory accesses
      "ratio_alu",
      "avg_loop_body",
      "branch_fanout",     // conditional branches per block
      "leaf_fraction",     // fraction of functions that are leaves
  };
  return names;
}

std::vector<double> extract_static(const ir::Module& mod) {
  double total_insts = 0, total_blocks = 0;
  double num_loops = 0, max_depth = 0, insts_in_loops = 0;
  double w_loads = 0, w_stores = 0, w_branches = 0, w_muldiv = 0;
  double w_calls = 0, w_ptr_mem = 0, w_alu = 0, w_total = 0;
  double loop_body_insts = 0;
  double cond_branches = 0;
  double leaves = 0;

  for (const Function& fn : mod.functions()) {
    total_insts += static_cast<double>(fn.size());
    total_blocks += static_cast<double>(fn.blocks.size());

    const auto loops = find_loops(fn);
    num_loops += static_cast<double>(loops.size());
    const auto freq = block_frequencies(fn);
    bool is_leaf = true;

    std::vector<unsigned> depth(fn.blocks.size(), 0);
    for (const Loop& l : loops)
      for (BlockId b : l.blocks) depth[b] += 1;
    for (unsigned d : depth)
      max_depth = std::max(max_depth, static_cast<double>(d));
    for (const Loop& l : loops) {
      double body = 0;
      for (BlockId b : l.blocks)
        body += static_cast<double>(fn.blocks[b].insts.size());
      loop_body_insts += body;
    }

    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
      const double w = freq[b];
      if (depth[b] > 0)
        insts_in_loops += static_cast<double>(fn.blocks[b].insts.size());
      for (const Instr& inst : fn.blocks[b].insts) {
        w_total += w;
        switch (inst.op) {
          case Opcode::Load:
            w_loads += w;
            if (inst.is_ptr) w_ptr_mem += w;
            break;
          case Opcode::Store:
            w_stores += w;
            if (inst.is_ptr) w_ptr_mem += w;
            break;
          case Opcode::Br:
            w_branches += w;
            cond_branches += 1;
            break;
          case Opcode::Mul:
          case Opcode::Div:
          case Opcode::Rem:
            w_muldiv += w;
            break;
          case Opcode::Call:
            w_calls += w;
            is_leaf = false;
            break;
          default:
            if (is_pure(inst)) w_alu += w;
            break;
        }
      }
    }
    if (is_leaf) leaves += 1;
  }

  const double nf = std::max(1.0, static_cast<double>(mod.functions().size()));
  const double wt = std::max(1.0, w_total);
  std::vector<double> f;
  f.push_back(std::log2(std::max(1.0, total_insts)));
  f.push_back(nf);
  f.push_back(total_insts / std::max(1.0, total_blocks));
  f.push_back(num_loops);
  f.push_back(max_depth);
  f.push_back(insts_in_loops / std::max(1.0, total_insts));
  f.push_back(w_loads / wt);
  f.push_back(w_stores / wt);
  f.push_back(w_branches / wt);
  f.push_back(w_muldiv / wt);
  f.push_back(w_calls / wt);
  f.push_back(w_ptr_mem / wt);
  f.push_back(w_alu / wt);
  f.push_back(loop_body_insts / std::max(1.0, num_loops));
  f.push_back(cond_branches / std::max(1.0, total_blocks));
  f.push_back(leaves / nf);
  return f;
}

}  // namespace ilc::feat
