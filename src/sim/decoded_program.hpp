// Pre-decoded simulator programs — the fast half of the evaluation hot
// path. The interpreter's legacy loop re-derives, for every dynamic
// instruction, facts that are static properties of the code: the register
// use list (a per-opcode switch in ir::append_uses, an out-of-line call),
// the branch identity (two hash_combine calls per Br), the access width,
// the latency class, and the basic-block indirection through
// fn.blocks[block].insts[ip].
//
// DecodedProgram flattens a module once into contiguous per-function
// instruction arrays with all of that precomputed, and fuses each basic
// block into a *superblock*: a straight-line superinstruction run whose
// aggregate facts (length, register pressure, use counts, terminator and
// branch metadata) are decoded once per block. The execution engine
// exploits the fusion by accounting instruction retirement and the budget
// guard per run instead of per instruction — everything between two
// control transfers is known straight-line code at decode time.
//
// Layout is split hot/cold for locality. The per-instruction DecodedInstr
// is packed to 32 bytes (two per cache line; the previous layout was 112
// bytes and measurably regressed pointer-chasing workloads by blowing L1):
// opcode, flags, access width, three registers, a 64-bit immediate, and
// two 32-bit targets. Everything an opcode handler does not touch on the
// hot path lives elsewhere: call argument lists in a per-function CallSite
// side table (reached through the instruction's t2 slot), per-block
// metadata in the Superblock array, names and frame sizes in
// DecodedFunction. Field roles are overloaded per opcode so nothing hot
// leaves the 32 bytes:
//   Br         imm = precomputed branch identity, t1/t2 = flat targets
//   GlobalAddr imm = global id
//   Call       t1 = callee function id, t2 = CallSite index
//
// Decoding depends only on the module's *code* (not its memory image or a
// machine config), which is what lets a process-wide ProgramCache share
// decoded programs across Simulators, machines, and repeat evaluations of
// the same optimized module.
//
// Invariant: executing the decoded form is bit-identical to the legacy
// walk — same results, same cycle counts, same counters, same branch ids
// fed to the predictor (tests/test_sim_decoded.cpp enforces this
// differentially, in both dispatch modes, with counters on and off).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/module.hpp"

namespace ilc::sim {

/// One pre-decoded instruction, packed to 32 bytes. Field roles are
/// overloaded per opcode (see the file comment); cold per-site data lives
/// in DecodedFunction side tables.
struct DecodedInstr {
  /// Flag bits. `kIsPtr` marks pointer loads (no sign extension);
  /// `kBackward` marks a Br whose taken target is not later in layout
  /// order (loop-shaped, drives the static predictor).
  static constexpr std::uint8_t kIsPtr = 1u << 0;
  static constexpr std::uint8_t kBackward = 1u << 1;
  static constexpr std::uint8_t kHasDst = 1u << 2;

  ir::Opcode op = ir::Opcode::Nop;
  std::uint8_t flags = 0;
  std::uint8_t width_bytes = 8;  // Load/Store access width, resolved
  std::uint8_t unused = 0;

  ir::Reg dst = ir::kNoReg;
  ir::Reg a = ir::kNoReg;
  ir::Reg b = ir::kNoReg;

  /// LoadImm value, Load/Store/Prefetch/FrameAddr offset; for Br the
  /// precomputed branch identity (identical to the legacy
  /// hash_combine(hash_combine(fn_id, block), ip), so predictor state and
  /// misprediction counts match the legacy path exactly); for GlobalAddr
  /// the global id.
  std::int64_t imm = 0;

  std::uint32_t t1 = 0;  // Jump/Br taken target (flat offset); Call: callee
  std::uint32_t t2 = 0;  // Br fall-through (flat offset); Call: CallSite idx

  bool is_ptr() const { return flags & kIsPtr; }
  bool backward() const { return flags & kBackward; }
  bool has_dst() const { return flags & kHasDst; }
};
static_assert(sizeof(DecodedInstr) == 32,
              "DecodedInstr must stay two-per-cache-line; widening it "
              "regresses pointer-chasing workloads (see bench/sim_speed)");

/// Cold per-call-site data: the argument registers. Reached via the Call
/// instruction's t2 index; calls already pay frame setup, so the extra
/// indirection is invisible.
struct CallSite {
  std::uint8_t nargs = 0;
  std::array<ir::Reg, ir::kMaxCallArgs> args{};
};

/// One fused straight-line run == one source basic block, with its
/// aggregate facts decoded once. The execution engine uses `len` for
/// run-granular retirement/budget accounting; the rest (pressure, use
/// counts, terminator shape) is scheduler/analysis-facing metadata.
struct Superblock {
  std::uint32_t entry = 0;  // flat offset of the first instruction
  std::uint32_t len = 0;    // instructions including the terminator
  std::uint32_t use_count = 0;     // register sources read (incl. call args)
  std::uint32_t reg_pressure = 0;  // distinct registers referenced
  std::uint32_t mem_ops = 0;       // loads + stores
  std::uint32_t calls = 0;
  ir::Opcode terminator = ir::Opcode::Ret;
  bool ends_backward = false;  // terminator is a loop-shaped Br
};

/// One function, flattened: blocks concatenated in layout order, plus the
/// cold side tables.
struct DecodedFunction {
  std::string name;  // owned copy; traps must not dangle into the module
  unsigned num_args = 0;
  unsigned num_regs = 0;
  std::uint64_t frame_bytes = 0;  // frame_size rounded up to 16

  std::vector<DecodedInstr> code;
  std::vector<std::uint32_t> block_entry;  // flat offset of each block
  std::vector<Superblock> blocks;          // one per source basic block
  std::vector<CallSite> callsites;         // indexed by Call.t2
};

/// A whole module's code, decoded. Owns all its data — safe to outlive the
/// source module (the ProgramCache does).
struct DecodedProgram {
  std::vector<DecodedFunction> funcs;
  std::uint64_t fingerprint = 0;      // ir::fingerprint of the source
  std::size_t instruction_count = 0;  // static instructions decoded
};

/// Decode a module. Validates terminator targets, register references, and
/// call arities (ILC_CHECK), so the execution loop can skip
/// per-instruction asserts.
std::shared_ptr<const DecodedProgram> decode_program(const ir::Module& mod);

}  // namespace ilc::sim
