// Pre-decoded simulator programs — the fast half of the evaluation hot
// path. The interpreter's legacy loop re-derives, for every dynamic
// instruction, facts that are static properties of the code: the register
// use list (a per-opcode switch in ir::append_uses, an out-of-line call),
// the branch identity (two hash_combine calls per Br), the access width,
// the latency class, and the basic-block indirection through
// fn.blocks[block].insts[ip].
//
// DecodedProgram flattens a module once into contiguous per-function
// instruction arrays with all of that precomputed. Branch/jump targets are
// resolved to flat offsets, so the inner loop is a single indexed fetch.
// Decoding depends only on the module's *code* (not its memory image or a
// machine config), which is what lets a process-wide ProgramCache share
// decoded programs across Simulators, machines, and repeat evaluations of
// the same optimized module.
//
// Invariant: executing the decoded form is bit-identical to the legacy
// walk — same results, same cycle counts, same counters, same branch ids
// fed to the predictor (tests/test_sim_decoded.cpp enforces this
// differentially).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/module.hpp"

namespace ilc::sim {

/// Latency class of an instruction, resolved against a MachineConfig at
/// execution time (so decoded programs stay machine-independent).
enum class LatClass : std::uint8_t { Alu = 0, Mul = 1, Div = 2 };

/// One pre-decoded instruction. Larger than ir::Instr, but every field the
/// inner loop touches is computed and the array is contiguous in execution
/// order.
struct DecodedInstr {
  ir::Opcode op = ir::Opcode::Nop;
  LatClass lat = LatClass::Alu;
  std::uint8_t width_bytes = 8;  // Load/Store access width, resolved
  bool is_ptr = false;
  bool has_dst = false;
  bool backward = false;  // Br: taken target not later in layout order
  std::uint8_t nu = 0;    // register uses (sources incl. call args)
  std::uint8_t nargs = 0;

  ir::Reg dst = ir::kNoReg;
  ir::Reg a = ir::kNoReg;
  ir::Reg b = ir::kNoReg;
  std::int64_t imm = 0;

  std::uint32_t t1 = 0;  // Jump/Br taken target as a *flat* code offset
  std::uint32_t t2 = 0;  // Br fall-through target as a flat code offset
  ir::FuncId callee = ir::kNoFunc;
  ir::GlobalId gid = ir::kNoGlobal;

  /// Precomputed branch identity for Br, identical to the legacy
  /// hash_combine(hash_combine(fn_id, block), ip) so predictor state and
  /// misprediction counts match the legacy path exactly.
  std::uint64_t branch_id = 0;

  std::array<ir::Reg, 2 + ir::kMaxCallArgs> uses{};
  std::array<ir::Reg, ir::kMaxCallArgs> args{};
};

/// One function, flattened: blocks concatenated in layout order.
struct DecodedFunction {
  std::string name;  // owned copy; traps must not dangle into the module
  unsigned num_args = 0;
  unsigned num_regs = 0;
  std::uint64_t frame_bytes = 0;  // frame_size rounded up to 16

  std::vector<DecodedInstr> code;
  std::vector<std::uint32_t> block_entry;  // flat offset of each block
};

/// A whole module's code, decoded. Owns all its data — safe to outlive the
/// source module (the ProgramCache does).
struct DecodedProgram {
  std::vector<DecodedFunction> funcs;
  std::uint64_t fingerprint = 0;      // ir::fingerprint of the source
  std::size_t instruction_count = 0;  // static instructions decoded
};

/// Decode a module. Validates terminator targets and register references
/// (ILC_CHECK), so the execution loop can skip per-instruction asserts.
std::shared_ptr<const DecodedProgram> decode_program(const ir::Module& mod);

}  // namespace ilc::sim
