#include "sim/program_cache.hpp"

#include "ir/fingerprint.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"

namespace ilc::sim {

namespace {

obs::Counter& c_pc_hits() {
  static obs::Counter c =
      obs::Registry::instance().counter("sim.program_cache.hits");
  return c;
}
obs::Counter& c_pc_misses() {
  static obs::Counter c =
      obs::Registry::instance().counter("sim.program_cache.misses");
  return c;
}
obs::Histogram& h_decode_us() {
  static obs::Histogram h =
      obs::Registry::instance().histogram("sim.decode_us");
  return h;
}

}  // namespace

ProgramCache& ProgramCache::instance() {
  static ProgramCache cache;
  return cache;
}

std::shared_ptr<const DecodedProgram> ProgramCache::get(
    const ir::Module& mod) {
  return get(mod, ir::fingerprint(mod));
}

std::shared_ptr<const DecodedProgram> ProgramCache::get(
    const ir::Module& mod, std::uint64_t fingerprint) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(fingerprint);
    if (it != map_.end()) {
      ++hits_;
      c_pc_hits().add(1);
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return it->second.program;
    }
    ++misses_;
    c_pc_misses().add(1);
  }

  // Decode outside the lock: concurrent misses on the same fingerprint
  // decode twice and the loser's copy is dropped — decoding is cheap and
  // this keeps slow decodes from serializing unrelated lookups.
  std::shared_ptr<const DecodedProgram> decoded;
  {
    obs::ScopedTimerUs timer(h_decode_us());
    decoded = decode_program(mod);
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(fingerprint);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.program;
  }
  lru_.push_front(fingerprint);
  map_.emplace(fingerprint, Entry{decoded, lru_.begin()});
  while (map_.size() > capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  return decoded;
}

std::size_t ProgramCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::uint64_t ProgramCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t ProgramCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

void ProgramCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
}

}  // namespace ilc::sim
