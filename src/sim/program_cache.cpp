#include "sim/program_cache.hpp"

#include "ir/fingerprint.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"

namespace ilc::sim {

namespace {

obs::Counter& c_pc_hits() {
  static obs::Counter c =
      obs::Registry::instance().counter("sim.program_cache.hits");
  return c;
}
obs::Counter& c_pc_misses() {
  static obs::Counter c =
      obs::Registry::instance().counter("sim.program_cache.misses");
  return c;
}
obs::Counter& c_pc_evictions() {
  static obs::Counter c =
      obs::Registry::instance().counter("sim.program_cache.evictions");
  return c;
}
obs::Histogram& h_decode_us() {
  static obs::Histogram h =
      obs::Registry::instance().histogram("sim.decode_us");
  return h;
}

}  // namespace

ProgramCache& ProgramCache::instance() {
  static ProgramCache cache;
  return cache;
}

std::shared_ptr<const DecodedProgram> ProgramCache::get(
    const ir::Module& mod) {
  return get(mod, ir::fingerprint(mod));
}

std::shared_ptr<const DecodedProgram> ProgramCache::get(
    const ir::Module& mod, std::uint64_t fingerprint) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      auto it = map_.find(fingerprint);
      if (it == map_.end()) break;
      if (it->second.program != nullptr) {
        ++hits_;
        c_pc_hits().add(1);
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        return it->second.program;
      }
      // Another thread is decoding this fingerprint right now: wait for
      // it to publish instead of decoding a duplicate. Re-check from
      // scratch after waking — the leader may have failed and erased the
      // placeholder, making this thread the new leader.
      cv_.wait(lock);
    }
    ++misses_;
    c_pc_misses().add(1);
    map_.emplace(fingerprint, Entry{});  // pending: this thread leads
  }

  // Decode outside the lock so a slow decode never serializes unrelated
  // lookups; followers of this fingerprint wait on cv_.
  std::shared_ptr<const DecodedProgram> decoded;
  try {
    obs::ScopedTimerUs timer(h_decode_us());
    decoded = decode_program(mod);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(fingerprint);
    if (it != map_.end() && it->second.program == nullptr) map_.erase(it);
    cv_.notify_all();
    throw;
  }

  std::lock_guard<std::mutex> lock(mu_);
  // The placeholder is normally still ours, but clear() may have dropped
  // it (and a new leader may have re-inserted one) while we decoded.
  auto it = map_.find(fingerprint);
  if (it == map_.end()) it = map_.emplace(fingerprint, Entry{}).first;
  if (it->second.program == nullptr) {
    it->second.program = decoded;
    lru_.push_front(fingerprint);
    it->second.lru_pos = lru_.begin();
    // Evict published entries only (pending ones are absent from lru_).
    while (lru_.size() > capacity_) {
      map_.erase(lru_.back());
      lru_.pop_back();
      ++evictions_;
      c_pc_evictions().add(1);
    }
  }
  cv_.notify_all();
  return decoded;
}

std::size_t ProgramCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::uint64_t ProgramCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t ProgramCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::uint64_t ProgramCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

void ProgramCache::clear() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    lru_.clear();
  }
  // Leaders whose placeholder vanished re-insert on publish; wake any
  // followers so they re-check rather than wait on an erased entry.
  cv_.notify_all();
}

}  // namespace ilc::sim
