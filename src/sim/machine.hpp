// Machine configurations: the cost-model constants of the simulated
// targets. Two presets mirror the paper's platforms:
//   c6713_like() — VLIW DSP flavour: exposed latencies, static branch
//                  prediction, small shallow memory hierarchy.
//   amd_like()   — superscalar workstation flavour: dynamic prediction,
//                  deeper hierarchy, expensive DRAM.
// Constants are plausible rather than calibrated; the paper argues the
// performance oracle only needs to be accurate in a *relative* sense.
#pragma once

#include <cstdint>
#include <string>

#include "sim/cache.hpp"
#include "sim/dispatch.hpp"

namespace ilc::sim {

struct MachineConfig {
  std::string name;

  CacheConfig l1{4096, 32, 2, 1};
  CacheConfig l2{32768, 64, 4, 8};
  std::uint32_t mem_latency = 80;

  std::uint32_t mispredict_penalty = 6;
  std::uint32_t bpred_entries = 0;  // 0 = static backward-taken

  std::uint32_t lat_alu = 1;
  std::uint32_t lat_mul = 2;
  std::uint32_t lat_div = 18;
  std::uint32_t call_overhead = 2;  // cycles per call/return pair
  std::uint32_t issue_width = 1;    // instructions issued per cycle

  /// Abort a run after this many dynamic instructions (infinite-loop guard).
  std::uint64_t max_instructions = 200'000'000;

  /// Execute pre-decoded programs (the fast path). Off = the legacy
  /// ir::Instr walk, kept as the differential reference and the baseline
  /// of bench/sim_speed. Both paths are bit-identical in results, cycles,
  /// and counters.
  bool decoded_execution = true;

  /// Collect PAPI-style hardware counters. Off selects the fast decoded
  /// dispatch table with all counter bookkeeping compiled out of the
  /// per-instruction path: RunResult::counters comes back all-zero while
  /// ret/cycles/instructions stay bit-identical (the cache and branch
  /// models still run — they drive the timing). The legacy path ignores
  /// this and always collects.
  bool collect_counters = true;

  /// Dispatch strategy for decoded execution (see sim/dispatch.hpp).
  /// Auto = threaded when the build supports it, else the portable
  /// switch; both produce bit-identical results.
  DispatchMode dispatch = DispatchMode::Auto;
};

MachineConfig c6713_like();
MachineConfig amd_like();

}  // namespace ilc::sim
