// Set-associative data cache with true-LRU replacement and write-allocate
// policy. Used for both levels of the simulated hierarchy.
#pragma once

#include <cstdint>
#include <vector>

namespace ilc::sim {

struct CacheConfig {
  std::uint32_t size_bytes = 4096;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 2;
  std::uint32_t hit_latency = 3;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  /// Look up the line containing addr; fills it on miss. Returns hit.
  bool access(std::uint64_t addr);

  /// Reset contents (cold cache) without changing configuration.
  void clear();

  const CacheConfig& config() const { return cfg_; }
  std::uint32_t num_sets() const { return sets_; }

 private:
  struct Line {
    std::uint64_t tag = ~0ULL;
    std::uint64_t lru = 0;  // last-use stamp
    bool valid = false;
  };

  CacheConfig cfg_;
  std::uint32_t sets_;
  std::uint32_t line_shift_;
  std::vector<Line> lines_;  // sets_ * ways, row-major by set
  std::uint64_t tick_ = 0;
};

}  // namespace ilc::sim
