// Set-associative data cache with true-LRU replacement and write-allocate
// policy. Used for both levels of the simulated hierarchy.
#pragma once

#include <cstdint>
#include <vector>

namespace ilc::sim {

struct CacheConfig {
  std::uint32_t size_bytes = 4096;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 2;
  std::uint32_t hit_latency = 3;
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  /// Look up the line containing addr; fills it on miss. Returns hit.
  /// Defined inline: this is the hottest leaf of the decoded execution
  /// engine (every Load/Store hits it once per level), and keeping the
  /// body visible lets the engine TU inline the common L1-hit path.
  bool access(std::uint64_t addr) {
    ++tick_;
    const std::uint64_t tag = addr >> line_shift_;  // full line address
    const std::uint32_t set = static_cast<std::uint32_t>(tag) & (sets_ - 1);
    // Dispatch on associativity so the scans below fully unroll with the
    // way count a compile-time constant. The branch on ways is perfectly
    // predicted (it never changes for a given cache).
    switch (cfg_.ways) {
      case 1: return access_set<1>(tag, set);
      case 2: return access_set<2>(tag, set);
      case 4: return access_set<4>(tag, set);
      case 8: return access_set<8>(tag, set);
      default: return access_set<0>(tag, set);
    }
  }

  /// Reset contents (cold cache) without changing configuration.
  void clear();

  const CacheConfig& config() const { return cfg_; }
  std::uint32_t num_sets() const { return sets_; }

 private:
  /// Sentinel tag for an invalid (never-filled) way. Unreachable by real
  /// accesses: tags are addresses shifted right by line_shift_.
  static constexpr std::uint64_t kInvalidTag = ~0ULL;

  /// Probe one set. kWays = 0 is the generic runtime-associativity form.
  /// The hit scan selects the matching way with conditional moves rather
  /// than an early-exit branch per way: which way hits is data-dependent
  /// and would cost the *host* a mispredict per probe. Tags are unique
  /// within a set, so any-match selection is well-defined.
  template <std::uint32_t kWays>
  bool access_set(std::uint64_t tag, std::uint32_t set) {
    const std::uint32_t ways = kWays != 0 ? kWays : cfg_.ways;
    std::uint64_t* const tb = &tags_[static_cast<std::size_t>(set) * ways];
    std::uint64_t* const lb = &lru_[static_cast<std::size_t>(set) * ways];

    std::uint32_t hit_way = ways;
    for (std::uint32_t w = 0; w < ways; ++w)
      hit_way = tb[w] == tag ? w : hit_way;
    if (hit_way != ways) {
      lb[hit_way] = tick_;
      return true;
    }
    // Same victim choice as the historical fused scan: the last invalid
    // way, else the least-recently-used one (first way wins ties).
    // Invalid ways hold kInvalidTag and never match the hit scan: a real
    // tag is an address right-shifted by line_shift_ >= 3, so its top
    // bits are zero.
    std::uint32_t victim = 0;
    bool victim_invalid = tb[0] == kInvalidTag;
    for (std::uint32_t w = 1; w < ways; ++w) {
      if (tb[w] == kInvalidTag) {
        victim = w;
        victim_invalid = true;
      } else if (!victim_invalid && lb[w] < lb[victim]) {
        victim = w;
      }
    }
    tb[victim] = tag;
    lb[victim] = tick_;
    return false;
  }

  CacheConfig cfg_;
  std::uint32_t sets_;
  std::uint32_t line_shift_;
  // Structure-of-arrays, sets_ * ways each, row-major by set: the hit
  // scan touches only the tag row.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> lru_;  // last-use stamps
  std::uint64_t tick_ = 0;
};

}  // namespace ilc::sim
