// Dispatch-mode selection for the decoded execution engine.
//
// The engine's inner loop is compiled in two forms:
//   threaded — computed-goto dispatch (one indirect jump per handler, so
//     the host branch predictor learns per-opcode successor patterns
//     instead of serializing on one central switch branch). Requires the
//     GNU labels-as-values extension (GCC/Clang).
//   switch — a portable for(;;)+switch fallback, always compiled.
//
// ILC_SIM_HAS_THREADED_DISPATCH says whether the threaded form exists in
// this build. Define ILC_SIM_SWITCH_DISPATCH_ONLY (CMake option
// ILC_SIM_SWITCH_DISPATCH_ONLY=ON) to force the portable fallback even on
// GCC/Clang — CI builds and tests that configuration so both paths stay
// green. At runtime, MachineConfig::dispatch picks between the compiled
// forms (DispatchMode::Auto prefers threaded when available).
#pragma once

#if !defined(ILC_SIM_SWITCH_DISPATCH_ONLY) && \
    (defined(__GNUC__) || defined(__clang__))
#define ILC_SIM_HAS_THREADED_DISPATCH 1
#else
#define ILC_SIM_HAS_THREADED_DISPATCH 0
#endif

namespace ilc::sim {

/// Runtime dispatch selection for decoded execution. Threaded falls back
/// to Switch when the build has no computed-goto support.
enum class DispatchMode : unsigned char { Auto, Threaded, Switch };

/// True when this build can honor DispatchMode::Threaded.
inline constexpr bool threaded_dispatch_available() {
  return ILC_SIM_HAS_THREADED_DISPATCH != 0;
}

}  // namespace ilc::sim
