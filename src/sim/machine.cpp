#include "sim/machine.hpp"

namespace ilc::sim {

MachineConfig c6713_like() {
  MachineConfig m;
  m.name = "c6713-like";
  m.l1 = CacheConfig{4096, 32, 2, 1};     // 4 KiB L1D, 32 B lines
  m.l2 = CacheConfig{65536, 64, 4, 8};    // 64 KiB unified L2
  m.mem_latency = 70;
  m.mispredict_penalty = 5;  // exposed branch delay slots
  m.bpred_entries = 0;       // no dynamic prediction on the DSP
  m.lat_alu = 1;
  m.lat_mul = 2;
  m.lat_div = 18;
  m.call_overhead = 4;
  m.issue_width = 2;  // the real C6713 is an 8-wide VLIW; 2 keeps the
                      // exposed-ILP character without overfitting
  return m;
}

MachineConfig amd_like() {
  MachineConfig m;
  m.name = "amd-like";
  m.l1 = CacheConfig{4096, 64, 2, 3};     // small L1D so suite working sets bite
  m.l2 = CacheConfig{32768, 64, 8, 14};   // 32 KiB L2
  m.mem_latency = 180;
  m.mispredict_penalty = 12;
  m.bpred_entries = 1024;
  m.lat_alu = 1;
  m.lat_mul = 3;
  m.lat_div = 40;
  m.call_overhead = 2;
  m.issue_width = 2;  // modestly superscalar, like the K8 generation
  return m;
}

}  // namespace ilc::sim
