// The execution engine: a direct interpreter of ilc IR coupled to a
// scoreboarded single-issue timing model, the two-level cache hierarchy,
// and the branch predictor. Deterministic; collects PAPI-style counters.
//
// The Simulator owns persistent machine state (memory image, caches,
// predictor), so a program can be invoked repeatedly — which is exactly
// what the dynamic-optimization module needs to audit code versions
// across execution intervals.
//
// Two execution paths produce bit-identical results:
//   decoded (default) — executes a sim::DecodedProgram (flat pre-decoded
//     superblock arrays shared through the process-wide ProgramCache);
//     this is the evaluation hot path. Four specializations of one engine
//     body (sim/exec_loop.inc) cover {threaded, switch} dispatch ×
//     {instrumented, fast} counter modes — selected by
//     MachineConfig::dispatch and MachineConfig::collect_counters.
//   legacy — walks ir::Instr trees directly, re-deriving use lists,
//     branch ids, and widths per instruction. Kept as the differential
//     reference (tests) and the baseline of bench/sim_speed.
// Select with MachineConfig::decoded_execution.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "ir/module.hpp"
#include "sim/branch_predictor.hpp"
#include "sim/cache.hpp"
#include "sim/counters.hpp"
#include "sim/decoded_program.hpp"
#include "sim/machine.hpp"

namespace ilc::sim {

/// Thrown on runtime faults: null/out-of-bounds access, call depth,
/// instruction budget exhaustion. Optimized code must never introduce one.
class TrapError : public std::runtime_error {
 public:
  explicit TrapError(const std::string& what) : std::runtime_error(what) {}
};

/// Result of one function invocation.
struct RunResult {
  std::int64_t ret = 0;          // return value (0 for void)
  std::uint64_t cycles = 0;      // cycles spent in this invocation
  std::uint64_t instructions = 0;
  Counters counters;             // deltas for this invocation
};

class Simulator {
 public:
  /// When `decoded` is null and the config selects decoded execution, the
  /// program is obtained from the process-wide ProgramCache. Callers that
  /// already fingerprinted the module (the search Evaluator) pass the
  /// decoded program explicitly to avoid a second fingerprint pass.
  Simulator(const ir::Module& mod, const MachineConfig& cfg,
            std::shared_ptr<const DecodedProgram> decoded = nullptr);

  /// Invoke a function by id with the given arguments.
  RunResult call(ir::FuncId fn, const std::vector<std::int64_t>& args = {});
  /// Invoke by name; throws if absent.
  RunResult call(const std::string& fn_name,
                 const std::vector<std::int64_t>& args = {});
  /// Invoke `main()` — the whole-program entry used by the harnesses.
  RunResult run();

  /// Cumulative counters since construction / last reset.
  const Counters& counters() const { return total_; }
  void reset_counters() { total_ = Counters{}; }

  /// Reset caches and predictor to cold state (memory is untouched).
  void clear_microarch_state();

  /// Swap in a different module (e.g. a re-optimized code version) while
  /// keeping memory, caches, and predictor state — the multi-versioning
  /// primitive of the dynamic-optimization module. The new module must
  /// produce an identical memory layout (same globals, sizes, pointer
  /// width); throws otherwise. The caller must keep `next` alive.
  void switch_module(const ir::Module& next);

  /// Direct memory access, used by tests and workload validators.
  std::int64_t read_memory(std::uint64_t addr, unsigned bytes) const;
  void write_memory(std::uint64_t addr, std::int64_t value, unsigned bytes);
  std::uint64_t global_base(ir::GlobalId gid) const;
  const MachineConfig& config() const { return cfg_; }
  const ir::Module& module() const { return *mod_; }
  /// Null when executing on the legacy path.
  const DecodedProgram* decoded_program() const { return decoded_.get(); }

 private:
  struct Frame {
    const ir::Function* fn = nullptr;
    ir::FuncId fn_id = ir::kNoFunc;
    std::vector<std::int64_t> regs;
    std::vector<std::uint64_t> ready;  // scoreboard: cycle when reg is ready
    std::uint64_t frame_base = 0;
    ir::BlockId block = 0;
    ir::BlockId prev_block = 0;
    std::size_t ip = 0;
    ir::Reg ret_dst = ir::kNoReg;  // caller register receiving the result
  };

  /// Decoded-path activation record, POD: registers and scoreboard live in
  /// the contiguous per-call stacks below (reg_base indexes both), so a
  /// simulated call allocates nothing after warmup.
  struct ExecFrame {
    const DecodedFunction* fn = nullptr;
    std::uint64_t frame_base = 0;
    std::uint32_t reg_base = 0;
    std::uint32_t resume_ip = 0;  // flat offset to resume at after a call
    ir::Reg ret_dst = ir::kNoReg;
  };

  RunResult call_legacy(ir::FuncId fn, const std::vector<std::int64_t>& args);
  RunResult call_decoded(ir::FuncId fn, const std::vector<std::int64_t>& args);

  /// The decoded engine body (sim/exec_loop.inc), instantiated for both
  /// dispatch forms × both counter modes. kCounters=false compiles every
  /// counter update out of the per-instruction path (the "fast" table);
  /// the cache/branch models still run, so timing is bit-identical.
  template <bool kCounters>
  RunResult exec_decoded_switch(ir::FuncId fn,
                                const std::vector<std::int64_t>& args);
#if ILC_SIM_HAS_THREADED_DISPATCH
  template <bool kCounters>
  RunResult exec_decoded_threaded(ir::FuncId fn,
                                  const std::vector<std::int64_t>& args);
#endif

  /// Data-cache access; returns total load-to-use latency and updates
  /// counters. is_write distinguishes load/store miss counters. Software
  /// prefetches pass counted=false: they move lines but are invisible to
  /// the architectural counters (as on real PMUs).
  std::uint32_t mem_access(std::uint64_t addr, bool is_write,
                           bool counted = true);

  std::int64_t load_value(std::uint64_t addr, unsigned bytes, bool is_ptr) const;
  void store_value(std::uint64_t addr, std::int64_t value, unsigned bytes);
  void bounds_check(std::uint64_t addr, unsigned bytes) const;

  const ir::Module* mod_;  // never null; switchable via switch_module
  std::shared_ptr<const DecodedProgram> decoded_;  // null on the legacy path
  MachineConfig cfg_;
  ir::MemoryImage image_;
  Cache l1_;
  Cache l2_;
  BranchPredictor bpred_;
  Counters total_;
  std::uint64_t cycle_ = 0;        // monotone machine clock across calls
  std::uint32_t slots_used_ = 0;   // instructions issued in cycle_
  std::uint64_t executed_ = 0;

  // Decoded-path scratch, reused across invocations (no allocation on the
  // simulated call path after warmup).
  std::vector<ExecFrame> frames_;
  std::vector<std::int64_t> regstack_;
  std::vector<std::uint64_t> readystack_;

  static constexpr unsigned kMaxCallDepth = 256;
};

}  // namespace ilc::sim
