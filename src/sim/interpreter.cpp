#include "sim/interpreter.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "ir/printer.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "sim/program_cache.hpp"
#include "support/assert.hpp"
#include "support/hash.hpp"

namespace ilc::sim {

using ir::BlockId;
using ir::FuncId;
using ir::Instr;
using ir::Opcode;
using ir::Reg;

// Observability hooks, at invocation granularity only: one handle lookup
// per site (function-local static), a handful of relaxed atomic adds per
// simulated call, and never anything inside the per-instruction loop.
namespace {

obs::Counter& c_invocations() {
  static obs::Counter c = obs::Registry::instance().counter("sim.invocations");
  return c;
}
obs::Counter& c_instructions() {
  static obs::Counter c =
      obs::Registry::instance().counter("sim.instructions");
  return c;
}
obs::Counter& c_branch_mispredicts() {
  static obs::Counter c =
      obs::Registry::instance().counter("sim.branch.mispredicts");
  return c;
}
obs::Counter& c_l1_misses() {
  static obs::Counter c =
      obs::Registry::instance().counter("sim.cache.l1_misses");
  return c;
}
obs::Counter& c_l2_misses() {
  static obs::Counter c =
      obs::Registry::instance().counter("sim.cache.l2_misses");
  return c;
}
obs::Histogram& h_execute_us() {
  static obs::Histogram h =
      obs::Registry::instance().histogram("sim.execute_us");
  return h;
}

// Simulated memory is little-endian by definition (the byte-assembly
// loops in load_value/store_value). On little-endian hosts the same
// result is a single fixed-width access; big-endian hosts keep the loop.
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
inline std::uint64_t load_le(const std::uint8_t* p, unsigned bytes) {
  switch (bytes) {
    case 1: return p[0];
    case 2: {
      std::uint16_t v;
      std::memcpy(&v, p, 2);
      return v;
    }
    case 4: {
      std::uint32_t v;
      std::memcpy(&v, p, 4);
      return v;
    }
    default: {
      std::uint64_t v;
      std::memcpy(&v, p, 8);
      return v;
    }
  }
}
inline void store_le(std::uint8_t* p, std::uint64_t v, unsigned bytes) {
  switch (bytes) {
    case 1: *p = static_cast<std::uint8_t>(v); break;
    case 2: {
      const std::uint16_t t = static_cast<std::uint16_t>(v);
      std::memcpy(p, &t, 2);
      break;
    }
    case 4: {
      const std::uint32_t t = static_cast<std::uint32_t>(v);
      std::memcpy(p, &t, 4);
      break;
    }
    default: std::memcpy(p, &v, 8); break;
  }
}
#else
inline std::uint64_t load_le(const std::uint8_t* p, unsigned bytes) {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < bytes; ++i)
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}
inline void store_le(std::uint8_t* p, std::uint64_t v, unsigned bytes) {
  for (unsigned i = 0; i < bytes; ++i)
    p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
#endif

}  // namespace

Simulator::Simulator(const ir::Module& mod, const MachineConfig& cfg,
                     std::shared_ptr<const DecodedProgram> decoded)
    : mod_(&mod),
      cfg_(cfg),
      image_(mod.build_image()),
      l1_(cfg.l1),
      l2_(cfg.l2),
      bpred_(cfg.bpred_entries) {
  if (cfg_.decoded_execution)
    decoded_ = decoded ? std::move(decoded) : ProgramCache::instance().get(mod);
}

void Simulator::switch_module(const ir::Module& next) {
  const ir::MemoryImage other = next.build_image(image_.stack_size);
  ILC_CHECK_MSG(other.global_base == image_.global_base &&
                    other.bytes.size() == image_.bytes.size() &&
                    other.ptr_bytes == image_.ptr_bytes,
                "switch_module requires an identical memory layout");
  mod_ = &next;
  if (decoded_) decoded_ = ProgramCache::instance().get(next);
}

void Simulator::clear_microarch_state() {
  l1_.clear();
  l2_.clear();
  bpred_.clear();
}

void Simulator::bounds_check(std::uint64_t addr, unsigned bytes) const {
  if (addr < ir::MemoryImage::kNullGuard ||
      addr + bytes > image_.bytes.size()) {
    std::ostringstream os;
    os << "memory trap: access of " << bytes << " bytes at address " << addr
       << " (image size " << image_.bytes.size() << ")";
    throw TrapError(os.str());
  }
}

std::int64_t Simulator::load_value(std::uint64_t addr, unsigned bytes,
                                   bool is_ptr) const {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < bytes; ++i)
    v |= static_cast<std::uint64_t>(image_.bytes[addr + i]) << (8 * i);
  if (is_ptr || bytes == 8) return static_cast<std::int64_t>(v);
  // Sign-extend data loads narrower than 8 bytes.
  const unsigned shift = 64 - 8 * bytes;
  return static_cast<std::int64_t>(v << shift) >> shift;
}

void Simulator::store_value(std::uint64_t addr, std::int64_t value,
                            unsigned bytes) {
  const auto v = static_cast<std::uint64_t>(value);
  for (unsigned i = 0; i < bytes; ++i)
    image_.bytes[addr + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::int64_t Simulator::read_memory(std::uint64_t addr, unsigned bytes) const {
  bounds_check(addr, bytes);
  return load_value(addr, bytes, /*is_ptr=*/false);
}

void Simulator::write_memory(std::uint64_t addr, std::int64_t value,
                             unsigned bytes) {
  bounds_check(addr, bytes);
  store_value(addr, value, bytes);
}

std::uint64_t Simulator::global_base(ir::GlobalId gid) const {
  ILC_CHECK(gid < image_.global_base.size());
  return image_.global_base[gid];
}

std::uint32_t Simulator::mem_access(std::uint64_t addr, bool is_write,
                                    bool counted) {
  if (counted) total_[L1_TCA] += 1;
  if (l1_.access(addr)) return cfg_.l1.hit_latency;
  if (counted) {
    total_[L1_TCM] += 1;
    total_[is_write ? L1_STM : L1_LDM] += 1;
    total_[L2_TCA] += 1;
  }
  if (l2_.access(addr)) return cfg_.l1.hit_latency + cfg_.l2.hit_latency;
  if (counted) {
    total_[L2_TCM] += 1;
    total_[is_write ? L2_STM : L2_LDM] += 1;
  }
  return cfg_.l1.hit_latency + cfg_.l2.hit_latency + cfg_.mem_latency;
}

RunResult Simulator::call(const std::string& fn_name,
                          const std::vector<std::int64_t>& args) {
  const FuncId id = mod_->find_function(fn_name);
  ILC_CHECK_MSG(id != ir::kNoFunc, "no function named " << fn_name);
  return call(id, args);
}

RunResult Simulator::run() { return call("main"); }

RunResult Simulator::call(FuncId fn_id,
                          const std::vector<std::int64_t>& args) {
  obs::ScopedTimerUs timer(h_execute_us());
  const RunResult rr =
      decoded_ ? call_decoded(fn_id, args) : call_legacy(fn_id, args);
  c_invocations().add(1);
  c_instructions().add(rr.instructions);
  c_branch_mispredicts().add(rr.counters[BR_MSP]);
  c_l1_misses().add(rr.counters[L1_TCM]);
  c_l2_misses().add(rr.counters[L2_TCM]);
  return rr;
}

RunResult Simulator::call_legacy(FuncId fn_id,
                                 const std::vector<std::int64_t>& args) {
  const Counters before = total_;
  const std::uint64_t cycles_before = cycle_;
  const std::uint64_t executed_before = executed_;
  const std::uint64_t budget_end = executed_ + cfg_.max_instructions;

  std::vector<Frame> stack;
  std::uint64_t frame_cursor = image_.stack_base;

  auto push_frame = [&](FuncId id, ir::Reg ret_dst) -> Frame& {
    const ir::Function& fn = mod_->function(id);
    if (stack.size() >= kMaxCallDepth)
      throw TrapError("call depth exceeded in " + fn.name);
    Frame fr;
    fr.fn = &fn;
    fr.fn_id = id;
    fr.regs.assign(fn.num_regs, 0);
    fr.ready.assign(fn.num_regs, 0);
    fr.frame_base = frame_cursor;
    frame_cursor += (fn.frame_size + 15) / 16 * 16;
    if (frame_cursor > image_.stack_base + image_.stack_size)
      throw TrapError("stack overflow in " + fn.name);
    fr.ret_dst = ret_dst;
    stack.push_back(std::move(fr));
    return stack.back();
  };

  {
    const ir::Function& fn = mod_->function(fn_id);
    ILC_CHECK_MSG(args.size() == fn.num_args,
                  "arity mismatch calling " << fn.name);
    Frame& fr = push_frame(fn_id, ir::kNoReg);
    for (std::size_t i = 0; i < args.size(); ++i) fr.regs[i] = args[i];
  }

  std::int64_t final_ret = 0;

  while (!stack.empty()) {
    Frame& fr = stack.back();
    const ir::Function& fn = *fr.fn;
    ILC_ASSERT(fr.block < fn.blocks.size());
    const ir::BasicBlock& bb = fn.blocks[fr.block];
    ILC_ASSERT(fr.ip < bb.insts.size());
    const Instr& inst = bb.insts[fr.ip];

    if (++executed_ > budget_end)
      throw TrapError("instruction budget exhausted (runaway loop?)");
    total_[TOT_INS] += 1;

    // --- timing: stall until register sources are ready, then claim an
    // issue slot (issue_width instructions share a cycle).
    std::array<Reg, 2 + ir::kMaxCallArgs> uses;
    unsigned nu = 0;
    ir::append_uses(inst, uses, nu);
    std::uint64_t earliest = 0;
    for (unsigned u = 0; u < nu; ++u)
      earliest = std::max(earliest, fr.ready[uses[u]]);
    if (earliest > cycle_) {
      cycle_ = earliest;
      slots_used_ = 0;
    } else if (slots_used_ >= cfg_.issue_width) {
      cycle_ += 1;
      slots_used_ = 0;
    }
    ++slots_used_;

    std::uint32_t result_latency = cfg_.lat_alu;
    bool advance = true;  // move ip forward unless control transfer happened

    switch (inst.op) {
      case Opcode::Nop:
        break;
      case Opcode::LoadImm:
        fr.regs[inst.dst] = inst.imm;
        break;
      case Opcode::Mov:
        fr.regs[inst.dst] = fr.regs[inst.a];
        break;
      case Opcode::GlobalAddr:
        fr.regs[inst.dst] =
            static_cast<std::int64_t>(image_.global_base[inst.gid]);
        break;
      case Opcode::FrameAddr:
        fr.regs[inst.dst] =
            static_cast<std::int64_t>(fr.frame_base + inst.imm);
        break;
      case Opcode::Neg:
      case Opcode::Not: {
        std::int64_t out = 0;
        ir::fold_constant(inst.op, fr.regs[inst.a], 0, out);
        fr.regs[inst.dst] = out;
        break;
      }
      case Opcode::Mul:
        result_latency = cfg_.lat_mul;
        goto binary;
      case Opcode::Div:
      case Opcode::Rem:
        result_latency = cfg_.lat_div;
        goto binary;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Min:
      case Opcode::Max:
      case Opcode::CmpEq:
      case Opcode::CmpNe:
      case Opcode::CmpLt:
      case Opcode::CmpLe:
      case Opcode::CmpGt:
      case Opcode::CmpGe:
      binary: {
        std::int64_t out = 0;
        const bool ok =
            ir::fold_constant(inst.op, fr.regs[inst.a], fr.regs[inst.b], out);
        ILC_ASSERT(ok);
        fr.regs[inst.dst] = out;
        break;
      }
      case Opcode::Load: {
        const auto addr = static_cast<std::uint64_t>(
            fr.regs[inst.a] + inst.imm);
        const unsigned bytes = ir::width_bytes(inst.width);
        bounds_check(addr, bytes);
        total_[LD_INS] += 1;
        result_latency = mem_access(addr, /*is_write=*/false);
        fr.regs[inst.dst] = load_value(addr, bytes, inst.is_ptr);
        break;
      }
      case Opcode::Store: {
        const auto addr = static_cast<std::uint64_t>(
            fr.regs[inst.a] + inst.imm);
        const unsigned bytes = ir::width_bytes(inst.width);
        bounds_check(addr, bytes);
        total_[SR_INS] += 1;
        // Stores retire through a store buffer: the cache access is
        // counted but does not stall the pipeline.
        mem_access(addr, /*is_write=*/true);
        store_value(addr, fr.regs[inst.b], bytes);
        break;
      }
      case Opcode::Prefetch: {
        const auto addr = static_cast<std::uint64_t>(
            fr.regs[inst.a] + inst.imm);
        // Non-binding: out-of-range prefetches are dropped, in-range ones
        // warm the hierarchy without stalling.
        if (addr >= ir::MemoryImage::kNullGuard &&
            addr + 8 <= image_.bytes.size()) {
          mem_access(addr, /*is_write=*/false, /*counted=*/false);
        }
        break;
      }
      case Opcode::Jump:
        fr.prev_block = fr.block;
        fr.block = inst.t1;
        fr.ip = 0;
        advance = false;
        break;
      case Opcode::Br: {
        total_[BR_INS] += 1;
        const bool taken = fr.regs[inst.a] != 0;
        const std::uint64_t branch_id = support::hash_combine(
            support::hash_combine(fr.fn_id, fr.block), fr.ip);
        const bool backward = inst.t1 <= fr.block;
        const bool predicted = bpred_.predict(branch_id, backward);
        bpred_.update(branch_id, taken);
        if (predicted != taken) {
          total_[BR_MSP] += 1;
          cycle_ += cfg_.mispredict_penalty;
          slots_used_ = 0;  // pipeline redirect
        }
        fr.prev_block = fr.block;
        fr.block = taken ? inst.t1 : inst.t2;
        fr.ip = 0;
        advance = false;
        break;
      }
      case Opcode::Call: {
        cycle_ += cfg_.call_overhead;
        slots_used_ = 0;
        std::array<std::int64_t, ir::kMaxCallArgs> vals{};
        for (unsigned i = 0; i < inst.nargs; ++i)
          vals[i] = fr.regs[inst.args[i]];
        fr.ip += 1;  // resume after the call on return
        Frame& cf = push_frame(inst.callee, inst.dst);  // may invalidate fr
        for (unsigned i = 0; i < cf.fn->num_args; ++i) cf.regs[i] = vals[i];
        advance = false;
        break;
      }
      case Opcode::Ret: {
        const std::int64_t value =
            inst.a == ir::kNoReg ? 0 : fr.regs[inst.a];
        const Reg ret_dst = fr.ret_dst;
        frame_cursor = fr.frame_base;
        stack.pop_back();
        if (stack.empty()) {
          final_ret = value;
        } else if (ret_dst != ir::kNoReg) {
          Frame& caller = stack.back();
          caller.regs[ret_dst] = value;
          caller.ready[ret_dst] = cycle_ + 1;
        }
        advance = false;
        break;
      }
    }

    if (advance) {
      if (ir::has_dst(inst))
        fr.ready[inst.dst] = cycle_ + result_latency;
      fr.ip += 1;
    }
  }

  total_[TOT_CYC] += cycle_ - cycles_before;

  RunResult rr;
  rr.ret = final_ret;
  rr.cycles = cycle_ - cycles_before;
  rr.instructions = executed_ - executed_before;
  rr.counters = total_ - before;
  return rr;
}

// --- the decoded hot path --------------------------------------------------
//
// The engine body lives in sim/exec_loop.inc and is included twice below:
// once as the computed-goto threaded form, once as the portable switch
// form. The X-macro pins the handler/label order to the ir::Opcode
// enumerator order — the threaded label table indexes by opcode value, so
// the static_asserts below make any enum reordering a compile error here
// rather than a misdispatch at runtime.

#define ILC_SIM_OPCODE_LIST(X)                                \
  X(Nop) X(Mov) X(LoadImm)                                    \
  X(Add) X(Sub) X(Mul) X(Div) X(Rem)                          \
  X(And) X(Or) X(Xor) X(Shl) X(Shr) X(Min) X(Max)             \
  X(Neg) X(Not)                                               \
  X(CmpEq) X(CmpNe) X(CmpLt) X(CmpLe) X(CmpGt) X(CmpGe)       \
  X(GlobalAddr) X(FrameAddr) X(Load) X(Store) X(Prefetch)     \
  X(Jump) X(Br) X(Ret) X(Call)

namespace {
enum : unsigned {
#define ILC_ORD(name) ilc_ord_##name,
  ILC_SIM_OPCODE_LIST(ILC_ORD)
#undef ILC_ORD
      ilc_ord_count
};
#define ILC_CHECK_ORD(name)                                         \
  static_assert(ilc_ord_##name == static_cast<unsigned>(Opcode::name), \
                "ILC_SIM_OPCODE_LIST out of sync with ir::Opcode");
ILC_SIM_OPCODE_LIST(ILC_CHECK_ORD)
#undef ILC_CHECK_ORD
static_assert(ilc_ord_count == static_cast<unsigned>(Opcode::Call) + 1,
              "ILC_SIM_OPCODE_LIST is missing opcodes");
}  // namespace

#if ILC_SIM_HAS_THREADED_DISPATCH
#define ILC_EXEC_NAME exec_decoded_threaded
#define ILC_EXEC_THREADED 1
#include "sim/exec_loop.inc"
#undef ILC_EXEC_NAME
#undef ILC_EXEC_THREADED
#endif

#define ILC_EXEC_NAME exec_decoded_switch
#define ILC_EXEC_THREADED 0
#include "sim/exec_loop.inc"
#undef ILC_EXEC_NAME
#undef ILC_EXEC_THREADED

#undef ILC_SIM_OPCODE_LIST

RunResult Simulator::call_decoded(FuncId fn_id,
                                  const std::vector<std::int64_t>& args) {
#if ILC_SIM_HAS_THREADED_DISPATCH
  const bool threaded = cfg_.dispatch != DispatchMode::Switch;
  if (cfg_.collect_counters) {
    return threaded ? exec_decoded_threaded<true>(fn_id, args)
                    : exec_decoded_switch<true>(fn_id, args);
  }
  return threaded ? exec_decoded_threaded<false>(fn_id, args)
                  : exec_decoded_switch<false>(fn_id, args);
#else
  return cfg_.collect_counters ? exec_decoded_switch<true>(fn_id, args)
                               : exec_decoded_switch<false>(fn_id, args);
#endif
}

}  // namespace ilc::sim
