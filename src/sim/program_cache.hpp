// Process-wide cache of decoded programs, keyed by ir::fingerprint.
//
// The search layer evaluates the same optimized module many times under
// different guises: svc warm paths re-tune identical code, GA elites
// survive generations unchanged, and duplicate offspring converge to the
// same fingerprint. Decoding is cheap but not free (linear in code size,
// one allocation burst per function), and under a parallel GA it would
// otherwise run once per Simulator construction. Sharing one immutable
// DecodedProgram per fingerprint makes Simulator construction a hash
// lookup on the warm path.
//
// Entries are immutable and handed out as shared_ptr<const>, so eviction
// never invalidates a running Simulator. A bounded LRU keeps a long-lived
// tuning service from accumulating one entry per candidate ever seen.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "sim/decoded_program.hpp"

namespace ilc::sim {

class ProgramCache {
 public:
  /// The process-wide instance used by Simulator construction.
  static ProgramCache& instance();

  explicit ProgramCache(std::size_t capacity = 1024) : capacity_(capacity) {}

  /// Decoded program for `mod`, decoding on miss. Fingerprints the module;
  /// use the two-argument form when the caller already has the print.
  std::shared_ptr<const DecodedProgram> get(const ir::Module& mod);
  std::shared_ptr<const DecodedProgram> get(const ir::Module& mod,
                                            std::uint64_t fingerprint);

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  void clear();

 private:
  struct Entry {
    std::shared_ptr<const DecodedProgram> program;
    std::list<std::uint64_t>::iterator lru_pos;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Entry> map_;
  std::list<std::uint64_t> lru_;  // front = most recently used
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace ilc::sim
