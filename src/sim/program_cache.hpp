// Process-wide cache of decoded programs, keyed by ir::fingerprint.
//
// The search layer evaluates the same optimized module many times under
// different guises: svc warm paths re-tune identical code, GA elites
// survive generations unchanged, and duplicate offspring converge to the
// same fingerprint. Decoding is cheap but not free (linear in code size,
// one allocation burst per function), and under a parallel GA it would
// otherwise run once per Simulator construction. Sharing one immutable
// DecodedProgram per fingerprint makes Simulator construction a hash
// lookup on the warm path.
//
// Entries are immutable and handed out as shared_ptr<const>, so eviction
// never invalidates a running Simulator. A bounded LRU keeps a long-lived
// tuning service from accumulating one entry per candidate ever seen.
//
// Lookups are single-flight, mirroring the evaluator memo cache: when
// several threads miss on the same fingerprint simultaneously (a parallel
// GA generation full of identical offspring), the first inserts a pending
// placeholder and decodes; the rest block on the condition variable and
// pick up the published program. Every unique fingerprint is decoded
// exactly once. Pending placeholders are not on the LRU list, so eviction
// can never drop an in-flight decode.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "sim/decoded_program.hpp"

namespace ilc::sim {

class ProgramCache {
 public:
  /// The process-wide instance used by Simulator construction.
  static ProgramCache& instance();

  explicit ProgramCache(std::size_t capacity = 1024) : capacity_(capacity) {}

  /// Decoded program for `mod`, decoding on miss. Fingerprints the module;
  /// use the two-argument form when the caller already has the print.
  /// Thread-safe; concurrent misses on one fingerprint decode once.
  std::shared_ptr<const DecodedProgram> get(const ir::Module& mod);
  std::shared_ptr<const DecodedProgram> get(const ir::Module& mod,
                                            std::uint64_t fingerprint);

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;
  void clear();

 private:
  /// program == nullptr marks a pending entry: a leader thread is decoding
  /// this fingerprint and will publish (or erase, on failure) under mu_.
  /// lru_pos is valid only for published entries.
  struct Entry {
    std::shared_ptr<const DecodedProgram> program;
    std::list<std::uint64_t>::iterator lru_pos;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::uint64_t, Entry> map_;
  std::list<std::uint64_t> lru_;  // front = most recently used; published only
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace ilc::sim
