// Conditional-branch predictor: gshare-style table of 2-bit saturating
// counters, or a static backward-taken predictor when entries == 0 (the
// DSP-like configuration — the TI C6713 has no dynamic prediction).
#pragma once

#include <cstdint>
#include <vector>

namespace ilc::sim {

class BranchPredictor {
 public:
  /// entries must be a power of two, or 0 for the static predictor.
  explicit BranchPredictor(std::uint32_t entries);

  /// Predict a branch identified by `branch_id`. `backward` flags a branch
  /// whose taken target does not come later in layout order (loop-shaped).
  /// Inline (with update below): called once per simulated conditional
  /// branch from the decoded execution engine.
  bool predict(std::uint64_t branch_id, bool backward) const {
    if (table_.empty()) return backward;  // static: loops taken, exits not
    return table_[index(branch_id)] >= 2;
  }

  /// Update state with the actual outcome. The saturating-counter step is
  /// branch-free: `taken` is data-dependent simulated control flow, which
  /// the host branch predictor cannot learn.
  void update(std::uint64_t branch_id, bool taken) {
    if (table_.empty()) return;
    std::uint8_t& ctr = table_[index(branch_id)];
    const std::uint8_t up = static_cast<std::uint8_t>(taken & (ctr < 3));
    const std::uint8_t down = static_cast<std::uint8_t>((!taken) & (ctr > 0));
    ctr = static_cast<std::uint8_t>(ctr + up - down);
    history_ = (history_ << 1) | (taken ? 1 : 0);
  }

  void clear();
  bool is_static() const { return table_.empty(); }

 private:
  std::size_t index(std::uint64_t branch_id) const {
    const std::uint64_t mixed = branch_id ^ (history_ * 0x9e3779b97f4a7c15ULL);
    return static_cast<std::size_t>(mixed) & (table_.size() - 1);
  }

  std::vector<std::uint8_t> table_;  // 2-bit counters, init weakly taken
  std::uint64_t history_ = 0;
};

}  // namespace ilc::sim
