// Conditional-branch predictor: gshare-style table of 2-bit saturating
// counters, or a static backward-taken predictor when entries == 0 (the
// DSP-like configuration — the TI C6713 has no dynamic prediction).
#pragma once

#include <cstdint>
#include <vector>

namespace ilc::sim {

class BranchPredictor {
 public:
  /// entries must be a power of two, or 0 for the static predictor.
  explicit BranchPredictor(std::uint32_t entries);

  /// Predict a branch identified by `branch_id`. `backward` flags a branch
  /// whose taken target does not come later in layout order (loop-shaped).
  bool predict(std::uint64_t branch_id, bool backward) const;

  /// Update state with the actual outcome.
  void update(std::uint64_t branch_id, bool taken);

  void clear();
  bool is_static() const { return table_.empty(); }

 private:
  std::size_t index(std::uint64_t branch_id) const;

  std::vector<std::uint8_t> table_;  // 2-bit counters, init weakly taken
  std::uint64_t history_ = 0;
};

}  // namespace ilc::sim
