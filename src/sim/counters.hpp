// Hardware performance counters collected by the simulator, named after
// their PAPI equivalents — the same vocabulary the paper's Figs. 3 and 4
// use (L1_TCM, L1_TCA, L2_TCA, L2_STM, ...).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace ilc::sim {

enum Counter : unsigned {
  TOT_INS = 0,  // total instructions retired
  TOT_CYC,      // total cycles
  LD_INS,       // load instructions
  SR_INS,       // store instructions
  BR_INS,       // branch instructions (conditional)
  BR_MSP,       // mispredicted branches
  L1_TCA,       // L1 data cache total accesses
  L1_TCM,       // L1 data cache total misses
  L1_LDM,       // L1 load misses
  L1_STM,       // L1 store misses
  L2_TCA,       // L2 total accesses
  L2_TCM,       // L2 total misses
  L2_LDM,       // L2 load misses
  L2_STM,       // L2 store misses
  kNumCounters
};

const char* counter_name(Counter c);
/// Parse a counter by PAPI-style name; returns kNumCounters on failure.
Counter counter_from_name(const std::string& name);

struct Counters {
  std::array<std::uint64_t, kNumCounters> v{};

  std::uint64_t operator[](Counter c) const { return v[c]; }
  std::uint64_t& operator[](Counter c) { return v[c]; }

  Counters& operator+=(const Counters& o) {
    for (unsigned i = 0; i < kNumCounters; ++i) v[i] += o.v[i];
    return *this;
  }
  Counters operator-(const Counters& o) const {
    Counters r;
    for (unsigned i = 0; i < kNumCounters; ++i) r.v[i] = v[i] - o.v[i];
    return r;
  }
  bool operator==(const Counters&) const = default;
};

}  // namespace ilc::sim
