#include "sim/branch_predictor.hpp"

#include "support/assert.hpp"

namespace ilc::sim {

BranchPredictor::BranchPredictor(std::uint32_t entries) {
  if (entries != 0) {
    ILC_CHECK_MSG((entries & (entries - 1)) == 0,
                  "predictor entries must be a power of two");
    table_.assign(entries, 2);  // weakly taken
  }
}

void BranchPredictor::clear() {
  for (auto& c : table_) c = 2;
  history_ = 0;
}

}  // namespace ilc::sim
