#include "sim/branch_predictor.hpp"

#include "support/assert.hpp"

namespace ilc::sim {

BranchPredictor::BranchPredictor(std::uint32_t entries) {
  if (entries != 0) {
    ILC_CHECK_MSG((entries & (entries - 1)) == 0,
                  "predictor entries must be a power of two");
    table_.assign(entries, 2);  // weakly taken
  }
}

std::size_t BranchPredictor::index(std::uint64_t branch_id) const {
  const std::uint64_t mixed = branch_id ^ (history_ * 0x9e3779b97f4a7c15ULL);
  return static_cast<std::size_t>(mixed) & (table_.size() - 1);
}

bool BranchPredictor::predict(std::uint64_t branch_id, bool backward) const {
  if (table_.empty()) return backward;  // static: loops taken, exits not
  return table_[index(branch_id)] >= 2;
}

void BranchPredictor::update(std::uint64_t branch_id, bool taken) {
  if (table_.empty()) return;
  std::uint8_t& ctr = table_[index(branch_id)];
  if (taken && ctr < 3) ++ctr;
  if (!taken && ctr > 0) --ctr;
  history_ = (history_ << 1) | (taken ? 1 : 0);
}

void BranchPredictor::clear() {
  for (auto& c : table_) c = 2;
  history_ = 0;
}

}  // namespace ilc::sim
