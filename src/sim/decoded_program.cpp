#include "sim/decoded_program.hpp"

#include "ir/fingerprint.hpp"
#include "support/assert.hpp"
#include "support/hash.hpp"

namespace ilc::sim {

namespace {

LatClass lat_class(ir::Opcode op) {
  switch (op) {
    case ir::Opcode::Mul:
      return LatClass::Mul;
    case ir::Opcode::Div:
    case ir::Opcode::Rem:
      return LatClass::Div;
    default:
      return LatClass::Alu;
  }
}

DecodedFunction decode_function(const ir::Function& fn, ir::FuncId fn_id,
                                std::size_t num_funcs) {
  DecodedFunction out;
  out.name = fn.name;
  out.num_args = fn.num_args;
  out.num_regs = fn.num_regs;
  out.frame_bytes = (fn.frame_size + 15) / 16 * 16;

  out.block_entry.reserve(fn.blocks.size());
  std::size_t total = 0;
  for (const ir::BasicBlock& bb : fn.blocks) {
    out.block_entry.push_back(static_cast<std::uint32_t>(total));
    total += bb.insts.size();
  }
  out.code.reserve(total);

  for (ir::BlockId block = 0; block < fn.blocks.size(); ++block) {
    const ir::BasicBlock& bb = fn.blocks[block];
    ILC_CHECK_MSG(!bb.insts.empty() && ir::is_terminator(bb.insts.back()),
                  "decode: block without terminator in " << fn.name);
    for (std::size_t ip = 0; ip < bb.insts.size(); ++ip) {
      const ir::Instr& inst = bb.insts[ip];
      DecodedInstr d;
      d.op = inst.op;
      d.lat = lat_class(inst.op);
      d.width_bytes = static_cast<std::uint8_t>(ir::width_bytes(inst.width));
      d.is_ptr = inst.is_ptr;
      d.has_dst = ir::has_dst(inst);
      d.dst = inst.dst;
      d.a = inst.a;
      d.b = inst.b;
      d.imm = inst.imm;
      d.callee = inst.callee;
      d.gid = inst.gid;
      d.nargs = inst.nargs;
      d.args = inst.args;

      unsigned nu = 0;
      ir::append_uses(inst, d.uses, nu);
      d.nu = static_cast<std::uint8_t>(nu);
      for (unsigned u = 0; u < nu; ++u)
        ILC_CHECK_MSG(d.uses[u] < fn.num_regs,
                      "decode: register out of range in " << fn.name);
      ILC_CHECK_MSG(!d.has_dst || d.dst < fn.num_regs,
                    "decode: dst register out of range in " << fn.name);

      if (inst.op == ir::Opcode::Call)
        ILC_CHECK_MSG(inst.callee < num_funcs,
                      "decode: bad callee in " << fn.name);
      if (inst.op == ir::Opcode::Jump || inst.op == ir::Opcode::Br) {
        ILC_CHECK_MSG(inst.t1 < fn.blocks.size(),
                      "decode: bad branch target in " << fn.name);
        d.t1 = out.block_entry[inst.t1];
      }
      if (inst.op == ir::Opcode::Br) {
        ILC_CHECK_MSG(inst.t2 < fn.blocks.size(),
                      "decode: bad branch target in " << fn.name);
        d.t2 = out.block_entry[inst.t2];
        d.backward = inst.t1 <= block;
        d.branch_id = support::hash_combine(
            support::hash_combine(fn_id, block), ip);
      }
      out.code.push_back(d);
    }
  }
  return out;
}

}  // namespace

std::shared_ptr<const DecodedProgram> decode_program(const ir::Module& mod) {
  auto prog = std::make_shared<DecodedProgram>();
  prog->fingerprint = ir::fingerprint(mod);
  prog->funcs.reserve(mod.functions().size());
  for (ir::FuncId id = 0; id < mod.functions().size(); ++id) {
    prog->funcs.push_back(
        decode_function(mod.function(id), id, mod.functions().size()));
    prog->instruction_count += prog->funcs.back().code.size();
  }
  return prog;
}

}  // namespace ilc::sim
