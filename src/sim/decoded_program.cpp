#include "sim/decoded_program.hpp"

#include <algorithm>

#include "ir/fingerprint.hpp"
#include "support/assert.hpp"
#include "support/hash.hpp"

namespace ilc::sim {

namespace {

DecodedFunction decode_function(const ir::Module& mod, const ir::Function& fn,
                                ir::FuncId fn_id, std::size_t num_funcs) {
  DecodedFunction out;
  out.name = fn.name;
  out.num_args = fn.num_args;
  out.num_regs = fn.num_regs;
  out.frame_bytes = (fn.frame_size + 15) / 16 * 16;
  ILC_CHECK_MSG(fn.num_args <= fn.num_regs,
                "decode: more arguments than registers in " << fn.name);

  out.block_entry.reserve(fn.blocks.size());
  std::size_t total = 0;
  for (const ir::BasicBlock& bb : fn.blocks) {
    out.block_entry.push_back(static_cast<std::uint32_t>(total));
    total += bb.insts.size();
  }
  out.code.reserve(total);
  out.blocks.reserve(fn.blocks.size());

  // Scratch for the per-block register-pressure count.
  std::vector<std::uint8_t> touched(fn.num_regs, 0);

  for (ir::BlockId block = 0; block < fn.blocks.size(); ++block) {
    const ir::BasicBlock& bb = fn.blocks[block];
    ILC_CHECK_MSG(!bb.insts.empty() && ir::is_terminator(bb.insts.back()),
                  "decode: block without terminator in " << fn.name);

    Superblock sb;
    sb.entry = out.block_entry[block];
    sb.len = static_cast<std::uint32_t>(bb.insts.size());
    std::fill(touched.begin(), touched.end(), 0);
    auto touch = [&](ir::Reg r) {
      if (r < fn.num_regs && !touched[r]) {
        touched[r] = 1;
        ++sb.reg_pressure;
      }
    };

    for (std::size_t ip = 0; ip < bb.insts.size(); ++ip) {
      const ir::Instr& inst = bb.insts[ip];
      DecodedInstr d;
      d.op = inst.op;
      d.width_bytes = static_cast<std::uint8_t>(ir::width_bytes(inst.width));
      if (inst.is_ptr) d.flags |= DecodedInstr::kIsPtr;
      if (ir::has_dst(inst)) d.flags |= DecodedInstr::kHasDst;
      d.dst = inst.dst;
      d.a = inst.a;
      d.b = inst.b;
      d.imm = inst.imm;

      // Validate registers exactly as the legacy walk would touch them,
      // so the execution loop needs no per-instruction asserts.
      std::array<ir::Reg, 2 + ir::kMaxCallArgs> uses;
      unsigned nu = 0;
      ir::append_uses(inst, uses, nu);
      sb.use_count += nu;
      for (unsigned u = 0; u < nu; ++u) {
        ILC_CHECK_MSG(uses[u] < fn.num_regs,
                      "decode: register out of range in " << fn.name);
        touch(uses[u]);
      }
      ILC_CHECK_MSG(!d.has_dst() || d.dst < fn.num_regs,
                    "decode: dst register out of range in " << fn.name);
      if (d.has_dst()) touch(d.dst);

      switch (inst.op) {
        case ir::Opcode::Load:
        case ir::Opcode::Store:
          ++sb.mem_ops;
          break;
        case ir::Opcode::GlobalAddr:
          // The handler resolves the base against the Simulator's image;
          // keep the id in the hot immediate slot.
          d.imm = static_cast<std::int64_t>(inst.gid);
          break;
        case ir::Opcode::Call: {
          ILC_CHECK_MSG(inst.callee < num_funcs,
                        "decode: bad callee in " << fn.name);
          const ir::Function& callee = mod.function(inst.callee);
          ILC_CHECK_MSG(callee.num_args <= ir::kMaxCallArgs,
                        "decode: callee arity exceeds kMaxCallArgs in "
                            << fn.name);
          ++sb.calls;
          d.t1 = inst.callee;
          d.t2 = static_cast<std::uint32_t>(out.callsites.size());
          CallSite cs;
          cs.nargs = inst.nargs;
          cs.args = inst.args;
          out.callsites.push_back(cs);
          break;
        }
        case ir::Opcode::Jump:
        case ir::Opcode::Br: {
          ILC_CHECK_MSG(inst.t1 < fn.blocks.size(),
                        "decode: bad branch target in " << fn.name);
          d.t1 = out.block_entry[inst.t1];
          if (inst.op == ir::Opcode::Br) {
            ILC_CHECK_MSG(inst.t2 < fn.blocks.size(),
                          "decode: bad branch target in " << fn.name);
            d.t2 = out.block_entry[inst.t2];
            if (inst.t1 <= block) d.flags |= DecodedInstr::kBackward;
            // Same recipe as the legacy walk, so predictor state and
            // misprediction counts are bit-identical.
            d.imm = static_cast<std::int64_t>(support::hash_combine(
                support::hash_combine(fn_id, block), ip));
          }
          break;
        }
        default:
          break;
      }
      out.code.push_back(d);
    }

    const DecodedInstr& term = out.code.back();
    sb.terminator = term.op;
    sb.ends_backward = term.op == ir::Opcode::Br && term.backward();
    out.blocks.push_back(sb);
  }
  return out;
}

}  // namespace

std::shared_ptr<const DecodedProgram> decode_program(const ir::Module& mod) {
  auto prog = std::make_shared<DecodedProgram>();
  prog->fingerprint = ir::fingerprint(mod);
  prog->funcs.reserve(mod.functions().size());
  for (ir::FuncId id = 0; id < mod.functions().size(); ++id) {
    prog->funcs.push_back(decode_function(mod, mod.function(id), id,
                                          mod.functions().size()));
    prog->instruction_count += prog->funcs.back().code.size();
  }
  return prog;
}

}  // namespace ilc::sim
