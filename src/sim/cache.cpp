#include "sim/cache.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace ilc::sim {

namespace {

std::uint32_t log2_exact(std::uint32_t v) {
  ILC_CHECK_MSG(v != 0 && (v & (v - 1)) == 0, "value must be a power of two");
  std::uint32_t s = 0;
  while ((1u << s) < v) ++s;
  return s;
}

}  // namespace

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  ILC_CHECK(cfg.ways > 0);
  ILC_CHECK(cfg.line_bytes >= 8);
  const std::uint32_t lines_total = cfg.size_bytes / cfg.line_bytes;
  ILC_CHECK_MSG(lines_total >= cfg.ways, "cache smaller than one set");
  sets_ = lines_total / cfg.ways;
  ILC_CHECK_MSG((sets_ & (sets_ - 1)) == 0, "set count must be a power of two");
  line_shift_ = log2_exact(cfg.line_bytes);
  const std::size_t n = static_cast<std::size_t>(sets_) * cfg.ways;
  tags_.assign(n, kInvalidTag);
  lru_.assign(n, 0);
}

void Cache::clear() {
  std::fill(tags_.begin(), tags_.end(), kInvalidTag);
  std::fill(lru_.begin(), lru_.end(), 0);
  tick_ = 0;
}

}  // namespace ilc::sim
