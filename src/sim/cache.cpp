#include "sim/cache.hpp"

#include "support/assert.hpp"

namespace ilc::sim {

namespace {

std::uint32_t log2_exact(std::uint32_t v) {
  ILC_CHECK_MSG(v != 0 && (v & (v - 1)) == 0, "value must be a power of two");
  std::uint32_t s = 0;
  while ((1u << s) < v) ++s;
  return s;
}

}  // namespace

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  ILC_CHECK(cfg.ways > 0);
  ILC_CHECK(cfg.line_bytes >= 8);
  const std::uint32_t lines_total = cfg.size_bytes / cfg.line_bytes;
  ILC_CHECK_MSG(lines_total >= cfg.ways, "cache smaller than one set");
  sets_ = lines_total / cfg.ways;
  ILC_CHECK_MSG((sets_ & (sets_ - 1)) == 0, "set count must be a power of two");
  line_shift_ = log2_exact(cfg.line_bytes);
  lines_.assign(static_cast<std::size_t>(sets_) * cfg.ways, Line{});
}

bool Cache::access(std::uint64_t addr) {
  ++tick_;
  const std::uint64_t line_addr = addr >> line_shift_;
  const std::uint32_t set = static_cast<std::uint32_t>(line_addr) & (sets_ - 1);
  const std::uint64_t tag = line_addr >> 0;  // full line address as tag
  Line* base = &lines_[static_cast<std::size_t>(set) * cfg_.ways];

  Line* victim = base;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = tick_;
      return true;
    }
    if (!line.valid) {
      victim = &line;
    } else if (victim->valid && line.lru < victim->lru) {
      victim = &line;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  return false;
}

void Cache::clear() {
  for (Line& line : lines_) line = Line{};
  tick_ = 0;
}

}  // namespace ilc::sim
