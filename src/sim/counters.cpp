#include "sim/counters.hpp"

namespace ilc::sim {

const char* counter_name(Counter c) {
  switch (c) {
    case TOT_INS: return "TOT_INS";
    case TOT_CYC: return "TOT_CYC";
    case LD_INS: return "LD_INS";
    case SR_INS: return "SR_INS";
    case BR_INS: return "BR_INS";
    case BR_MSP: return "BR_MSP";
    case L1_TCA: return "L1_TCA";
    case L1_TCM: return "L1_TCM";
    case L1_LDM: return "L1_LDM";
    case L1_STM: return "L1_STM";
    case L2_TCA: return "L2_TCA";
    case L2_TCM: return "L2_TCM";
    case L2_LDM: return "L2_LDM";
    case L2_STM: return "L2_STM";
    default: return "?";
  }
}

Counter counter_from_name(const std::string& name) {
  for (unsigned i = 0; i < kNumCounters; ++i) {
    if (name == counter_name(static_cast<Counter>(i)))
      return static_cast<Counter>(i);
  }
  return kNumCounters;
}

}  // namespace ilc::sim
