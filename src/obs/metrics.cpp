#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace ilc::obs {

namespace detail {

std::size_t stripe_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterStripes;
  return idx;
}

std::uint64_t CounterData::total() const {
  std::uint64_t sum = 0;
  for (const Cell& c : cells) sum += c.v.load(std::memory_order_relaxed);
  return sum;
}

void CounterData::reset() {
  for (Cell& c : cells) c.v.store(0, std::memory_order_relaxed);
}

void HistogramData::record(std::uint64_t v) {
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds.begin());
  buckets[idx].v.fetch_add(1, std::memory_order_relaxed);
  count.fetch_add(1, std::memory_order_relaxed);
  sum.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min.load(std::memory_order_relaxed);
  while (v < cur &&
         !min.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max.load(std::memory_order_relaxed);
  while (v > cur &&
         !max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void HistogramData::reset() {
  for (Cell& b : buckets) b.v.store(0, std::memory_order_relaxed);
  count.store(0, std::memory_order_relaxed);
  sum.store(0, std::memory_order_relaxed);
  min.store(~0ULL, std::memory_order_relaxed);
  max.store(0, std::memory_order_relaxed);
}

}  // namespace detail

std::vector<std::uint64_t> exponential_bounds(std::uint64_t start,
                                              double factor, std::size_t n) {
  std::vector<std::uint64_t> bounds;
  bounds.reserve(n);
  double v = static_cast<double>(start);
  for (std::size_t i = 0; i < n; ++i) {
    const auto bound = static_cast<std::uint64_t>(v);
    if (!bounds.empty() && bound <= bounds.back()) {
      bounds.push_back(bounds.back() + 1);
    } else {
      bounds.push_back(bound);
    }
    v *= factor;
  }
  return bounds;
}

const std::vector<std::uint64_t>& default_us_bounds() {
  static const std::vector<std::uint64_t> bounds =
      exponential_bounds(1, 2.0, 30);  // 1us .. ~9 minutes
  return bounds;
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < target) continue;
    if (counts[i] == 0) continue;
    // Interpolate within the bucket [lo, hi] by the rank's position in it.
    const double lo = i == 0 ? static_cast<double>(min)
                             : static_cast<double>(bounds[i - 1]) + 1.0;
    const double hi = i < bounds.size() ? static_cast<double>(bounds[i])
                                        : static_cast<double>(max);
    const double into =
        (target - static_cast<double>(cumulative - counts[i])) /
        static_cast<double>(counts[i]);
    const double v = lo + (hi - lo) * std::clamp(into, 0.0, 1.0);
    return std::clamp(v, static_cast<double>(min), static_cast<double>(max));
  }
  return static_cast<double>(max);
}

const CounterValue* RegistrySnapshot::counter(const std::string& name) const {
  for (const CounterValue& c : counters)
    if (c.name == name) return &c;
  return nullptr;
}

const GaugeValue* RegistrySnapshot::gauge(const std::string& name) const {
  for (const GaugeValue& g : gauges)
    if (g.name == name) return &g;
  return nullptr;
}

const HistogramSnapshot* RegistrySnapshot::histogram(
    const std::string& name) const {
  for (const HistogramSnapshot& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

Registry& Registry::instance() {
  static Registry* reg = new Registry();  // never destroyed: instrumented
  return *reg;                            // code may run during exit
}

Counter Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counter_names_.find(name);
  if (it != counter_names_.end()) return Counter(it->second);
  counters_.emplace_back();
  counters_.back().name = name;
  counter_names_.emplace(name, &counters_.back());
  return Counter(&counters_.back());
}

Gauge Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauge_names_.find(name);
  if (it != gauge_names_.end()) return Gauge(it->second);
  gauges_.emplace_back();
  gauges_.back().name = name;
  gauge_names_.emplace(name, &gauges_.back());
  return Gauge(&gauges_.back());
}

Histogram Registry::histogram(const std::string& name,
                              std::vector<std::uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histogram_names_.find(name);
  if (it != histogram_names_.end()) return Histogram(it->second);
  if (bounds.empty()) bounds = default_us_bounds();
  histograms_.emplace_back();
  detail::HistogramData& h = histograms_.back();
  h.name = name;
  h.bounds = std::move(bounds);
  h.buckets = std::vector<detail::Cell>(h.bounds.size() + 1);
  histogram_names_.emplace(name, &h);
  return Histogram(&h);
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot snap;
  for (const detail::CounterData& c : counters_)
    snap.counters.push_back({c.name, c.total()});
  for (const detail::GaugeData& g : gauges_)
    snap.gauges.push_back({g.name, g.v.load(std::memory_order_relaxed)});
  for (const detail::HistogramData& h : histograms_) {
    HistogramSnapshot hs;
    hs.name = h.name;
    hs.bounds = h.bounds;
    hs.counts.reserve(h.buckets.size());
    for (const detail::Cell& b : h.buckets)
      hs.counts.push_back(b.v.load(std::memory_order_relaxed));
    hs.count = h.count.load(std::memory_order_relaxed);
    hs.sum = h.sum.load(std::memory_order_relaxed);
    const std::uint64_t mn = h.min.load(std::memory_order_relaxed);
    hs.min = mn == ~0ULL ? 0 : mn;
    hs.max = h.max.load(std::memory_order_relaxed);
    snap.histograms.push_back(std::move(hs));
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (detail::CounterData& c : counters_) c.reset();
  for (detail::GaugeData& g : gauges_)
    g.v.store(0, std::memory_order_relaxed);
  for (detail::HistogramData& h : histograms_) h.reset();
}

// ---- exporters -----------------------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << v;
  return os.str();
}

void histogram_json_fields(std::ostringstream& os,
                           const HistogramSnapshot& h) {
  os << "\"count\":" << h.count << ",\"sum\":" << h.sum
     << ",\"min\":" << h.min << ",\"max\":" << h.max
     << ",\"mean\":" << fmt_double(h.mean())
     << ",\"p50\":" << fmt_double(h.percentile(50))
     << ",\"p95\":" << fmt_double(h.percentile(95))
     << ",\"p99\":" << fmt_double(h.percentile(99));
}

/// Prometheus metric name: prefix + sanitized name ('.', '-' -> '_').
std::string prom_name(const std::string& prefix, const std::string& name) {
  std::string out = prefix.empty() ? "" : prefix + "_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string to_json_lines(const RegistrySnapshot& snap) {
  std::ostringstream os;
  for (const CounterValue& c : snap.counters)
    os << "{\"type\":\"counter\",\"name\":\"" << json_escape(c.name)
       << "\",\"value\":" << c.value << "}\n";
  for (const GaugeValue& g : snap.gauges)
    os << "{\"type\":\"gauge\",\"name\":\"" << json_escape(g.name)
       << "\",\"value\":" << g.value << "}\n";
  for (const HistogramSnapshot& h : snap.histograms) {
    os << "{\"type\":\"histogram\",\"name\":\"" << json_escape(h.name)
       << "\",";
    histogram_json_fields(os, h);
    os << "}\n";
  }
  return os.str();
}

std::string to_json_object(const RegistrySnapshot& snap) {
  std::ostringstream os;
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i) os << ",";
    os << "\"" << json_escape(snap.counters[i].name)
       << "\":" << snap.counters[i].value;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i) os << ",";
    os << "\"" << json_escape(snap.gauges[i].name)
       << "\":" << snap.gauges[i].value;
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    if (i) os << ",";
    os << "\"" << json_escape(snap.histograms[i].name) << "\":{";
    histogram_json_fields(os, snap.histograms[i]);
    os << "}";
  }
  os << "}}";
  return os.str();
}

std::string to_prometheus(const RegistrySnapshot& snap,
                          const std::string& prefix) {
  std::ostringstream os;
  for (const CounterValue& c : snap.counters) {
    const std::string name = prom_name(prefix, c.name);
    os << "# TYPE " << name << " counter\n" << name << " " << c.value << "\n";
  }
  for (const GaugeValue& g : snap.gauges) {
    const std::string name = prom_name(prefix, g.name);
    os << "# TYPE " << name << " gauge\n" << name << " " << g.value << "\n";
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    const std::string name = prom_name(prefix, h.name);
    os << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.counts[i];
      os << name << "_bucket{le=\"" << h.bounds[i] << "\"} " << cumulative
         << "\n";
    }
    os << name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << name << "_sum " << h.sum << "\n";
    os << name << "_count " << h.count << "\n";
  }
  return os.str();
}

}  // namespace ilc::obs
