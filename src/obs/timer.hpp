// ilc::obs profiling hooks — lightweight phase timers that record elapsed
// wall time into a registry histogram. Intended for phase-granular sites
// (a simulator invocation, a WAL flush, a GA generation), never for
// per-instruction loops.
//
// A process-wide runtime switch gates the clock reads: with profiling
// disabled a ScopedTimerUs costs one relaxed atomic load and a branch,
// which is what bench/obs_overhead budgets against.
#pragma once

#include <atomic>
#include <chrono>

#include "obs/metrics.hpp"

namespace ilc::obs {

inline std::atomic<bool>& profiling_flag() {
  static std::atomic<bool> flag{true};
  return flag;
}

inline bool profiling_enabled() {
  return profiling_flag().load(std::memory_order_relaxed);
}

inline void set_profiling_enabled(bool on) {
  profiling_flag().store(on, std::memory_order_relaxed);
}

/// Records the scope's duration, in microseconds, into a histogram.
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Histogram h) {
    if (!profiling_enabled() || !h.valid()) return;
    h_ = h;
    armed_ = true;
    start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimerUs() {
    if (!armed_) return;
    h_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count()));
  }
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

 private:
  Histogram h_;
  std::chrono::steady_clock::time_point start_{};
  bool armed_ = false;
};

}  // namespace ilc::obs
