#include "obs/trace.hpp"

#if ILC_OBS_TRACING_COMPILED

#include <memory>
#include <mutex>
#include <sstream>

namespace ilc::obs {

namespace {

constexpr std::size_t kDefaultRingCapacity = 4096;

using Clock = std::chrono::steady_clock;

/// Completed spans of one thread. The mutex is effectively uncontended —
/// only the owning thread pushes; other threads take it when draining.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<SpanRecord> ring;
  std::size_t capacity = kDefaultRingCapacity;
  std::size_t next = 0;  // overwrite cursor once the ring is full
  std::uint32_t tid = 0;
};

struct BufferRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid = 1;
  std::size_t default_capacity = kDefaultRingCapacity;
};

BufferRegistry& buffer_registry() {
  static BufferRegistry* reg = new BufferRegistry();
  return *reg;
}

/// Buffers are shared between the owning thread and the global registry,
/// so spans recorded by threads that have since exited stay drainable.
ThreadBuffer& thread_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    BufferRegistry& reg = buffer_registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    b->tid = reg.next_tid++;
    b->capacity = reg.default_capacity;
    reg.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

thread_local SpanContext t_current{};

Clock::time_point trace_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::atomic<bool>& Tracer::enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

void Tracer::set_enabled(bool on) {
  trace_epoch();  // pin the epoch no later than the first enablement
  enabled_flag().store(on, std::memory_order_relaxed);
}

std::uint64_t Tracer::new_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

SpanContext Tracer::current() { return t_current; }

SpanContext Tracer::exchange_current(SpanContext ctx) {
  const SpanContext prev = t_current;
  t_current = ctx;
  return prev;
}

std::uint64_t Tracer::to_trace_us(Clock::time_point tp) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(tp - trace_epoch())
          .count());
}

void Tracer::push(SpanRecord&& rec) {
  ThreadBuffer& buf = thread_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  rec.tid = buf.tid;
  if (buf.ring.size() < buf.capacity) {
    buf.ring.push_back(std::move(rec));
  } else if (buf.capacity > 0) {
    buf.ring[buf.next] = std::move(rec);
    buf.next = (buf.next + 1) % buf.capacity;
  }
}

std::vector<SpanRecord> Tracer::records() {
  std::vector<SpanRecord> out;
  BufferRegistry& reg = buffer_registry();
  std::lock_guard<std::mutex> reg_lock(reg.mu);
  for (const auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    // Oldest first: the overwrite cursor marks the oldest slot once full.
    for (std::size_t i = 0; i < buf->ring.size(); ++i)
      out.push_back(buf->ring[(buf->next + i) % buf->ring.size()]);
  }
  return out;
}

void Tracer::clear() {
  BufferRegistry& reg = buffer_registry();
  std::lock_guard<std::mutex> reg_lock(reg.mu);
  for (const auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    buf->ring.clear();
    buf->next = 0;
  }
}

void Tracer::set_ring_capacity(std::size_t capacity) {
  {
    BufferRegistry& reg = buffer_registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.default_capacity = capacity;
  }
  ThreadBuffer& buf = thread_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.capacity = capacity;
  if (buf.ring.size() > capacity) {
    // Keep the newest `capacity` records, restored to oldest-first order.
    std::vector<SpanRecord> keep;
    keep.reserve(capacity);
    const std::size_t n = buf.ring.size();
    for (std::size_t i = n - capacity; i < n; ++i)
      keep.push_back(std::move(buf.ring[(buf.next + i) % n]));
    buf.ring = std::move(keep);
  }
  buf.next = 0;
}

void Tracer::record(
    const char* name, SpanContext parent, Clock::time_point start,
    Clock::time_point end,
    std::vector<std::pair<std::string, std::string>> annotations) {
  if (!enabled()) return;
  SpanRecord rec;
  rec.name = name;
  rec.trace_id = parent.valid() ? parent.trace_id : new_id();
  rec.span_id = new_id();
  rec.parent_id = parent.valid() ? parent.span_id : 0;
  rec.start_us = to_trace_us(start);
  rec.dur_us = to_trace_us(end) - rec.start_us;
  rec.annotations = std::move(annotations);
  push(std::move(rec));
}

void Tracer::record_span(
    const char* name, SpanContext self, std::uint64_t parent_id,
    Clock::time_point start, Clock::time_point end,
    std::vector<std::pair<std::string, std::string>> annotations) {
  if (!enabled() || !self.valid()) return;
  SpanRecord rec;
  rec.name = name;
  rec.trace_id = self.trace_id;
  rec.span_id = self.span_id;
  rec.parent_id = parent_id;
  rec.start_us = to_trace_us(start);
  rec.dur_us = to_trace_us(end) - rec.start_us;
  rec.annotations = std::move(annotations);
  push(std::move(rec));
}

std::string Tracer::to_chrome_trace(const std::vector<SpanRecord>& recs) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const SpanRecord& r = recs[i];
    if (i) os << ",";
    os << "\n{\"name\":\"" << json_escape(r.name)
       << "\",\"cat\":\"ilc\",\"ph\":\"X\",\"ts\":" << r.start_us
       << ",\"dur\":" << r.dur_us << ",\"pid\":1,\"tid\":" << r.tid
       << ",\"args\":{\"trace_id\":\"" << r.trace_id << "\",\"span_id\":\""
       << r.span_id << "\",\"parent_id\":\"" << r.parent_id << "\"";
    for (const auto& [key, value] : r.annotations)
      os << ",\"" << json_escape(key) << "\":\"" << json_escape(value)
         << "\"";
    os << "}}";
  }
  os << "\n]}";
  return os.str();
}

std::string Tracer::drain_chrome_trace() {
  const std::vector<SpanRecord> recs = records();
  clear();
  return to_chrome_trace(recs);
}

Span::Span(const char* name, SpanContext parent) {
  if (!Tracer::enabled()) return;
  active_ = true;
  name_ = name;
  parent_id_ = parent.valid() ? parent.span_id : 0;
  ctx_.trace_id = parent.valid() ? parent.trace_id : Tracer::new_id();
  ctx_.span_id = Tracer::new_id();
  prev_current_ = Tracer::exchange_current(ctx_);
  start_ = Clock::now();
}

Span::~Span() {
  if (!active_) return;
  Tracer::exchange_current(prev_current_);
  SpanRecord rec;
  rec.name = name_;
  rec.trace_id = ctx_.trace_id;
  rec.span_id = ctx_.span_id;
  rec.parent_id = parent_id_;
  rec.start_us = Tracer::to_trace_us(start_);
  rec.dur_us = Tracer::to_trace_us(Clock::now()) - rec.start_us;
  rec.annotations = std::move(annotations_);
  Tracer::push(std::move(rec));
}

}  // namespace ilc::obs

#endif  // ILC_OBS_TRACING_COMPILED
