// ilc::obs metrics — a process-wide registry of named counters, gauges,
// and fixed-bucket histograms (the paper's Fig. 1 "runtime monitoring"
// module as real infrastructure).
//
// Hot-path cost: a Counter::add is one relaxed fetch_add on a
// cache-line-padded stripe chosen per thread, so concurrent writers never
// share a line; Gauge updates are one relaxed atomic op; Histogram::record
// is three relaxed adds plus two bounded CAS loops (min/max). No locks are
// taken after a handle has been created — registration (name lookup) is
// the only mutex-protected path and is meant to happen once, at startup,
// typically into a function-local static handle.
//
// Snapshots can be taken at any time from any thread and are exportable
// as JSON lines, a single nested JSON object (bench artifacts), or
// Prometheus text exposition.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ilc::obs {

inline constexpr std::size_t kCounterStripes = 16;

namespace detail {

struct alignas(64) Cell {
  std::atomic<std::uint64_t> v{0};
};

/// Stripe of the calling thread: threads are assigned round-robin, so up
/// to kCounterStripes writers update disjoint cache lines.
std::size_t stripe_index();

struct CounterData {
  std::string name;
  std::array<Cell, kCounterStripes> cells;
  std::uint64_t total() const;
  void reset();
};

struct GaugeData {
  std::string name;
  std::atomic<std::int64_t> v{0};
};

struct HistogramData {
  std::string name;
  std::vector<std::uint64_t> bounds;  // inclusive upper bounds, ascending
  std::vector<Cell> buckets;          // bounds.size() + 1 (last = overflow)
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> min{~0ULL};
  std::atomic<std::uint64_t> max{0};
  void record(std::uint64_t v);
  void reset();
};

}  // namespace detail

/// Monotonic counter handle. Cheap to copy; a default-constructed handle
/// is valid and drops every update (useful for optional instrumentation).
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) const noexcept {
    if (d_ != nullptr)
      d_->cells[detail::stripe_index()].v.fetch_add(
          n, std::memory_order_relaxed);
  }
  void inc() const noexcept { add(1); }
  std::uint64_t value() const { return d_ ? d_->total() : 0; }
  bool valid() const { return d_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(detail::CounterData* d) : d_(d) {}
  detail::CounterData* d_ = nullptr;
};

/// Up/down gauge handle (queue depths, in-flight work).
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) const noexcept {
    if (d_) d_->v.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) const noexcept {
    if (d_) d_->v.fetch_add(n, std::memory_order_relaxed);
  }
  void sub(std::int64_t n) const noexcept { add(-n); }
  std::int64_t value() const {
    return d_ ? d_->v.load(std::memory_order_relaxed) : 0;
  }
  bool valid() const { return d_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(detail::GaugeData* d) : d_(d) {}
  detail::GaugeData* d_ = nullptr;
};

/// Fixed-bucket histogram handle.
class Histogram {
 public:
  Histogram() = default;
  void record(std::uint64_t v) const noexcept {
    if (d_) d_->record(v);
  }
  std::uint64_t count() const {
    return d_ ? d_->count.load(std::memory_order_relaxed) : 0;
  }
  bool valid() const { return d_ != nullptr; }

 private:
  friend class Registry;
  explicit Histogram(detail::HistogramData* d) : d_(d) {}
  detail::HistogramData* d_ = nullptr;
};

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeValue {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> counts;  // bounds.size() + 1, last = overflow
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // 0 when empty
  std::uint64_t max = 0;

  /// Bucket-interpolated percentile estimate, p in [0, 100]. The result
  /// is clamped to the observed [min, max] and is exact when every value
  /// landed in one bucket. 0 when empty.
  double percentile(double p) const;
  double mean() const { return count ? static_cast<double>(sum) / count : 0; }
};

/// A consistent-enough point-in-time copy: every individual value is an
/// atomic read; counters are monotone between snapshots.
struct RegistrySnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramSnapshot> histograms;

  const CounterValue* counter(const std::string& name) const;
  const GaugeValue* gauge(const std::string& name) const;
  const HistogramSnapshot* histogram(const std::string& name) const;
};

/// Exponential bucket bounds: start, start*factor, ... (n bounds).
std::vector<std::uint64_t> exponential_bounds(std::uint64_t start,
                                              double factor, std::size_t n);

/// The default microsecond-latency buckets: 1us .. ~9 minutes, powers of 2.
const std::vector<std::uint64_t>& default_us_bounds();

class Registry {
 public:
  /// The process-wide registry used by the subsystem instrumentation
  /// (sim, search, kbstore, controller). Components that need isolated
  /// metrics (one svc::MetricsCollector per service instance) construct
  /// their own.
  static Registry& instance();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Handle for the named metric, registering it on first use. Handles
  /// stay valid for the registry's lifetime. For histograms, the bounds
  /// of the first registration win; pass empty for default_us_bounds().
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name,
                      std::vector<std::uint64_t> bounds = {});

  RegistrySnapshot snapshot() const;

  /// Zero every value, keeping registrations and handles valid. For
  /// tests and benches that measure deltas.
  void reset();

 private:
  mutable std::mutex mu_;  // registration + snapshot iteration only
  std::deque<detail::CounterData> counters_;
  std::deque<detail::GaugeData> gauges_;
  std::deque<detail::HistogramData> histograms_;
  std::unordered_map<std::string, detail::CounterData*> counter_names_;
  std::unordered_map<std::string, detail::GaugeData*> gauge_names_;
  std::unordered_map<std::string, detail::HistogramData*> histogram_names_;
};

// ---- exporters -----------------------------------------------------------

/// One JSON object per line: {"type":"counter","name":...,"value":...}.
std::string to_json_lines(const RegistrySnapshot& snap);

/// A single nested JSON object — {"counters":{...},"gauges":{...},
/// "histograms":{...}} — for embedding in bench JSON artifacts.
std::string to_json_object(const RegistrySnapshot& snap);

/// Prometheus text exposition format. Metric names are prefixed and
/// sanitized ("svc.requests" -> "ilc_svc_requests"); histograms emit
/// cumulative _bucket{le=...} series plus _sum and _count.
std::string to_prometheus(const RegistrySnapshot& snap,
                          const std::string& prefix = "ilc");

}  // namespace ilc::obs
