// ilc::obs tracing — structured spans with trace/span IDs, parent links,
// and key-value annotations, recorded into per-thread ring buffers and
// drainable as Chrome trace_event JSON (open chrome://tracing or
// https://ui.perfetto.dev on the output).
//
// Two kill switches:
//   compile-time — build with -DILC_OBS_TRACING_COMPILED=0 and every Span
//     is an empty inline no-op (zero code at the call sites);
//   runtime — Tracer::set_enabled (default off). A disabled Span costs
//     one relaxed atomic load and a branch; nothing is allocated.
//
// Parent linking is implicit through a thread-local "current span":
// constructing a Span inside another's lifetime makes it a child. To
// continue a trace on another thread (svc request handoff to a worker),
// carry the SpanContext and adopt it there with a TraceScope.
#pragma once

#ifndef ILC_OBS_TRACING_COMPILED
#define ILC_OBS_TRACING_COMPILED 1
#endif

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ilc::obs {

/// The portable identity of a span: enough to parent further work onto
/// it, on any thread. trace_id == 0 means "no active trace".
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool valid() const { return trace_id != 0; }
};

/// One completed span, as stored in the ring buffers.
struct SpanRecord {
  std::string name;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root
  std::uint32_t tid = 0;        // small per-thread ordinal, not the OS tid
  std::uint64_t start_us = 0;   // since the process trace epoch
  std::uint64_t dur_us = 0;
  std::vector<std::pair<std::string, std::string>> annotations;
};

#if ILC_OBS_TRACING_COMPILED

class Tracer {
 public:
  static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on);

  /// Fresh process-unique ID (shared sequence for trace and span IDs).
  static std::uint64_t new_id();

  /// The calling thread's innermost active span ({} when none).
  static SpanContext current();

  /// Copy of every completed span across all thread buffers, oldest
  /// first per thread. Non-consuming.
  static std::vector<SpanRecord> records();

  /// Render every completed span as Chrome trace_event JSON and clear
  /// the buffers.
  static std::string drain_chrome_trace();
  static std::string to_chrome_trace(const std::vector<SpanRecord>& recs);
  static void clear();

  /// Ring capacity of the calling thread's buffer (completed spans kept
  /// before the oldest are overwritten). Also sets the default for
  /// threads that have not recorded yet.
  static void set_ring_capacity(std::size_t capacity);

  /// Record a span for an interval measured manually (e.g. queue wait,
  /// where no Span object lived across the interval). `parent` supplies
  /// the trace to attach to; an invalid parent starts a new trace.
  static void record(const char* name, SpanContext parent,
                     std::chrono::steady_clock::time_point start,
                     std::chrono::steady_clock::time_point end,
                     std::vector<std::pair<std::string, std::string>>
                         annotations = {});

  /// Record a span whose identity the caller fixed up front (both IDs from
  /// new_id()), parented on `parent_id` (0 = a trace root). This is how a
  /// transport emits a request span *after* child spans — created while
  /// the request was in flight under a TraceScope on `self` — have already
  /// parented onto it. No-op when `self` is invalid.
  static void record_span(const char* name, SpanContext self,
                          std::uint64_t parent_id,
                          std::chrono::steady_clock::time_point start,
                          std::chrono::steady_clock::time_point end,
                          std::vector<std::pair<std::string, std::string>>
                              annotations = {});

  /// Microseconds since the process trace epoch.
  static std::uint64_t to_trace_us(std::chrono::steady_clock::time_point tp);

 private:
  friend class Span;
  friend class TraceScope;
  static std::atomic<bool>& enabled_flag();
  static void push(SpanRecord&& rec);
  static SpanContext exchange_current(SpanContext ctx);
};

/// Adopt a span context as the calling thread's current span for the
/// scope's lifetime — the cross-thread propagation primitive.
class TraceScope {
 public:
  explicit TraceScope(SpanContext ctx) : prev_(Tracer::exchange_current(ctx)) {}
  ~TraceScope() { Tracer::exchange_current(prev_); }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  SpanContext prev_;
};

/// RAII span. `name` must outlive the span (string literals).
class Span {
 public:
  /// Child of the thread's current span; roots a new trace when there is
  /// no current span.
  explicit Span(const char* name) : Span(name, Tracer::current()) {}
  /// Child of an explicit parent (roots a new trace when invalid).
  Span(const char* name, SpanContext parent);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void annotate(const char* key, std::string value) {
    if (active_) annotations_.emplace_back(key, std::move(value));
  }

  /// Context to hand to other threads / manual records. Invalid when the
  /// span is inactive (tracing disabled).
  SpanContext context() const { return ctx_; }
  bool active() const { return active_; }

 private:
  const char* name_ = nullptr;
  SpanContext ctx_{};
  std::uint64_t parent_id_ = 0;
  SpanContext prev_current_{};
  std::chrono::steady_clock::time_point start_{};
  std::vector<std::pair<std::string, std::string>> annotations_;
  bool active_ = false;
};

#else  // ILC_OBS_TRACING_COMPILED == 0: every operation is an inline no-op

class Tracer {
 public:
  static bool enabled() { return false; }
  static void set_enabled(bool) {}
  static std::uint64_t new_id() { return 0; }
  static SpanContext current() { return {}; }
  static std::vector<SpanRecord> records() { return {}; }
  static std::string drain_chrome_trace() { return "{\"traceEvents\":[]}"; }
  static std::string to_chrome_trace(const std::vector<SpanRecord>&) {
    return "{\"traceEvents\":[]}";
  }
  static void clear() {}
  static void set_ring_capacity(std::size_t) {}
  static void record(const char*, SpanContext,
                     std::chrono::steady_clock::time_point,
                     std::chrono::steady_clock::time_point,
                     std::vector<std::pair<std::string, std::string>> = {}) {}
  static void record_span(const char*, SpanContext, std::uint64_t,
                          std::chrono::steady_clock::time_point,
                          std::chrono::steady_clock::time_point,
                          std::vector<std::pair<std::string, std::string>> =
                              {}) {}
  static std::uint64_t to_trace_us(std::chrono::steady_clock::time_point) {
    return 0;
  }
};

class TraceScope {
 public:
  explicit TraceScope(SpanContext) {}
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
};

class Span {
 public:
  explicit Span(const char*) {}
  Span(const char*, SpanContext) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void annotate(const char*, std::string) {}
  SpanContext context() const { return {}; }
  bool active() const { return false; }
};

#endif  // ILC_OBS_TRACING_COMPILED

}  // namespace ilc::obs
