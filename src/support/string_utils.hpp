// String helpers shared by the IR printer/parser and the KB text format.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ilc::support {

std::vector<std::string> split(std::string_view s, char sep);
/// Split on runs of whitespace, dropping empty tokens.
std::vector<std::string> split_ws(std::string_view s);
std::string trim(std::string_view s);
bool starts_with(std::string_view s, std::string_view prefix);
std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string to_lower(std::string_view s);

}  // namespace ilc::support
