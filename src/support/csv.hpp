// Tiny CSV writer/reader used by the knowledge-base standard format and by
// benches that dump raw series for external plotting.
#pragma once

#include <string>
#include <vector>

namespace ilc::support {

/// Writes rows of string cells; quotes cells containing separators.
class CsvWriter {
 public:
  explicit CsvWriter(char sep = ',') : sep_(sep) {}
  void row(const std::vector<std::string>& cells);
  const std::string& str() const { return out_; }
  bool save(const std::string& path) const;

 private:
  char sep_;
  std::string out_;
};

/// Parses CSV text (handles quoted cells with embedded separators/quotes).
std::vector<std::vector<std::string>> parse_csv(const std::string& text,
                                                char sep = ',');

}  // namespace ilc::support
