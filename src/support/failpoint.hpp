// support::failpoint — a process-wide registry of named fault-injection
// points, so the request-lifecycle guarantees of the serving stack
// ("every future resolves, in bounded time, on every path") are testable
// rather than aspirational. A failpoint site is one line:
//
//   if (support::failpoint("svc.persist"))
//     throw std::runtime_error("injected persist failure");
//
// and costs a single relaxed atomic load when nothing is armed, so sites
// stay compiled into release builds (benches inject faults too).
//
// Arming, from code or the environment (ILC_FAILPOINTS):
//
//   Failpoints::instance().configure("svc.persist=throw");
//   ILC_FAILPOINTS="kbstore.wal_flush=error*2;svc.eval=delay:50" ./bench
//
// Spec grammar: `name=kind[:arg][*count]`, `;`-separated.
//   throw[:msg]   evaluate() throws FailpointError(msg)
//   error         evaluate() returns true — the site takes its own
//                 error-return path (whatever that means locally)
//   delay:ms      evaluate() sleeps `ms` milliseconds, then returns false
//   block         evaluate() parks the calling thread until the failpoint
//                 is unset or re-armed differently (deterministic tests:
//                 hold a worker mid-request, observe queue behavior, then
//                 release). `hits()` counts arrivals before parking.
//   off           disarm
//   *count        fire at most `count` times, then self-disarm
//                 (ignored by `block`)
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace ilc::support {

/// Thrown by an armed `throw` failpoint.
struct FailpointError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct FailpointAction {
  enum class Kind { Off, Throw, Error, Delay, Block };
  Kind kind = Kind::Off;
  std::string message;        // Throw: exception text
  std::uint64_t delay_ms = 0; // Delay: sleep duration
  /// Fire at most this many times, then self-disarm; -1 = unlimited.
  int count = -1;
};

class Failpoints {
 public:
  static Failpoints& instance();

  /// Arm `name` with `action` (Kind::Off disarms).
  void set(const std::string& name, FailpointAction action);
  void unset(const std::string& name) { set(name, FailpointAction{}); }
  void unset_all();

  /// Parse and apply one `name=kind[:arg][*count]` spec (or several,
  /// `;`-separated). Returns false on a malformed spec (nothing applied
  /// from the bad clause; earlier clauses stay applied).
  bool configure(const std::string& spec);
  /// Apply the spec in environment variable `var` when set. Returns the
  /// number of clauses applied.
  std::size_t configure_from_env(const char* var = "ILC_FAILPOINTS");

  /// Times `name` was evaluated while armed (any kind, block included).
  std::uint64_t hits(const std::string& name) const;

  /// True when any failpoint is armed (one relaxed load; the fast path).
  bool armed() const { return armed_.load(std::memory_order_relaxed) > 0; }

  /// The slow path behind support::failpoint(): apply `name`'s action.
  bool evaluate(const char* name);

 private:
  Failpoints() = default;

  mutable std::mutex mu_;
  std::condition_variable cv_;  // wakes Block-parked threads on set/unset
  std::unordered_map<std::string, FailpointAction> actions_;
  std::unordered_map<std::string, std::uint64_t> hits_;
  std::atomic<int> armed_{0};  // number of armed names
};

/// The site hook. Returns true when the site should take its local
/// error-return path; may throw (`throw`), sleep (`delay`), or park
/// (`block`) instead. Near-zero cost while nothing is armed.
inline bool failpoint(const char* name) {
  Failpoints& fp = Failpoints::instance();
  if (!fp.armed()) return false;
  return fp.evaluate(name);
}

}  // namespace ilc::support
