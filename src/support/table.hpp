// ASCII table rendering for the benchmark harnesses. Every figure/table a
// bench regenerates is printed through this so the output is uniform and
// easy to diff against EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ilc::support {

/// Column-aligned ASCII table. Cells are strings; numeric helpers format
/// with a fixed precision. Right-aligns cells that parse as numbers.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Formats a double with `digits` decimals.
  static std::string num(double v, int digits = 2);
  /// Formats an integer with thousands separators (1,234,567).
  static std::string num(long long v);

  /// Render with box-drawing rules.
  std::string render() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ilc::support
