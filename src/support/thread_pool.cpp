#include "support/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "support/assert.hpp"

namespace ilc::support {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    ILC_CHECK_MSG(!stop_, "submit after shutdown");
    jobs_.push(std::move(job));
  }
  cv_job_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return jobs_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_job_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (stop_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
      ++in_flight_;
    }
    job();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (jobs_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (begin >= end) return;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  const std::size_t n = end - begin;
  if (threads == 1 || n == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{begin};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto body = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  const std::size_t spawned = std::min(threads, n) - 1;
  pool.reserve(spawned);
  for (std::size_t t = 0; t < spawned; ++t) pool.emplace_back(body);
  body();
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(ThreadPool* pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  if (pool == nullptr || pool->size() <= 1 || end - begin == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Jobs run on pool workers whose loop has no handler, so each job must
  // swallow its own exception; the first one re-surfaces after the batch.
  std::exception_ptr first_error;
  std::mutex error_mu;
  for (std::size_t i = begin; i < end; ++i) {
    pool->submit([&fn, &first_error, &error_mu, i] {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool->wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ilc::support
