// Lightweight checked-invariant macros for the ilc libraries.
//
// ILC_CHECK is always on (throws ilc::support::CheckError) and is used for
// conditions that depend on user input (malformed IR, bad file formats).
// ILC_ASSERT compiles out in NDEBUG-free builds only via the same path; we
// keep it always on because the simulator is the experimental oracle and a
// silently-corrupt run would invalidate results.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ilc::support {

/// Error thrown by ILC_CHECK / ILC_ASSERT failures.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace ilc::support

#define ILC_CHECK(cond)                                                \
  do {                                                                 \
    if (!(cond)) ::ilc::support::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define ILC_CHECK_MSG(cond, msg)                                       \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream ilc_os_;                                      \
      ilc_os_ << msg;                                                  \
      ::ilc::support::check_failed(#cond, __FILE__, __LINE__, ilc_os_.str()); \
    }                                                                  \
  } while (0)

#define ILC_ASSERT(cond) ILC_CHECK(cond)
#define ILC_UNREACHABLE(msg) \
  ::ilc::support::check_failed("unreachable", __FILE__, __LINE__, msg)
