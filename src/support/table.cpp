#include "support/table.hpp"

#include <cctype>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace ilc::support {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c != '.' && c != '-' && c != '+' && c != ',' && c != '%' &&
               c != 'x' && c != 'e' && c != 'E') {
      return false;
    }
  }
  return digit;
}

std::string pad(const std::string& s, std::size_t width, bool right) {
  if (s.size() >= width) return s;
  const std::string fill(width - s.size(), ' ');
  return right ? fill + s : s + fill;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ILC_CHECK(!headers_.empty());
}

Table& Table::add_row(std::vector<std::string> cells) {
  ILC_CHECK_MSG(cells.size() == headers_.size(),
                "row width " << cells.size() << " != header width "
                             << headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string Table::num(long long v) {
  std::string raw = std::to_string(v < 0 ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  rule();
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << ' ' << pad(headers_[c], widths[c], false) << " |";
  os << '\n';
  rule();
  for (const auto& row : rows_) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c)
      os << ' ' << pad(row[c], widths[c], looks_numeric(row[c])) << " |";
    os << '\n';
  }
  rule();
  return os.str();
}

void Table::print(std::ostream& os) const { os << render(); }

}  // namespace ilc::support
