// Minimal work-stealing-free thread pool with a parallel_for helper.
//
// The simulator itself is single-threaded and deterministic; parallelism in
// this project lives entirely in the experiment harnesses, which evaluate
// many independent (sequence, program) pairs. parallel_for partitions an
// index range across worker threads; with hardware_concurrency() == 1 it
// degrades gracefully to an inline loop, so results never depend on the
// thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ilc::support {

/// Fixed-size thread pool executing std::function jobs FIFO.
class ThreadPool {
 public:
  /// threads == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> job);

  /// Block until every submitted job has finished.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Apply fn(i) for i in [begin, end) using up to `threads` workers.
/// fn must be safe to call concurrently for distinct i. Exceptions thrown
/// by fn propagate (the first one captured) after all iterations finish.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

/// Same contract, but running on a caller-owned pool so repeated batches
/// (e.g. one per GA generation) reuse warm worker threads instead of
/// spawning fresh ones. A null pool, or one with a single worker, runs the
/// loop inline. The pool must carry no other jobs: wait_idle() is the
/// batch barrier.
void parallel_for(ThreadPool* pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

}  // namespace ilc::support
