// Small statistics helpers used by the characterization layer (counter
// normalization, mutual information) and the experiment harnesses
// (averaging search trials, summarizing figures).
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/assert.hpp"

namespace ilc::support {

inline double mean(const std::vector<double>& v) {
  ILC_ASSERT(!v.empty());
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

inline double variance(const std::vector<double>& v) {
  ILC_ASSERT(!v.empty());
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

inline double stdev(const std::vector<double>& v) {
  return std::sqrt(variance(v));
}

/// Geometric mean; every element must be > 0.
inline double geomean(const std::vector<double>& v) {
  ILC_ASSERT(!v.empty());
  double s = 0.0;
  for (double x : v) {
    ILC_ASSERT(x > 0.0);
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(v.size()));
}

/// Linear-interpolated percentile, p in [0, 100].
inline double percentile(std::vector<double> v, double p) {
  ILC_ASSERT(!v.empty());
  ILC_ASSERT(p >= 0.0 && p <= 100.0);
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

inline double min_of(const std::vector<double>& v) {
  ILC_ASSERT(!v.empty());
  return *std::min_element(v.begin(), v.end());
}

inline double max_of(const std::vector<double>& v) {
  ILC_ASSERT(!v.empty());
  return *std::max_element(v.begin(), v.end());
}

}  // namespace ilc::support
