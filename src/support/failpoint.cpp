#include "support/failpoint.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

namespace ilc::support {

namespace {

std::vector<std::string> split_clauses(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t sep = spec.find(';', start);
    const std::size_t end = sep == std::string::npos ? spec.size() : sep;
    if (end > start) out.push_back(spec.substr(start, end - start));
    if (sep == std::string::npos) break;
    start = sep + 1;
  }
  return out;
}

bool parse_clause(const std::string& clause, std::string& name,
                  FailpointAction& action) {
  const std::size_t eq = clause.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  name = clause.substr(0, eq);
  std::string rest = clause.substr(eq + 1);

  const std::size_t star = rest.rfind('*');
  if (star != std::string::npos) {
    const std::string n = rest.substr(star + 1);
    if (n.empty()) return false;
    char* end = nullptr;
    const long parsed = std::strtol(n.c_str(), &end, 10);
    if (*end != '\0' || parsed <= 0) return false;
    action.count = static_cast<int>(parsed);
    rest = rest.substr(0, star);
  }

  std::string kind = rest, arg;
  if (const std::size_t colon = rest.find(':'); colon != std::string::npos) {
    kind = rest.substr(0, colon);
    arg = rest.substr(colon + 1);
  }

  if (kind == "off") {
    action.kind = FailpointAction::Kind::Off;
  } else if (kind == "throw") {
    action.kind = FailpointAction::Kind::Throw;
    action.message = arg.empty() ? "failpoint " + name : arg;
  } else if (kind == "error") {
    action.kind = FailpointAction::Kind::Error;
  } else if (kind == "delay") {
    action.kind = FailpointAction::Kind::Delay;
    char* end = nullptr;
    const long ms = std::strtol(arg.c_str(), &end, 10);
    if (arg.empty() || *end != '\0' || ms < 0) return false;
    action.delay_ms = static_cast<std::uint64_t>(ms);
  } else if (kind == "block") {
    action.kind = FailpointAction::Kind::Block;
  } else {
    return false;
  }
  return true;
}

}  // namespace

Failpoints& Failpoints::instance() {
  static Failpoints fp;
  return fp;
}

void Failpoints::set(const std::string& name, FailpointAction action) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = actions_.find(name);
  const bool was_armed =
      it != actions_.end() && it->second.kind != FailpointAction::Kind::Off;
  const bool now_armed = action.kind != FailpointAction::Kind::Off;
  if (now_armed) {
    actions_[name] = std::move(action);
  } else if (it != actions_.end()) {
    actions_.erase(it);
  }
  armed_.fetch_add((now_armed ? 1 : 0) - (was_armed ? 1 : 0),
                   std::memory_order_relaxed);
  cv_.notify_all();  // release any thread parked on this name
}

void Failpoints::unset_all() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.fetch_sub(static_cast<int>(actions_.size()),
                   std::memory_order_relaxed);
  actions_.clear();
  cv_.notify_all();
}

bool Failpoints::configure(const std::string& spec) {
  for (const std::string& clause : split_clauses(spec)) {
    std::string name;
    FailpointAction action;
    if (!parse_clause(clause, name, action)) return false;
    set(name, std::move(action));
  }
  return true;
}

std::size_t Failpoints::configure_from_env(const char* var) {
  const char* v = std::getenv(var);
  if (v == nullptr || *v == '\0') return 0;
  const std::vector<std::string> clauses = split_clauses(v);
  return configure(v) ? clauses.size() : 0;
}

std::uint64_t Failpoints::hits(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = hits_.find(name);
  return it == hits_.end() ? 0 : it->second;
}

bool Failpoints::evaluate(const char* name) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = actions_.find(name);
  if (it == actions_.end()) return false;
  FailpointAction& action = it->second;
  ++hits_[name];

  // Self-disarm when the fire budget runs out (block ignores counts: it
  // stays armed until explicitly released).
  if (action.kind != FailpointAction::Kind::Block && action.count > 0 &&
      --action.count == 0) {
    const FailpointAction fired = action;
    actions_.erase(it);
    armed_.fetch_sub(1, std::memory_order_relaxed);
    lock.unlock();
    if (fired.kind == FailpointAction::Kind::Throw)
      throw FailpointError(fired.message);
    if (fired.kind == FailpointAction::Kind::Delay)
      std::this_thread::sleep_for(std::chrono::milliseconds(fired.delay_ms));
    return fired.kind == FailpointAction::Kind::Error;
  }

  switch (action.kind) {
    case FailpointAction::Kind::Off:
      return false;
    case FailpointAction::Kind::Error:
      return true;
    case FailpointAction::Kind::Throw: {
      const std::string msg = action.message;
      lock.unlock();
      throw FailpointError(msg);
    }
    case FailpointAction::Kind::Delay: {
      const std::uint64_t ms = action.delay_ms;
      lock.unlock();
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      return false;
    }
    case FailpointAction::Kind::Block: {
      const std::string key(name);
      cv_.wait(lock, [&] {
        const auto a = actions_.find(key);
        return a == actions_.end() ||
               a->second.kind != FailpointAction::Kind::Block;
      });
      return false;
    }
  }
  return false;
}

}  // namespace ilc::support
