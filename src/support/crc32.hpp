// CRC-32 (IEEE 802.3 reflected polynomial 0xEDB88320), the checksum the
// knowledge-base store uses to frame log records. Header-only with a
// compile-time table; incremental use chains through the `seed` argument.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ilc::support {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// CRC-32 of `n` bytes. Pass a previous digest as `seed` to continue an
/// incremental computation: crc32("ab") == crc32("b", crc32("a")).
inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = ~seed;
  for (std::size_t i = 0; i < n; ++i)
    c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return ~c;
}

inline std::uint32_t crc32(std::string_view s, std::uint32_t seed = 0) {
  return crc32(s.data(), s.size(), seed);
}

}  // namespace ilc::support
