#include "support/csv.hpp"

#include <fstream>

namespace ilc::support {

namespace {

bool needs_quotes(const std::string& cell, char sep) {
  for (char c : cell)
    if (c == sep || c == '"' || c == '\n' || c == '\r') return true;
  return false;
}

std::string quote(const std::string& cell) {
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_.push_back(sep_);
    out_ += needs_quotes(cells[i], sep_) ? quote(cells[i]) : cells[i];
  }
  out_.push_back('\n');
}

bool CsvWriter::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << out_;
  return static_cast<bool>(f);
}

std::vector<std::vector<std::string>> parse_csv(const std::string& text,
                                                char sep) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool cell_started = false;

  auto end_cell = [&] {
    row.push_back(cell);
    cell.clear();
    cell_started = false;
  };
  auto end_row = [&] {
    if (cell_started || !cell.empty() || !row.empty()) {
      end_cell();
      rows.push_back(row);
      row.clear();
    }
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
      cell_started = true;
    } else if (c == sep) {
      end_cell();
      cell_started = true;  // next cell exists even if empty
    } else if (c == '\n') {
      end_row();
    } else if (c != '\r') {
      cell.push_back(c);
      cell_started = true;
    }
  }
  end_row();
  return rows;
}

}  // namespace ilc::support
