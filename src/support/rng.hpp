// Deterministic, seedable random number generation.
//
// All experiments in this repository use Rng (xoshiro256**) seeded
// explicitly, so every figure is bit-reproducible. std::mt19937 is avoided
// because its distributions are not guaranteed identical across standard
// library implementations; everything here is self-contained.
#pragma once

#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace ilc::support {

/// splitmix64 — used to expand a single 64-bit seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1234567887654321ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    ILC_ASSERT(bound > 0);
    // Debiased via rejection sampling on the top of the range.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    ILC_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p of true.
  bool next_bool(double p) { return next_double() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample an index from an (unnormalized) non-negative weight vector.
  std::size_t next_weighted(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) {
      ILC_ASSERT(w >= 0.0);
      total += w;
    }
    ILC_ASSERT(total > 0.0);
    double x = next_double() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x <= 0.0) return i;
    }
    return weights.size() - 1;  // numeric edge
  }

  /// Derive an independent child stream (for per-trial determinism).
  Rng fork(std::uint64_t stream_id) {
    std::uint64_t s = next_u64() ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
    return Rng(s);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace ilc::support
