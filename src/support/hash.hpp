// FNV-1a based hashing used to fingerprint optimized IR modules so the
// search harness can memoize simulator results across equivalent
// optimization sequences.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace ilc::support {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Incremental FNV-1a 64-bit hasher.
class Hasher {
 public:
  Hasher& bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= kFnvPrime;
    }
    return *this;
  }

  template <typename T>
  Hasher& pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    return bytes(&v, sizeof(v));
  }

  Hasher& str(std::string_view s) {
    pod(s.size());
    return bytes(s.data(), s.size());
  }

  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = kFnvOffset;
};

inline std::uint64_t hash_bytes(const void* data, std::size_t n) {
  return Hasher().bytes(data, n).digest();
}

inline std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  // 64-bit variant of boost::hash_combine with a stronger mixer.
  a ^= b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4);
  a *= 0xff51afd7ed558ccdULL;
  a ^= a >> 33;
  return a;
}

}  // namespace ilc::support
