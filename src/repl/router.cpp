#include "repl/router.hpp"

namespace ilc::repl {

std::optional<Router::Route> Router::route(std::uint64_t fp) const {
  if (shards_.empty()) return std::nullopt;
  const std::size_t s = owner_of(fp, shards_.size());
  const Shard& sh = shards_[s];
  if (!down_[s][0]) return Route{sh.primary, s, /*read_only=*/false};
  for (std::size_t k = 0; k < sh.followers.size(); ++k)
    if (!down_[s][1 + k]) return Route{sh.followers[k], s, /*read_only=*/true};
  return std::nullopt;
}

void Router::mark(const Endpoint& ep, bool down) {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].primary == ep) down_[s][0] = down;
    for (std::size_t k = 0; k < shards_[s].followers.size(); ++k)
      if (shards_[s].followers[k] == ep) down_[s][1 + k] = down;
  }
}

bool Router::is_down(const Endpoint& ep) const {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].primary == ep && down_[s][0]) return true;
    for (std::size_t k = 0; k < shards_[s].followers.size(); ++k)
      if (shards_[s].followers[k] == ep && down_[s][1 + k]) return true;
  }
  return false;
}

}  // namespace ilc::repl
