#include "repl/router.hpp"

namespace ilc::repl {

Router::Router(std::vector<Shard> shards, obs::Registry* registry)
    : shards_(std::move(shards)) {
  std::size_t max_followers = 0;
  for (const auto& s : shards_)
    max_followers = std::max(max_followers, s.followers.size());
  down_.resize(shards_.size());
  for (auto& d : down_) d.resize(1 + max_followers, false);

  obs::Registry& reg = registry ? *registry : obs::Registry::instance();
  fallback_serves_ = reg.counter("repl.router.fallback_serves");
  unroutable_ = reg.counter("repl.router.unroutable");
  mark_down_ = reg.counter("repl.router.mark_down");
  mark_up_ = reg.counter("repl.router.mark_up");
  wrong_shard_ = reg.counter("repl.router.wrong_shard");
}

Router::Shard Router::shard(std::size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_[i];
}

std::optional<Router::Route> Router::route_shard_locked(std::size_t s) const {
  const Shard& sh = shards_[s];
  if (!down_[s][0]) return Route{sh.primary, s, /*read_only=*/false};
  for (std::size_t k = 0; k < sh.followers.size(); ++k)
    if (!down_[s][1 + k]) {
      fallback_serves_.add(1);
      return Route{sh.followers[k], s, /*read_only=*/true};
    }
  unroutable_.add(1);
  return std::nullopt;
}

std::optional<Router::Route> Router::route(std::uint64_t fp) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (shards_.empty()) return std::nullopt;
  return route_shard_locked(owner_of(fp, shards_.size()));
}

std::optional<Router::Route> Router::route_shard(std::size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (shard >= shards_.size()) {
    // A shard index beyond our map: a stale client talking to a grown
    // fleet. As unroutable as an all-down shard.
    unroutable_.add(1);
    return std::nullopt;
  }
  return route_shard_locked(shard);
}

void Router::mark(const Endpoint& ep, bool down) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].primary == ep && down_[s][0] != down) {
      down_[s][0] = down;
      (down ? mark_down_ : mark_up_).add(1);
    }
    for (std::size_t k = 0; k < shards_[s].followers.size(); ++k)
      if (shards_[s].followers[k] == ep && down_[s][1 + k] != down) {
        down_[s][1 + k] = down;
        (down ? mark_down_ : mark_up_).add(1);
      }
  }
}

bool Router::is_down(const Endpoint& ep) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].primary == ep && down_[s][0]) return true;
    for (std::size_t k = 0; k < shards_[s].followers.size(); ++k)
      if (shards_[s].followers[k] == ep && down_[s][1 + k]) return true;
  }
  return false;
}

void Router::note_wrong_shard() { wrong_shard_.add(1); }

bool Router::promote(std::size_t shard, const Endpoint& new_primary) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shard >= shards_.size()) return false;
  Shard& sh = shards_[shard];
  const auto it =
      std::find(sh.followers.begin(), sh.followers.end(), new_primary);
  if (it == sh.followers.end()) return false;
  const Endpoint old_primary = sh.primary;
  sh.primary = new_primary;
  sh.followers.erase(it);
  sh.followers.push_back(old_primary);
  // Fresh health for the reshaped shard: the new primary is up, the old
  // one is down until a probe (or caller) says otherwise. Follower flags
  // are positional, so rebuild them rather than shifting.
  for (std::size_t k = 0; k < down_[shard].size(); ++k)
    down_[shard][k] = false;
  down_[shard][sh.followers.size()] = true;  // demoted old primary
  return true;
}

}  // namespace ilc::repl
