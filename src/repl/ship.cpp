#include "repl/ship.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "kbstore/log_format.hpp"
#include "obs/metrics.hpp"
#include "support/crc32.hpp"

namespace ilc::repl {

namespace fs = std::filesystem;

namespace {

obs::Counter& c_frames_shipped() {
  static obs::Counter c =
      obs::Registry::instance().counter("repl.frames_shipped");
  return c;
}
obs::Counter& c_bytes_shipped() {
  static obs::Counter c =
      obs::Registry::instance().counter("repl.bytes_shipped");
  return c;
}
obs::Counter& c_snapshots_shipped() {
  static obs::Counter c =
      obs::Registry::instance().counter("repl.snapshots_shipped");
  return c;
}
obs::Counter& c_rejects() {
  static obs::Counter c = obs::Registry::instance().counter("repl.rejects");
  return c;
}

bool read_file_bytes(const std::string& path, std::string& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream os;
  os << f.rdbuf();
  out = os.str();
  return true;
}

}  // namespace

ShipSource::WalImage ShipSource::read_wal() const {
  WalImage img;
  if (!read_file_bytes(dir_ + "/wal.ilc", img.bytes)) return img;
  if (img.bytes.size() < kbstore::kHeaderSize)
    return img;  // mid-recreation (compaction window) or torn header
  const kbstore::ScannedLog probe =
      kbstore::scan_log(std::string_view(img.bytes).substr(
                            0, kbstore::kHeaderSize),
                        kbstore::kWalType);
  if (!probe.header_ok) return img;
  img.generation = probe.generation;
  img.walked = kbstore::walk_frames(img.bytes, kbstore::kHeaderSize);
  // A complete-but-corrupt frame inside the durable region is real
  // corruption; the torn tail of an in-progress flush is just "not yet".
  if (!img.walked.frames.empty() &&
      (!img.walked.frames.back().crc_ok ||
       !img.walked.frames.back().decodable))
    img.walked.frames.pop_back();
  img.ok = true;
  return img;
}

std::optional<kbstore::WalPosition> ShipSource::position() const {
  const WalImage img = read_wal();
  if (!img.ok) return std::nullopt;
  kbstore::WalPosition pos;
  pos.generation = img.generation;
  pos.seq = img.walked.frames.size();
  pos.chain_crc = support::crc32(
      std::string_view(img.bytes)
          .substr(kbstore::kHeaderSize,
                  img.walked.good_bytes - kbstore::kHeaderSize));
  return pos;
}

bool ShipSource::handshake(const Msg& hello, std::string& out,
                           std::string* why) {
  const auto fail = [&](const std::string& reason) {
    if (why) *why = reason;
    encode_msg(out, Msg::reject(reason));
    c_rejects().add(1);
    positioned_ = false;
    return false;
  };
  if (hello.type != MsgType::Hello) return fail("protocol error: not a hello");

  const WalImage img = read_wal();
  if (!img.ok) return fail("leader store unreadable: " + dir_);
  const std::uint64_t leader_seq = img.walked.frames.size();

  if (hello.a > img.generation)
    return fail("split-brain: follower generation " + std::to_string(hello.a) +
                " is ahead of leader generation " +
                std::to_string(img.generation));
  if (hello.a == img.generation) {
    if (hello.b > leader_seq)
      return fail("split-brain: follower holds " + std::to_string(hello.b) +
                  " frames, leader only " + std::to_string(leader_seq) +
                  " at generation " + std::to_string(img.generation));
    // The follower's history must be a byte-prefix of ours: chain the CRC
    // over our first `hello.b` frames and compare.
    const std::uint64_t prefix_end =
        hello.b == 0 ? kbstore::kHeaderSize : img.walked.frames[hello.b - 1].end();
    const std::uint32_t chain = support::crc32(
        std::string_view(img.bytes)
            .substr(kbstore::kHeaderSize, prefix_end - kbstore::kHeaderSize));
    if (chain != hello.hello_chain())
      return fail("split-brain: follower history diverges from leader at "
                  "generation " + std::to_string(hello.a) + ", frame " +
                  std::to_string(hello.b));
    gen_ = img.generation;
    next_seq_ = hello.b;
  } else {
    // Older generation: bootstrap from the snapshot on the next poll.
    gen_ = 0;
    next_seq_ = 0;
  }
  positioned_ = true;
  return true;
}

bool ShipSource::poll(std::string& out) {
  if (!positioned_) return false;
  const WalImage img = read_wal();
  if (!img.ok) return true;  // compaction window / transient: retry later

  if (img.generation != gen_) {
    // The leader compacted (or this session needs its bootstrap): ship
    // the snapshot image — verbatim — and restart frame shipping at 0.
    std::string snap;
    if (fs::is_regular_file(dir_ + "/snapshot.ilc") &&
        !read_file_bytes(dir_ + "/snapshot.ilc", snap))
      return false;
    if (!snap.empty()) {
      const kbstore::ScannedLog scan =
          kbstore::scan_log(snap, kbstore::kSnapshotType);
      if (!scan.header_ok || !scan.clean) return false;  // corrupt leader
      // Snapshot renamed but WAL not yet recreated: the on-disk pair is
      // (new snapshot, old WAL) and this WAL's generation will be <= the
      // snapshot's. Ship nothing yet; the recreated WAL arrives next poll.
      if (scan.generation >= img.generation) return true;
    }
    encode_msg(out, Msg::snapshot(img.generation, std::move(snap)));
    c_snapshots_shipped().add(1);
    gen_ = img.generation;
    next_seq_ = 0;
  }

  const std::uint64_t leader_seq = img.walked.frames.size();
  if (next_seq_ > leader_seq) {
    // The WAL shrank within a generation: impossible in a healthy store
    // (only compaction truncates, and that bumps the generation).
    return false;
  }
  if (next_seq_ < leader_seq) {
    const std::uint64_t from = img.walked.frames[next_seq_].offset;
    const std::uint64_t to = img.walked.frames[leader_seq - 1].end();
    encode_msg(out, Msg::frames(gen_, next_seq_,
                                img.bytes.substr(from, to - from)));
    c_frames_shipped().add(leader_seq - next_seq_);
    c_bytes_shipped().add(to - from);
    next_seq_ = leader_seq;
  }
  encode_msg(out, Msg::heartbeat(gen_, leader_seq));
  return true;
}

std::optional<std::string> divergence(const std::string& leader_dir,
                                      const std::string& follower_dir) {
  for (const char* name : {"/snapshot.ilc", "/wal.ilc"}) {
    std::string a, b;
    const bool has_a = read_file_bytes(leader_dir + name, a);
    const bool has_b = read_file_bytes(follower_dir + name, b);
    if (has_a != has_b)
      return std::string(name + 1) + ": present only on " +
             (has_a ? "leader" : "follower");
    if (a != b) {
      std::size_t i = 0;
      while (i < a.size() && i < b.size() && a[i] == b[i]) ++i;
      return std::string(name + 1) + ": differs at byte " +
             std::to_string(i) + " (leader " + std::to_string(a.size()) +
             " bytes, follower " + std::to_string(b.size()) + ")";
    }
  }
  return std::nullopt;
}

}  // namespace ilc::repl
