#include "repl/wire.hpp"

#include "support/crc32.hpp"

namespace ilc::repl {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

constexpr std::size_t kBodyFixed = 1 + 8 + 8;  // type + a + b

}  // namespace

Msg Msg::hello(const kbstore::WalPosition& pos) {
  Msg m;
  m.type = MsgType::Hello;
  m.a = pos.generation;
  m.b = pos.seq;
  put_u32(m.payload, pos.chain_crc);
  return m;
}

Msg Msg::snapshot(std::uint64_t wal_generation, std::string image) {
  Msg m;
  m.type = MsgType::Snapshot;
  m.a = wal_generation;
  m.payload = std::move(image);
  return m;
}

Msg Msg::frames(std::uint64_t generation, std::uint64_t start_seq,
                std::string raw) {
  Msg m;
  m.type = MsgType::Frames;
  m.a = generation;
  m.b = start_seq;
  m.payload = std::move(raw);
  return m;
}

Msg Msg::heartbeat(std::uint64_t generation, std::uint64_t seq) {
  Msg m;
  m.type = MsgType::Heartbeat;
  m.a = generation;
  m.b = seq;
  return m;
}

Msg Msg::reject(std::string reason) {
  Msg m;
  m.type = MsgType::Reject;
  m.payload = std::move(reason);
  return m;
}

std::uint32_t Msg::hello_chain() const {
  return payload.size() >= 4 ? get_u32(payload.data()) : 0;
}

void encode_msg(std::string& out, const Msg& m) {
  std::string body;
  body.reserve(kBodyFixed + m.payload.size());
  body.push_back(static_cast<char>(m.type));
  put_u64(body, m.a);
  put_u64(body, m.b);
  body.append(m.payload);
  put_u32(out, static_cast<std::uint32_t>(body.size()));
  put_u32(out, support::crc32(body));
  out.append(body);
}

MsgReader::Status MsgReader::next(Msg& m) {
  if (corrupt_) return Status::Corrupt;
  if (buf_.size() - off_ < 8) return Status::NeedMore;
  const std::uint32_t len = get_u32(buf_.data() + off_);
  const std::uint32_t crc = get_u32(buf_.data() + off_ + 4);
  if (len < kBodyFixed || len > kMaxBody) {
    corrupt_ = true;
    return Status::Corrupt;
  }
  if (buf_.size() - off_ - 8 < len) return Status::NeedMore;
  const std::string_view body(buf_.data() + off_ + 8, len);
  if (support::crc32(body) != crc) {
    corrupt_ = true;
    return Status::Corrupt;
  }
  const auto type = static_cast<std::uint8_t>(body[0]);
  if (type < static_cast<std::uint8_t>(MsgType::Hello) ||
      type > static_cast<std::uint8_t>(MsgType::Reject)) {
    corrupt_ = true;
    return Status::Corrupt;
  }
  m.type = static_cast<MsgType>(type);
  m.a = get_u64(body.data() + 1);
  m.b = get_u64(body.data() + 9);
  m.payload.assign(body.data() + kBodyFixed, body.size() - kBodyFixed);
  off_ += 8 + len;
  // Compact once the consumed prefix dominates, keeping feed() amortized.
  if (off_ > 4096 && off_ * 2 > buf_.size()) {
    buf_.erase(0, off_);
    off_ = 0;
  }
  return Status::Ok;
}

void MsgReader::reset() {
  buf_.clear();
  off_ = 0;
  corrupt_ = false;
}

}  // namespace ilc::repl
