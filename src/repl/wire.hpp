// Wire format of the replication channel (ilc::repl): the messages a
// leader's ShipSource and a follower's Applier exchange, byte-framed so
// the same stream works over any ordered transport — a TCP connection, a
// pipe, or a file replayed later.
//
//   msg  := u32 body_len | u32 crc32(body) | body
//   body := u8 type | u64 a | u64 b | payload
//
// (integers little-endian). The CRC covers the whole body, so a torn or
// corrupted ship is detected at the message boundary; WAL frames inside a
// Frames payload additionally carry their own per-frame CRCs, which the
// follower re-verifies before a byte reaches its log.
//
//   Hello      follower -> leader   a=generation b=seq payload=u32 chain
//              "I am at this durable position; resume me from here."
//   Snapshot   leader -> follower   a=wal_generation payload=snapshot
//              file image, verbatim (empty = leader has no snapshot):
//              bootstrap / post-compaction reset.
//   Frames     leader -> follower   a=generation b=start_seq payload=raw
//              WAL frame bytes, verbatim.
//   Heartbeat  leader -> follower   a=generation b=seq (leader's durable
//              position; lag is measured against the latest one)
//   Reject     leader -> follower   payload=reason. The follower must
//              stop: its history is not a prefix of the leader's
//              (split-brain) or the handshake was malformed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "kbstore/store.hpp"

namespace ilc::repl {

enum class MsgType : std::uint8_t {
  Hello = 1,
  Snapshot = 2,
  Frames = 3,
  Heartbeat = 4,
  Reject = 5,
};

/// Body length bound: a snapshot image plus slack. A length beyond this
/// is treated as stream corruption, not a huge message.
inline constexpr std::uint32_t kMaxBody = (1u << 28) + 1024;

struct Msg {
  MsgType type = MsgType::Heartbeat;
  std::uint64_t a = 0;  // generation (all types)
  std::uint64_t b = 0;  // seq (Hello/Frames/Heartbeat)
  std::string payload;

  static Msg hello(const kbstore::WalPosition& pos);
  static Msg snapshot(std::uint64_t wal_generation, std::string image);
  static Msg frames(std::uint64_t generation, std::uint64_t start_seq,
                    std::string raw);
  static Msg heartbeat(std::uint64_t generation, std::uint64_t seq);
  static Msg reject(std::string reason);

  /// Hello only: the chain CRC carried in the payload.
  std::uint32_t hello_chain() const;
};

/// Append the framed encoding of `m` to `out`.
void encode_msg(std::string& out, const Msg& m);

/// Incremental decoder: feed arbitrary byte chunks, pop complete
/// messages. A CRC mismatch or insane length poisons the stream — the
/// transport must drop the connection and re-handshake (the follower's
/// durable position makes that cheap).
class MsgReader {
 public:
  void feed(std::string_view bytes) { buf_.append(bytes); }

  enum class Status { Ok, NeedMore, Corrupt };
  /// Pop the next complete message into `m`.
  Status next(Msg& m);

  bool corrupt() const { return corrupt_; }
  /// Bytes buffered but not yet consumed (a torn tail mid-ship).
  std::size_t buffered() const { return buf_.size() - off_; }
  /// Drop buffered state (reconnect path).
  void reset();

 private:
  std::string buf_;
  std::size_t off_ = 0;  // consumed prefix, compacted lazily
  bool corrupt_ = false;
};

}  // namespace ilc::repl
