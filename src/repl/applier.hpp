// repl::Applier — the follower side of WAL shipping: replays a leader's
// wire messages into a read-only, follower-mode kbstore::Store. Every
// shipped frame is CRC-verified and decoded *again* on this side before a
// byte reaches the follower's log; frames and snapshot images land
// verbatim, so a caught-up follower's files are byte-identical to the
// leader's durable state — the zero-divergence invariant the fault suite
// and bench gate on.
//
// What the Applier refuses, and why:
//   * a Frames batch for another generation or a non-contiguous sequence
//     (a gap or a rewind) — the transport must re-handshake, not guess;
//   * a Snapshot older than the follower's current generation — a stale
//     leader (or a replayed ship) must not roll acknowledged state back;
//   * anything after the leader sent Reject — split-brain is an operator
//     problem, not something to retry through.
//
// Crash safety is inherited from kbstore recovery: a follower killed
// mid-apply leaves a torn WAL tail, open() truncates it, and hello()
// reports the surviving position, so replication resumes exactly where
// durability stopped. Serving is plain Store::find on the replicated
// index — warm-cache reads scale by pointing more clients at followers.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "kbstore/store.hpp"
#include "obs/metrics.hpp"
#include "repl/wire.hpp"

namespace ilc::repl {

struct ApplierOptions {
  /// Storage options for the follower store; `follower` is forced on.
  kbstore::Options store;
  /// Gauge/counter name prefix: an in-process fleet (tests, the
  /// kb_replica example) gives each follower its own, e.g. "repl.f1".
  std::string metric_prefix = "repl";
  /// Registry to publish into; nullptr = the process-wide instance.
  obs::Registry* registry = nullptr;
};

class Applier {
 public:
  using Options = ApplierOptions;

  /// Open (creating if needed) the follower store at `dir`, running
  /// crash recovery — a torn previous ship is truncated here. Returns
  /// nullptr when the directory is unusable or holds a corrupt store.
  static std::unique_ptr<Applier> open(const std::string& dir,
                                       Options opts = {},
                                       kbstore::RecoveryInfo* info = nullptr);

  /// The handshake message for (re)connecting: the durable position.
  Msg hello() const;

  /// Apply one leader message. False on rejection or a store failure;
  /// `why` explains. After a false return the session is dead — the
  /// caller reconnects (transient) or stops (Reject/split-brain).
  bool apply(const Msg& m, std::string* why = nullptr);

  kbstore::WalPosition position() const { return store_->wal_position(); }
  /// Frames behind the leader's last reported position. A generation
  /// mismatch (mid-bootstrap) reports the leader's whole WAL as lag.
  std::uint64_t lag() const;
  /// The leader rejected this follower (split-brain); reason in `why`.
  bool rejected(std::string* why = nullptr) const;

  /// Read-only serving against the replicated index.
  std::optional<kb::ExperimentRecord> find(const std::string& program,
                                           const std::string& machine,
                                           const std::string& kind) const {
    return store_->find(program, machine, kind);
  }
  const kbstore::Store& store() const { return *store_; }

  /// Cluster failover: drain this follower into a leader. The caller
  /// must have stopped the shipping transport first (ShipClient::stop
  /// joins its thread, so everything received has been applied). Flips
  /// the store onto a fresh generation (Store::promote_to_leader — the
  /// fence) and returns it; the Applier keeps serving reads through the
  /// same store but refuses every further replication message, so a
  /// stream from a resurrected old leader cannot land here. nullptr when
  /// already promoted or the store flip fails; `why` says which.
  std::shared_ptr<kbstore::Store> promote(std::string* why = nullptr);

  /// True once promote() succeeded: this replica is now a leader.
  bool promoted() const;

 private:
  Applier() = default;

  std::shared_ptr<kbstore::Store> store_;

  mutable std::mutex mu_;  // leader position + reject/promote state
  std::uint64_t leader_gen_ = 0;
  std::uint64_t leader_seq_ = 0;
  bool rejected_ = false;
  bool promoted_ = false;
  std::string reject_reason_;

  obs::Counter frames_applied_;
  obs::Counter snapshots_installed_;
  obs::Counter rejects_;
  obs::Gauge lag_frames_;
};

}  // namespace ilc::repl
