// repl::ShipSource — the leader side of WAL shipping: tails a live
// kbstore directory *through the filesystem* (never through the Store's
// locks), slicing newly durable WAL frames into wire messages for one
// follower. Reading flushed bytes only means a ShipSource observes
// exactly the prefix a crash would leave behind, so a follower can never
// get ahead of what the leader's own recovery would keep; the torn tail
// of an in-progress write simply isn't shipped until it completes.
//
// Session shape (one ShipSource per follower connection):
//
//   handshake   the follower's Hello names its durable position
//               (generation, frame count, chain CRC). Equal generation
//               with a matching chain resumes frame-granular; an older
//               generation bootstraps from the snapshot; a position the
//               leader's history cannot extend — follower ahead, or chain
//               mismatch at the claimed prefix — is *rejected*
//               (split-brain: this follower replicated a different
//               leader, or the leader lost acknowledged history).
//   poll        emit whatever became durable since the last call: Frames
//               after leader flushes, a fresh Snapshot + restart after a
//               leader compaction (the WAL generation changed under us),
//               and always a trailing Heartbeat so an idle follower still
//               measures lag.
//
// The ShipSource carries no state a restart cannot rebuild from the
// follower's next Hello — leader restarts are handled by reconnecting.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "kbstore/log_format.hpp"
#include "kbstore/store.hpp"
#include "repl/wire.hpp"

namespace ilc::repl {

class ShipSource {
 public:
  explicit ShipSource(std::string dir) : dir_(std::move(dir)) {}

  /// Answer a follower's Hello. On acceptance the session is positioned
  /// and true is returned; the first poll() ships the catch-up data. On
  /// split-brain (or an unreadable leader store) a Reject message is
  /// appended to `out`, `why` says what happened, and false is returned.
  bool handshake(const Msg& hello, std::string& out, std::string* why);

  /// Append newly durable data as wire messages: Snapshot when the
  /// generation moved, Frames for new WAL entries, then one Heartbeat.
  /// False on a leader-store read error (caller should drop the session).
  bool poll(std::string& out);

  /// The leader's current durable position, read from disk.
  std::optional<kbstore::WalPosition> position() const;

 private:
  struct WalImage {
    std::string bytes;
    kbstore::WalkedFrames walked;
    std::uint64_t generation = 0;
    bool ok = false;  // readable with a sane header
  };
  WalImage read_wal() const;

  std::string dir_;
  bool positioned_ = false;   // handshake accepted
  std::uint64_t gen_ = 0;     // generation the follower is on
  std::uint64_t next_seq_ = 0;  // next frame index to ship
};

/// Byte-level divergence check between two store directories (the
/// zero-divergence gate of the replication tests and bench): nullopt when
/// snapshot.ilc and wal.ilc are both identical, else a description of the
/// first difference. Compare only at rest (leader synced, follower
/// caught up) — un-flushed leader bytes are invisible to replication.
std::optional<std::string> divergence(const std::string& leader_dir,
                                      const std::string& follower_dir);

}  // namespace ilc::repl
