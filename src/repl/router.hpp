// repl::Router — client-side fingerprint-sharded routing over a fleet of
// tuning services. The key space is ir::fingerprint (a structural hash of
// the module being tuned), and ownership is the consistent modulo map
//
//   owner_of(fp, N) = fp % N
//
// which every party — clients, the services themselves (svc checks it to
// refuse wrong-shard writes), and operators reading logs — can compute
// with no coordination. Each shard is one leader process plus any number
// of read-only followers replicating its KB via WAL shipping.
//
// Routing policy: a request goes to its owning shard's primary. When the
// primary is marked down, route() falls back to one of that shard's
// followers *read-only* — a follower can serve warm-cache hits from the
// replicated KB but cannot run searches or accept writes, so the caller
// must treat a read_only route as "cache hit or nothing". Health comes
// from callers (set_down after a connect/IO failure, set_up after a
// successful probe) or from a cluster::HealthMonitor driving those same
// hooks from active probes; the Router itself never does IO. All methods
// are thread-safe: a monitor thread marks endpoints while client threads
// route.
//
// Observability (process-wide registry unless one is injected):
//   repl.router.fallback_serves   routes answered by a follower
//   repl.router.unroutable        routes with no healthy endpoint at all
//   repl.router.mark_down         up -> down endpoint transitions
//   repl.router.mark_up           down -> up endpoint transitions
//   repl.router.wrong_shard       wrong-shard refusals reported by callers
//                                 (a stale shard map on this client)
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace ilc::repl {

/// One addressable service process. Loopback TCP in this repo, so an
/// endpoint is just a port plus a label for logs and tests.
struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  std::string to_string() const {
    return host + ":" + std::to_string(port);
  }
  friend bool operator==(const Endpoint& x, const Endpoint& y) {
    return x.port == y.port && x.host == y.host;
  }
  friend bool operator!=(const Endpoint& x, const Endpoint& y) {
    return !(x == y);
  }
};

/// The shard index owning fingerprint `fp` in an N-shard fleet.
inline std::size_t owner_of(std::uint64_t fp, std::size_t shard_count) {
  return shard_count == 0 ? 0 : static_cast<std::size_t>(fp % shard_count);
}

class Router {
 public:
  struct Shard {
    Endpoint primary;
    std::vector<Endpoint> followers;  // read-only fallbacks, in order
  };

  struct Route {
    Endpoint endpoint;
    std::size_t shard = 0;
    /// A follower was chosen: only warm-cache lookups are served there.
    bool read_only = false;
  };

  explicit Router(std::vector<Shard> shards,
                  obs::Registry* registry = nullptr);

  std::size_t shard_count() const { return shards_.size(); }
  Shard shard(std::size_t i) const;

  /// Where to send work keyed by `fp`: the owning primary, or — when it
  /// is down — the first healthy follower of that shard, flagged
  /// read_only. nullopt when the whole shard is unreachable.
  std::optional<Route> route(std::uint64_t fp) const;

  /// Same policy addressed by shard index instead of key — the
  /// scatter-gather path, which visits every shard.
  std::optional<Route> route_shard(std::size_t shard) const;

  /// Mark an endpoint unhealthy / healthy again. Unknown endpoints are
  /// ignored (a stale config entry is not an error).
  void set_down(const Endpoint& ep) { mark(ep, true); }
  void set_up(const Endpoint& ep) { mark(ep, false); }
  bool is_down(const Endpoint& ep) const;

  /// A service refused our request as wrong-shard: our map is stale
  /// relative to the fleet. Counted so operators can see clients that
  /// need a registry refresh.
  void note_wrong_shard();

  /// Failover bookkeeping: `new_primary` (one of the shard's followers)
  /// becomes the primary, marked up; the old primary is demoted to the
  /// back of the follower list and marked down (it may resurrect as a
  /// follower after re-sync). False when `shard` is out of range or
  /// `new_primary` is not a follower of it.
  bool promote(std::size_t shard, const Endpoint& new_primary);

 private:
  void mark(const Endpoint& ep, bool down);
  std::optional<Route> route_shard_locked(std::size_t s) const;

  mutable std::mutex mu_;  // guards shards_ and down_
  std::vector<Shard> shards_;
  // down_[shard][0] = primary, down_[shard][1 + k] = followers[k].
  std::vector<std::vector<bool>> down_;

  obs::Counter fallback_serves_;
  obs::Counter unroutable_;
  obs::Counter mark_down_;
  obs::Counter mark_up_;
  obs::Counter wrong_shard_;
};

}  // namespace ilc::repl
