// repl transport — WAL shipping over loopback TCP, built on the blocking
// poll helpers of ilc::net rather than the epoll event loop: replication
// sessions are few (one per follower) and long-lived, so a dedicated
// thread per session is the simple, obviously-correct shape.
//
//   ShipServer  runs next to a leader store: accepts follower
//               connections, answers each Hello with a per-session
//               ShipSource, then streams Snapshot/Frames/Heartbeat until
//               the follower drops or the server stops. A split-brain
//               follower gets its Reject and the connection is closed.
//
//   ShipClient  runs next to a follower's Applier: connects (and
//               reconnects — leader restarts are expected), sends the
//               Applier's durable position as Hello, and applies the
//               stream. A torn ship (connection cut mid-message) leaves
//               the MsgReader holding an incomplete tail that is simply
//               dropped on reconnect; durability was never at stake
//               because the Applier only acknowledges complete, verified
//               frames. A Reject from the leader stops the client
//               permanently — resuming split-brain automatically would
//               destroy the evidence an operator needs.
//
// Failpoint: `repl.ship` makes the server cut a session's write
// mid-buffer and drop the connection — the deterministic torn-ship-over-
// TCP fault of the test suite.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "repl/applier.hpp"
#include "repl/ship.hpp"

namespace ilc::repl {

struct ShipServerOptions {
  /// How often each session re-reads the leader's WAL for new frames.
  int poll_interval_ms = 20;
};

class ShipServer {
 public:
  /// Listen on 127.0.0.1:`port` (0 = ephemeral) and serve the store at
  /// `dir`. Returns nullptr when the port cannot be bound.
  static std::unique_ptr<ShipServer> start(std::string dir,
                                           std::uint16_t port,
                                           ShipServerOptions opts = {});
  ~ShipServer();

  std::uint16_t port() const { return port_; }
  /// Follower sessions currently streaming.
  std::size_t sessions() const { return active_.load(); }

  void stop();

 private:
  ShipServer() = default;
  void accept_loop();
  void session(net::Fd fd);

  std::string dir_;
  ShipServerOptions opts_;
  net::Fd listen_;
  std::uint16_t port_ = 0;

  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> active_{0};
  std::thread acceptor_;
  std::mutex threads_mu_;
  std::vector<std::thread> threads_;  // session threads, joined on stop
};

struct ShipClientOptions {
  int reconnect_ms = 50;    ///< backoff between connection attempts
  int io_timeout_ms = 200;  ///< per-wait poll timeout (stop latency bound)
};

class ShipClient {
 public:
  /// Start replicating into `applier` from the leader at 127.0.0.1:
  /// `leader_port`. The Applier must outlive the client.
  static std::unique_ptr<ShipClient> start(Applier& applier,
                                           std::uint16_t leader_port,
                                           ShipClientOptions opts = {});
  ~ShipClient();

  /// Permanently stopped: the leader rejected us (split-brain). The
  /// reason is in applier().rejected(&why).
  bool stopped() const { return stopped_.load(); }
  /// Successful connections so far (tests watch this across a leader
  /// restart).
  std::uint64_t connects() const { return connects_.load(); }
  /// Last session-ending error, for logs ("" = none yet).
  std::string last_error() const;

  void stop();

 private:
  ShipClient() = default;
  void run();
  /// One connected session; false = transient (reconnect), true = done.
  bool session_once(int fd);
  bool sleep_for_ms(int ms);  // false when stop() interrupted the wait

  Applier* applier_ = nullptr;
  std::uint16_t port_ = 0;
  ShipClientOptions opts_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> connects_{0};
  mutable std::mutex err_mu_;
  std::string last_error_;
  std::mutex cv_mu_;
  std::condition_variable cv_;
  std::thread thread_;
};

}  // namespace ilc::repl
