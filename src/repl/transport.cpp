#include "repl/transport.hpp"

#include <chrono>

#include "support/failpoint.hpp"

namespace ilc::repl {

namespace {

/// Write the whole buffer, waiting out short writes and EAGAIN. False on
/// a hard error or a stop request.
bool write_all(int fd, const std::string& data, const std::atomic<bool>& stop,
               int timeout_ms) {
  std::size_t off = 0;
  while (off < data.size()) {
    if (stop.load(std::memory_order_relaxed)) return false;
    const net::IoResult r =
        net::write_some(fd, data.data() + off, data.size() - off);
    if (r.status == net::IoStatus::Ok) {
      off += r.bytes;
      continue;
    }
    if (r.status == net::IoStatus::WouldBlock) {
      net::wait_writable(fd, timeout_ms);
      continue;
    }
    return false;
  }
  return true;
}

struct ActiveGuard {
  explicit ActiveGuard(std::atomic<std::size_t>& n) : n_(n) { ++n_; }
  ~ActiveGuard() { --n_; }
  std::atomic<std::size_t>& n_;
};

}  // namespace

// ---- ShipServer ----------------------------------------------------------

std::unique_ptr<ShipServer> ShipServer::start(std::string dir,
                                              std::uint16_t port,
                                              ShipServerOptions opts) {
  auto s = std::unique_ptr<ShipServer>(new ShipServer());
  s->dir_ = std::move(dir);
  s->opts_ = opts;
  try {
    s->listen_ = net::listen_tcp(port, s->port_);
  } catch (const std::exception&) {
    return nullptr;
  }
  s->acceptor_ = std::thread(&ShipServer::accept_loop, s.get());
  return s;
}

ShipServer::~ShipServer() { stop(); }

void ShipServer::stop() {
  if (stop_.exchange(true)) return;
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(threads_mu_);
    threads.swap(threads_);
  }
  for (auto& t : threads)
    if (t.joinable()) t.join();
  listen_.reset();
}

void ShipServer::accept_loop() {
  while (!stop_.load()) {
    if (!net::wait_readable(listen_.get(), 50)) continue;
    bool dropped = false;
    net::Fd conn = net::accept_conn(listen_.get(), &dropped);
    if (!conn.valid()) continue;
    std::lock_guard<std::mutex> lk(threads_mu_);
    threads_.emplace_back(&ShipServer::session, this, std::move(conn));
  }
}

void ShipServer::session(net::Fd fd) {
  ActiveGuard guard(active_);
  const int interval = opts_.poll_interval_ms;

  // Phase 1: read the follower's Hello.
  MsgReader reader;
  Msg hello;
  char buf[4096];
  for (;;) {
    if (stop_.load()) return;
    const MsgReader::Status st = reader.next(hello);
    if (st == MsgReader::Status::Ok) break;
    if (st == MsgReader::Status::Corrupt) return;
    if (!net::wait_readable(fd.get(), interval)) continue;
    const net::IoResult r = net::read_some(fd.get(), buf, sizeof buf);
    if (r.status == net::IoStatus::Ok)
      reader.feed({buf, r.bytes});
    else if (r.status != net::IoStatus::WouldBlock)
      return;
  }

  // Phase 2: position the session (or reject it and hang up).
  ShipSource src(dir_);
  std::string out;
  std::string why;
  if (!src.handshake(hello, out, &why)) {
    write_all(fd.get(), out, stop_, interval);
    return;
  }

  // Phase 3: stream until the follower drops or we stop.
  while (!stop_.load()) {
    out.clear();
    if (!src.poll(out)) return;
    if (!out.empty()) {
      // Injected torn ship: cut this batch mid-message and hang up. The
      // follower's MsgReader is left holding an undecodable tail it
      // drops on reconnect — no partial frame ever reaches its store.
      if (out.size() > 8 && support::failpoint("repl.ship")) {
        write_all(fd.get(), out.substr(0, out.size() / 2), stop_, interval);
        return;
      }
      if (!write_all(fd.get(), out, stop_, interval)) return;
    }
    // Idle wait doubles as peer-death detection: the follower never
    // speaks after its Hello, so readability means EOF or an error.
    if (net::wait_readable(fd.get(), interval)) {
      const net::IoResult r = net::read_some(fd.get(), buf, sizeof buf);
      if (r.status == net::IoStatus::Eof ||
          r.status == net::IoStatus::Error)
        return;
    }
  }
}

// ---- ShipClient ----------------------------------------------------------

std::unique_ptr<ShipClient> ShipClient::start(Applier& applier,
                                              std::uint16_t leader_port,
                                              ShipClientOptions opts) {
  auto c = std::unique_ptr<ShipClient>(new ShipClient());
  c->applier_ = &applier;
  c->port_ = leader_port;
  c->opts_ = opts;
  c->thread_ = std::thread(&ShipClient::run, c.get());
  return c;
}

ShipClient::~ShipClient() { stop(); }

void ShipClient::stop() {
  stop_.store(true);
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::string ShipClient::last_error() const {
  std::lock_guard<std::mutex> lk(err_mu_);
  return last_error_;
}

bool ShipClient::sleep_for_ms(int ms) {
  std::unique_lock<std::mutex> lk(cv_mu_);
  cv_.wait_for(lk, std::chrono::milliseconds(ms),
               [this] { return stop_.load(); });
  return !stop_.load();
}

void ShipClient::run() {
  while (!stop_.load()) {
    if (applier_->rejected()) {
      stopped_.store(true);
      return;
    }
    net::Fd fd = net::connect_tcp(port_);
    if (fd.valid()) {
      net::wait_writable(fd.get(), opts_.io_timeout_ms);
      std::string h;
      encode_msg(h, applier_->hello());
      if (write_all(fd.get(), h, stop_, opts_.io_timeout_ms)) {
        connects_.fetch_add(1);
        if (session_once(fd.get())) {
          stopped_.store(true);
          return;
        }
      }
    }
    if (!sleep_for_ms(opts_.reconnect_ms)) return;
  }
}

bool ShipClient::session_once(int fd) {
  const auto set_error = [this](std::string e) {
    std::lock_guard<std::mutex> lk(err_mu_);
    last_error_ = std::move(e);
  };
  MsgReader reader;
  char buf[65536];
  while (!stop_.load()) {
    if (!net::wait_readable(fd, opts_.io_timeout_ms)) continue;
    const net::IoResult r = net::read_some(fd, buf, sizeof buf);
    if (r.status == net::IoStatus::WouldBlock) continue;
    if (r.status != net::IoStatus::Ok) {
      set_error("connection lost");
      return false;
    }
    reader.feed({buf, r.bytes});
    Msg m;
    for (;;) {
      const MsgReader::Status st = reader.next(m);
      if (st == MsgReader::Status::NeedMore) break;
      if (st == MsgReader::Status::Corrupt) {
        set_error("corrupt replication stream");
        return false;
      }
      std::string why;
      if (!applier_->apply(m, &why)) {
        set_error(why);
        // Split-brain verdicts are final; anything else (a gap after a
        // missed batch, a stale replay) is repositioned by the next
        // handshake.
        return applier_->rejected();
      }
    }
  }
  return false;
}

}  // namespace ilc::repl
