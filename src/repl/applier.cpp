#include "repl/applier.hpp"

#include "kbstore/log_format.hpp"

namespace ilc::repl {

namespace {

void set_why(std::string* why, std::string reason) {
  if (why) *why = std::move(reason);
}

}  // namespace

std::unique_ptr<Applier> Applier::open(const std::string& dir, Options opts,
                                       kbstore::RecoveryInfo* info) {
  opts.store.follower = true;
  auto a = std::unique_ptr<Applier>(new Applier());
  a->store_ = kbstore::Store::open(dir, opts.store, info);
  if (!a->store_) return nullptr;
  obs::Registry& reg =
      opts.registry ? *opts.registry : obs::Registry::instance();
  const std::string& p = opts.metric_prefix;
  a->frames_applied_ = reg.counter(p + ".frames_applied");
  a->snapshots_installed_ = reg.counter(p + ".snapshots_installed");
  a->rejects_ = reg.counter(p + ".rejects");
  a->lag_frames_ = reg.gauge(p + ".lag_frames");
  return a;
}

Msg Applier::hello() const { return Msg::hello(store_->wal_position()); }

bool Applier::apply(const Msg& m, std::string* why) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (promoted_) {
      set_why(why, "applier promoted to leader: replication stream refused");
      return false;
    }
    if (rejected_) {
      set_why(why, "session rejected by leader: " + reject_reason_);
      return false;
    }
  }

  bool ok = true;
  switch (m.type) {
    case MsgType::Hello:
      set_why(why, "protocol error: Hello flows follower -> leader");
      ok = false;
      break;

    case MsgType::Reject: {
      std::lock_guard<std::mutex> lk(mu_);
      rejected_ = true;
      reject_reason_ = m.payload;
      rejects_.add(1);
      set_why(why, "rejected by leader: " + m.payload);
      ok = false;
      break;
    }

    case MsgType::Heartbeat: {
      std::lock_guard<std::mutex> lk(mu_);
      leader_gen_ = m.a;
      leader_seq_ = m.b;
      break;
    }

    case MsgType::Snapshot: {
      // A snapshot at or behind our generation would roll acknowledged
      // frames back — a stale leader or a replayed ship. Refuse it.
      if (m.a <= store_->wal_generation()) {
        set_why(why, "stale-generation snapshot: leader WAL generation " +
                         std::to_string(m.a) + ", follower already at " +
                         std::to_string(store_->wal_generation()));
        rejects_.add(1);
        ok = false;
        break;
      }
      if (!store_->follower_install_snapshot(m.payload, m.a)) {
        set_why(why, "snapshot install failed (corrupt image or store "
                     "write error)");
        ok = false;
        break;
      }
      snapshots_installed_.add(1);
      std::lock_guard<std::mutex> lk(mu_);
      leader_gen_ = m.a;
      leader_seq_ = 0;  // refined by the heartbeat that follows
      break;
    }

    case MsgType::Frames: {
      if (m.a != store_->wal_generation()) {
        set_why(why, "frames for generation " + std::to_string(m.a) +
                         " but store is at " +
                         std::to_string(store_->wal_generation()));
        ok = false;
        break;
      }
      const std::uint64_t have = store_->durable_seq();
      if (m.b != have) {
        set_why(why, (m.b > have ? "gap" : "rewind") +
                         std::string(" in shipped frames: batch starts at ") +
                         std::to_string(m.b) + ", follower holds " +
                         std::to_string(have));
        ok = false;
        break;
      }
      const kbstore::WalkedFrames walked = kbstore::walk_frames(m.payload, 0);
      if (!walked.clean || walked.frames.empty()) {
        set_why(why, "corrupt frames payload (torn or bit-flipped ship)");
        ok = false;
        break;
      }
      if (!store_->follower_append(m.payload, walked.frames.size())) {
        set_why(why, "follower append failed");
        ok = false;
        break;
      }
      frames_applied_.add(walked.frames.size());
      break;
    }
  }

  lag_frames_.set(static_cast<std::int64_t>(lag()));
  return ok;
}

std::uint64_t Applier::lag() const {
  const kbstore::WalPosition pos = store_->wal_position();
  std::lock_guard<std::mutex> lk(mu_);
  if (leader_gen_ == 0) return 0;  // never heard from the leader
  if (leader_gen_ == pos.generation)
    return leader_seq_ > pos.seq ? leader_seq_ - pos.seq : 0;
  // Mid-bootstrap (snapshot not yet installed): everything is behind.
  return leader_seq_ + 1;
}

std::shared_ptr<kbstore::Store> Applier::promote(std::string* why) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (promoted_) {
      set_why(why, "already promoted");
      return nullptr;
    }
    promoted_ = true;  // refuse replication traffic from here on
  }
  if (!store_->promote_to_leader()) {
    set_why(why, "store promotion failed (not a follower, or the fencing "
                 "compaction could not be written)");
    return nullptr;
  }
  return store_;
}

bool Applier::promoted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return promoted_;
}

bool Applier::rejected(std::string* why) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (rejected_) set_why(why, reject_reason_);
  return rejected_;
}

}  // namespace ilc::repl
