#include <algorithm>
#include <cmath>

#include "ml/ml.hpp"
#include "support/assert.hpp"

namespace ilc::ml {

namespace {

double dist2(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    s += (a[i] - b[i]) * (a[i] - b[i]);
  return s;
}

}  // namespace

void KnnClassifier::fit(const Dataset& data) {
  ILC_CHECK(data.size() > 0);
  train_ = data;
  num_classes_ = data.num_classes;
}

std::size_t KnnClassifier::nearest(const std::vector<double>& x) const {
  ILC_CHECK(train_.size() > 0);
  std::size_t best = 0;
  double best_d = dist2(x, train_.x[0]);
  for (std::size_t i = 1; i < train_.size(); ++i) {
    const double d = dist2(x, train_.x[i]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

std::vector<double> KnnClassifier::predict_proba(
    const std::vector<double>& x) const {
  ILC_CHECK(train_.size() > 0);
  const std::size_t k = std::min<std::size_t>(k_, train_.size());
  // Partial sort of indices by distance; ties by index for determinism.
  std::vector<std::size_t> idx(train_.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::partial_sort(idx.begin(), idx.begin() + static_cast<long>(k),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      const double da = dist2(x, train_.x[a]);
                      const double db = dist2(x, train_.x[b]);
                      return da != db ? da < db : a < b;
                    });
  std::vector<double> votes(num_classes_, 0.0);
  // Nearer neighbours get slightly more weight so ties resolve sensibly.
  for (std::size_t r = 0; r < k; ++r)
    votes[train_.y[idx[r]]] += 1.0 + 1e-6 * static_cast<double>(k - r);
  double total = 0.0;
  for (double v : votes) total += v;
  for (double& v : votes) v /= total;
  return votes;
}

int KnnClassifier::predict(const std::vector<double>& x) const {
  const auto p = predict_proba(x);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

}  // namespace ilc::ml
