#include <algorithm>
#include <cmath>

#include "ml/ml.hpp"
#include "support/assert.hpp"

namespace ilc::ml {

void NaiveBayes::fit(const Dataset& data) {
  ILC_CHECK(data.size() > 0);
  num_classes_ = data.num_classes;
  const std::size_t dim = data.dim();
  prior_.assign(num_classes_, 0.0);
  mean_.assign(num_classes_, std::vector<double>(dim, 0.0));
  var_.assign(num_classes_, std::vector<double>(dim, 0.0));

  std::vector<double> count(num_classes_, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    count[data.y[i]] += 1.0;
    for (std::size_t j = 0; j < dim; ++j)
      mean_[data.y[i]][j] += data.x[i][j];
  }
  for (int c = 0; c < num_classes_; ++c) {
    prior_[c] = (count[c] + 1.0) / (static_cast<double>(data.size()) +
                                    static_cast<double>(num_classes_));
    if (count[c] > 0)
      for (double& m : mean_[c]) m /= count[c];
  }
  for (std::size_t i = 0; i < data.size(); ++i)
    for (std::size_t j = 0; j < dim; ++j) {
      const double d = data.x[i][j] - mean_[data.y[i]][j];
      var_[data.y[i]][j] += d * d;
    }
  for (int c = 0; c < num_classes_; ++c)
    for (std::size_t j = 0; j < dim; ++j)
      var_[c][j] = count[c] > 0 ? var_[c][j] / count[c] + 1e-6 : 1.0;
}

std::vector<double> NaiveBayes::predict_proba(
    const std::vector<double>& x) const {
  ILC_CHECK(!prior_.empty());
  std::vector<double> logp(num_classes_, 0.0);
  for (int c = 0; c < num_classes_; ++c) {
    logp[c] = std::log(prior_[c]);
    for (std::size_t j = 0; j < x.size(); ++j) {
      const double d = x[j] - mean_[c][j];
      logp[c] += -0.5 * std::log(2.0 * M_PI * var_[c][j]) -
                 d * d / (2.0 * var_[c][j]);
    }
  }
  const double mx = *std::max_element(logp.begin(), logp.end());
  double total = 0.0;
  for (double& v : logp) {
    v = std::exp(v - mx);
    total += v;
  }
  for (double& v : logp) v /= total;
  return logp;
}

int NaiveBayes::predict(const std::vector<double>& x) const {
  const auto p = predict_proba(x);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

}  // namespace ilc::ml
