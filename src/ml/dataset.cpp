#include "ml/ml.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace ilc::ml {

void Dataset::add(std::vector<double> row, int label) {
  ILC_CHECK(label >= 0);
  ILC_CHECK(x.empty() || row.size() == x[0].size());
  x.push_back(std::move(row));
  y.push_back(label);
  num_classes = std::max(num_classes, label + 1);
}

Dataset Dataset::without(std::size_t i) const {
  ILC_CHECK(i < x.size());
  Dataset out;
  out.num_classes = num_classes;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (j == i) continue;
    out.x.push_back(x[j]);
    out.y.push_back(y[j]);
  }
  return out;
}

std::pair<Dataset, Dataset> Dataset::split_by_group(
    const Dataset& d, const std::vector<int>& groups, int g) {
  ILC_CHECK(groups.size() == d.x.size());
  Dataset train, test;
  train.num_classes = test.num_classes = d.num_classes;
  for (std::size_t i = 0; i < d.x.size(); ++i) {
    Dataset& dst = groups[i] == g ? test : train;
    dst.x.push_back(d.x[i]);
    dst.y.push_back(d.y[i]);
  }
  return {train, test};
}

std::vector<double> Classifier::predict_proba(
    const std::vector<double>& x) const {
  std::vector<double> p(num_classes_, 0.0);
  const int cls = predict(x);
  if (cls >= 0 && cls < num_classes_) p[cls] = 1.0;
  return p;
}

}  // namespace ilc::ml
