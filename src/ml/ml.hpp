// The machine-learning toolbox of the intelligent compiler (paper Section
// III-F): "simple techniques such as logistic regression and nearest
// neighbor classification" plus decision trees and naive Bayes, under a
// single Classifier interface, with leave-one-out cross-validation as the
// paper's recommended evaluation protocol (Section II). Regression models
// (performance prediction) live in ml/regress.hpp.
//
// Everything is deterministic: no RNG is used during training.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace ilc::ml {

/// Supervised dataset: dense feature rows with integer class labels in
/// [0, num_classes).
struct Dataset {
  std::vector<std::vector<double>> x;
  std::vector<int> y;
  int num_classes = 0;

  std::size_t size() const { return x.size(); }
  std::size_t dim() const { return x.empty() ? 0 : x[0].size(); }
  void add(std::vector<double> row, int label);
  /// Dataset with row `i` removed (for leave-one-out).
  Dataset without(std::size_t i) const;
  /// Rows whose group id != g / == g (for leave-one-group-out).
  static std::pair<Dataset, Dataset> split_by_group(
      const Dataset& d, const std::vector<int>& groups, int g);
};

class Classifier {
 public:
  virtual ~Classifier() = default;
  virtual void fit(const Dataset& data) = 0;
  virtual int predict(const std::vector<double>& x) const = 0;
  /// Per-class probabilities; default is a one-hot of predict().
  virtual std::vector<double> predict_proba(const std::vector<double>& x) const;
  virtual std::string name() const = 0;

 protected:
  int num_classes_ = 0;
};

/// k-nearest-neighbour with majority vote; ties break toward the nearer
/// neighbour's class. Features should be pre-normalized by the caller.
class KnnClassifier : public Classifier {
 public:
  explicit KnnClassifier(unsigned k = 3) : k_(k) {}
  void fit(const Dataset& data) override;
  int predict(const std::vector<double>& x) const override;
  std::vector<double> predict_proba(const std::vector<double>& x) const override;
  std::string name() const override { return "knn" + std::to_string(k_); }

  /// Index of the single nearest training row (the model-selection
  /// primitive the counter model uses).
  std::size_t nearest(const std::vector<double>& x) const;

 private:
  unsigned k_;
  Dataset train_;
};

/// Multinomial logistic regression (one-vs-rest), batch gradient descent
/// with L2 regularization.
class LogisticRegression : public Classifier {
 public:
  struct Config {
    double learning_rate = 0.1;
    double l2 = 1e-3;
    unsigned epochs = 300;
  };
  LogisticRegression() = default;
  explicit LogisticRegression(Config cfg) : cfg_(cfg) {}
  void fit(const Dataset& data) override;
  int predict(const std::vector<double>& x) const override;
  std::vector<double> predict_proba(const std::vector<double>& x) const override;
  std::string name() const override { return "logreg"; }

  /// Raw per-class decision scores w·x + b (pre-sigmoid).
  std::vector<double> scores(const std::vector<double>& x) const;

 private:
  Config cfg_;
  std::vector<std::vector<double>> w_;  // [class][dim]
  std::vector<double> b_;               // [class]
};

/// CART-style binary decision tree with Gini impurity and threshold
/// splits.
class DecisionTree : public Classifier {
 public:
  struct Config {
    unsigned max_depth = 6;
    unsigned min_leaf = 2;
  };
  DecisionTree() = default;
  explicit DecisionTree(Config cfg) : cfg_(cfg) {}
  void fit(const Dataset& data) override;
  int predict(const std::vector<double>& x) const override;
  std::vector<double> predict_proba(const std::vector<double>& x) const override;
  std::string name() const override { return "dtree"; }
  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    int feature = -1;      // -1 = leaf
    double threshold = 0;  // go left if x[feature] <= threshold
    int left = -1, right = -1;
    std::vector<double> class_probs;
  };
  int build(const Dataset& data, const std::vector<std::size_t>& rows,
            unsigned depth);
  Config cfg_;
  std::vector<Node> nodes_;
};

/// Gaussian naive Bayes.
class NaiveBayes : public Classifier {
 public:
  void fit(const Dataset& data) override;
  int predict(const std::vector<double>& x) const override;
  std::vector<double> predict_proba(const std::vector<double>& x) const override;
  std::string name() const override { return "nbayes"; }

 private:
  std::vector<double> prior_;               // [class]
  std::vector<std::vector<double>> mean_;   // [class][dim]
  std::vector<std::vector<double>> var_;    // [class][dim]
};

// --- validation -----------------------------------------------------------

using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

/// Fraction of rows classified correctly.
double accuracy(const Classifier& clf, const Dataset& test);

/// Leave-one-out cross-validation accuracy (the paper's protocol).
double loocv_accuracy(const ClassifierFactory& make, const Dataset& data);

/// Leave-one-group-out accuracy per group (e.g. group = benchmark id, as
/// in "train on N-1 benchmarks, test on the one left out").
std::vector<double> logo_accuracy(const ClassifierFactory& make,
                                  const Dataset& data,
                                  const std::vector<int>& groups,
                                  int num_groups);

/// Confusion matrix [true][predicted].
std::vector<std::vector<unsigned>> confusion(const Classifier& clf,
                                             const Dataset& test);

}  // namespace ilc::ml
