#include "ml/regress.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace ilc::ml {

void RegressionData::add(std::vector<double> row, double target) {
  ILC_CHECK(x.empty() || row.size() == x[0].size());
  x.push_back(std::move(row));
  y.push_back(target);
}

RegressionData RegressionData::without(std::size_t i) const {
  ILC_CHECK(i < x.size());
  RegressionData out;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (j == i) continue;
    out.x.push_back(x[j]);
    out.y.push_back(y[j]);
  }
  return out;
}

void RidgeRegression::fit(const RegressionData& data) {
  ILC_CHECK(data.size() > 0);
  const std::size_t d = data.dim() + 1;  // + bias column
  // Normal equations: (X'X + lambda I) w = X'y.
  std::vector<std::vector<double>> a(d, std::vector<double>(d, 0.0));
  std::vector<double> b(d, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::vector<double> row = data.x[i];
    row.push_back(1.0);
    for (std::size_t p = 0; p < d; ++p) {
      for (std::size_t q = 0; q < d; ++q) a[p][q] += row[p] * row[q];
      b[p] += row[p] * data.y[i];
    }
  }
  for (std::size_t p = 0; p + 1 < d; ++p) a[p][p] += lambda_;  // no bias reg

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < d; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < d; ++r)
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    const double diag = a[col][col];
    ILC_CHECK_MSG(std::fabs(diag) > 1e-12, "singular normal equations");
    for (std::size_t r = 0; r < d; ++r) {
      if (r == col) continue;
      const double factor = a[r][col] / diag;
      for (std::size_t c = col; c < d; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  w_.assign(d, 0.0);
  for (std::size_t p = 0; p < d; ++p) w_[p] = b[p] / a[p][p];
}

double RidgeRegression::predict(const std::vector<double>& x) const {
  ILC_CHECK(w_.size() == x.size() + 1);
  double out = w_.back();
  for (std::size_t j = 0; j < x.size(); ++j) out += w_[j] * x[j];
  return out;
}

void KnnRegressor::fit(const RegressionData& data) {
  ILC_CHECK(data.size() > 0);
  train_ = data;
}

double KnnRegressor::predict(const std::vector<double>& x) const {
  ILC_CHECK(train_.size() > 0);
  const std::size_t k = std::min<std::size_t>(k_, train_.size());
  std::vector<std::pair<double, std::size_t>> by_dist;
  for (std::size_t i = 0; i < train_.size(); ++i) {
    double d2 = 0;
    for (std::size_t j = 0; j < x.size(); ++j) {
      const double diff = x[j] - train_.x[i][j];
      d2 += diff * diff;
    }
    by_dist.emplace_back(d2, i);
  }
  std::partial_sort(by_dist.begin(), by_dist.begin() + static_cast<long>(k),
                    by_dist.end());
  double num = 0, den = 0;
  for (std::size_t r = 0; r < k; ++r) {
    const double w = 1.0 / (std::sqrt(by_dist[r].first) + 1e-9);
    num += w * train_.y[by_dist[r].second];
    den += w;
  }
  return num / den;
}

double rmse(const Regressor& model, const RegressionData& test) {
  ILC_CHECK(test.size() > 0);
  double s = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    const double e = model.predict(test.x[i]) - test.y[i];
    s += e * e;
  }
  return std::sqrt(s / static_cast<double>(test.size()));
}

namespace {

std::vector<double> ranks(const std::vector<double>& v) {
  std::vector<std::size_t> order(v.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> r(v.size());
  for (std::size_t pos = 0; pos < order.size();) {
    std::size_t end = pos;
    while (end + 1 < order.size() && v[order[end + 1]] == v[order[pos]])
      ++end;
    const double avg = (static_cast<double>(pos) + static_cast<double>(end)) /
                           2.0 + 1.0;  // average rank for ties
    for (std::size_t k = pos; k <= end; ++k) r[order[k]] = avg;
    pos = end + 1;
  }
  return r;
}

}  // namespace

double spearman(const std::vector<double>& a, const std::vector<double>& b) {
  ILC_CHECK(a.size() == b.size());
  ILC_CHECK(a.size() >= 2);
  const auto ra = ranks(a);
  const auto rb = ranks(b);
  double ma = 0, mb = 0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    ma += ra[i];
    mb += rb[i];
  }
  ma /= static_cast<double>(ra.size());
  mb /= static_cast<double>(rb.size());
  double cov = 0, va = 0, vb = 0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    cov += (ra[i] - ma) * (rb[i] - mb);
    va += (ra[i] - ma) * (ra[i] - ma);
    vb += (rb[i] - mb) * (rb[i] - mb);
  }
  if (va < 1e-12 || vb < 1e-12) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace ilc::ml
