#include <algorithm>
#include <cmath>

#include "ml/ml.hpp"
#include "support/assert.hpp"

namespace ilc::ml {

namespace {

double gini(const std::vector<double>& counts, double total) {
  if (total <= 0) return 0.0;
  double g = 1.0;
  for (double c : counts) {
    const double p = c / total;
    g -= p * p;
  }
  return g;
}

}  // namespace

int DecisionTree::build(const Dataset& data,
                        const std::vector<std::size_t>& rows,
                        unsigned depth) {
  Node node;
  node.class_probs.assign(data.num_classes, 0.0);
  for (std::size_t r : rows) node.class_probs[data.y[r]] += 1.0;
  const double total = static_cast<double>(rows.size());
  const double impurity = gini(node.class_probs, total);
  for (double& p : node.class_probs) p /= total;

  const bool stop = depth >= cfg_.max_depth || rows.size() < 2 * cfg_.min_leaf ||
                    impurity < 1e-12;
  if (!stop) {
    // Find the best (feature, threshold) split by Gini gain.
    int best_feature = -1;
    double best_threshold = 0.0, best_score = impurity;
    const std::size_t dim = data.dim();
    for (std::size_t f = 0; f < dim; ++f) {
      std::vector<std::size_t> sorted = rows;
      std::sort(sorted.begin(), sorted.end(),
                [&](std::size_t a, std::size_t b) {
                  return data.x[a][f] < data.x[b][f];
                });
      std::vector<double> left_counts(data.num_classes, 0.0);
      std::vector<double> right_counts(data.num_classes, 0.0);
      for (std::size_t r : sorted) right_counts[data.y[r]] += 1.0;
      for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
        left_counts[data.y[sorted[i]]] += 1.0;
        right_counts[data.y[sorted[i]]] -= 1.0;
        const double xv = data.x[sorted[i]][f];
        const double xn = data.x[sorted[i + 1]][f];
        if (xv == xn) continue;  // no threshold between equal values
        const double nl = static_cast<double>(i + 1);
        const double nr = total - nl;
        if (nl < cfg_.min_leaf || nr < cfg_.min_leaf) continue;
        const double score =
            (nl * gini(left_counts, nl) + nr * gini(right_counts, nr)) / total;
        if (score + 1e-12 < best_score) {
          best_score = score;
          best_feature = static_cast<int>(f);
          best_threshold = (xv + xn) / 2.0;
        }
      }
    }

    if (best_feature >= 0) {
      std::vector<std::size_t> left, right;
      for (std::size_t r : rows) {
        (data.x[r][best_feature] <= best_threshold ? left : right)
            .push_back(r);
      }
      node.feature = best_feature;
      node.threshold = best_threshold;
      const int id = static_cast<int>(nodes_.size());
      nodes_.push_back(node);
      const int l = build(data, left, depth + 1);
      const int r = build(data, right, depth + 1);
      nodes_[id].left = l;
      nodes_[id].right = r;
      return id;
    }
  }

  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(node);  // leaf
  return id;
}

void DecisionTree::fit(const Dataset& data) {
  ILC_CHECK(data.size() > 0);
  num_classes_ = data.num_classes;
  nodes_.clear();
  std::vector<std::size_t> rows(data.size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  build(data, rows, 0);
}

std::vector<double> DecisionTree::predict_proba(
    const std::vector<double>& x) const {
  ILC_CHECK(!nodes_.empty());
  int id = 0;
  while (nodes_[id].feature >= 0) {
    const Node& n = nodes_[id];
    id = x[n.feature] <= n.threshold ? n.left : n.right;
  }
  return nodes_[id].class_probs;
}

int DecisionTree::predict(const std::vector<double>& x) const {
  const auto p = predict_proba(x);
  return static_cast<int>(std::max_element(p.begin(), p.end()) - p.begin());
}

}  // namespace ilc::ml
