// k-means clustering over dense feature rows — the unsupervised primitive
// behind GRACE-style representation-aware program clustering (PAPERS.md):
// group prior programs by normalized feature/counter vectors so a new
// program can be assigned to the cluster whose tuning history it should
// inherit.
//
// Deterministic for a fixed Rng seed: k-means++ initialization draws from
// the caller's Rng, Lloyd iterations are order-stable, and every tie
// (equidistant centroids, empty-cluster repair) breaks toward the lowest
// index. No hidden global state.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace ilc::ml {

struct KMeansResult {
  std::vector<std::vector<double>> centroids;  // [cluster][dim]
  std::vector<int> assignment;                 // [row] -> cluster
  double inertia = 0.0;  // sum of squared distances to assigned centroid
  unsigned iterations = 0;
};

/// Lloyd's algorithm with k-means++ seeding. `k` is clamped to the number
/// of rows; rows must share one dimension. Converges when no assignment
/// changes or after `max_iters` rounds.
KMeansResult kmeans(const std::vector<std::vector<double>>& rows, unsigned k,
                    support::Rng& rng, unsigned max_iters = 64);

/// Index of the centroid nearest to `x` (lowest index wins ties).
std::size_t nearest_centroid(
    const std::vector<std::vector<double>>& centroids,
    const std::vector<double>& x);

}  // namespace ilc::ml
