// Regression models for performance prediction (paper Section III-C /
// the CASES'06 "automatic performance model construction" line of work
// the conclusion cites): ridge regression (closed form via Gaussian
// elimination on the normal equations) and distance-weighted k-NN
// regression. Deterministic, dependency-free.
#pragma once

#include <string>
#include <vector>

namespace ilc::ml {

struct RegressionData {
  std::vector<std::vector<double>> x;
  std::vector<double> y;

  std::size_t size() const { return x.size(); }
  std::size_t dim() const { return x.empty() ? 0 : x[0].size(); }
  void add(std::vector<double> row, double target);
  RegressionData without(std::size_t i) const;
};

class Regressor {
 public:
  virtual ~Regressor() = default;
  virtual void fit(const RegressionData& data) = 0;
  virtual double predict(const std::vector<double>& x) const = 0;
  virtual std::string name() const = 0;
};

/// Linear least squares with L2 regularization, solved in closed form.
class RidgeRegression : public Regressor {
 public:
  explicit RidgeRegression(double lambda = 1e-3) : lambda_(lambda) {}
  void fit(const RegressionData& data) override;
  double predict(const std::vector<double>& x) const override;
  std::string name() const override { return "ridge"; }
  const std::vector<double>& weights() const { return w_; }  // last = bias

 private:
  double lambda_;
  std::vector<double> w_;
};

/// Inverse-distance-weighted k-nearest-neighbour regression.
class KnnRegressor : public Regressor {
 public:
  explicit KnnRegressor(unsigned k = 3) : k_(k) {}
  void fit(const RegressionData& data) override;
  double predict(const std::vector<double>& x) const override;
  std::string name() const override { return "knn-reg"; }

 private:
  unsigned k_;
  RegressionData train_;
};

// --- evaluation ------------------------------------------------------

/// Root-mean-square prediction error on held-out data.
double rmse(const Regressor& model, const RegressionData& test);

/// Spearman rank correlation between two equal-length vectors — the
/// design-space metric: a model that ranks configurations correctly is
/// useful even when its absolute estimates are off (exactly the paper's
/// relative-accuracy argument).
double spearman(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace ilc::ml
