#include "ml/ml.hpp"

#include "support/assert.hpp"

namespace ilc::ml {

double accuracy(const Classifier& clf, const Dataset& test) {
  ILC_CHECK(test.size() > 0);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i)
    if (clf.predict(test.x[i]) == test.y[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

double loocv_accuracy(const ClassifierFactory& make, const Dataset& data) {
  ILC_CHECK(data.size() > 1);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const Dataset train = data.without(i);
    auto clf = make();
    clf->fit(train);
    if (clf->predict(data.x[i]) == data.y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

std::vector<double> logo_accuracy(const ClassifierFactory& make,
                                  const Dataset& data,
                                  const std::vector<int>& groups,
                                  int num_groups) {
  std::vector<double> out;
  for (int g = 0; g < num_groups; ++g) {
    auto [train, test] = Dataset::split_by_group(data, groups, g);
    if (test.size() == 0 || train.size() == 0) {
      out.push_back(0.0);
      continue;
    }
    auto clf = make();
    clf->fit(train);
    out.push_back(accuracy(*clf, test));
  }
  return out;
}

std::vector<std::vector<unsigned>> confusion(const Classifier& clf,
                                             const Dataset& test) {
  std::vector<std::vector<unsigned>> m(
      test.num_classes, std::vector<unsigned>(test.num_classes, 0));
  for (std::size_t i = 0; i < test.size(); ++i)
    m[test.y[i]][clf.predict(test.x[i])] += 1;
  return m;
}

}  // namespace ilc::ml
