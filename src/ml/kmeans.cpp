#include "ml/kmeans.hpp"

#include <limits>

#include "support/assert.hpp"

namespace ilc::ml {

namespace {

double sq_dist(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

}  // namespace

std::size_t nearest_centroid(
    const std::vector<std::vector<double>>& centroids,
    const std::vector<double>& x) {
  ILC_CHECK(!centroids.empty());
  std::size_t best = 0;
  double best_d = sq_dist(centroids[0], x);
  for (std::size_t c = 1; c < centroids.size(); ++c) {
    const double d = sq_dist(centroids[c], x);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

KMeansResult kmeans(const std::vector<std::vector<double>>& rows, unsigned k,
                    support::Rng& rng, unsigned max_iters) {
  KMeansResult out;
  if (rows.empty() || k == 0) return out;
  const std::size_t n = rows.size();
  const std::size_t dim = rows[0].size();
  for (const auto& r : rows) ILC_CHECK(r.size() == dim);
  const std::size_t kk = std::min<std::size_t>(k, n);

  // k-means++ seeding: first centroid uniform, the rest drawn with
  // probability proportional to squared distance from the nearest chosen
  // centroid. A degenerate draw (all points already covered) falls back
  // to the first uncovered-by-value index, keeping the run deterministic.
  out.centroids.push_back(rows[rng.next_below(n)]);
  std::vector<double> d2(n, 0.0);
  while (out.centroids.size() < kk) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& c : out.centroids)
        best = std::min(best, sq_dist(c, rows[i]));
      d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      // Every row coincides with a centroid: duplicate rows. Take the
      // lowest-index row not yet a centroid (exists because kk <= n).
      std::size_t pick = 0;
      for (std::size_t i = 0; i < n; ++i) {
        bool used = false;
        for (const auto& c : out.centroids) used = used || c == rows[i];
        if (!used) {
          pick = i;
          break;
        }
      }
      out.centroids.push_back(rows[pick]);
      continue;
    }
    out.centroids.push_back(rows[rng.next_weighted(d2)]);
  }

  out.assignment.assign(n, -1);
  for (unsigned iter = 0; iter < max_iters; ++iter) {
    ++out.iterations;
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const int c = static_cast<int>(nearest_centroid(out.centroids, rows[i]));
      if (c != out.assignment[i]) {
        out.assignment[i] = c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;

    // Recompute centroids; an emptied cluster adopts the row farthest
    // from its current centroid (lowest index on ties), the standard
    // deterministic repair.
    std::vector<std::vector<double>> sums(out.centroids.size(),
                                          std::vector<double>(dim, 0.0));
    std::vector<std::size_t> counts(out.centroids.size(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = static_cast<std::size_t>(out.assignment[i]);
      for (std::size_t j = 0; j < dim; ++j) sums[c][j] += rows[i][j];
      ++counts[c];
    }
    for (std::size_t c = 0; c < out.centroids.size(); ++c) {
      if (counts[c] == 0) {
        std::size_t far = 0;
        double far_d = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const auto owner = static_cast<std::size_t>(out.assignment[i]);
          const double d = sq_dist(out.centroids[owner], rows[i]);
          if (d > far_d) {
            far_d = d;
            far = i;
          }
        }
        out.centroids[c] = rows[far];
        continue;
      }
      for (std::size_t j = 0; j < dim; ++j)
        out.centroids[c][j] = sums[c][j] / static_cast<double>(counts[c]);
    }
    if (!changed) break;
  }

  out.inertia = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    out.inertia +=
        sq_dist(out.centroids[static_cast<std::size_t>(out.assignment[i])],
                rows[i]);
  return out;
}

}  // namespace ilc::ml
