#include <algorithm>
#include <cmath>

#include "ml/ml.hpp"
#include "support/assert.hpp"

namespace ilc::ml {

namespace {

double sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

void LogisticRegression::fit(const Dataset& data) {
  ILC_CHECK(data.size() > 0);
  num_classes_ = data.num_classes;
  const std::size_t dim = data.dim();
  const std::size_t n = data.size();
  w_.assign(num_classes_, std::vector<double>(dim, 0.0));
  b_.assign(num_classes_, 0.0);

  // One-vs-rest batch gradient descent.
  for (int cls = 0; cls < num_classes_; ++cls) {
    auto& w = w_[cls];
    double& b = b_[cls];
    for (unsigned epoch = 0; epoch < cfg_.epochs; ++epoch) {
      std::vector<double> grad(dim, 0.0);
      double grad_b = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        double z = b;
        for (std::size_t j = 0; j < dim; ++j) z += w[j] * data.x[i][j];
        const double target = data.y[i] == cls ? 1.0 : 0.0;
        const double err = sigmoid(z) - target;
        for (std::size_t j = 0; j < dim; ++j) grad[j] += err * data.x[i][j];
        grad_b += err;
      }
      const double scale = cfg_.learning_rate / static_cast<double>(n);
      for (std::size_t j = 0; j < dim; ++j)
        w[j] -= scale * (grad[j] + cfg_.l2 * w[j] * static_cast<double>(n));
      b -= scale * grad_b;
    }
  }
}

std::vector<double> LogisticRegression::scores(
    const std::vector<double>& x) const {
  ILC_CHECK(!w_.empty());
  std::vector<double> out(num_classes_, 0.0);
  for (int cls = 0; cls < num_classes_; ++cls) {
    double z = b_[cls];
    for (std::size_t j = 0; j < x.size(); ++j) z += w_[cls][j] * x[j];
    out[cls] = z;
  }
  return out;
}

std::vector<double> LogisticRegression::predict_proba(
    const std::vector<double>& x) const {
  std::vector<double> p = scores(x);
  for (double& z : p) z = sigmoid(z);
  double total = 0.0;
  for (double v : p) total += v;
  if (total > 0)
    for (double& v : p) v /= total;
  return p;
}

int LogisticRegression::predict(const std::vector<double>& x) const {
  const auto s = scores(x);
  return static_cast<int>(std::max_element(s.begin(), s.end()) - s.begin());
}

}  // namespace ilc::ml
