#include <algorithm>

#include "opt/pipelines.hpp"
#include "opt/schedule_dag.hpp"
#include "sched/sched.hpp"
#include "support/assert.hpp"

namespace ilc::sched {

using namespace ir;
using opt::build_dag;
using opt::ScheduleDag;
using opt::sched_latency;

const std::vector<std::string>& pair_feature_names() {
  static const std::vector<std::string> names = {
      "height_diff",    // critical-path height A - B
      "latency_diff",   // own latency A - B
      "fanout_diff",    // number of dependents A - B
      "a_is_load", "b_is_load",
      "a_is_muldiv", "b_is_muldiv",
      "order_diff",     // original position A - B (normalized)
      "a_height", "b_height",
  };
  return names;
}

std::vector<double> pair_features(const ScheduleDag& dag,
                                  const std::vector<Instr>& insts,
                                  std::size_t a, std::size_t b) {
  auto is_load = [&](std::size_t i) {
    return insts[i].op == Opcode::Load ? 1.0 : 0.0;
  };
  auto is_muldiv = [&](std::size_t i) {
    return insts[i].op == Opcode::Mul || insts[i].op == Opcode::Div ||
                   insts[i].op == Opcode::Rem
               ? 1.0
               : 0.0;
  };
  const double n = static_cast<double>(insts.size());
  std::vector<double> f;
  f.push_back(static_cast<double>(dag.height[a]) -
              static_cast<double>(dag.height[b]));
  f.push_back(static_cast<double>(sched_latency(insts[a])) -
              static_cast<double>(sched_latency(insts[b])));
  f.push_back(static_cast<double>(dag.succs[a].size()) -
              static_cast<double>(dag.succs[b].size()));
  f.push_back(is_load(a));
  f.push_back(is_load(b));
  f.push_back(is_muldiv(a));
  f.push_back(is_muldiv(b));
  f.push_back((static_cast<double>(a) - static_cast<double>(b)) / n);
  f.push_back(static_cast<double>(dag.height[a]));
  f.push_back(static_cast<double>(dag.height[b]));
  ILC_ASSERT(f.size() == pair_feature_names().size());
  return f;
}

namespace {

/// Shared scheduling replay machinery.
struct Replay {
  const std::vector<Instr>& insts;
  const ScheduleDag& dag;
  std::vector<unsigned> indeg;
  std::vector<std::size_t> ready;
  std::vector<std::size_t> order;

  explicit Replay(const std::vector<Instr>& body, const ScheduleDag& d)
      : insts(body), dag(d) {
    indeg.assign(body.size(), 0);
    for (std::size_t i = 0; i < body.size(); ++i)
      indeg[i] = static_cast<unsigned>(dag.preds[i].size());
    for (std::size_t i = 0; i < body.size(); ++i)
      if (indeg[i] == 0) ready.push_back(i);
  }

  /// Index (into ready) of the critical-path-preferred candidate.
  std::size_t greedy_pick() const {
    std::size_t best = 0;
    for (std::size_t k = 1; k < ready.size(); ++k) {
      const std::size_t cand = ready[k], cur = ready[best];
      if (dag.height[cand] > dag.height[cur] ||
          (dag.height[cand] == dag.height[cur] && cand < cur))
        best = k;
    }
    return best;
  }

  void commit(std::size_t ready_pos) {
    const std::size_t pick = ready[ready_pos];
    ready.erase(ready.begin() + static_cast<long>(ready_pos));
    order.push_back(pick);
    for (std::size_t s : dag.succs[pick])
      if (--indeg[s] == 0) ready.push_back(s);
  }

  /// Complete the schedule greedily from the current state.
  void run_to_end() {
    while (!ready.empty()) commit(greedy_pick());
  }
};

}  // namespace

std::uint64_t order_cost(const std::vector<Instr>& insts,
                         const std::vector<std::size_t>& order,
                         unsigned issue_width) {
  ILC_CHECK(order.size() == insts.size());
  ILC_CHECK(issue_width >= 1);
  Reg max_reg = 0;
  for (const Instr& inst : insts) {
    if (has_dst(inst)) max_reg = std::max(max_reg, inst.dst);
    std::array<Reg, 2 + kMaxCallArgs> uses;
    unsigned nu = 0;
    append_uses(inst, uses, nu);
    for (unsigned u = 0; u < nu; ++u) max_reg = std::max(max_reg, uses[u]);
  }
  std::vector<std::uint64_t> ready_at(max_reg + 1, 0);
  std::uint64_t t = 0;
  unsigned slots = 0;
  for (std::size_t idx : order) {
    const Instr& inst = insts[idx];
    std::array<Reg, 2 + kMaxCallArgs> uses;
    unsigned nu = 0;
    append_uses(inst, uses, nu);
    std::uint64_t earliest = 0;
    for (unsigned u = 0; u < nu; ++u)
      earliest = std::max(earliest, ready_at[uses[u]]);
    if (earliest > t) {
      t = earliest;
      slots = 0;
    } else if (slots >= issue_width) {
      t += 1;
      slots = 0;
    }
    ++slots;
    if (has_dst(inst)) ready_at[inst.dst] = t + sched_latency(inst);
  }
  return t + 1;
}

std::uint64_t greedy_schedule_cost(const std::vector<Instr>& insts) {
  const ScheduleDag dag = build_dag(insts);
  Replay r(insts, dag);
  r.run_to_end();
  return order_cost(insts, r.order);
}

void prepare_for_scheduling(ir::Module& mod) {
  opt::canonicalize(mod);
  opt::run_pass(opt::PassId::Inline, mod);
  opt::run_pass(opt::PassId::SimplifyCfg, mod);
  opt::run_pass(opt::PassId::CopyProp, mod);
  opt::run_pass(opt::PassId::Dce, mod);
}

std::vector<Instance> generate_instances(const ir::Function& fn,
                                         support::Rng& rng,
                                         unsigned max_per_block,
                                         unsigned rounds) {
  std::vector<Instance> out;
  for (const BasicBlock& bb : fn.blocks) {
    if (bb.insts.size() < 4) continue;
    const std::vector<Instr> body(bb.insts.begin(), bb.insts.end() - 1);
    const ScheduleDag dag = build_dag(body);

    for (unsigned round = 0; round < rounds; ++round) {
      Replay replay(body, dag);
      unsigned emitted = 0;
      while (!replay.ready.empty()) {
        if (replay.ready.size() >= 2 && emitted < max_per_block) {
          // Evaluate a decision pair by committing each way and
          // completing with the competent greedy heuristic.
          auto evaluate = [&](std::size_t ready_pos) {
            Replay branch = replay;
            branch.commit(ready_pos);
            branch.run_to_end();
            return order_cost(body, branch.order);
          };
          auto emit_pair = [&](std::size_t pa, std::size_t pb) {
            if (pa == pb) return;
            const std::uint64_t cost_a = evaluate(pa);
            const std::uint64_t cost_b = evaluate(pb);
            if (cost_a == cost_b) return;  // tie: uninformative
            Instance inst;
            inst.features = pair_features(dag, body, replay.ready[pa],
                                          replay.ready[pb]);
            inst.label = cost_a < cost_b ? 1 : 0;
            out.push_back(std::move(inst));
            ++emitted;
          };

          // The pair the greedy scheduler actually faces: its top two
          // candidates by critical-path height.
          const std::size_t g1 = replay.greedy_pick();
          std::size_t g2 = g1 == 0 ? 1 : 0;
          for (std::size_t k = 0; k < replay.ready.size(); ++k) {
            if (k == g1 || k == g2) continue;
            if (dag.height[replay.ready[k]] > dag.height[replay.ready[g2]])
              g2 = k;
          }
          emit_pair(g1, g2);

          // Plus a random pair — the paper's "significant, randomly
          // chosen sample" of decision points.
          const std::size_t pa = rng.next_below(replay.ready.size());
          std::size_t pb = rng.next_below(replay.ready.size() - 1);
          if (pb >= pa) ++pb;
          emit_pair(pa, pb);
        }
        // Advance along a varied (but deterministic-per-round) path so
        // later rounds see different partial schedules.
        if (round == 0 || replay.ready.size() == 1) {
          replay.commit(replay.greedy_pick());
        } else {
          replay.commit(rng.next_below(replay.ready.size()));
        }
      }
    }
  }
  return out;
}

ml::Dataset to_dataset(const std::vector<Instance>& instances) {
  ml::Dataset d;
  d.num_classes = 2;
  for (const Instance& inst : instances) d.add(inst.features, inst.label);
  return d;
}

}  // namespace ilc::sched
