// Integration of the induced heuristic (paper Section II, "Integration of
// the Induced Heuristic"): the learned pairwise comparator replaces the
// critical-path priority inside the list scheduler, selecting from the
// ready set by tournament.
#include "sched/sched.hpp"

#include <algorithm>

#include "opt/schedule_dag.hpp"
#include "support/assert.hpp"

namespace ilc::sched {

using namespace ir;
using opt::build_dag;
using opt::ScheduleDag;

bool schedule_with_model(ir::Function& fn, const ml::Classifier& model) {
  bool changed = false;
  for (BasicBlock& bb : fn.blocks) {
    if (bb.insts.size() < 3) continue;
    const std::vector<Instr> body(bb.insts.begin(), bb.insts.end() - 1);
    const ScheduleDag dag = build_dag(body);

    std::vector<unsigned> indeg(body.size(), 0);
    for (std::size_t i = 0; i < body.size(); ++i)
      indeg[i] = static_cast<unsigned>(dag.preds[i].size());
    std::vector<std::size_t> ready;
    for (std::size_t i = 0; i < body.size(); ++i)
      if (indeg[i] == 0) ready.push_back(i);

    std::vector<std::size_t> order;
    order.reserve(body.size());
    while (!ready.empty()) {
      // Round-robin tournament over the ready set: every pair plays, the
      // model's prediction awards a win ("label 1" = first-of-pair wins),
      // and the candidate with most wins is scheduled. More robust to
      // individual misclassifications than a single-elimination chain.
      std::size_t champ_pos = 0;
      if (ready.size() > 1) {
        std::vector<unsigned> wins(ready.size(), 0);
        for (std::size_t i = 0; i < ready.size(); ++i) {
          for (std::size_t j = i + 1; j < ready.size(); ++j) {
            const int pred = model.predict(
                pair_features(dag, body, ready[i], ready[j]));
            ++wins[pred == 1 ? i : j];
          }
        }
        for (std::size_t k = 1; k < ready.size(); ++k) {
          // Ties break toward higher critical-path height, then order.
          if (wins[k] > wins[champ_pos] ||
              (wins[k] == wins[champ_pos] &&
               dag.height[ready[k]] > dag.height[ready[champ_pos]]))
            champ_pos = k;
        }
      }
      const std::size_t pick = ready[champ_pos];
      ready.erase(ready.begin() + static_cast<long>(champ_pos));
      order.push_back(pick);
      for (std::size_t s : dag.succs[pick])
        if (--indeg[s] == 0) ready.push_back(s);
    }
    ILC_CHECK(order.size() == body.size());

    bool same = true;
    for (std::size_t i = 0; i < order.size(); ++i)
      if (order[i] != i) same = false;
    if (same) continue;

    std::vector<Instr> scheduled;
    scheduled.reserve(bb.insts.size());
    for (std::size_t i : order) scheduled.push_back(body[i]);
    scheduled.push_back(bb.insts.back());
    bb.insts = std::move(scheduled);
    changed = true;
  }
  return changed;
}

}  // namespace ilc::sched
