// The Section II case study, end to end: supervised learning of an
// instruction-scheduling heuristic.
//
//   Phrasing:  "given two ready instructions A and B at a list-scheduling
//               decision point, should A be scheduled before B?"
//   Features:  pairwise differences of critical-path height, latency,
//               fan-out, memory-ness — the critical-path vocabulary the
//               paper cites as the known-good starting point.
//   Instances: generated at real decision points; each candidate's value
//               is estimated by completing the schedule with the
//               competent critical-path heuristic and costing the block
//               on a scoreboard model ("run to the end of the problem
//               using a heuristic already known to be competent").
//   Training:  any ml::Classifier (logistic regression and decision trees
//               in the benches), leave-one-benchmark-out validated.
//   Integration: the learned pairwise comparator drives a tournament
//               among the ready set inside the list scheduler.
#pragma once

#include <vector>

#include "ir/module.hpp"
#include "ml/ml.hpp"
#include "opt/schedule_dag.hpp"
#include "support/rng.hpp"

namespace ilc::sched {

/// Names of the pairwise features, index-aligned with pair_features().
const std::vector<std::string>& pair_feature_names();

/// Pairwise decision features for ready candidates `a` vs `b` of a block
/// body under its dependence DAG.
std::vector<double> pair_features(const opt::ScheduleDag& dag,
                                  const std::vector<ir::Instr>& insts,
                                  std::size_t a, std::size_t b);

/// One training instance: features of an (A, B) candidate pair; label 1
/// if scheduling A first led to the cheaper completed schedule, else 0.
struct Instance {
  std::vector<double> features;
  int label = 0;
};

/// Scoreboard cost (cycles) of executing a terminator-free instruction
/// list in the given order: `issue_width` instructions per cycle, stall
/// on unready sources. Mirrors the simulator's timing model so labels
/// generated from it transfer (the paper: estimators need only be
/// accurate in a relative sense).
std::uint64_t order_cost(const std::vector<ir::Instr>& insts,
                         const std::vector<std::size_t>& order,
                         unsigned issue_width = 2);

/// Cost of the critical-path list schedule of a block body.
std::uint64_t greedy_schedule_cost(const std::vector<ir::Instr>& insts);

/// Put a module into the shape the scheduler actually sees inside a
/// pipeline: trivial redundancy removed, leaves inlined, blocks merged.
/// Instance generation and evaluation both use this so train and test
/// distributions match.
void prepare_for_scheduling(ir::Module& mod);

/// Generate labeled instances from every block of a function by replaying
/// list scheduling `rounds` times. At decision points with >= 2 ready
/// candidates the greedy top-2 pair plus a random pair are evaluated both
/// ways (complete-greedily-and-cost). At most `max_per_block` instances
/// per block per round; ties (equal cost) are skipped as uninformative.
std::vector<Instance> generate_instances(const ir::Function& fn,
                                         support::Rng& rng,
                                         unsigned max_per_block = 16,
                                         unsigned rounds = 3);

ml::Dataset to_dataset(const std::vector<Instance>& instances);

/// List-schedule every block of `fn` using the learned pairwise
/// comparator (tournament over the ready set). Returns true if any block
/// order changed.
bool schedule_with_model(ir::Function& fn, const ml::Classifier& model);

}  // namespace ilc::sched
