// phased_mix — the dynamic-optimization demonstrator: execution alternates
// between a sequential-streaming phase (where prefetch insertion wins) and
// a pointer-chasing phase (where prefetch is pure overhead). No single
// static version is best for both, which is exactly the situation the
// paper's Section III-D runtime monitoring + auditing targets.
#include "workloads/common.hpp"
#include "workloads/workloads.hpp"

namespace ilc::wl {

namespace {

constexpr int kArray = 12288;       // 96 KiB of i64 — larger than L2
constexpr int kChaseLen = 4096;
constexpr int kItems = 64;          // kernel items; phases of 16
constexpr int kPhase = 16;
constexpr int kStreamChunk = 3072;  // elements touched per stream item
constexpr int kChaseSteps = 768;    // steps per chase item

std::vector<std::int64_t> array_init() {
  return random_values(0x9a5e, kArray, 0, 1 << 16);
}

std::vector<std::int64_t> chain_init() {
  support::Rng rng(0xc4a1ULL);
  std::vector<std::int64_t> perm(kChaseLen);
  for (int i = 0; i < kChaseLen; ++i) perm[i] = i;
  rng.shuffle(perm);
  std::vector<std::int64_t> next(kChaseLen);
  for (int i = 0; i < kChaseLen; ++i)
    next[perm[i]] = perm[(i + 1) % kChaseLen];
  return next;
}

/// Reference for one kernel item (phase decided by (i / kPhase) parity).
std::int64_t reference_item(std::vector<std::int64_t>& arr,
                            const std::vector<std::int64_t>& next,
                            std::int64_t& chase_pos, int item) {
  const bool stream_phase = ((item / kPhase) % 2) == 0;
  std::int64_t acc = 0;
  if (stream_phase) {
    const int start = (item * kStreamChunk) % kArray;
    for (int k = 0; k < kStreamChunk; ++k) {
      const int idx = (start + k) % kArray;
      acc = fold32(acc + arr[idx]);
    }
  } else {
    for (int k = 0; k < kChaseSteps; ++k) {
      acc = fold32(acc + arr[chase_pos % kArray] + chase_pos);
      chase_pos = next[chase_pos];
    }
  }
  return acc;
}

}  // namespace

Workload make_phased_mix() {
  using namespace ir;
  Workload w;
  w.name = "phased_mix";
  Module& m = w.module;
  m.name = "phased_mix";

  const auto arr = array_init();
  const auto chain = chain_init();

  Global ga;
  ga.name = "arr";
  ga.elem_width = 8;
  ga.count = kArray;
  ga.init = arr;
  const GlobalId garr = m.add_global(ga);

  Global gc;
  gc.name = "chain";
  gc.elem_width = 8;
  gc.count = kChaseLen;
  gc.init = chain;
  const GlobalId gchain = m.add_global(gc);

  Global gs;  // [0] = chase position (persists across kernel calls)
  gs.name = "state";
  gs.elem_width = 8;
  gs.count = 1;
  const GlobalId gstate = m.add_global(gs);

  // --- init() ---------------------------------------------------------
  FuncId f_init;
  {
    FunctionBuilder b(m, "init", 0);
    b.store(b.global_addr(gstate), 0, b.imm(0), MemWidth::W8);
    b.ret();
    f_init = b.finish();
  }

  // --- kernel(i) -------------------------------------------------------
  FuncId f_kernel;
  {
    FunctionBuilder b(m, "kernel", 1);
    Reg item = b.arg(0);
    Reg abase = b.global_addr(garr);
    Reg acc = b.fresh();
    b.imm_to(acc, 0);

    Reg phase = b.and_i(b.div(item, b.imm(kPhase)), 1);
    BlockId stream = b.new_block(), chase = b.new_block(),
            done = b.new_block();
    b.br(b.cmp_eq(phase, b.imm(0)), stream, chase);

    b.switch_to(stream);
    {
      Reg start = b.rem(b.mul_i(item, kStreamChunk), b.imm(kArray));
      Reg count = b.imm(kStreamChunk);
      CountedLoop lk = begin_loop(b, count);
      {
        Reg idx = b.rem(b.add(start, lk.ivar), b.imm(kArray));
        Reg v = b.load(b.add(abase, b.shl_i(idx, 3)), 0, MemWidth::W8);
        b.mov_to(acc, b.and_i(b.add(acc, v), 0x7fffffff));
      }
      end_loop(b, lk);
    }
    b.jump(done);

    b.switch_to(chase);
    {
      Reg sbase = b.global_addr(gstate);
      Reg cbase = b.global_addr(gchain);
      Reg pos = b.fresh();
      b.mov_to(pos, b.load(sbase, 0, MemWidth::W8));
      Reg count = b.imm(kChaseSteps);
      CountedLoop lk = begin_loop(b, count);
      {
        Reg aidx = b.rem(pos, b.imm(kArray));
        Reg v = b.load(b.add(abase, b.shl_i(aidx, 3)), 0, MemWidth::W8);
        b.mov_to(acc,
                 b.and_i(b.add(b.add(acc, v), pos), 0x7fffffff));
        b.mov_to(pos, b.load(b.add(cbase, b.shl_i(pos, 3)), 0, MemWidth::W8));
      }
      end_loop(b, lk);
      b.store(sbase, 0, pos, MemWidth::W8);
    }
    b.jump(done);

    b.switch_to(done);
    b.ret(acc);
    f_kernel = b.finish();
  }

  // --- main(): init + all items ----------------------------------------
  {
    FunctionBuilder b(m, "main", 0);
    b.call_void(f_init, {});
    Reg total = b.fresh();
    b.imm_to(total, 0);
    Reg items = b.imm(kItems);
    CountedLoop li = begin_loop(b, items);
    {
      Reg part = b.call(f_kernel, {li.ivar});
      b.mov_to(total, b.and_i(b.add(total, part), 0x7fffffff));
    }
    end_loop(b, li);
    b.ret(total);
    b.finish();
  }

  // Golden references.
  {
    auto a = arr;
    std::int64_t pos = 0, total = 0;
    for (int i = 0; i < kItems; ++i)
      total = fold32(total + reference_item(a, chain, pos, i));
    w.expected_checksum = total;
    w.kernel_checksum = total;  // same fold, same order
  }
  w.kernel = "kernel";
  w.kernel_setup = "init";
  w.kernel_items = kItems;
  return w;
}

}  // namespace ilc::wl
