// strsearch — substring counting with early-exit inner comparison loops
// over a synthetic text: short unpredictable branches.
#include "workloads/common.hpp"
#include "workloads/workloads.hpp"

namespace ilc::wl {

namespace {

constexpr int kText = 2048;
constexpr int kPat = 6;

std::vector<std::int64_t> text_init() {
  // Small alphabet so matches and near-matches actually occur.
  return random_values(0x7e47, kText, 'a', 'e');
}
std::vector<std::int64_t> pat_init() {
  return random_values(0x9a77, kPat, 'a', 'e');
}

std::int64_t reference(const std::vector<std::int64_t>& text,
                       const std::vector<std::int64_t>& pat) {
  std::int64_t count = 0, partial = 0;
  for (int i = 0; i + kPat <= kText; ++i) {
    int j = 0;
    while (j < kPat && text[i + j] == pat[j]) ++j;
    if (j == kPat) ++count;
    partial = fold32(partial + j);
  }
  return fold32(count * 100003 + partial);
}

}  // namespace

Workload make_strsearch() {
  using namespace ir;
  Workload w;
  w.name = "strsearch";
  Module& m = w.module;
  m.name = "strsearch";

  const auto text = text_init();
  const auto pat = pat_init();

  Global gt;
  gt.name = "text";
  gt.elem_width = 1;
  gt.count = kText;
  gt.init = text;
  const GlobalId gtext = m.add_global(gt);

  Global gp;
  gp.name = "pat";
  gp.elem_width = 1;
  gp.count = kPat;
  gp.init = pat;
  const GlobalId gpat = m.add_global(gp);

  FunctionBuilder b(m, "main", 0);
  Reg tbase = b.global_addr(gtext);
  Reg pbase = b.global_addr(gpat);
  Reg count = b.fresh();
  b.imm_to(count, 0);
  Reg partial = b.fresh();
  b.imm_to(partial, 0);
  Reg outer = b.imm(kText - kPat + 1);
  CountedLoop li = begin_loop(b, outer);
  {
    Reg j = b.fresh();
    b.imm_to(j, 0);
    Reg patn = b.imm(kPat);
    BlockId whead = b.new_block(), wcheck = b.new_block(),
            wbody = b.new_block(), wexit = b.new_block();
    b.jump(whead);
    b.switch_to(whead);
    b.br(b.cmp_lt(j, patn), wcheck, wexit);
    b.switch_to(wcheck);
    Reg tc = b.load(b.add(tbase, b.add(li.ivar, j)), 0, MemWidth::W1);
    Reg pc = b.load(b.add(pbase, j), 0, MemWidth::W1);
    b.br(b.cmp_eq(tc, pc), wbody, wexit);
    b.switch_to(wbody);
    b.mov_to(j, b.add_i(j, 1));
    b.jump(whead);
    b.switch_to(wexit);

    BlockId hit = b.new_block(), join = b.new_block();
    b.br(b.cmp_eq(j, patn), hit, join);
    b.switch_to(hit);
    b.mov_to(count, b.add_i(count, 1));
    b.jump(join);
    b.switch_to(join);
    b.mov_to(partial, b.and_i(b.add(partial, j), 0x7fffffff));
  }
  end_loop(b, li);
  Reg result = b.add(b.mul_i(count, 100003), partial);
  b.ret(b.and_i(result, 0x7fffffff));
  b.finish();

  w.expected_checksum = reference(text, pat);
  return w;
}

}  // namespace ilc::wl
