// fir — 16-tap finite impulse response filter over a 512-sample signal.
// Inner loop is a MAC chain: unrolling + scheduling exposes ILP.
#include "workloads/common.hpp"
#include "workloads/workloads.hpp"

namespace ilc::wl {

namespace {

constexpr int kSignal = 512;
constexpr int kTaps = 16;

std::int64_t reference(const std::vector<std::int64_t>& sig,
                       const std::vector<std::int64_t>& coef) {
  std::int64_t sum = 0;
  for (int i = 0; i + kTaps <= kSignal; ++i) {
    std::int64_t acc = 0;
    for (int t = 0; t < kTaps; ++t) acc += sig[i + t] * coef[t];
    sum = fold32(sum + (acc >> 5));
  }
  return sum;
}

}  // namespace

Workload make_fir() {
  using namespace ir;
  Workload w;
  w.name = "fir";
  Module& m = w.module;
  m.name = "fir";

  const auto sig_init = random_values(0xf1f1, kSignal, -1000, 1000);
  const auto coef_init = random_values(0xc0c0, kTaps, -64, 64);

  Global gs;
  gs.name = "signal";
  gs.elem_width = 4;
  gs.count = kSignal;
  gs.init = sig_init;
  const GlobalId sig = m.add_global(gs);

  Global gcf;
  gcf.name = "coef";
  gcf.elem_width = 4;
  gcf.count = kTaps;
  gcf.init = coef_init;
  const GlobalId coef = m.add_global(gcf);

  FunctionBuilder b(m, "main", 0);
  Reg sbase = b.global_addr(sig);
  Reg cbase = b.global_addr(coef);
  Reg sum = b.fresh();
  b.imm_to(sum, 0);
  Reg outer_n = b.imm(kSignal - kTaps + 1);
  CountedLoop li = begin_loop(b, outer_n);
  {
    Reg acc = b.fresh();
    b.imm_to(acc, 0);
    Reg taps = b.imm(kTaps);
    CountedLoop lt = begin_loop(b, taps);
    {
      Reg pos = b.add(li.ivar, lt.ivar);
      Reg sv = b.load(b.add(sbase, b.shl_i(pos, 2)), 0, MemWidth::W4);
      Reg cv = b.load(b.add(cbase, b.shl_i(lt.ivar, 2)), 0, MemWidth::W4);
      b.mov_to(acc, b.add(acc, b.mul(sv, cv)));
    }
    end_loop(b, lt);
    b.mov_to(sum, b.and_i(b.add(sum, b.shr_i(acc, 5)), 0x7fffffff));
  }
  end_loop(b, li);
  b.ret(sum);
  b.finish();

  w.expected_checksum = reference(sig_init, coef_init);
  return w;
}

}  // namespace ilc::wl
