// histogram — byte-frequency counting with data-dependent store addresses
// followed by a weighted reduction; exercises store-port and L1 behaviour.
#include "workloads/common.hpp"
#include "workloads/workloads.hpp"

namespace ilc::wl {

namespace {

constexpr int kLen = 2048;
constexpr int kBins = 256;

std::int64_t reference(const std::vector<std::int64_t>& data) {
  std::vector<std::int64_t> bins(kBins, 0);
  for (int i = 0; i < kLen; ++i) bins[data[i]] += 1;
  std::int64_t sum = 0, maxc = 0;
  for (int i = 0; i < kBins; ++i) {
    sum = fold32(sum + bins[i] * (i + 1));
    if (bins[i] > maxc) maxc = bins[i];
  }
  return fold32(sum * 31 + maxc);
}

}  // namespace

Workload make_histogram() {
  using namespace ir;
  Workload w;
  w.name = "histogram";
  Module& m = w.module;
  m.name = "histogram";

  const auto data = random_values(0x8157, kLen, 0, kBins - 1);
  Global gd;
  gd.name = "data";
  gd.elem_width = 1;
  gd.count = kLen;
  gd.init = data;
  const GlobalId buf = m.add_global(gd);

  Global gbins;
  gbins.name = "bins";
  gbins.elem_width = 8;
  gbins.count = kBins;
  const GlobalId bins = m.add_global(gbins);

  FunctionBuilder b(m, "main", 0);
  Reg base = b.global_addr(buf);
  Reg bbase = b.global_addr(bins);
  Reg n = b.imm(kLen);

  CountedLoop lz = begin_loop(b, b.imm(kBins));
  b.store(b.add(bbase, b.shl_i(lz.ivar, 3)), 0, b.imm(0), MemWidth::W8);
  end_loop(b, lz);

  CountedLoop li = begin_loop(b, n);
  {
    Reg byte = b.and_i(b.load(b.add(base, li.ivar), 0, MemWidth::W1), 255);
    Reg slot = b.add(bbase, b.shl_i(byte, 3));
    Reg cur = b.load(slot, 0, MemWidth::W8);
    b.store(slot, 0, b.add_i(cur, 1), MemWidth::W8);
  }
  end_loop(b, li);

  Reg sum = b.fresh();
  b.imm_to(sum, 0);
  Reg maxc = b.fresh();
  b.imm_to(maxc, 0);
  CountedLoop lr = begin_loop(b, b.imm(kBins));
  {
    Reg c = b.load(b.add(bbase, b.shl_i(lr.ivar, 3)), 0, MemWidth::W8);
    Reg weighted = b.mul(c, b.add_i(lr.ivar, 1));
    b.mov_to(sum, b.and_i(b.add(sum, weighted), 0x7fffffff));
    b.mov_to(maxc, b.max(maxc, c));
  }
  end_loop(b, lr);
  b.ret(b.and_i(b.add(b.mul_i(sum, 31), maxc), 0x7fffffff));
  b.finish();

  w.expected_checksum = reference(data);
  return w;
}

}  // namespace ilc::wl
