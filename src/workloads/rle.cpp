// rle — run-length encoding of a run-heavy byte buffer: dependent loads,
// unpredictable run-boundary branches, and bursty stores.
#include "workloads/common.hpp"
#include "workloads/workloads.hpp"

namespace ilc::wl {

namespace {

constexpr int kLen = 2048;

std::vector<std::int64_t> data_init() {
  support::Rng rng(0x41e41eULL);
  std::vector<std::int64_t> d(kLen);
  std::int64_t cur = rng.next_in(0, 7);
  for (int i = 0; i < kLen; ++i) {
    if (rng.next_bool(0.25)) cur = rng.next_in(0, 7);
    d[i] = cur;
  }
  return d;
}

std::int64_t reference(const std::vector<std::int64_t>& d) {
  std::int64_t runs = 0, sum = 0;
  int i = 0;
  while (i < kLen) {
    const std::int64_t v = d[i];
    int len = 1;
    while (i + len < kLen && d[i + len] == v) ++len;
    runs += 1;
    sum = fold32(sum * 5 + v * 16 + len);
    i += len;
  }
  return fold32(runs * 65537 + sum);
}

}  // namespace

Workload make_rle() {
  using namespace ir;
  Workload w;
  w.name = "rle";
  Module& m = w.module;
  m.name = "rle";

  const auto data = data_init();
  Global gd;
  gd.name = "data";
  gd.elem_width = 1;
  gd.count = kLen;
  gd.init = data;
  const GlobalId buf = m.add_global(gd);

  Global go;  // encoded output pairs (value, len) — bounded by kLen runs
  go.name = "out";
  go.elem_width = 4;
  go.count = 2 * kLen;
  const GlobalId out = m.add_global(go);

  FunctionBuilder b(m, "main", 0);
  Reg base = b.global_addr(buf);
  Reg obase = b.global_addr(out);
  Reg n = b.imm(kLen);
  Reg runs = b.fresh();
  b.imm_to(runs, 0);
  Reg sum = b.fresh();
  b.imm_to(sum, 0);
  Reg i = b.fresh();
  b.imm_to(i, 0);

  BlockId ohead = b.new_block(), obody = b.new_block(), oexit = b.new_block();
  b.jump(ohead);
  b.switch_to(ohead);
  b.br(b.cmp_lt(i, n), obody, oexit);
  b.switch_to(obody);
  {
    Reg v = b.load(b.add(base, i), 0, MemWidth::W1);
    Reg len = b.fresh();
    b.imm_to(len, 1);
    BlockId whead = b.new_block(), wcheck = b.new_block(),
            wbody = b.new_block(), wexit = b.new_block();
    b.jump(whead);
    b.switch_to(whead);
    Reg pos = b.add(i, len);
    b.br(b.cmp_lt(pos, n), wcheck, wexit);
    b.switch_to(wcheck);
    Reg nextc = b.load(b.add(base, pos), 0, MemWidth::W1);
    b.br(b.cmp_eq(nextc, v), wbody, wexit);
    b.switch_to(wbody);
    b.mov_to(len, b.add_i(len, 1));
    b.jump(whead);
    b.switch_to(wexit);

    // Emit the (value, len) pair.
    Reg slot = b.add(obase, b.shl_i(runs, 3));
    b.store(slot, 0, v, MemWidth::W4);
    b.store(slot, 4, len, MemWidth::W4);
    b.mov_to(runs, b.add_i(runs, 1));
    Reg term = b.add(b.mul_i(v, 16), len);
    b.mov_to(sum, b.and_i(b.add(b.mul_i(sum, 5), term), 0x7fffffff));
    b.mov_to(i, b.add(i, len));
  }
  b.jump(ohead);
  b.switch_to(oexit);
  b.ret(b.and_i(b.add(b.mul_i(runs, 65537), sum), 0x7fffffff));
  b.finish();

  w.expected_checksum = reference(data);
  return w;
}

}  // namespace ilc::wl
