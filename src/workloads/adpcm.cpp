// adpcm — IMA ADPCM encoder, the paper's Fig. 2 search target.
//
// Branchy integer codec with table lookups: the optimization-sequence
// space over it has the scattered-minima structure the paper plots.
// Structured as init() + encode_block(blk) so the dynamic-optimization
// harness can drive it block by block.
#include <algorithm>

#include "workloads/common.hpp"
#include "workloads/workloads.hpp"

namespace ilc::wl {

namespace {

constexpr int kBlocks = 16;
constexpr int kBlockSamples = 16;
constexpr int kSamples = kBlocks * kBlockSamples;

const int kIndexTable[16] = {-1, -1, -1, -1, 2, 4, 6, 8,
                             -1, -1, -1, -1, 2, 4, 6, 8};

std::vector<std::int64_t> step_table() {
  // Standard IMA step sizes.
  static const int t[89] = {
      7,     8,     9,     10,    11,    12,    13,    14,    16,    17,
      19,    21,    23,    25,    28,    31,    34,    37,    41,    45,
      50,    55,    60,    66,    73,    80,    88,    97,    107,   118,
      130,   143,   157,   173,   190,   209,   230,   253,   279,   307,
      337,   371,   408,   449,   494,   544,   598,   658,   724,   796,
      876,   963,   1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,
      2272,  2499,  2749,  3024,  3327,  3660,  4026,  4428,  4871,  5358,
      5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899,
      15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};
  return std::vector<std::int64_t>(t, t + 89);
}

std::vector<std::int64_t> sample_data() {
  support::Rng rng(0xadbcadbcULL);
  std::vector<std::int64_t> s(kSamples);
  std::int64_t v = 0;
  for (int i = 0; i < kSamples; ++i) {
    v += rng.next_in(-800, 800);
    v = std::clamp<std::int64_t>(v, -32000, 32000);
    s[i] = v;
  }
  return s;
}

/// Golden reference mirroring the IR program exactly.
std::int64_t reference() {
  const auto steps = step_table();
  const auto samples = sample_data();
  std::int64_t valpred = 0, index = 0, total = 0;
  for (int blk = 0; blk < kBlocks; ++blk) {
    std::int64_t sum = 0;
    for (int j = 0; j < kBlockSamples; ++j) {
      const std::int64_t s = samples[blk * kBlockSamples + j];
      const std::int64_t step = steps[index];
      std::int64_t delta = s - valpred;
      std::int64_t code = 0;
      if (delta < 0) {
        code = 8;
        delta = -delta;
      }
      std::int64_t vpdiff = step >> 3;
      std::int64_t st = step;
      if (delta >= st) {
        code |= 4;
        delta -= st;
        vpdiff += st;
      }
      st >>= 1;
      if (delta >= st) {
        code |= 2;
        delta -= st;
        vpdiff += st;
      }
      st >>= 1;
      if (delta >= st) {
        code |= 1;
        vpdiff += st;
      }
      if (code & 8) valpred -= vpdiff;
      else valpred += vpdiff;
      valpred = std::min<std::int64_t>(std::max<std::int64_t>(valpred, -32768), 32767);
      index += kIndexTable[code];
      index = std::min<std::int64_t>(std::max<std::int64_t>(index, 0), 88);
      sum = fold32(sum * 31 + code);
    }
    total = fold32(total + sum);
  }
  return total;
}

}  // namespace

Workload make_adpcm() {
  using namespace ir;
  Workload w;
  w.name = "adpcm";
  Module& m = w.module;
  m.name = "adpcm";

  Global g_samples;
  g_samples.name = "samples";
  g_samples.elem_width = 2;
  g_samples.count = kSamples;
  g_samples.init = sample_data();
  const GlobalId samples = m.add_global(g_samples);

  Global g_steps;
  g_steps.name = "step_tab";
  g_steps.elem_width = 4;
  g_steps.count = 89;
  g_steps.init = step_table();
  const GlobalId steps = m.add_global(g_steps);

  Global g_idx;
  g_idx.name = "idx_tab";
  g_idx.elem_width = 4;
  g_idx.count = 16;
  g_idx.init.assign(kIndexTable, kIndexTable + 16);
  const GlobalId idxtab = m.add_global(g_idx);

  Global g_state;  // [0] = valpred, [1] = index
  g_state.name = "state";
  g_state.elem_width = 8;
  g_state.count = 2;
  const GlobalId state = m.add_global(g_state);

  // --- init(): zero the codec state --------------------------------
  FuncId f_init;
  {
    FunctionBuilder b(m, "init", 0);
    Reg st = b.global_addr(state);
    Reg zero = b.imm(0);
    b.store(st, 0, zero, MemWidth::W8);
    b.store(st, 8, zero, MemWidth::W8);
    b.ret();
    f_init = b.finish();
  }

  // --- encode_block(blk): encode kBlockSamples samples --------------
  FuncId f_block;
  {
    FunctionBuilder b(m, "encode_block", 1);
    Reg blk = b.arg(0);
    Reg st = b.global_addr(state);
    Reg valpred = b.fresh();
    b.mov_to(valpred, b.load(st, 0, MemWidth::W8));
    Reg index = b.fresh();
    b.mov_to(index, b.load(st, 8, MemWidth::W8));
    Reg sbase = b.global_addr(samples);
    Reg stepbase = b.global_addr(steps);
    Reg idxbase = b.global_addr(idxtab);
    Reg start = b.mul_i(blk, kBlockSamples);
    Reg sum = b.fresh();
    b.imm_to(sum, 0);

    Reg count = b.imm(kBlockSamples);
    CountedLoop loop = begin_loop(b, count);
    {
      Reg pos = b.add(start, loop.ivar);
      Reg s = b.load(b.add(sbase, b.mul_i(pos, 2)), 0, MemWidth::W2);
      Reg step = b.fresh();
      b.mov_to(step, b.load(b.add(stepbase, b.mul_i(index, 4)), 0,
                            MemWidth::W4));
      Reg delta = b.fresh();
      b.mov_to(delta, b.sub(s, valpred));
      Reg code = b.fresh();
      b.imm_to(code, 0);

      // if (delta < 0) { code = 8; delta = -delta; }
      {
        BlockId then = b.new_block(), join = b.new_block();
        b.br(b.cmp_lt_i(delta, 0), then, join);
        b.switch_to(then);
        b.imm_to(code, 8);
        b.mov_to(delta, b.neg(delta));
        b.jump(join);
        b.switch_to(join);
      }

      Reg vpdiff = b.fresh();
      b.mov_to(vpdiff, b.shr_i(step, 3));
      Reg st_cur = b.fresh();
      b.mov_to(st_cur, step);

      // Three quantization levels: bits 4, 2, 1.
      for (int bit : {4, 2, 1}) {
        BlockId then = b.new_block(), join = b.new_block();
        b.br(b.cmp_ge(delta, st_cur), then, join);
        b.switch_to(then);
        b.mov_to(code, b.or_(code, b.imm(bit)));
        if (bit != 1) b.mov_to(delta, b.sub(delta, st_cur));
        b.mov_to(vpdiff, b.add(vpdiff, st_cur));
        b.jump(join);
        b.switch_to(join);
        if (bit != 1) b.mov_to(st_cur, b.shr_i(st_cur, 1));
      }

      // Apply prediction update with sign.
      {
        BlockId neg = b.new_block(), pos_b = b.new_block(),
                join = b.new_block();
        b.br(b.and_i(code, 8), neg, pos_b);
        b.switch_to(neg);
        b.mov_to(valpred, b.sub(valpred, vpdiff));
        b.jump(join);
        b.switch_to(pos_b);
        b.mov_to(valpred, b.add(valpred, vpdiff));
        b.jump(join);
        b.switch_to(join);
      }
      b.mov_to(valpred, b.min(b.max(valpred, b.imm(-32768)), b.imm(32767)));

      Reg adj = b.load(b.add(idxbase, b.mul_i(code, 4)), 0, MemWidth::W4);
      b.mov_to(index, b.min(b.max(b.add(index, adj), b.imm(0)), b.imm(88)));

      b.mov_to(sum, b.and_i(b.add(b.mul_i(sum, 31), code), 0x7fffffff));
    }
    end_loop(b, loop);

    b.store(st, 0, valpred, MemWidth::W8);
    b.store(st, 8, index, MemWidth::W8);
    b.ret(sum);
    f_block = b.finish();
  }

  // --- main(): init, then encode all blocks -------------------------
  {
    FunctionBuilder b(m, "main", 0);
    b.call_void(f_init, {});
    Reg total = b.fresh();
    b.imm_to(total, 0);
    Reg count = b.imm(kBlocks);
    CountedLoop loop = begin_loop(b, count);
    {
      Reg part = b.call(f_block, {loop.ivar});
      b.mov_to(total, b.and_i(b.add(total, part), 0x7fffffff));
    }
    end_loop(b, loop);
    b.ret(total);
    b.finish();
  }

  w.expected_checksum = reference();
  w.kernel = "encode_block";
  w.kernel_setup = "init";
  w.kernel_items = kBlocks;
  // kernel_checksum: sum of per-block codes folded the same way main does
  // is exactly the checksum main computes, given init() runs first.
  w.kernel_checksum = w.expected_checksum;
  return w;
}

}  // namespace ilc::wl
