// bitcount — Kernighan popcount over a word array: data-dependent inner
// trip counts, the MiBench bitcount analogue.
#include "workloads/common.hpp"
#include "workloads/workloads.hpp"

namespace ilc::wl {

namespace {

constexpr int kN = 768;

std::int64_t reference(const std::vector<std::int64_t>& d) {
  std::int64_t total = 0;
  for (int i = 0; i < kN; ++i) {
    std::int64_t v = d[i];
    std::int64_t c = 0;
    while (v != 0) {
      v &= v - 1;
      ++c;
    }
    total = fold32(total + c * (i % 7 + 1));
  }
  return total;
}

}  // namespace

Workload make_bitcount() {
  using namespace ir;
  Workload w;
  w.name = "bitcount";
  Module& m = w.module;
  m.name = "bitcount";

  const auto data = random_values(0xb17c, kN, 0, (1LL << 62));
  Global gd;
  gd.name = "data";
  gd.elem_width = 8;
  gd.count = kN;
  gd.init = data;
  const GlobalId buf = m.add_global(gd);

  FunctionBuilder b(m, "main", 0);
  Reg base = b.global_addr(buf);
  Reg total = b.fresh();
  b.imm_to(total, 0);
  Reg n = b.imm(kN);
  CountedLoop li = begin_loop(b, n);
  {
    Reg v = b.fresh();
    b.mov_to(v, b.load(b.add(base, b.shl_i(li.ivar, 3)), 0, MemWidth::W8));
    Reg c = b.fresh();
    b.imm_to(c, 0);
    BlockId whead = b.new_block(), wbody = b.new_block(),
            wexit = b.new_block();
    b.jump(whead);
    b.switch_to(whead);
    b.br(b.cmp_ne(v, b.imm(0)), wbody, wexit);
    b.switch_to(wbody);
    b.mov_to(v, b.and_(v, b.sub_i(v, 1)));
    b.mov_to(c, b.add_i(c, 1));
    b.jump(whead);
    b.switch_to(wexit);
    Reg weight = b.add_i(b.rem(li.ivar, b.imm(7)), 1);
    b.mov_to(total, b.and_i(b.add(total, b.mul(c, weight)), 0x7fffffff));
  }
  end_loop(b, li);
  b.ret(total);
  b.finish();

  w.expected_checksum = reference(data);
  return w;
}

}  // namespace ilc::wl
