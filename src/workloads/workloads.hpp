// The benchmark suite: 15 programs written in ilc IR, each paired with a
// C++ golden reference that computes the same checksum. Every program's
// main() returns its checksum; the test suite asserts (a) the IR result
// equals the golden value and (b) the result is invariant under every
// optimization sequence — the core semantics-preservation property.
//
// The suite plays the role of SPEC/MiBench/Polyhedron in the paper:
//   adpcm     — the Fig. 2 search target (branchy integer codec)
//   mcf_lite  — the Fig. 3/4 memory-bound outlier (pointer-chasing records)
//   the rest  — span compute-bound, branchy, and mixed behaviours so suite
//               averages and leave-one-out training are meaningful.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/module.hpp"

namespace ilc::wl {

struct Workload {
  std::string name;
  ir::Module module;                  // contains main() and helpers
  std::int64_t expected_checksum = 0; // golden value from the C++ reference

  /// Optional per-item kernel for the dynamic-optimization harness:
  /// after calling kernel_setup() once (if non-empty), kernel(i) is
  /// invoked for i in [0, kernel_items); folding the returns with
  /// checksum = (checksum + ret) & 0x7fffffff must yield kernel_checksum.
  std::string kernel;
  std::string kernel_setup;
  std::int64_t kernel_items = 0;
  std::int64_t kernel_checksum = 0;
};

Workload make_adpcm();
Workload make_mcf_lite();
Workload make_matmul();
Workload make_fir();
Workload make_crc32();
Workload make_dijkstra();
Workload make_histogram();
Workload make_stencil();
Workload make_shellsort();
Workload make_strsearch();
Workload make_sha_lite();
Workload make_rle();
Workload make_bitcount();
Workload make_dotprod();
Workload make_linklist();
Workload make_treewalk();
Workload make_phased_mix();

/// Names of every workload in the suite, in canonical order.
const std::vector<std::string>& workload_names();

/// Construct a workload by name; throws on unknown names.
Workload make_workload(const std::string& name);

/// Construct the whole suite.
std::vector<Workload> make_suite();

}  // namespace ilc::wl
