#include "workloads/workloads.hpp"

#include "support/assert.hpp"

namespace ilc::wl {

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names = {
      "adpcm",    "mcf_lite",  "matmul",   "fir",       "crc32",
      "dijkstra", "histogram", "stencil",  "shellsort", "strsearch",
      "sha_lite", "rle",       "bitcount", "dotprod",   "linklist",
      "treewalk", "phased_mix"};
  return names;
}

Workload make_workload(const std::string& name) {
  if (name == "adpcm") return make_adpcm();
  if (name == "mcf_lite") return make_mcf_lite();
  if (name == "matmul") return make_matmul();
  if (name == "fir") return make_fir();
  if (name == "crc32") return make_crc32();
  if (name == "dijkstra") return make_dijkstra();
  if (name == "histogram") return make_histogram();
  if (name == "stencil") return make_stencil();
  if (name == "shellsort") return make_shellsort();
  if (name == "strsearch") return make_strsearch();
  if (name == "sha_lite") return make_sha_lite();
  if (name == "rle") return make_rle();
  if (name == "bitcount") return make_bitcount();
  if (name == "dotprod") return make_dotprod();
  if (name == "linklist") return make_linklist();
  if (name == "treewalk") return make_treewalk();
  if (name == "phased_mix") return make_phased_mix();
  ILC_CHECK_MSG(false, "unknown workload: " << name);
  return {};
}

std::vector<Workload> make_suite() {
  std::vector<Workload> suite;
  suite.reserve(workload_names().size());
  for (const std::string& name : workload_names())
    suite.push_back(make_workload(name));
  return suite;
}

}  // namespace ilc::wl
