// crc32 — bitwise (table-free) CRC-32 over a byte buffer: tight
// data-dependent-branch loop, the branch-predictor stress case.
#include "workloads/common.hpp"
#include "workloads/workloads.hpp"

namespace ilc::wl {

namespace {

constexpr int kLen = 256;
constexpr std::int64_t kPoly = 0xedb88320LL;

std::int64_t reference(const std::vector<std::int64_t>& data) {
  std::int64_t crc = 0xffffffffLL;
  for (int i = 0; i < kLen; ++i) {
    crc ^= data[i];
    for (int k = 0; k < 8; ++k) {
      if (crc & 1)
        crc = ((crc >> 1) & 0x7fffffffLL) ^ kPoly;
      else
        crc = (crc >> 1) & 0x7fffffffLL;
    }
  }
  return fold32(crc ^ 0xffffffffLL);
}

}  // namespace

Workload make_crc32() {
  using namespace ir;
  Workload w;
  w.name = "crc32";
  Module& m = w.module;
  m.name = "crc32";

  const auto data = random_values(0xcc32, kLen, 0, 255);
  Global gd;
  gd.name = "data";
  gd.elem_width = 1;
  gd.count = kLen;
  gd.init = data;
  const GlobalId buf = m.add_global(gd);

  FunctionBuilder b(m, "main", 0);
  Reg base = b.global_addr(buf);
  Reg crc = b.fresh();
  b.imm_to(crc, 0xffffffffLL);
  Reg n = b.imm(kLen);
  CountedLoop li = begin_loop(b, n);
  {
    Reg byte = b.load(b.add(base, li.ivar), 0, MemWidth::W1);
    // W1 loads sign-extend; inputs are 0..255 so mask to be explicit.
    b.mov_to(crc, b.xor_(crc, b.and_i(byte, 255)));
    Reg eight = b.imm(8);
    CountedLoop lk = begin_loop(b, eight);
    {
      BlockId odd = b.new_block(), even = b.new_block(), join = b.new_block();
      Reg shifted = b.and_i(b.shr_i(crc, 1), 0x7fffffffLL);
      b.br(b.and_i(crc, 1), odd, even);
      b.switch_to(odd);
      b.mov_to(crc, b.xor_(shifted, b.imm(kPoly)));
      b.jump(join);
      b.switch_to(even);
      b.mov_to(crc, shifted);
      b.jump(join);
      b.switch_to(join);
    }
    end_loop(b, lk);
  }
  end_loop(b, li);
  b.ret(b.and_i(b.xor_(crc, b.imm(0xffffffffLL)), 0x7fffffff));
  b.finish();

  w.expected_checksum = reference(data);
  return w;
}

}  // namespace ilc::wl
