// shellsort — in-place gap-sequence sort: irregular data-dependent
// branches and swap-heavy memory traffic.
#include "workloads/common.hpp"
#include "workloads/workloads.hpp"

namespace ilc::wl {

namespace {

constexpr int kN = 256;
const int kGaps[] = {64, 16, 4, 1};

std::int64_t reference(std::vector<std::int64_t> v) {
  for (int gap : kGaps) {
    for (int i = gap; i < kN; ++i) {
      const std::int64_t tmp = v[i];
      int j = i;
      while (j >= gap && v[j - gap] > tmp) {
        v[j] = v[j - gap];
        j -= gap;
      }
      v[j] = tmp;
    }
  }
  std::int64_t sum = 0;
  for (int i = 0; i < kN; ++i) sum = fold32(sum * 11 + v[i] * (i + 1));
  return sum;
}

}  // namespace

Workload make_shellsort() {
  using namespace ir;
  Workload w;
  w.name = "shellsort";
  Module& m = w.module;
  m.name = "shellsort";

  const auto data = random_values(0x5047, kN, -100000, 100000);
  Global gd;
  gd.name = "data";
  gd.elem_width = 8;
  gd.count = kN;
  gd.init = data;
  const GlobalId buf = m.add_global(gd);

  Global gg;
  gg.name = "gaps";
  gg.elem_width = 8;
  gg.count = 4;
  gg.init.assign(kGaps, kGaps + 4);
  const GlobalId gaps = m.add_global(gg);

  FunctionBuilder b(m, "main", 0);
  Reg base = b.global_addr(buf);
  Reg gbase = b.global_addr(gaps);
  Reg n = b.imm(kN);

  CountedLoop lg = begin_loop(b, b.imm(4));
  {
    Reg gap = b.load(b.add(gbase, b.shl_i(lg.ivar, 3)), 0, MemWidth::W8);
    // for (i = gap; i < n; ++i)
    Reg i = b.fresh();
    b.mov_to(i, gap);
    BlockId ihead = b.new_block(), ibody = b.new_block(),
            iexit = b.new_block();
    b.jump(ihead);
    b.switch_to(ihead);
    b.br(b.cmp_lt(i, n), ibody, iexit);
    b.switch_to(ibody);
    {
      Reg tmp = b.load(b.add(base, b.shl_i(i, 3)), 0, MemWidth::W8);
      Reg j = b.fresh();
      b.mov_to(j, i);
      // while (j >= gap && v[j-gap] > tmp)
      BlockId whead = b.new_block(), wcheck = b.new_block(),
              wbody = b.new_block(), wexit = b.new_block();
      b.jump(whead);
      b.switch_to(whead);
      b.br(b.cmp_ge(j, gap), wcheck, wexit);
      b.switch_to(wcheck);
      Reg jg = b.sub(j, gap);
      Reg prev = b.load(b.add(base, b.shl_i(jg, 3)), 0, MemWidth::W8);
      b.br(b.cmp_gt(prev, tmp), wbody, wexit);
      b.switch_to(wbody);
      b.store(b.add(base, b.shl_i(j, 3)), 0, prev, MemWidth::W8);
      b.mov_to(j, jg);
      b.jump(whead);
      b.switch_to(wexit);
      b.store(b.add(base, b.shl_i(j, 3)), 0, tmp, MemWidth::W8);
    }
    b.mov_to(i, b.add_i(i, 1));
    b.jump(ihead);
    b.switch_to(iexit);
  }
  end_loop(b, lg);

  Reg sum = b.fresh();
  b.imm_to(sum, 0);
  CountedLoop lf = begin_loop(b, n);
  {
    Reg v = b.load(b.add(base, b.shl_i(lf.ivar, 3)), 0, MemWidth::W8);
    Reg weighted = b.mul(v, b.add_i(lf.ivar, 1));
    b.mov_to(sum, b.and_i(b.add(b.mul_i(sum, 11), weighted), 0x7fffffff));
  }
  end_loop(b, lf);
  b.ret(sum);
  b.finish();

  w.expected_checksum = reference(data);
  return w;
}

}  // namespace ilc::wl
