// treewalk — iterative depth-first traversal of a randomly-shaped binary
// search tree with an explicit stack of node pointers (a raw pointer
// array, so pointer compression narrows both the node records AND the
// stack slots). The third pointer-chasing program of the suite.
#include "workloads/common.hpp"
#include "workloads/workloads.hpp"

namespace ilc::wl {

namespace {

constexpr int kTreeNodes = 1200;
constexpr int kPasses = 3;

struct TreeData {
  std::vector<std::int64_t> val;
  std::vector<std::int64_t> left;   // index, -1 = null
  std::vector<std::int64_t> right;  // index, -1 = null
};

TreeData tree_data() {
  support::Rng rng(0x73ee);
  TreeData d;
  d.val = random_values(0x74, kTreeNodes, 0, 1 << 30);
  d.left.assign(kTreeNodes, -1);
  d.right.assign(kTreeNodes, -1);
  // BST insertion of nodes 1..n-1 under node 0 by val: random shape with
  // pointer topology uncorrelated with memory order.
  for (int i = 1; i < kTreeNodes; ++i) {
    int cur = 0;
    for (;;) {
      if (d.val[i] < d.val[cur]) {
        if (d.left[cur] < 0) {
          d.left[cur] = i;
          break;
        }
        cur = static_cast<int>(d.left[cur]);
      } else {
        if (d.right[cur] < 0) {
          d.right[cur] = i;
          break;
        }
        cur = static_cast<int>(d.right[cur]);
      }
    }
  }
  return d;
}

std::int64_t reference(const TreeData& d) {
  std::int64_t sum = 0;
  for (int p = 0; p < kPasses; ++p) {
    std::vector<std::int64_t> stack;
    stack.push_back(0);
    while (!stack.empty()) {
      const std::int64_t node = stack.back();
      stack.pop_back();
      sum = fold32(sum + d.val[node] + static_cast<std::int64_t>(stack.size()));
      if (d.left[node] >= 0) stack.push_back(d.left[node]);
      if (d.right[node] >= 0) stack.push_back(d.right[node]);
    }
  }
  return sum;
}

}  // namespace

Workload make_treewalk() {
  using namespace ir;
  Workload w;
  w.name = "treewalk";
  Module& m = w.module;
  m.name = "treewalk";

  RecordType node_t;
  node_t.name = "tnode";
  node_t.fields = {{"val", FieldKind::I64},
                   {"left", FieldKind::Ptr},
                   {"right", FieldKind::Ptr},
                   {"parent", FieldKind::Ptr}};
  const RecordId rec = m.add_record(node_t);
  constexpr FieldId kVal = 0, kLeft = 1, kRight = 2;

  const TreeData d = tree_data();
  Global gnodes;
  gnodes.name = "tnodes";
  gnodes.kind = GlobalKind::RecordArray;
  gnodes.record = rec;
  gnodes.count = kTreeNodes;
  const GlobalId nodes = static_cast<GlobalId>(m.globals().size());
  gnodes.field_init.resize(node_t.fields.size());
  gnodes.field_init[kVal].values = d.val;
  gnodes.field_init[kLeft] = {d.left, nodes};
  gnodes.field_init[kRight] = {d.right, nodes};
  m.add_global(gnodes);

  // Explicit DFS stack: a raw array of pointers into `tnodes`.
  Global gstack;
  gstack.name = "stack";
  gstack.elem_is_ptr = true;
  gstack.ptr_target = nodes;
  gstack.count = kTreeNodes + 1;
  const GlobalId stack = m.add_global(gstack);

  FunctionBuilder b(m, "main", 0);
  Reg sum = b.fresh();
  b.imm_to(sum, 0);
  Reg sbase = b.global_addr(stack);
  Reg root = b.global_addr(nodes);  // node 0 is the tree root
  Reg pw = b.imm_ptr_width();       // tagged: follows compression
  const MemWidth pw_now = static_cast<MemWidth>(m.ptr_bytes());

  Reg passes = b.imm(kPasses);
  CountedLoop lp = begin_loop(b, passes);
  {
    Reg sp = b.fresh();
    b.imm_to(sp, 1);
    b.store(sbase, 0, root, pw_now, /*is_ptr=*/true);

    BlockId whead = b.new_block(), wbody = b.new_block(),
            wexit = b.new_block();
    b.jump(whead);
    b.switch_to(whead);
    b.br(b.cmp_gt(sp, b.imm(0)), wbody, wexit);
    b.switch_to(wbody);
    {
      b.mov_to(sp, b.sub_i(sp, 1));
      Reg slot = b.add(sbase, b.mul(sp, pw));
      Reg node = b.load(slot, 0, pw_now, /*is_ptr=*/true);
      Reg val = b.load_field(node, rec, kVal);
      b.mov_to(sum,
               b.and_i(b.add(b.add(sum, val), sp), 0x7fffffff));

      Reg left = b.load_field(node, rec, kLeft);
      BlockId has_l = b.new_block(), after_l = b.new_block();
      b.br(b.cmp_ne(left, b.imm(0)), has_l, after_l);
      b.switch_to(has_l);
      b.store(b.add(sbase, b.mul(sp, pw)), 0, left, pw_now, true);
      b.mov_to(sp, b.add_i(sp, 1));
      b.jump(after_l);
      b.switch_to(after_l);

      Reg right = b.load_field(node, rec, kRight);
      BlockId has_r = b.new_block(), after_r = b.new_block();
      b.br(b.cmp_ne(right, b.imm(0)), has_r, after_r);
      b.switch_to(has_r);
      b.store(b.add(sbase, b.mul(sp, pw)), 0, right, pw_now, true);
      b.mov_to(sp, b.add_i(sp, 1));
      b.jump(after_r);
      b.switch_to(after_r);
    }
    b.jump(whead);
    b.switch_to(wexit);
  }
  end_loop(b, lp);
  b.ret(sum);
  b.finish();

  w.expected_checksum = reference(d);
  return w;
}

}  // namespace ilc::wl
