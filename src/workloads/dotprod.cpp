// dotprod — two reduction passes over vector pairs: one unit-stride, one
// strided (cache-line-unfriendly), separating bandwidth from latency
// sensitivity in the counter signature.
#include "workloads/common.hpp"
#include "workloads/workloads.hpp"

namespace ilc::wl {

namespace {

constexpr int kN = 1024;
constexpr int kStride = 7;  // co-prime with kN so the walk covers all slots

std::int64_t reference(const std::vector<std::int64_t>& x,
                       const std::vector<std::int64_t>& y) {
  std::int64_t unit = 0;
  for (int i = 0; i < kN; ++i) unit = fold32(unit + x[i] * y[i]);
  std::int64_t strided = 0;
  std::int64_t idx = 0;
  for (int i = 0; i < kN; ++i) {
    strided = fold32(strided + x[idx] * y[kN - 1 - idx]);
    idx = (idx + kStride) % kN;
  }
  return fold32(unit * 3 + strided);
}

}  // namespace

Workload make_dotprod() {
  using namespace ir;
  Workload w;
  w.name = "dotprod";
  Module& m = w.module;
  m.name = "dotprod";

  const auto x = random_values(0xd07a, kN, -512, 512);
  const auto y = random_values(0xd07b, kN, -512, 512);

  Global gx;
  gx.name = "x";
  gx.elem_width = 8;
  gx.count = kN;
  gx.init = x;
  const GlobalId xg = m.add_global(gx);
  Global gy;
  gy.name = "y";
  gy.elem_width = 8;
  gy.count = kN;
  gy.init = y;
  const GlobalId yg = m.add_global(gy);

  FunctionBuilder b(m, "main", 0);
  Reg xb = b.global_addr(xg);
  Reg yb = b.global_addr(yg);
  Reg n = b.imm(kN);

  Reg unit = b.fresh();
  b.imm_to(unit, 0);
  CountedLoop l1 = begin_loop(b, n);
  {
    Reg off = b.shl_i(l1.ivar, 3);
    Reg xv = b.load(b.add(xb, off), 0, MemWidth::W8);
    Reg yv = b.load(b.add(yb, off), 0, MemWidth::W8);
    b.mov_to(unit, b.and_i(b.add(unit, b.mul(xv, yv)), 0x7fffffff));
  }
  end_loop(b, l1);

  Reg strided = b.fresh();
  b.imm_to(strided, 0);
  Reg idx = b.fresh();
  b.imm_to(idx, 0);
  CountedLoop l2 = begin_loop(b, n);
  {
    Reg xv = b.load(b.add(xb, b.shl_i(idx, 3)), 0, MemWidth::W8);
    Reg ridx = b.sub(b.imm(kN - 1), idx);
    Reg yv = b.load(b.add(yb, b.shl_i(ridx, 3)), 0, MemWidth::W8);
    b.mov_to(strided, b.and_i(b.add(strided, b.mul(xv, yv)), 0x7fffffff));
    b.mov_to(idx, b.rem(b.add_i(idx, kStride), b.imm(kN)));
  }
  end_loop(b, l2);

  b.ret(b.and_i(b.add(b.mul_i(unit, 3), strided), 0x7fffffff));
  b.finish();

  w.expected_checksum = reference(x, y);
  return w;
}

}  // namespace ilc::wl
