// matmul — dense integer matrix multiply; the classic loop-nest target
// (LICM, unrolling, scheduling all pay off here).
#include "workloads/common.hpp"
#include "workloads/workloads.hpp"

namespace ilc::wl {

namespace {

constexpr int kN = 16;

std::int64_t reference(const std::vector<std::int64_t>& a,
                       const std::vector<std::int64_t>& bmat) {
  std::vector<std::int64_t> c(kN * kN, 0);
  for (int i = 0; i < kN; ++i)
    for (int j = 0; j < kN; ++j) {
      std::int64_t s = 0;
      for (int k = 0; k < kN; ++k) s += a[i * kN + k] * bmat[k * kN + j];
      c[i * kN + j] = s;
    }
  std::int64_t sum = 0;
  for (int i = 0; i < kN * kN; ++i)
    sum = fold32(sum * 17 + c[i]);
  return sum;
}

}  // namespace

Workload make_matmul() {
  using namespace ir;
  Workload w;
  w.name = "matmul";
  Module& m = w.module;
  m.name = "matmul";

  const auto a_init = random_values(0xaaaa, kN * kN, -100, 100);
  const auto b_init = random_values(0xbbbb, kN * kN, -100, 100);

  auto add_mat = [&](const char* name, const std::vector<std::int64_t>& init) {
    Global g;
    g.name = name;
    g.elem_width = 8;
    g.count = kN * kN;
    g.init = init;
    return m.add_global(g);
  };
  const GlobalId ga = add_mat("A", a_init);
  const GlobalId gb = add_mat("B", b_init);
  const GlobalId gc = add_mat("C", {});

  FunctionBuilder b(m, "main", 0);
  Reg abase = b.global_addr(ga);
  Reg bbase = b.global_addr(gb);
  Reg cbase = b.global_addr(gc);
  Reg n = b.imm(kN);

  CountedLoop li = begin_loop(b, n);
  {
    CountedLoop lj = begin_loop(b, n);
    {
      Reg s = b.fresh();
      b.imm_to(s, 0);
      CountedLoop lk = begin_loop(b, n);
      {
        Reg aoff = b.shl_i(b.add(b.mul_i(li.ivar, kN), lk.ivar), 3);
        Reg av = b.load(b.add(abase, aoff), 0, MemWidth::W8);
        Reg boff = b.shl_i(b.add(b.mul_i(lk.ivar, kN), lj.ivar), 3);
        Reg bv = b.load(b.add(bbase, boff), 0, MemWidth::W8);
        b.mov_to(s, b.add(s, b.mul(av, bv)));
      }
      end_loop(b, lk);
      Reg coff = b.shl_i(b.add(b.mul_i(li.ivar, kN), lj.ivar), 3);
      b.store(b.add(cbase, coff), 0, s, MemWidth::W8);
    }
    end_loop(b, lj);
  }
  end_loop(b, li);

  // Fold C into the checksum.
  Reg sum = b.fresh();
  b.imm_to(sum, 0);
  Reg total = b.imm(kN * kN);
  CountedLoop lf = begin_loop(b, total);
  {
    Reg cv = b.load(b.add(cbase, b.shl_i(lf.ivar, 3)), 0, MemWidth::W8);
    b.mov_to(sum, b.and_i(b.add(b.mul_i(sum, 17), cv), 0x7fffffff));
  }
  end_loop(b, lf);
  b.ret(sum);
  b.finish();

  w.expected_checksum = reference(a_init, b_init);
  return w;
}

}  // namespace ilc::wl
