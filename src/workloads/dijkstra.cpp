// dijkstra — single-source shortest paths over a dense adjacency matrix
// with linear min-scan (the MiBench variant): mixed compare-heavy control
// flow and regular memory sweeps.
#include "workloads/common.hpp"
#include "workloads/workloads.hpp"

namespace ilc::wl {

namespace {

constexpr int kN = 32;
constexpr std::int64_t kInf = 1 << 28;

std::vector<std::int64_t> adj_init() {
  support::Rng rng(0xd1d1ULL);
  std::vector<std::int64_t> adj(kN * kN, kInf);
  for (int i = 0; i < kN; ++i) {
    adj[i * kN + i] = 0;
    for (int j = 0; j < kN; ++j) {
      if (i != j && rng.next_bool(0.35))
        adj[i * kN + j] = rng.next_in(1, 100);
    }
  }
  return adj;
}

std::int64_t reference(const std::vector<std::int64_t>& adj) {
  std::vector<std::int64_t> dist(kN, kInf);
  std::vector<std::int64_t> done(kN, 0);
  dist[0] = 0;
  for (int round = 0; round < kN; ++round) {
    std::int64_t best = kInf, u = -1;
    for (int i = 0; i < kN; ++i) {
      if (!done[i] && dist[i] < best) {
        best = dist[i];
        u = i;
      }
    }
    if (u < 0) break;
    done[u] = 1;
    for (int v = 0; v < kN; ++v) {
      const std::int64_t alt = dist[u] + adj[u * kN + v];
      if (alt < dist[v]) dist[v] = alt;
    }
  }
  std::int64_t sum = 0;
  for (int i = 0; i < kN; ++i) sum = fold32(sum * 13 + dist[i]);
  return sum;
}

}  // namespace

Workload make_dijkstra() {
  using namespace ir;
  Workload w;
  w.name = "dijkstra";
  Module& m = w.module;
  m.name = "dijkstra";

  const auto adj = adj_init();
  Global ga;
  ga.name = "adj";
  ga.elem_width = 8;
  ga.count = kN * kN;
  ga.init = adj;
  const GlobalId gadj = m.add_global(ga);

  Global gd;
  gd.name = "dist";
  gd.elem_width = 8;
  gd.count = kN;
  const GlobalId gdist = m.add_global(gd);

  Global gn;
  gn.name = "done";
  gn.elem_width = 8;
  gn.count = kN;
  const GlobalId gdone = m.add_global(gn);

  FunctionBuilder b(m, "main", 0);
  Reg adj_b = b.global_addr(gadj);
  Reg dist_b = b.global_addr(gdist);
  Reg done_b = b.global_addr(gdone);
  Reg n = b.imm(kN);
  Reg inf = b.imm(kInf);

  // Initialize dist/done.
  CountedLoop linit = begin_loop(b, n);
  {
    Reg off = b.shl_i(linit.ivar, 3);
    b.store(b.add(dist_b, off), 0, inf, MemWidth::W8);
    b.store(b.add(done_b, off), 0, b.imm(0), MemWidth::W8);
  }
  end_loop(b, linit);
  b.store(dist_b, 0, b.imm(0), MemWidth::W8);

  CountedLoop rounds = begin_loop(b, n);
  {
    // Min scan.
    Reg best = b.fresh();
    b.mov_to(best, inf);
    Reg u = b.fresh();
    b.imm_to(u, -1);
    CountedLoop scan = begin_loop(b, n);
    {
      Reg off = b.shl_i(scan.ivar, 3);
      Reg d = b.load(b.add(dist_b, off), 0, MemWidth::W8);
      Reg dn = b.load(b.add(done_b, off), 0, MemWidth::W8);
      Reg improving = b.and_(b.cmp_eq(dn, b.imm(0)), b.cmp_lt(d, best));
      BlockId take = b.new_block(), join = b.new_block();
      b.br(improving, take, join);
      b.switch_to(take);
      b.mov_to(best, d);
      b.mov_to(u, scan.ivar);
      b.jump(join);
      b.switch_to(join);
    }
    end_loop(b, scan);

    // If a node was found, relax its out-edges.
    BlockId relax = b.new_block(), next_round = b.new_block();
    b.br(b.cmp_ge(u, b.imm(0)), relax, next_round);
    b.switch_to(relax);
    {
      Reg uoff = b.shl_i(u, 3);
      b.store(b.add(done_b, uoff), 0, b.imm(1), MemWidth::W8);
      Reg du = b.load(b.add(dist_b, uoff), 0, MemWidth::W8);
      Reg row = b.add(adj_b, b.shl_i(b.mul_i(u, kN), 3));
      CountedLoop lv = begin_loop(b, n);
      {
        Reg voff = b.shl_i(lv.ivar, 3);
        Reg edge = b.load(b.add(row, voff), 0, MemWidth::W8);
        Reg alt = b.add(du, edge);
        Reg dv_addr = b.add(dist_b, voff);
        Reg dv = b.load(dv_addr, 0, MemWidth::W8);
        BlockId improve = b.new_block(), join = b.new_block();
        b.br(b.cmp_lt(alt, dv), improve, join);
        b.switch_to(improve);
        b.store(dv_addr, 0, alt, MemWidth::W8);
        b.jump(join);
        b.switch_to(join);
      }
      end_loop(b, lv);
    }
    b.jump(next_round);
    b.switch_to(next_round);
  }
  end_loop(b, rounds);

  Reg sum = b.fresh();
  b.imm_to(sum, 0);
  CountedLoop lf = begin_loop(b, n);
  {
    Reg d = b.load(b.add(dist_b, b.shl_i(lf.ivar, 3)), 0, MemWidth::W8);
    b.mov_to(sum, b.and_i(b.add(b.mul_i(sum, 13), d), 0x7fffffff));
  }
  end_loop(b, lf);
  b.ret(sum);
  b.finish();

  w.expected_checksum = reference(adj);
  return w;
}

}  // namespace ilc::wl
