// sha_lite — SHA-like mixing rounds over a word block: a pure ALU
// dependence chain (rotates, xors, adds) with almost no memory traffic.
// The compute-bound pole of the suite.
#include "workloads/common.hpp"
#include "workloads/workloads.hpp"

namespace ilc::wl {

namespace {

constexpr int kWords = 16;
constexpr int kRounds = 48;
constexpr std::int64_t kMask = 0xffffffffLL;

std::int64_t rotl32(std::int64_t v, int k) {
  const std::uint64_t u = static_cast<std::uint64_t>(v) & 0xffffffffULL;
  return static_cast<std::int64_t>(((u << k) | (u >> (32 - k))) &
                                   0xffffffffULL);
}

std::int64_t reference(const std::vector<std::int64_t>& block) {
  std::vector<std::int64_t> w = block;
  std::int64_t a = 0x67452301LL, b = 0xefcdab89LL & kMask,
               c = 0x98badcfeLL & kMask, d = 0x10325476LL & kMask;
  for (int r = 0; r < kRounds; ++r) {
    const std::int64_t wi = w[r % kWords];
    const std::int64_t f = ((b & c) | (~b & d)) & kMask;
    const std::int64_t t = (a + f + wi + 0x5a827999LL) & kMask;
    a = d;
    d = c;
    c = rotl32(b, 10);
    b = rotl32(t, 7);
    w[r % kWords] = (wi + b) & kMask;
  }
  return fold32(a ^ b ^ c ^ d);
}

}  // namespace

Workload make_sha_lite() {
  using namespace ir;
  Workload w;
  w.name = "sha_lite";
  Module& m = w.module;
  m.name = "sha_lite";

  const auto block = random_values(0x5a5a, kWords, 0, kMask);
  Global gb;
  gb.name = "block";
  gb.elem_width = 8;
  gb.count = kWords;
  gb.init = block;
  const GlobalId gblock = m.add_global(gb);

  FunctionBuilder b(m, "main", 0);
  Reg wbase = b.global_addr(gblock);
  Reg va = b.fresh(), vb = b.fresh(), vc = b.fresh(), vd = b.fresh();
  b.imm_to(va, 0x67452301LL);
  b.imm_to(vb, 0xefcdab89LL & kMask);
  b.imm_to(vc, 0x98badcfeLL & kMask);
  b.imm_to(vd, 0x10325476LL & kMask);
  Reg mask = b.imm(kMask);

  auto rotl = [&](Reg v, int k) {
    Reg lo = b.and_(b.shl_i(v, k), mask);
    Reg hi = b.shr_i(v, 32 - k);  // v is already 32-bit clean
    return b.or_(lo, hi);
  };

  Reg rounds = b.imm(kRounds);
  CountedLoop lr = begin_loop(b, rounds);
  {
    Reg slot = b.add(wbase, b.shl_i(b.and_i(lr.ivar, kWords - 1), 3));
    Reg wi = b.load(slot, 0, MemWidth::W8);
    Reg f = b.and_(b.or_(b.and_(vb, vc), b.and_(b.not_(vb), vd)), mask);
    Reg t = b.and_(b.add(b.add(va, f), b.add(wi, b.imm(0x5a827999LL))), mask);
    b.mov_to(va, vd);
    b.mov_to(vd, vc);
    b.mov_to(vc, rotl(vb, 10));
    b.mov_to(vb, rotl(t, 7));
    b.store(slot, 0, b.and_(b.add(wi, vb), mask), MemWidth::W8);
  }
  end_loop(b, lr);
  b.ret(b.and_i(b.xor_(b.xor_(va, vb), b.xor_(vc, vd)), 0x7fffffff));
  b.finish();

  w.expected_checksum = reference(block);
  return w;
}

}  // namespace ilc::wl
