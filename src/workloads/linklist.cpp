// linklist — Olden-style linked-list traversal over pointer-fat records
// in scrambled memory order. Together with treewalk it gives the suite a
// second/third pointer-chasing citizen, so leave-one-out counter models
// have a neighbour from which to learn that pointer compression pays for
// mcf-like signatures. Sized to straddle the L2 boundary under 64- vs
// 32-bit pointers (40 B -> 24 B stride; 36 KiB -> 21.6 KiB vs 32 KiB L2).
#include "workloads/common.hpp"
#include "workloads/workloads.hpp"

namespace ilc::wl {

namespace {

constexpr int kCells = 900;
constexpr int kPasses = 4;

struct ListData {
  std::vector<std::int64_t> key;
  std::vector<std::int64_t> val;
  std::vector<std::int64_t> next;  // index chain, single cycle
};

ListData list_data() {
  support::Rng rng(0x11994ULL);
  ListData d;
  d.key = random_values(0x77, kCells, 0, 1 << 30);
  d.val = random_values(0x78, kCells, -1000, 1000);
  std::vector<std::int64_t> perm(kCells);
  for (int i = 0; i < kCells; ++i) perm[i] = i;
  rng.shuffle(perm);
  d.next.resize(kCells);
  for (int i = 0; i < kCells; ++i)
    d.next[perm[i]] = perm[(i + 1) % kCells];
  return d;
}

std::int64_t reference(const ListData& d) {
  std::int64_t sum = 0;
  std::int64_t node = 0;
  for (int p = 0; p < kPasses; ++p) {
    for (int i = 0; i < kCells; ++i) {
      sum = fold32(sum + d.key[node]);
      if (d.key[node] & 1) sum = fold32(sum + d.val[node]);
      node = d.next[node];
    }
  }
  return sum;
}

}  // namespace

Workload make_linklist() {
  using namespace ir;
  Workload w;
  w.name = "linklist";
  Module& m = w.module;
  m.name = "linklist";

  RecordType cell_t;
  cell_t.name = "cell";
  cell_t.fields = {{"key", FieldKind::I64},
                   {"next", FieldKind::Ptr},
                   {"prev", FieldKind::Ptr},
                   {"data", FieldKind::Ptr},
                   {"val", FieldKind::I32}};
  const RecordId rec = m.add_record(cell_t);
  constexpr FieldId kKey = 0, kNext = 1, kVal = 4;

  const ListData d = list_data();
  Global g;
  g.name = "cells";
  g.kind = GlobalKind::RecordArray;
  g.record = rec;
  g.count = kCells;
  const GlobalId cells = static_cast<GlobalId>(m.globals().size());
  g.field_init.resize(cell_t.fields.size());
  g.field_init[kKey].values = d.key;
  g.field_init[kNext] = {d.next, cells};
  g.field_init[kVal].values = d.val;
  m.add_global(g);

  FunctionBuilder b(m, "main", 0);
  Reg sum = b.fresh();
  b.imm_to(sum, 0);
  Reg node = b.fresh();
  b.mov_to(node, b.global_addr(cells));
  Reg passes = b.imm(kPasses);
  CountedLoop lp = begin_loop(b, passes);
  {
    Reg steps = b.imm(kCells);
    CountedLoop ls = begin_loop(b, steps);
    {
      Reg key = b.load_field(node, rec, kKey);
      b.mov_to(sum, b.and_i(b.add(sum, key), 0x7fffffff));
      BlockId odd = b.new_block(), join = b.new_block();
      b.br(b.and_i(key, 1), odd, join);
      b.switch_to(odd);
      Reg val = b.load_field(node, rec, kVal);
      b.mov_to(sum, b.and_i(b.add(sum, val), 0x7fffffff));
      b.jump(join);
      b.switch_to(join);
      b.mov_to(node, b.load_field(node, rec, kNext));
    }
    end_loop(b, ls);
  }
  end_loop(b, lp);
  b.ret(sum);
  b.finish();

  w.expected_checksum = reference(d);
  return w;
}

}  // namespace ilc::wl
