// Shared construction helpers for the workload suite.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace ilc::wl {

/// Counted-loop scaffolding:
///   CountedLoop l = begin_loop(b, n_reg);   // builder now at loop body
///   ... body using l.ivar ...
///   end_loop(b, l);                          // builder now at loop exit
struct CountedLoop {
  ir::Reg ivar = ir::kNoReg;
  ir::BlockId head = ir::kNoBlock;
  ir::BlockId body = ir::kNoBlock;
  ir::BlockId exit = ir::kNoBlock;
};

inline CountedLoop begin_loop(ir::FunctionBuilder& b, ir::Reg count,
                              std::int64_t start = 0) {
  CountedLoop l;
  l.ivar = b.fresh();
  b.imm_to(l.ivar, start);
  l.head = b.new_block();
  l.body = b.new_block();
  l.exit = b.new_block();
  b.jump(l.head);
  b.switch_to(l.head);
  ir::Reg cond = b.cmp_lt(l.ivar, count);
  b.br(cond, l.body, l.exit);
  b.switch_to(l.body);
  return l;
}

inline void end_loop(ir::FunctionBuilder& b, const CountedLoop& l,
                     std::int64_t step = 1) {
  ir::Reg next = b.add_i(l.ivar, step);
  b.mov_to(l.ivar, next);
  b.jump(l.head);
  b.switch_to(l.exit);
}

/// Deterministic pseudo-random input data, one namespace per workload.
inline std::vector<std::int64_t> random_values(std::uint64_t seed,
                                               std::size_t n,
                                               std::int64_t lo,
                                               std::int64_t hi) {
  support::Rng rng(seed);
  std::vector<std::int64_t> out(n);
  for (auto& v : out) v = rng.next_in(lo, hi);
  return out;
}

/// 32-bit folding used by several checksums (keeps values small & stable).
inline std::int64_t fold32(std::int64_t x) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(x) &
                                   0x7fffffffULL);
}

}  // namespace ilc::wl
