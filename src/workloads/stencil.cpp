// stencil — 5-point Jacobi relaxation on a 2-D grid with ping-pong
// buffers: the regular HPC sweep where LICM/unrolling/prefetch matter.
#include "workloads/common.hpp"
#include "workloads/workloads.hpp"

namespace ilc::wl {

namespace {

constexpr int kW = 40;
constexpr int kH = 30;
constexpr int kIters = 4;

std::int64_t reference(const std::vector<std::int64_t>& init) {
  std::vector<std::int64_t> a = init, b(kW * kH, 0);
  for (int it = 0; it < kIters; ++it) {
    for (int y = 1; y < kH - 1; ++y)
      for (int x = 1; x < kW - 1; ++x) {
        const int i = y * kW + x;
        b[i] = (a[i] * 4 + a[i - 1] + a[i + 1] + a[i - kW] + a[i + kW]) >> 3;
      }
    std::swap(a, b);
  }
  std::int64_t sum = 0;
  for (int i = 0; i < kW * kH; ++i) sum = fold32(sum * 7 + a[i]);
  return sum;
}

}  // namespace

Workload make_stencil() {
  using namespace ir;
  Workload w;
  w.name = "stencil";
  Module& m = w.module;
  m.name = "stencil";

  const auto grid = random_values(0x57e4, kW * kH, 0, 4096);
  Global g0;
  g0.name = "gridA";
  g0.elem_width = 8;
  g0.count = kW * kH;
  g0.init = grid;
  const GlobalId ga = m.add_global(g0);
  Global g1;
  g1.name = "gridB";
  g1.elem_width = 8;
  g1.count = kW * kH;
  const GlobalId gb = m.add_global(g1);

  // sweep(src_sel): reads from the selected buffer, writes the other.
  FuncId f_sweep;
  {
    FunctionBuilder b(m, "sweep", 1);
    Reg sel = b.arg(0);
    Reg a0 = b.global_addr(ga);
    Reg b0 = b.global_addr(gb);
    // src = sel ? b0 : a0 ; dst = sel ? a0 : b0 (branchless select)
    Reg mask = b.neg(b.cmp_ne(sel, b.imm(0)));  // 0 or -1
    Reg src = b.or_(b.and_(mask, b0), b.and_(b.not_(mask), a0));
    Reg dst = b.or_(b.and_(mask, a0), b.and_(b.not_(mask), b0));

    Reg ylim = b.imm(kH - 1);
    CountedLoop ly = begin_loop(b, ylim, 1);
    {
      Reg rowoff = b.shl_i(b.mul_i(ly.ivar, kW), 3);
      Reg srow = b.add(src, rowoff);
      Reg drow = b.add(dst, rowoff);
      Reg xlim = b.imm(kW - 1);
      CountedLoop lx = begin_loop(b, xlim, 1);
      {
        Reg off = b.shl_i(lx.ivar, 3);
        Reg p = b.add(srow, off);
        Reg c = b.load(p, 0, MemWidth::W8);
        Reg l = b.load(p, -8, MemWidth::W8);
        Reg r = b.load(p, 8, MemWidth::W8);
        Reg up = b.load(p, -8 * kW, MemWidth::W8);
        Reg dn = b.load(p, 8 * kW, MemWidth::W8);
        Reg v = b.shr_i(
            b.add(b.add(b.add(b.mul_i(c, 4), l), b.add(r, up)), dn), 3);
        b.store(b.add(drow, off), 0, v, MemWidth::W8);
      }
      end_loop(b, lx);
    }
    end_loop(b, ly);
    b.ret();
    f_sweep = b.finish();
  }

  {
    FunctionBuilder b(m, "main", 0);
    Reg iters = b.imm(kIters);
    CountedLoop li = begin_loop(b, iters);
    {
      Reg sel = b.and_i(li.ivar, 1);
      b.call_void(f_sweep, {sel});
    }
    end_loop(b, li);
    // After kIters sweeps the latest data is in gridA iff kIters is even.
    Reg fin = b.global_addr(kIters % 2 == 0 ? ga : gb);
    Reg sum = b.fresh();
    b.imm_to(sum, 0);
    CountedLoop lf = begin_loop(b, b.imm(kW * kH));
    {
      Reg v = b.load(b.add(fin, b.shl_i(lf.ivar, 3)), 0, MemWidth::W8);
      b.mov_to(sum, b.and_i(b.add(b.mul_i(sum, 7), v), 0x7fffffff));
    }
    end_loop(b, lf);
    b.ret(sum);
    b.finish();
  }

  w.expected_checksum = reference(grid);
  return w;
}

}  // namespace ilc::wl
