// mcf_lite — the Fig. 3/4 memory-bound outlier, modeled on SPEC 181.mcf's
// network-simplex inner loops: a reduced-cost sweep over an arc array with
// random node accesses, followed by pointer chases along node chains with
// potential-update stores. Node and Arc are record types with pointer
// fields, so the 64→32-bit pointer-compression pass shrinks the working
// set — exactly the optimization the paper's counter model discovered.
#include "workloads/common.hpp"
#include "workloads/workloads.hpp"

#include <vector>

namespace ilc::wl {

namespace {

// Sized so the randomly-accessed node array exceeds the 32 KiB L2 under
// 64-bit pointers (1400 x 48 B = 67 KiB) and pointer compression recovers
// a large share of it (1400 x 32 B = 44.8 KiB): the Fig. 4 effect where
// the 64->32 conversion restores effective cache capacity, and the Fig. 3
// effect where blind potential stores miss all the way to memory.
constexpr int kNodes = 1400;
constexpr int kArcs = 2000;
constexpr int kChase = 2500;     // pointer-chase steps per sweep
constexpr int kSweeps = 3;       // outer iterations in main
constexpr int kArcChunk = 250;   // arcs per kernel item
constexpr int kKernelItems = kArcs / kArcChunk * kSweeps;
// Price updates: scattered *stores* to node potentials with no preceding
// load of the same line — the source of mcf's signature L2 store misses.
constexpr int kPriceUpdates = 2000;


struct GraphData {
  std::vector<std::int64_t> pot;       // node potential
  std::vector<std::int64_t> next;      // node -> node index (chase chain)
  std::vector<std::int64_t> parent;    // node -> node index
  std::vector<std::int64_t> val;       // node payload
  std::vector<std::int64_t> cost;      // arc cost
  std::vector<std::int64_t> tail;      // arc -> node index
  std::vector<std::int64_t> head;      // arc -> node index
};

GraphData graph_data() {
  support::Rng rng(0x3c0ffeeULL);
  GraphData g;
  g.pot = random_values(0x1111, kNodes, -5000, 5000);
  g.val = random_values(0x2222, kNodes, 0, 1 << 20);
  g.parent.resize(kNodes);
  g.next.resize(kNodes);
  for (int i = 0; i < kNodes; ++i)
    g.parent[i] = i == 0 ? 0 : rng.next_in(0, i - 1);
  // A single permutation cycle covering all nodes in scrambled order —
  // the classic cache-hostile chase.
  std::vector<std::int64_t> perm(kNodes);
  for (int i = 0; i < kNodes; ++i) perm[i] = i;
  rng.shuffle(perm);
  for (int i = 0; i < kNodes; ++i)
    g.next[perm[i]] = perm[(i + 1) % kNodes];
  g.cost = random_values(0x3333, kArcs, -4000, 4000);
  g.tail.resize(kArcs);
  g.head.resize(kArcs);
  for (int i = 0; i < kArcs; ++i) {
    g.tail[i] = rng.next_in(0, kNodes - 1);
    g.head[i] = rng.next_in(0, kNodes - 1);
  }
  return g;
}

/// Golden reference mirroring the IR program.
std::int64_t reference(std::int64_t* kernel_sum_out) {
  GraphData g = graph_data();
  std::vector<std::int64_t> flow(kArcs, 0);
  std::int64_t total = 0;
  std::int64_t kernel_sum = 0;

  auto sweep_chunk = [&](int lo, int hi) {
    std::int64_t acc = 0;
    for (int i = lo; i < hi; ++i) {
      const std::int64_t red =
          g.cost[i] + g.pot[g.tail[i]] - g.pot[g.head[i]];
      if (red < 0) {
        flow[i] += 1;
        acc = fold32(acc + (-red));
      }
    }
    return acc;
  };

  for (int s = 0; s < kSweeps; ++s) {
    for (int c = 0; c < kArcs / kArcChunk; ++c) {
      const std::int64_t part = sweep_chunk(c * kArcChunk, (c + 1) * kArcChunk);
      total = fold32(total + part);
      kernel_sum = fold32(kernel_sum + part);
    }
    // Scattered price updates: blind stores to node potentials.
    {
      std::int64_t idx = (s * 131) % kNodes;
      for (int k = 0; k < kPriceUpdates; ++k) {
        idx = (idx * 25173 + 13849) % kNodes;
        g.pot[idx] = fold32(idx * 7 + k + s);
      }
    }
    // Pointer chase with potential updates.
    std::int64_t node = 0;
    std::int64_t acc = 0;
    for (int k = 0; k < kChase; ++k) {
      acc = fold32(acc + g.pot[node]);
      g.pot[node] = fold32(g.pot[node] + (acc & 7) - 3);
      const std::int64_t par = g.parent[node];
      acc = fold32(acc + (g.val[par] & 255));
      node = g.next[node];
    }
    total = fold32(total + acc);
  }
  if (kernel_sum_out) *kernel_sum_out = kernel_sum;
  return total;
}

}  // namespace

Workload make_mcf_lite() {
  using namespace ir;
  Workload w;
  w.name = "mcf_lite";
  Module& m = w.module;
  m.name = "mcf_lite";

  // Record types. Pointer fields first after the 8-byte pot so both
  // layouts stay naturally aligned.
  RecordType node_t;
  node_t.name = "node";
  node_t.fields = {{"pot", FieldKind::I64},
                   {"parent", FieldKind::Ptr},
                   {"next", FieldKind::Ptr},
                   {"prev", FieldKind::Ptr},
                   {"sibling", FieldKind::Ptr},
                   {"val", FieldKind::I32}};
  const RecordId rec_node = m.add_record(node_t);
  constexpr FieldId kPot = 0, kParent = 1, kNext = 2, kVal = 5;

  RecordType arc_t;
  arc_t.name = "arc";
  arc_t.fields = {{"cost", FieldKind::I64},
                  {"tail", FieldKind::Ptr},
                  {"head", FieldKind::Ptr},
                  {"flow", FieldKind::I64}};
  const RecordId rec_arc = m.add_record(arc_t);
  constexpr FieldId kCost = 0, kTail = 1, kHead = 2, kFlow = 3;

  GraphData g = graph_data();

  Global g_nodes;
  g_nodes.name = "nodes";
  g_nodes.kind = GlobalKind::RecordArray;
  g_nodes.record = rec_node;
  g_nodes.count = kNodes;
  const GlobalId nodes = static_cast<GlobalId>(m.globals().size());
  g_nodes.field_init.resize(node_t.fields.size());
  g_nodes.field_init[kPot].values = g.pot;
  g_nodes.field_init[kParent] = {g.parent, nodes};
  g_nodes.field_init[kNext] = {g.next, nodes};
  // prev/sibling left null; they pad the record like mcf's full node does.
  g_nodes.field_init[kVal].values = g.val;
  m.add_global(g_nodes);

  Global g_arcs;
  g_arcs.name = "arcs";
  g_arcs.kind = GlobalKind::RecordArray;
  g_arcs.record = rec_arc;
  g_arcs.count = kArcs;
  g_arcs.field_init.resize(arc_t.fields.size());
  g_arcs.field_init[kCost].values = g.cost;
  g_arcs.field_init[kTail] = {g.tail, nodes};
  g_arcs.field_init[kHead] = {g.head, nodes};
  const GlobalId arcs = m.add_global(g_arcs);

  // --- sweep_chunk(c): reduced-cost scan of one arc chunk ------------
  FuncId f_chunk;
  {
    FunctionBuilder b(m, "sweep_chunk", 1);
    Reg c = b.arg(0);
    Reg acc = b.fresh();
    b.imm_to(acc, 0);
    Reg lo = b.mul_i(c, kArcChunk);
    Reg count = b.imm(kArcChunk);
    CountedLoop loop = begin_loop(b, count);
    {
      Reg idx = b.add(lo, loop.ivar);
      Reg arc = b.record_elem_addr(arcs, idx);
      Reg cost = b.load_field(arc, rec_arc, kCost);
      Reg tailp = b.load_field(arc, rec_arc, kTail);
      Reg headp = b.load_field(arc, rec_arc, kHead);
      Reg pot_t = b.load_field(tailp, rec_node, kPot);
      Reg pot_h = b.load_field(headp, rec_node, kPot);
      Reg red = b.sub(b.add(cost, pot_t), pot_h);
      BlockId then = b.new_block(), join = b.new_block();
      b.br(b.cmp_lt_i(red, 0), then, join);
      b.switch_to(then);
      Reg flow = b.load_field(arc, rec_arc, kFlow);
      b.store_field(arc, rec_arc, kFlow, b.add_i(flow, 1));
      b.mov_to(acc, b.and_i(b.add(acc, b.neg(red)), 0x7fffffff));
      b.jump(join);
      b.switch_to(join);
    }
    end_loop(b, loop);
    b.ret(acc);
    f_chunk = b.finish();
  }

  // --- price_update(sweep): blind scattered stores to node pots -------
  FuncId f_price;
  {
    FunctionBuilder b(m, "price_update", 1);
    Reg s = b.arg(0);
    Reg idx = b.fresh();
    b.mov_to(idx, b.rem(b.mul_i(s, 131), b.imm(kNodes)));
    Reg count = b.imm(kPriceUpdates);
    CountedLoop loop = begin_loop(b, count);
    {
      b.mov_to(idx,
               b.rem(b.add_i(b.mul_i(idx, 25173), 13849), b.imm(kNodes)));
      Reg node = b.record_elem_addr(nodes, idx);
      Reg value = b.and_i(
          b.add(b.add(b.mul_i(idx, 7), loop.ivar), s), 0x7fffffff);
      b.store_field(node, rec_node, kPot, value);
    }
    end_loop(b, loop);
    b.ret();
    f_price = b.finish();
  }

  // --- chase(): pointer walk with potential updates ------------------
  FuncId f_chase;
  {
    FunctionBuilder b(m, "chase", 0);
    Reg node = b.fresh();
    b.mov_to(node, b.global_addr(nodes));  // address of node 0
    Reg acc = b.fresh();
    b.imm_to(acc, 0);
    Reg count = b.imm(kChase);
    CountedLoop loop = begin_loop(b, count);
    {
      Reg pot = b.load_field(node, rec_node, kPot);
      b.mov_to(acc, b.and_i(b.add(acc, pot), 0x7fffffff));
      Reg delta = b.sub_i(b.and_i(acc, 7), 3);
      b.store_field(node, rec_node, kPot,
                    b.and_i(b.add(pot, delta), 0x7fffffff));
      Reg par = b.load_field(node, rec_node, kParent);
      Reg val = b.load_field(par, rec_node, kVal);
      b.mov_to(acc, b.and_i(b.add(acc, b.and_i(val, 255)), 0x7fffffff));
      b.mov_to(node, b.load_field(node, rec_node, kNext));
    }
    end_loop(b, loop);
    b.ret(acc);
    f_chase = b.finish();
  }

  // --- main() ---------------------------------------------------------
  {
    FunctionBuilder b(m, "main", 0);
    Reg total = b.fresh();
    b.imm_to(total, 0);
    Reg sweeps = b.imm(kSweeps);
    CountedLoop outer = begin_loop(b, sweeps);
    {
      Reg chunks = b.imm(kArcs / kArcChunk);
      CountedLoop inner = begin_loop(b, chunks);
      {
        Reg part = b.call(f_chunk, {inner.ivar});
        b.mov_to(total, b.and_i(b.add(total, part), 0x7fffffff));
      }
      end_loop(b, inner);
      b.call_void(f_price, {outer.ivar});
      Reg acc = b.call(f_chase, {});
      b.mov_to(total, b.and_i(b.add(total, acc), 0x7fffffff));
    }
    end_loop(b, outer);
    b.ret(total);
    b.finish();
  }

  // --- kernel(i): one arc chunk (wraps around per sweep) --------------
  {
    FunctionBuilder b(m, "kernel", 1);
    Reg i = b.arg(0);
    Reg c = b.rem(i, b.imm(kArcs / kArcChunk));
    Reg part = b.call(f_chunk, {c});
    b.ret(part);
    b.finish();
  }

  std::int64_t kernel_sum = 0;
  w.expected_checksum = reference(&kernel_sum);
  w.kernel = "kernel";
  w.kernel_items = kKernelItems;
  // NOTE: the kernel path omits the chase, and flow mutations make chunks
  // non-idempotent; the reference computes the matching fold.
  w.kernel_checksum = 0;  // patched below
  {
    // Replicate the kernel-only execution: two full passes of chunk
    // sweeps without chases.
    GraphData gd = graph_data();
    std::vector<std::int64_t> flow(kArcs, 0);
    std::int64_t sum = 0;
    for (int item = 0; item < kKernelItems; ++item) {
      const int c = item % (kArcs / kArcChunk);
      std::int64_t acc = 0;
      for (int a = c * kArcChunk; a < (c + 1) * kArcChunk; ++a) {
        const std::int64_t red =
            gd.cost[a] + gd.pot[gd.tail[a]] - gd.pot[gd.head[a]];
        if (red < 0) {
          flow[a] += 1;
          acc = fold32(acc + (-red));
        }
      }
      sum = fold32(sum + acc);
    }
    w.kernel_checksum = sum;
  }
  return w;
}

}  // namespace ilc::wl
