#include "ir/instruction.hpp"

#include "support/assert.hpp"

namespace ilc::ir {

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::Nop: return "nop";
    case Opcode::Mov: return "mov";
    case Opcode::LoadImm: return "imm";
    case Opcode::Add: return "add";
    case Opcode::Sub: return "sub";
    case Opcode::Mul: return "mul";
    case Opcode::Div: return "div";
    case Opcode::Rem: return "rem";
    case Opcode::And: return "and";
    case Opcode::Or: return "or";
    case Opcode::Xor: return "xor";
    case Opcode::Shl: return "shl";
    case Opcode::Shr: return "shr";
    case Opcode::Min: return "min";
    case Opcode::Max: return "max";
    case Opcode::Neg: return "neg";
    case Opcode::Not: return "not";
    case Opcode::CmpEq: return "cmpeq";
    case Opcode::CmpNe: return "cmpne";
    case Opcode::CmpLt: return "cmplt";
    case Opcode::CmpLe: return "cmple";
    case Opcode::CmpGt: return "cmpgt";
    case Opcode::CmpGe: return "cmpge";
    case Opcode::GlobalAddr: return "gaddr";
    case Opcode::FrameAddr: return "faddr";
    case Opcode::Load: return "load";
    case Opcode::Store: return "store";
    case Opcode::Prefetch: return "prefetch";
    case Opcode::Jump: return "jump";
    case Opcode::Br: return "br";
    case Opcode::Ret: return "ret";
    case Opcode::Call: return "call";
  }
  return "?";
}

unsigned field_kind_bytes(FieldKind kind, unsigned ptr_bytes) {
  switch (kind) {
    case FieldKind::I8: return 1;
    case FieldKind::I16: return 2;
    case FieldKind::I32: return 4;
    case FieldKind::I64: return 8;
    case FieldKind::Ptr: return ptr_bytes;
  }
  return 8;
}

const char* field_kind_name(FieldKind kind) {
  switch (kind) {
    case FieldKind::I8: return "i8";
    case FieldKind::I16: return "i16";
    case FieldKind::I32: return "i32";
    case FieldKind::I64: return "i64";
    case FieldKind::Ptr: return "ptr";
  }
  return "?";
}

RecordLayout layout_record(const RecordType& type, unsigned ptr_bytes) {
  ILC_CHECK(ptr_bytes == 4 || ptr_bytes == 8);
  RecordLayout lay;
  std::uint32_t offset = 0;
  std::uint32_t max_align = 1;
  for (const RecordField& f : type.fields) {
    const std::uint32_t bytes = field_kind_bytes(f.kind, ptr_bytes);
    const std::uint32_t align = bytes;  // natural alignment
    offset = (offset + align - 1) / align * align;
    lay.offsets.push_back(offset);
    lay.widths.push_back(static_cast<std::uint8_t>(bytes));
    offset += bytes;
    max_align = std::max(max_align, align);
  }
  lay.stride = (offset + max_align - 1) / max_align * max_align;
  if (lay.stride == 0) lay.stride = 1;
  return lay;
}

bool is_terminator(const Instr& inst) {
  return inst.op == Opcode::Jump || inst.op == Opcode::Br ||
         inst.op == Opcode::Ret;
}

bool has_dst(const Instr& inst) {
  switch (inst.op) {
    case Opcode::Store:
    case Opcode::Prefetch:
    case Opcode::Jump:
    case Opcode::Br:
    case Opcode::Ret:
    case Opcode::Nop:
      return false;
    case Opcode::Call:
      return inst.dst != kNoReg;
    default:
      return true;
  }
}

unsigned num_srcs(const Instr& inst) {
  switch (inst.op) {
    case Opcode::Nop:
    case Opcode::LoadImm:
    case Opcode::GlobalAddr:
    case Opcode::FrameAddr:
    case Opcode::Jump:
      return 0;
    case Opcode::Mov:
    case Opcode::Neg:
    case Opcode::Not:
    case Opcode::Load:
    case Opcode::Prefetch:
    case Opcode::Br:
      return 1;
    case Opcode::Ret:
      return inst.a == kNoReg ? 0 : 1;
    case Opcode::Call:
      return 0;  // call args handled separately
    default:
      return 2;
  }
}

std::array<Reg, 2> srcs(const Instr& inst) {
  std::array<Reg, 2> out{kNoReg, kNoReg};
  const unsigned n = num_srcs(inst);
  if (n >= 1) out[0] = inst.a;
  if (n >= 2) out[1] = inst.b;
  // Store reads both its address (a) and value (b) registers.
  if (inst.op == Opcode::Store) {
    out[0] = inst.a;
    out[1] = inst.b;
  }
  return out;
}

void append_uses(const Instr& inst, std::array<Reg, 2 + kMaxCallArgs>& out,
                 unsigned& n) {
  n = 0;
  if (inst.op == Opcode::Store) {
    out[n++] = inst.a;
    out[n++] = inst.b;
    return;
  }
  const unsigned k = num_srcs(inst);
  if (k >= 1 && inst.a != kNoReg) out[n++] = inst.a;
  if (k >= 2 && inst.b != kNoReg) out[n++] = inst.b;
  if (inst.op == Opcode::Call) {
    for (unsigned i = 0; i < inst.nargs; ++i) out[n++] = inst.args[i];
  }
}

bool is_pure(const Instr& inst) {
  switch (inst.op) {
    case Opcode::Mov:
    case Opcode::LoadImm:
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::Min:
    case Opcode::Max:
    case Opcode::Neg:
    case Opcode::Not:
    case Opcode::CmpEq:
    case Opcode::CmpNe:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe:
    case Opcode::GlobalAddr:
    case Opcode::FrameAddr:
      return true;
    default:
      return false;
  }
}

bool reads_memory(const Instr& inst) { return inst.op == Opcode::Load; }

bool writes_memory(const Instr& inst) { return inst.op == Opcode::Store; }

bool is_commutative(Opcode op) {
  switch (op) {
    case Opcode::Add:
    case Opcode::Mul:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Min:
    case Opcode::Max:
    case Opcode::CmpEq:
    case Opcode::CmpNe:
      return true;
    default:
      return false;
  }
}

bool fold_constant(Opcode op, std::int64_t a, std::int64_t b,
                   std::int64_t& out) {
  const auto ua = static_cast<std::uint64_t>(a);
  const auto ub = static_cast<std::uint64_t>(b);
  switch (op) {
    case Opcode::Mov: out = a; return true;
    case Opcode::Add: out = static_cast<std::int64_t>(ua + ub); return true;
    case Opcode::Sub: out = static_cast<std::int64_t>(ua - ub); return true;
    case Opcode::Mul: out = static_cast<std::int64_t>(ua * ub); return true;
    case Opcode::Div:
      if (b == 0) { out = 0; return true; }
      if (a == INT64_MIN && b == -1) { out = INT64_MIN; return true; }
      out = a / b;
      return true;
    case Opcode::Rem:
      if (b == 0) { out = a; return true; }
      if (a == INT64_MIN && b == -1) { out = 0; return true; }
      out = a % b;
      return true;
    case Opcode::And: out = a & b; return true;
    case Opcode::Or: out = a | b; return true;
    case Opcode::Xor: out = a ^ b; return true;
    case Opcode::Shl: out = static_cast<std::int64_t>(ua << (ub & 63)); return true;
    case Opcode::Shr: out = a >> (ub & 63); return true;  // arithmetic
    case Opcode::Min: out = a < b ? a : b; return true;
    case Opcode::Max: out = a > b ? a : b; return true;
    case Opcode::Neg: out = static_cast<std::int64_t>(0 - ua); return true;
    case Opcode::Not: out = ~a; return true;
    case Opcode::CmpEq: out = a == b; return true;
    case Opcode::CmpNe: out = a != b; return true;
    case Opcode::CmpLt: out = a < b; return true;
    case Opcode::CmpLe: out = a <= b; return true;
    case Opcode::CmpGt: out = a > b; return true;
    case Opcode::CmpGe: out = a >= b; return true;
    default:
      return false;
  }
}

}  // namespace ilc::ir
