// CFG analyses shared by the optimizer: predecessors/successors, reverse
// post-order, dominators (Cooper–Harvey–Kennedy), natural loops, and
// register liveness. All results are plain value types recomputed on
// demand — passes mutate the IR, so nothing here is cached across passes.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/function.hpp"

namespace ilc::ir {

/// Dynamic bitset over virtual registers.
class RegSet {
 public:
  explicit RegSet(unsigned num_regs = 0) : bits_((num_regs + 63) / 64, 0) {}

  void insert(Reg r) { bits_[r >> 6] |= 1ULL << (r & 63); }
  void erase(Reg r) { bits_[r >> 6] &= ~(1ULL << (r & 63)); }
  bool contains(Reg r) const { return (bits_[r >> 6] >> (r & 63)) & 1; }

  /// this |= other; returns true if this changed.
  bool merge(const RegSet& other);
  bool operator==(const RegSet&) const = default;

  std::size_t count() const;

 private:
  std::vector<std::uint64_t> bits_;
};

/// Predecessor/successor lists per block.
struct Cfg {
  std::vector<std::vector<BlockId>> succs;
  std::vector<std::vector<BlockId>> preds;

  explicit Cfg(const Function& fn);
};

/// Blocks reachable from entry, in reverse post-order (entry first).
std::vector<BlockId> reverse_post_order(const Function& fn);

/// Immediate dominators for reachable blocks; idom[entry] == entry,
/// idom[b] == kNoBlock for unreachable b.
std::vector<BlockId> immediate_dominators(const Function& fn, const Cfg& cfg);

/// True if a dominates b (reflexive) given an idom array.
bool dominates(const std::vector<BlockId>& idom, BlockId a, BlockId b);

/// A natural loop discovered from a back edge latch->header.
struct Loop {
  BlockId header = kNoBlock;
  std::vector<BlockId> latches;      // sources of back edges to header
  std::vector<BlockId> blocks;       // body incl. header, sorted
  bool contains(BlockId b) const;
};

/// All natural loops (back edges whose header dominates the latch).
/// Loops sharing a header are merged. Sorted by header id.
std::vector<Loop> find_loops(const Function& fn);

/// Per-block liveness (backward dataflow). live_in[b] = registers live at
/// block entry; live_out[b] at block exit.
struct Liveness {
  std::vector<RegSet> live_in;
  std::vector<RegSet> live_out;
};

Liveness compute_liveness(const Function& fn, const Cfg& cfg);

/// Estimated execution frequency per block: 10^loop_depth, used by
/// heuristics (inlining, scheduling priorities, feature extraction).
std::vector<double> block_frequencies(const Function& fn);

}  // namespace ilc::ir
