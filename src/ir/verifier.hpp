// Structural well-formedness checks. Run after construction and after
// every optimization pass in testing; the property "verify(optimized)
// holds for every pass × workload" is one of the core test suites.
#pragma once

#include <string>

#include "ir/module.hpp"

namespace ilc::ir {

/// Returns an empty string if well-formed, else a diagnostic message.
std::string verify(const Function& fn, const Module& mod);
std::string verify(const Module& mod);

/// Throws support::CheckError on failure.
void verify_or_throw(const Module& mod);

}  // namespace ilc::ir
