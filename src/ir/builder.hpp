// FunctionBuilder — the ergonomic construction API the workload suite and
// the tests use to write IR programs. Maintains a current-block cursor;
// every emit_* helper appends to it. Record-field accesses are emitted with
// tagged immediates so layout-changing passes stay sound.
#pragma once

#include <initializer_list>
#include <string>

#include "ir/module.hpp"

namespace ilc::ir {

class FunctionBuilder {
 public:
  /// Starts a function with `num_args` arguments (in r0..r(num_args-1)).
  /// Block 0 (the entry) is created and selected.
  FunctionBuilder(Module& mod, std::string name, unsigned num_args,
                  unsigned frame_size = 0);

  Module& module() { return mod_; }

  // --- blocks ---------------------------------------------------------
  BlockId new_block();
  void switch_to(BlockId block);
  BlockId current() const { return cur_; }

  // --- registers / constants ------------------------------------------
  Reg arg(unsigned i) const;
  Reg fresh() { return fn_.new_reg(); }
  Reg imm(std::int64_t value);
  /// Stride of `rec` as a tagged immediate (survives re-layout).
  Reg imm_record_stride(RecordId rec);
  /// Module pointer width as a tagged immediate.
  Reg imm_ptr_width();

  // --- arithmetic -------------------------------------------------------
  Reg binop(Opcode op, Reg lhs, Reg rhs);
  Reg add(Reg a, Reg b) { return binop(Opcode::Add, a, b); }
  Reg sub(Reg a, Reg b) { return binop(Opcode::Sub, a, b); }
  Reg mul(Reg a, Reg b) { return binop(Opcode::Mul, a, b); }
  Reg div(Reg a, Reg b) { return binop(Opcode::Div, a, b); }
  Reg rem(Reg a, Reg b) { return binop(Opcode::Rem, a, b); }
  Reg and_(Reg a, Reg b) { return binop(Opcode::And, a, b); }
  Reg or_(Reg a, Reg b) { return binop(Opcode::Or, a, b); }
  Reg xor_(Reg a, Reg b) { return binop(Opcode::Xor, a, b); }
  Reg shl(Reg a, Reg b) { return binop(Opcode::Shl, a, b); }
  Reg shr(Reg a, Reg b) { return binop(Opcode::Shr, a, b); }
  Reg min(Reg a, Reg b) { return binop(Opcode::Min, a, b); }
  Reg max(Reg a, Reg b) { return binop(Opcode::Max, a, b); }
  Reg unop(Opcode op, Reg a);
  Reg neg(Reg a) { return unop(Opcode::Neg, a); }
  Reg not_(Reg a) { return unop(Opcode::Not, a); }
  Reg mov(Reg a) { return unop(Opcode::Mov, a); }
  /// Copy into a specific destination register.
  void mov_to(Reg dst, Reg src);
  void imm_to(Reg dst, std::int64_t value);

  Reg cmp_eq(Reg a, Reg b) { return binop(Opcode::CmpEq, a, b); }
  Reg cmp_ne(Reg a, Reg b) { return binop(Opcode::CmpNe, a, b); }
  Reg cmp_lt(Reg a, Reg b) { return binop(Opcode::CmpLt, a, b); }
  Reg cmp_le(Reg a, Reg b) { return binop(Opcode::CmpLe, a, b); }
  Reg cmp_gt(Reg a, Reg b) { return binop(Opcode::CmpGt, a, b); }
  Reg cmp_ge(Reg a, Reg b) { return binop(Opcode::CmpGe, a, b); }

  // Convenience immediate-operand forms (emit a LoadImm then the op).
  Reg add_i(Reg a, std::int64_t v) { return add(a, imm(v)); }
  Reg sub_i(Reg a, std::int64_t v) { return sub(a, imm(v)); }
  Reg mul_i(Reg a, std::int64_t v) { return mul(a, imm(v)); }
  Reg and_i(Reg a, std::int64_t v) { return and_(a, imm(v)); }
  Reg shl_i(Reg a, std::int64_t v) { return shl(a, imm(v)); }
  Reg shr_i(Reg a, std::int64_t v) { return shr(a, imm(v)); }
  Reg cmp_lt_i(Reg a, std::int64_t v) { return cmp_lt(a, imm(v)); }

  // --- addressing / memory ---------------------------------------------
  Reg global_addr(GlobalId gid);
  Reg frame_addr(std::int64_t offset);
  Reg load(Reg addr, std::int64_t offset, MemWidth width,
           bool is_ptr = false);
  void store(Reg addr, std::int64_t offset, Reg value, MemWidth width,
             bool is_ptr = false);
  void prefetch(Reg addr, std::int64_t offset);

  /// Address of element `index` (register) of record-array global `gid`:
  /// base + index * stride, with the stride emitted as a tagged immediate.
  Reg record_elem_addr(GlobalId gid, Reg index);

  /// Load/store field `field` of the record at `rec_addr`. Width, offset
  /// and pointer-ness come from the record layout; the offset immediate is
  /// tagged for re-layout.
  Reg load_field(Reg rec_addr, RecordId rec, FieldId field);
  void store_field(Reg rec_addr, RecordId rec, FieldId field, Reg value);

  // --- calls / control ---------------------------------------------------
  Reg call(FuncId callee, std::initializer_list<Reg> args);
  void call_void(FuncId callee, std::initializer_list<Reg> args);
  void jump(BlockId target);
  void br(Reg cond, BlockId if_true, BlockId if_false);
  void ret(Reg value = kNoReg);

  /// Finish: installs the function into the module and returns its id.
  /// The builder must not be used afterwards.
  FuncId finish();

 private:
  Instr& emit(Instr inst);

  Module& mod_;
  Function fn_;
  BlockId cur_ = 0;
  bool finished_ = false;
};

}  // namespace ilc::ir
