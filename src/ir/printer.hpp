// Textual rendering of IR for debugging, golden tests, and KB provenance.
#pragma once

#include <string>

#include "ir/module.hpp"

namespace ilc::ir {

std::string to_string(const Instr& inst);
std::string to_string(const Function& fn);
std::string to_string(const Module& mod);

}  // namespace ilc::ir
