#include "ir/module.hpp"

#include <cstring>

#include "support/assert.hpp"

namespace ilc::ir {

FuncId Module::add_function(Function fn) {
  funcs_.push_back(std::move(fn));
  return static_cast<FuncId>(funcs_.size() - 1);
}

RecordId Module::add_record(RecordType rec) {
  ILC_CHECK(!rec.fields.empty());
  records_.push_back(std::move(rec));
  return static_cast<RecordId>(records_.size() - 1);
}

GlobalId Module::add_global(Global g) {
  ILC_CHECK(g.count > 0);
  if (g.kind == GlobalKind::RawArray) {
    ILC_CHECK(g.elem_width == 1 || g.elem_width == 2 || g.elem_width == 4 ||
              g.elem_width == 8);
    ILC_CHECK(g.init.empty() || g.init.size() <= g.count);
  } else {
    ILC_CHECK(g.record != kNoRecord);
    ILC_CHECK(g.record < records_.size());
    ILC_CHECK(g.field_init.empty() ||
              g.field_init.size() == records_[g.record].fields.size());
  }
  globals_.push_back(std::move(g));
  return static_cast<GlobalId>(globals_.size() - 1);
}

Function& Module::function(FuncId id) {
  ILC_CHECK(id < funcs_.size());
  return funcs_[id];
}

const Function& Module::function(FuncId id) const {
  ILC_CHECK(id < funcs_.size());
  return funcs_[id];
}

FuncId Module::find_function(const std::string& fn_name) const {
  for (std::size_t i = 0; i < funcs_.size(); ++i)
    if (funcs_[i].name == fn_name) return static_cast<FuncId>(i);
  return kNoFunc;
}

const RecordType& Module::record(RecordId id) const {
  ILC_CHECK(id < records_.size());
  return records_[id];
}

Global& Module::global(GlobalId id) {
  ILC_CHECK(id < globals_.size());
  return globals_[id];
}

const Global& Module::global(GlobalId id) const {
  ILC_CHECK(id < globals_.size());
  return globals_[id];
}

GlobalId Module::find_global(const std::string& g_name) const {
  for (std::size_t i = 0; i < globals_.size(); ++i)
    if (globals_[i].name == g_name) return static_cast<GlobalId>(i);
  return kNoGlobal;
}

void Module::set_ptr_bytes(unsigned bytes) {
  ILC_CHECK(bytes == 4 || bytes == 8);
  ptr_bytes_ = bytes;
}

RecordLayout Module::record_layout(RecordId rec) const {
  return layout_record(record(rec), ptr_bytes_);
}

std::uint64_t Module::global_stride(GlobalId id) const {
  const Global& g = global(id);
  if (g.kind == GlobalKind::RawArray) {
    return g.elem_is_ptr ? ptr_bytes_ : g.elem_width;
  }
  return record_layout(g.record).stride;
}

std::uint64_t Module::global_bytes(GlobalId id) const {
  return global_stride(id) * global(id).count;
}

namespace {

void store_le(ZeroedBuffer& mem, std::uint64_t addr,
              std::uint64_t value, unsigned bytes) {
  ILC_CHECK(addr + bytes <= mem.size());
  for (unsigned i = 0; i < bytes; ++i)
    mem[addr + i] = static_cast<std::uint8_t>(value >> (8 * i));
}

}  // namespace

MemoryImage Module::build_image(std::uint64_t stack_size) const {
  MemoryImage img;
  img.ptr_bytes = ptr_bytes_;

  // Assign addresses: null guard, then each global aligned to 64 bytes.
  std::uint64_t addr = MemoryImage::kNullGuard;
  img.global_base.resize(globals_.size());
  for (std::size_t i = 0; i < globals_.size(); ++i) {
    addr = (addr + 63) / 64 * 64;
    img.global_base[i] = addr;
    addr += global_bytes(static_cast<GlobalId>(i));
  }
  addr = (addr + 63) / 64 * 64;
  img.stack_base = addr;
  img.stack_size = stack_size;
  addr += stack_size;
  img.bytes.reset(addr);

  auto resolve_ptr = [&](GlobalId target, std::int64_t index) -> std::uint64_t {
    if (index < 0) return 0;  // null
    ILC_CHECK_MSG(target != kNoGlobal, "pointer init without ptr_target");
    const std::uint64_t stride = global_stride(target);
    const std::uint64_t a =
        img.global_base[target] + static_cast<std::uint64_t>(index) * stride;
    ILC_CHECK(a < img.bytes.size());
    return a;
  };

  // Serialize initial data.
  for (std::size_t gi = 0; gi < globals_.size(); ++gi) {
    const Global& g = globals_[gi];
    const std::uint64_t base = img.global_base[gi];
    if (g.kind == GlobalKind::RawArray) {
      const unsigned bytes = g.elem_is_ptr ? ptr_bytes_ : g.elem_width;
      for (std::size_t e = 0; e < g.init.size(); ++e) {
        std::uint64_t v = static_cast<std::uint64_t>(g.init[e]);
        if (g.elem_is_ptr) v = resolve_ptr(g.ptr_target, g.init[e]);
        store_le(img.bytes, base + e * bytes, v, bytes);
      }
    } else {
      const RecordLayout lay = record_layout(g.record);
      const RecordType& rec = records_[g.record];
      if (g.field_init.empty()) continue;
      for (std::size_t f = 0; f < rec.fields.size(); ++f) {
        const FieldInit& fi = g.field_init[f];
        const bool is_ptr = rec.fields[f].kind == FieldKind::Ptr;
        for (std::size_t e = 0; e < fi.values.size(); ++e) {
          ILC_CHECK(e < g.count);
          std::uint64_t v = static_cast<std::uint64_t>(fi.values[e]);
          if (is_ptr) v = resolve_ptr(fi.ptr_target, fi.values[e]);
          store_le(img.bytes, base + e * lay.stride + lay.offsets[f], v,
                   lay.widths[f]);
        }
      }
    }
  }
  return img;
}

std::size_t Module::code_size() const {
  std::size_t n = 0;
  for (const auto& f : funcs_) n += f.size();
  return n;
}

}  // namespace ilc::ir
