#include "ir/parser.hpp"

#include <cctype>
#include <cstdlib>

#include "support/assert.hpp"
#include "support/string_utils.hpp"

namespace ilc::ir {

namespace {

using support::split;
using support::split_ws;
using support::starts_with;
using support::trim;

/// Cursor over one line with line-numbered error reporting.
class LineParser {
 public:
  LineParser(const std::string& line, std::size_t line_no)
      : s_(line), line_no_(line_no) {}

  [[noreturn]] void fail(const std::string& msg) const {
    ILC_CHECK_MSG(false, "IR parse error at line " << line_no_ << ": " << msg
                                                   << " in '" << s_ << "'");
    std::abort();  // unreachable
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  bool eat(const std::string& token) {
    skip_ws();
    if (s_.compare(pos_, token.size(), token) == 0) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  void expect(const std::string& token) {
    if (!eat(token)) fail("expected '" + token + "'");
  }

  bool at_end() {
    skip_ws();
    return pos_ >= s_.size();
  }

  std::int64_t integer() {
    skip_ws();
    std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
    if (pos_ == start) fail("expected integer");
    return std::strtoll(s_.substr(start, pos_ - start).c_str(), nullptr, 10);
  }

  std::string word() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '_' || s_[pos_] == '.'))
      ++pos_;
    if (pos_ == start) fail("expected identifier");
    return s_.substr(start, pos_ - start);
  }

  /// Register name: rN or _ (no register).
  Reg reg() {
    skip_ws();
    if (eat("_")) return kNoReg;
    expect("r");
    return static_cast<Reg>(integer());
  }

  BlockId block() {
    expect("bb");
    return static_cast<BlockId>(integer());
  }

 private:
  std::string s_;
  std::size_t pos_ = 0;
  std::size_t line_no_;
};

FieldKind field_kind_from(const std::string& name, LineParser& lp) {
  if (name == "i8") return FieldKind::I8;
  if (name == "i16") return FieldKind::I16;
  if (name == "i32") return FieldKind::I32;
  if (name == "i64") return FieldKind::I64;
  if (name == "ptr") return FieldKind::Ptr;
  lp.fail("unknown field kind '" + name + "'");
}

/// Parse the optional "!field(recN.M)" / "!stride(recN)" / "!ptrwidth"
/// annotation into the instruction.
void parse_annotation(LineParser& lp, Instr& inst) {
  if (lp.eat("!field(rec")) {
    inst.tag = ImmTag::FieldOffset;
    inst.rec = static_cast<RecordId>(lp.integer());
    lp.expect(".");
    inst.field = static_cast<FieldId>(lp.integer());
    lp.expect(")");
  } else if (lp.eat("!stride(rec")) {
    inst.tag = ImmTag::RecordStride;
    inst.rec = static_cast<RecordId>(lp.integer());
    lp.expect(")");
  } else if (lp.eat("!ptrwidth")) {
    inst.tag = ImmTag::PtrWidth;
  }
}

MemWidth parse_width(std::int64_t bytes, LineParser& lp) {
  switch (bytes) {
    case 1: return MemWidth::W1;
    case 2: return MemWidth::W2;
    case 4: return MemWidth::W4;
    case 8: return MemWidth::W8;
    default: lp.fail("bad access width");
  }
}

Opcode binop_from_name(const std::string& name, bool& found) {
  found = true;
  for (Opcode op : {Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::Div,
                    Opcode::Rem, Opcode::And, Opcode::Or, Opcode::Xor,
                    Opcode::Shl, Opcode::Shr, Opcode::Min, Opcode::Max,
                    Opcode::CmpEq, Opcode::CmpNe, Opcode::CmpLt,
                    Opcode::CmpLe, Opcode::CmpGt, Opcode::CmpGe}) {
    if (name == opcode_name(op)) return op;
  }
  found = false;
  return Opcode::Nop;
}

Instr parse_instr(const std::string& line, std::size_t line_no) {
  LineParser lp(line, line_no);
  Instr inst;

  if (lp.eat("nop")) {
    inst.op = Opcode::Nop;
    return inst;
  }
  if (lp.eat("jump ")) {
    inst.op = Opcode::Jump;
    inst.t1 = lp.block();
    return inst;
  }
  if (lp.eat("br ")) {
    inst.op = Opcode::Br;
    inst.a = lp.reg();
    lp.expect(",");
    inst.t1 = lp.block();
    lp.expect(",");
    inst.t2 = lp.block();
    return inst;
  }
  if (lp.eat("ret")) {
    inst.op = Opcode::Ret;
    inst.a = lp.at_end() ? kNoReg : lp.reg();
    return inst;
  }
  if (lp.eat("prefetch ")) {
    inst.op = Opcode::Prefetch;
    lp.expect("[");
    inst.a = lp.reg();
    lp.expect("+");
    inst.imm = lp.integer();
    lp.expect("]");
    return inst;
  }
  if (lp.eat("store.")) {
    inst.op = Opcode::Store;
    inst.width = parse_width(lp.integer(), lp);
    if (lp.eat("p")) inst.is_ptr = true;
    lp.expect("[");
    inst.a = lp.reg();
    lp.expect("+");
    inst.imm = lp.integer();
    lp.expect("]");
    lp.expect(",");
    inst.b = lp.reg();
    parse_annotation(lp, inst);
    return inst;
  }
  if (lp.eat("call ")) {  // void call
    inst.op = Opcode::Call;
    inst.dst = kNoReg;
    lp.expect("@");
    inst.callee = static_cast<FuncId>(lp.integer());
    lp.expect("(");
    while (!lp.eat(")")) {
      if (inst.nargs > 0) lp.expect(",");
      ILC_CHECK(inst.nargs < kMaxCallArgs);
      inst.args[inst.nargs++] = lp.reg();
    }
    return inst;
  }

  // Everything else defines a register: "rN = ...".
  inst.dst = lp.reg();
  lp.expect("=");

  if (lp.eat("imm ")) {
    inst.op = Opcode::LoadImm;
    inst.imm = lp.integer();
    parse_annotation(lp, inst);
    return inst;
  }
  if (lp.eat("gaddr ")) {
    inst.op = Opcode::GlobalAddr;
    lp.expect("@");
    inst.gid = static_cast<GlobalId>(lp.integer());
    return inst;
  }
  if (lp.eat("faddr ")) {
    inst.op = Opcode::FrameAddr;
    lp.expect("+");
    inst.imm = lp.integer();
    return inst;
  }
  if (lp.eat("load.")) {
    inst.op = Opcode::Load;
    inst.width = parse_width(lp.integer(), lp);
    if (lp.eat("p")) inst.is_ptr = true;
    lp.expect("[");
    inst.a = lp.reg();
    lp.expect("+");
    inst.imm = lp.integer();
    lp.expect("]");
    parse_annotation(lp, inst);
    return inst;
  }
  if (lp.eat("call ")) {
    inst.op = Opcode::Call;
    lp.expect("@");
    inst.callee = static_cast<FuncId>(lp.integer());
    lp.expect("(");
    while (!lp.eat(")")) {
      if (inst.nargs > 0) lp.expect(",");
      ILC_CHECK(inst.nargs < kMaxCallArgs);
      inst.args[inst.nargs++] = lp.reg();
    }
    return inst;
  }

  const std::string op_name = lp.word();
  if (op_name == "mov" || op_name == "neg" || op_name == "not") {
    inst.op = op_name == "mov" ? Opcode::Mov
                               : (op_name == "neg" ? Opcode::Neg : Opcode::Not);
    inst.a = lp.reg();
    return inst;
  }
  bool found = false;
  inst.op = binop_from_name(op_name, found);
  if (!found) lp.fail("unknown opcode '" + op_name + "'");
  inst.a = lp.reg();
  lp.expect(",");
  inst.b = lp.reg();
  return inst;
}

}  // namespace

Module parse_module(const std::string& text) {
  Module mod;
  Function* fn = nullptr;
  BasicBlock* bb = nullptr;

  const auto lines = split(text, '\n');
  for (std::size_t ln = 0; ln < lines.size(); ++ln) {
    const std::string line = trim(lines[ln]);
    const std::size_t line_no = ln + 1;
    if (line.empty()) continue;
    LineParser lp(line, line_no);

    if (starts_with(line, "module ")) {
      lp.expect("module");
      // The name may be empty (anonymous modules print "module  ptr=N").
      if (!lp.eat("ptr=")) {
        mod.name = lp.word();
        lp.expect("ptr=");
      }
      mod.set_ptr_bytes(static_cast<unsigned>(lp.integer()));
      continue;
    }
    if (starts_with(line, "record ")) {
      lp.expect("record");
      lp.expect("rec");
      lp.integer();  // id: sequential, implied
      RecordType rec;
      rec.name = lp.word();
      lp.expect("{");
      while (!lp.eat("}")) {
        if (!rec.fields.empty()) lp.expect(",");
        RecordField field;
        field.name = lp.word();
        lp.expect(":");
        field.kind = field_kind_from(lp.word(), lp);
        rec.fields.push_back(std::move(field));
      }
      mod.add_record(std::move(rec));
      continue;
    }
    if (starts_with(line, "global ")) {
      lp.expect("global");
      lp.expect("@");
      lp.integer();  // id: sequential, implied
      Global g;
      g.name = lp.word();
      lp.expect("count=");
      g.count = static_cast<std::uint64_t>(lp.integer());
      if (lp.eat("record=rec")) {
        g.kind = GlobalKind::RecordArray;
        g.record = static_cast<RecordId>(lp.integer());
      } else {
        lp.expect("width=");
        const std::int64_t width = lp.integer();
        if (lp.eat("ptr")) {
          g.elem_is_ptr = true;
        } else {
          g.elem_width = static_cast<std::uint8_t>(width);
        }
      }
      mod.add_global(std::move(g));
      continue;
    }
    if (starts_with(line, "func ")) {
      lp.expect("func");
      lp.expect("@");
      Function f;
      f.name = lp.word();
      lp.expect("(");
      f.num_args = static_cast<unsigned>(lp.integer());
      lp.expect(")");
      lp.expect("regs=");
      f.num_regs = static_cast<unsigned>(lp.integer());
      lp.expect("frame=");
      f.frame_size = static_cast<unsigned>(lp.integer());
      lp.expect("{");
      mod.add_function(std::move(f));
      fn = &mod.functions().back();
      bb = nullptr;
      continue;
    }
    if (line == "}") {
      fn = nullptr;
      bb = nullptr;
      continue;
    }
    if (starts_with(line, "bb") && line.back() == ':') {
      ILC_CHECK_MSG(fn != nullptr, "block label outside function at line "
                                       << line_no);
      const BlockId id = fn->new_block();
      ILC_CHECK_MSG(line == "bb" + std::to_string(id) + ":",
                    "non-sequential block label at line " << line_no);
      bb = &fn->blocks[id];
      continue;
    }
    // Otherwise: an instruction inside the current block.
    ILC_CHECK_MSG(fn != nullptr && bb != nullptr,
                  "instruction outside block at line " << line_no);
    bb->insts.push_back(parse_instr(line, line_no));
  }
  return mod;
}

}  // namespace ilc::ir
