// Module: functions + record types + globals + pointer width, and the
// construction of the initial memory image the simulator executes against.
//
// Pointer initialization is symbolic: a pointer-valued initializer holds an
// *element index* into a target global (or -1 for null) and is resolved to
// an absolute address only when the image is built. This keeps initial data
// valid across re-layouts (e.g. after 64→32-bit pointer compression).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define ILC_ZEROBUF_HAS_MMAP 1
#else
#define ILC_ZEROBUF_HAS_MMAP 0
#endif

#include "ir/function.hpp"
#include "ir/types.hpp"

namespace ilc::ir {

enum class GlobalKind : std::uint8_t { RawArray, RecordArray };

/// Initializer for one field of a record-array global.
struct FieldInit {
  /// One value per element; empty means zero-fill. For Ptr fields the value
  /// is an element index into `ptr_target` (-1 = null).
  std::vector<std::int64_t> values;
  GlobalId ptr_target = kNoGlobal;
};

struct Global {
  std::string name;
  GlobalKind kind = GlobalKind::RawArray;
  std::uint64_t count = 0;  // number of elements / records

  // RawArray only:
  std::uint8_t elem_width = 8;  // 1, 2, 4, or 8 bytes
  bool elem_is_ptr = false;     // width follows module pointer width
  GlobalId ptr_target = kNoGlobal;     // target for pointer elements
  std::vector<std::int64_t> init;      // empty = zero-fill

  // RecordArray only:
  RecordId record = kNoRecord;
  std::vector<FieldInit> field_init;  // one per record field (or empty)
};

/// A byte buffer that starts life all-zero. Large buffers are backed by
/// anonymous mmap so the kernel hands back lazily mapped zero pages:
/// creating a fresh ~1MB image (mostly untouched stack) costs a syscall
/// instead of a full memset, and pages the simulated program never touches
/// are never faulted in. This fixed cost is paid once per Simulator and
/// dominates short workloads. calloc alone is not enough — glibc's sliding
/// mmap threshold moves such allocations onto the heap after the first
/// free, where calloc must memset the whole extent. Small buffers stay on
/// calloc (a syscall per tiny image would be the slower choice).
class ZeroedBuffer {
 public:
  ZeroedBuffer() = default;
  ~ZeroedBuffer() { release(); }
  ZeroedBuffer(const ZeroedBuffer& o) { *this = o; }
  ZeroedBuffer& operator=(const ZeroedBuffer& o) {
    if (this != &o) {
      reset(o.size_);
      if (size_ != 0) std::memcpy(data_, o.data_, size_);
    }
    return *this;
  }
  ZeroedBuffer(ZeroedBuffer&& o) noexcept
      : data_(o.data_), size_(o.size_), mapped_(o.mapped_) {
    o.data_ = nullptr;
    o.size_ = 0;
    o.mapped_ = false;
  }
  ZeroedBuffer& operator=(ZeroedBuffer&& o) noexcept {
    if (this != &o) {
      release();
      data_ = o.data_;
      size_ = o.size_;
      mapped_ = o.mapped_;
      o.data_ = nullptr;
      o.size_ = 0;
      o.mapped_ = false;
    }
    return *this;
  }

  /// Discard contents and become `n` zero bytes.
  void reset(std::uint64_t n) {
    release();
    if (n == 0) return;
#if ILC_ZEROBUF_HAS_MMAP
    if (n >= kMmapThreshold) {
      void* p = ::mmap(nullptr, n, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
      if (p != MAP_FAILED) {
        data_ = static_cast<std::uint8_t*>(p);
        size_ = n;
        mapped_ = true;
        return;
      }
    }
#endif
    data_ = static_cast<std::uint8_t*>(std::calloc(n, 1));
    if (data_ == nullptr) throw std::bad_alloc();
    size_ = n;
  }

  std::uint8_t* data() { return data_; }
  const std::uint8_t* data() const { return data_; }
  std::uint64_t size() const { return size_; }
  std::uint8_t& operator[](std::uint64_t i) { return data_[i]; }
  const std::uint8_t& operator[](std::uint64_t i) const { return data_[i]; }

 private:
  /// Below this, a syscall per buffer would cost more than the memset.
  static constexpr std::uint64_t kMmapThreshold = 256 * 1024;

  void release() noexcept {
#if ILC_ZEROBUF_HAS_MMAP
    if (mapped_) {
      ::munmap(data_, size_);
    } else
#endif
    {
      std::free(data_);
    }
    data_ = nullptr;
    size_ = 0;
    mapped_ = false;
  }

  std::uint8_t* data_ = nullptr;
  std::uint64_t size_ = 0;
  bool mapped_ = false;
};

/// The executable image: initial memory contents plus resolved addresses.
/// Address 0..kNullGuard-1 is never mapped (null-dereference detection).
struct MemoryImage {
  static constexpr std::uint64_t kNullGuard = 64;

  ZeroedBuffer bytes;                       // full address space contents
  std::vector<std::uint64_t> global_base;   // base address per global
  std::uint64_t stack_base = 0;             // frames grow upward from here
  std::uint64_t stack_size = 0;
  unsigned ptr_bytes = 8;

  std::uint64_t size() const { return bytes.size(); }
};

class Module {
 public:
  std::string name;

  // --- construction -------------------------------------------------
  FuncId add_function(Function fn);
  RecordId add_record(RecordType rec);
  GlobalId add_global(Global g);

  // --- access --------------------------------------------------------
  Function& function(FuncId id);
  const Function& function(FuncId id) const;
  FuncId find_function(const std::string& fn_name) const;  // kNoFunc if absent

  const std::vector<Function>& functions() const { return funcs_; }
  std::vector<Function>& functions() { return funcs_; }

  const RecordType& record(RecordId id) const;
  const std::vector<RecordType>& records() const { return records_; }

  Global& global(GlobalId id);
  const Global& global(GlobalId id) const;
  GlobalId find_global(const std::string& g_name) const;
  const std::vector<Global>& globals() const { return globals_; }

  // --- layout ---------------------------------------------------------
  /// Current pointer width in bytes (8 by default; 4 after compression).
  unsigned ptr_bytes() const { return ptr_bytes_; }
  void set_ptr_bytes(unsigned bytes);

  /// Layout of `rec` under the current pointer width.
  RecordLayout record_layout(RecordId rec) const;

  /// Element stride in bytes of a global under the current pointer width.
  std::uint64_t global_stride(GlobalId id) const;
  /// Total byte size of a global under the current pointer width.
  std::uint64_t global_bytes(GlobalId id) const;

  /// Build the initial memory image (globals serialized, stack reserved).
  MemoryImage build_image(std::uint64_t stack_size = 1 << 20) const;

  /// Total static instruction count across functions.
  std::size_t code_size() const;

 private:
  std::vector<Function> funcs_;
  std::vector<RecordType> records_;
  std::vector<Global> globals_;
  unsigned ptr_bytes_ = 8;
};

}  // namespace ilc::ir
