// Module: functions + record types + globals + pointer width, and the
// construction of the initial memory image the simulator executes against.
//
// Pointer initialization is symbolic: a pointer-valued initializer holds an
// *element index* into a target global (or -1 for null) and is resolved to
// an absolute address only when the image is built. This keeps initial data
// valid across re-layouts (e.g. after 64→32-bit pointer compression).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/function.hpp"
#include "ir/types.hpp"

namespace ilc::ir {

enum class GlobalKind : std::uint8_t { RawArray, RecordArray };

/// Initializer for one field of a record-array global.
struct FieldInit {
  /// One value per element; empty means zero-fill. For Ptr fields the value
  /// is an element index into `ptr_target` (-1 = null).
  std::vector<std::int64_t> values;
  GlobalId ptr_target = kNoGlobal;
};

struct Global {
  std::string name;
  GlobalKind kind = GlobalKind::RawArray;
  std::uint64_t count = 0;  // number of elements / records

  // RawArray only:
  std::uint8_t elem_width = 8;  // 1, 2, 4, or 8 bytes
  bool elem_is_ptr = false;     // width follows module pointer width
  GlobalId ptr_target = kNoGlobal;     // target for pointer elements
  std::vector<std::int64_t> init;      // empty = zero-fill

  // RecordArray only:
  RecordId record = kNoRecord;
  std::vector<FieldInit> field_init;  // one per record field (or empty)
};

/// The executable image: initial memory contents plus resolved addresses.
/// Address 0..kNullGuard-1 is never mapped (null-dereference detection).
struct MemoryImage {
  static constexpr std::uint64_t kNullGuard = 64;

  std::vector<std::uint8_t> bytes;          // full address space contents
  std::vector<std::uint64_t> global_base;   // base address per global
  std::uint64_t stack_base = 0;             // frames grow upward from here
  std::uint64_t stack_size = 0;
  unsigned ptr_bytes = 8;

  std::uint64_t size() const { return bytes.size(); }
};

class Module {
 public:
  std::string name;

  // --- construction -------------------------------------------------
  FuncId add_function(Function fn);
  RecordId add_record(RecordType rec);
  GlobalId add_global(Global g);

  // --- access --------------------------------------------------------
  Function& function(FuncId id);
  const Function& function(FuncId id) const;
  FuncId find_function(const std::string& fn_name) const;  // kNoFunc if absent

  const std::vector<Function>& functions() const { return funcs_; }
  std::vector<Function>& functions() { return funcs_; }

  const RecordType& record(RecordId id) const;
  const std::vector<RecordType>& records() const { return records_; }

  Global& global(GlobalId id);
  const Global& global(GlobalId id) const;
  GlobalId find_global(const std::string& g_name) const;
  const std::vector<Global>& globals() const { return globals_; }

  // --- layout ---------------------------------------------------------
  /// Current pointer width in bytes (8 by default; 4 after compression).
  unsigned ptr_bytes() const { return ptr_bytes_; }
  void set_ptr_bytes(unsigned bytes);

  /// Layout of `rec` under the current pointer width.
  RecordLayout record_layout(RecordId rec) const;

  /// Element stride in bytes of a global under the current pointer width.
  std::uint64_t global_stride(GlobalId id) const;
  /// Total byte size of a global under the current pointer width.
  std::uint64_t global_bytes(GlobalId id) const;

  /// Build the initial memory image (globals serialized, stack reserved).
  MemoryImage build_image(std::uint64_t stack_size = 1 << 20) const;

  /// Total static instruction count across functions.
  std::size_t code_size() const;

 private:
  std::vector<Function> funcs_;
  std::vector<RecordType> records_;
  std::vector<Global> globals_;
  unsigned ptr_bytes_ = 8;
};

}  // namespace ilc::ir
