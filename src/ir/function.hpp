// BasicBlock and Function containers.
#pragma once

#include <string>
#include <vector>

#include "ir/instruction.hpp"

namespace ilc::ir {

/// A basic block: straight-line instructions ending in one terminator.
struct BasicBlock {
  std::vector<Instr> insts;

  const Instr& terminator() const;
  Instr& terminator();
  bool has_terminator() const;

  /// Successor block ids of the terminator (0, 1, or 2 entries).
  std::vector<BlockId> successors() const;
};

/// A function: arguments arrive in registers r0..r(num_args-1); entry is
/// block 0. frame_size bytes of per-activation scratch memory are
/// addressable via FrameAddr.
struct Function {
  std::string name;
  unsigned num_args = 0;
  unsigned num_regs = 0;   // registers 0..num_regs-1 are in use
  unsigned frame_size = 0; // bytes

  std::vector<BasicBlock> blocks;

  /// Allocate a fresh virtual register.
  Reg new_reg() { return num_regs++; }

  /// Append an empty block, returning its id.
  BlockId new_block();

  /// Total static instruction count (the code-size metric).
  std::size_t size() const;
};

}  // namespace ilc::ir
