// The Instr value type plus structural predicates used by every pass.
#pragma once

#include <array>
#include <cstdint>

#include "ir/types.hpp"

namespace ilc::ir {

inline constexpr unsigned kMaxCallArgs = 6;

/// A single three-address instruction. Trivially copyable; passes clone
/// and rewrite instructions freely.
struct Instr {
  Opcode op = Opcode::Nop;
  Reg dst = kNoReg;
  Reg a = kNoReg;
  Reg b = kNoReg;
  std::int64_t imm = 0;  // LoadImm value; Load/Store/Prefetch/FrameAddr offset

  MemWidth width = MemWidth::W8;  // Load/Store access width
  bool is_ptr = false;            // memory access holds a pointer value

  ImmTag tag = ImmTag::None;  // provenance of `imm` (see types.hpp)
  RecordId rec = kNoRecord;
  FieldId field = kNoField;

  BlockId t1 = kNoBlock;  // Jump target / Br taken target
  BlockId t2 = kNoBlock;  // Br fall-through target
  FuncId callee = kNoFunc;
  GlobalId gid = kNoGlobal;

  std::uint8_t nargs = 0;
  std::array<Reg, kMaxCallArgs> args{};

  bool operator==(const Instr&) const = default;
};

/// True for Jump/Br/Ret — the only instructions allowed (and required)
/// at the end of a basic block.
bool is_terminator(const Instr& inst);

/// True if the instruction writes a register (dst is meaningful).
bool has_dst(const Instr& inst);

/// Number of register sources and their values (excluding call args).
unsigned num_srcs(const Instr& inst);
std::array<Reg, 2> srcs(const Instr& inst);

/// Register sources including call arguments, appended to `out`.
void append_uses(const Instr& inst, std::array<Reg, 2 + kMaxCallArgs>& out,
                 unsigned& n);

/// True if the instruction has no side effects and its result depends only
/// on its register sources (legal to remove when dead, to CSE, to hoist).
/// Loads are NOT pure (memory may change); Div/Rem are pure here because
/// the interpreter defines division by zero (yields 0 / leaves a).
bool is_pure(const Instr& inst);

bool reads_memory(const Instr& inst);
bool writes_memory(const Instr& inst);

/// True for binary ops where operand order does not matter.
bool is_commutative(Opcode op);

/// Fold a binary/unary/compare opcode over constants, per interpreter
/// semantics (wrapping 64-bit, division by zero yields 0, x % 0 yields x,
/// shifts masked to 0..63). Returns false if op is not foldable.
bool fold_constant(Opcode op, std::int64_t a, std::int64_t b,
                   std::int64_t& out);

}  // namespace ilc::ir
