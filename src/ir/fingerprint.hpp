// Structural fingerprint of a module: identical optimized code (including
// layout-affecting state) hashes identically, which lets the search
// harness memoize simulator runs across optimization sequences that
// converge to the same code.
#pragma once

#include <cstdint>

#include "ir/module.hpp"

namespace ilc::ir {

std::uint64_t fingerprint(const Function& fn);
std::uint64_t fingerprint(const Module& mod);

}  // namespace ilc::ir
