#include "ir/fingerprint.hpp"

#include "support/hash.hpp"

namespace ilc::ir {

namespace {

void hash_instr(support::Hasher& h, const Instr& inst) {
  h.pod(inst.op).pod(inst.dst).pod(inst.a).pod(inst.b).pod(inst.imm);
  h.pod(inst.width).pod(inst.is_ptr).pod(inst.tag).pod(inst.rec);
  h.pod(inst.field).pod(inst.t1).pod(inst.t2).pod(inst.callee).pod(inst.gid);
  h.pod(inst.nargs);
  for (unsigned i = 0; i < inst.nargs; ++i) h.pod(inst.args[i]);
}

}  // namespace

std::uint64_t fingerprint(const Function& fn) {
  support::Hasher h;
  h.str(fn.name).pod(fn.num_args).pod(fn.num_regs).pod(fn.frame_size);
  h.pod(fn.blocks.size());
  for (const BasicBlock& bb : fn.blocks) {
    h.pod(bb.insts.size());
    for (const Instr& inst : bb.insts) hash_instr(h, inst);
  }
  return h.digest();
}

std::uint64_t fingerprint(const Module& mod) {
  support::Hasher h;
  h.str(mod.name);
  h.pod(mod.ptr_bytes());
  h.pod(mod.functions().size());
  for (const Function& fn : mod.functions()) h.pod(fingerprint(fn));
  // Globals and records participate because layout changes (pointer
  // compression) alter the executed image even with identical code.
  h.pod(mod.records().size());
  for (const RecordType& r : mod.records()) {
    h.str(r.name);
    for (const RecordField& f : r.fields) h.str(f.name).pod(f.kind);
  }
  h.pod(mod.globals().size());
  for (const Global& g : mod.globals()) {
    h.str(g.name).pod(g.kind).pod(g.count).pod(g.elem_width);
    h.pod(g.elem_is_ptr).pod(g.record);
  }
  return h.digest();
}

}  // namespace ilc::ir
