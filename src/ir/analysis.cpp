#include "ir/analysis.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace ilc::ir {

bool RegSet::merge(const RegSet& other) {
  ILC_ASSERT(bits_.size() == other.bits_.size());
  bool changed = false;
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    const std::uint64_t merged = bits_[i] | other.bits_[i];
    if (merged != bits_[i]) {
      bits_[i] = merged;
      changed = true;
    }
  }
  return changed;
}

std::size_t RegSet::count() const {
  std::size_t n = 0;
  for (std::uint64_t w : bits_) n += static_cast<std::size_t>(__builtin_popcountll(w));
  return n;
}

Cfg::Cfg(const Function& fn) {
  const std::size_t n = fn.blocks.size();
  succs.resize(n);
  preds.resize(n);
  for (std::size_t b = 0; b < n; ++b) {
    succs[b] = fn.blocks[b].successors();
    for (BlockId s : succs[b]) preds[s].push_back(static_cast<BlockId>(b));
  }
}

std::vector<BlockId> reverse_post_order(const Function& fn) {
  const std::size_t n = fn.blocks.size();
  std::vector<std::uint8_t> state(n, 0);  // 0=unseen 1=open 2=done
  std::vector<BlockId> post;
  post.reserve(n);

  // Iterative DFS with explicit stack of (block, next-successor-index).
  std::vector<std::pair<BlockId, std::size_t>> stack;
  stack.emplace_back(0, 0);
  state[0] = 1;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    const auto succ = fn.blocks[b].successors();
    if (next < succ.size()) {
      const BlockId s = succ[next++];
      if (state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[b] = 2;
      post.push_back(b);
      stack.pop_back();
    }
  }
  std::reverse(post.begin(), post.end());
  return post;
}

std::vector<BlockId> immediate_dominators(const Function& fn,
                                          const Cfg& cfg) {
  const std::vector<BlockId> rpo = reverse_post_order(fn);
  std::vector<std::uint32_t> rpo_index(fn.blocks.size(), UINT32_MAX);
  for (std::size_t i = 0; i < rpo.size(); ++i) rpo_index[rpo[i]] = i;

  std::vector<BlockId> idom(fn.blocks.size(), kNoBlock);
  idom[0] = 0;

  auto intersect = [&](BlockId a, BlockId b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) a = idom[a];
      while (rpo_index[b] > rpo_index[a]) b = idom[b];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (BlockId b : rpo) {
      if (b == 0) continue;
      BlockId new_idom = kNoBlock;
      for (BlockId p : cfg.preds[b]) {
        if (idom[p] == kNoBlock) continue;  // unreachable or unprocessed
        new_idom = (new_idom == kNoBlock) ? p : intersect(p, new_idom);
      }
      if (new_idom != kNoBlock && idom[b] != new_idom) {
        idom[b] = new_idom;
        changed = true;
      }
    }
  }
  return idom;
}

bool dominates(const std::vector<BlockId>& idom, BlockId a, BlockId b) {
  if (idom[b] == kNoBlock) return false;  // b unreachable
  while (true) {
    if (a == b) return true;
    if (b == 0) return a == 0;
    b = idom[b];
  }
}

bool Loop::contains(BlockId b) const {
  return std::binary_search(blocks.begin(), blocks.end(), b);
}

std::vector<Loop> find_loops(const Function& fn) {
  const Cfg cfg(fn);
  const std::vector<BlockId> idom = immediate_dominators(fn, cfg);

  std::vector<Loop> loops;
  auto loop_for_header = [&](BlockId h) -> Loop& {
    for (Loop& l : loops)
      if (l.header == h) return l;
    loops.push_back(Loop{});
    loops.back().header = h;
    return loops.back();
  };

  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    if (idom[b] == kNoBlock) continue;  // unreachable
    for (BlockId s : cfg.succs[b]) {
      if (dominates(idom, s, static_cast<BlockId>(b))) {
        // back edge b -> s
        Loop& loop = loop_for_header(s);
        loop.latches.push_back(static_cast<BlockId>(b));
        // Body: all blocks that reach the latch without passing the header.
        std::vector<std::uint8_t> in_body(fn.blocks.size(), 0);
        in_body[s] = 1;
        std::vector<BlockId> work;
        if (!in_body[b]) {
          in_body[b] = 1;
          work.push_back(static_cast<BlockId>(b));
        }
        while (!work.empty()) {
          const BlockId x = work.back();
          work.pop_back();
          for (BlockId p : cfg.preds[x]) {
            if (!in_body[p] && idom[p] != kNoBlock) {
              in_body[p] = 1;
              work.push_back(p);
            }
          }
        }
        for (std::size_t x = 0; x < fn.blocks.size(); ++x)
          if (in_body[x]) loop.blocks.push_back(static_cast<BlockId>(x));
      }
    }
  }

  for (Loop& l : loops) {
    std::sort(l.blocks.begin(), l.blocks.end());
    l.blocks.erase(std::unique(l.blocks.begin(), l.blocks.end()),
                   l.blocks.end());
    std::sort(l.latches.begin(), l.latches.end());
    l.latches.erase(std::unique(l.latches.begin(), l.latches.end()),
                    l.latches.end());
  }
  std::sort(loops.begin(), loops.end(),
            [](const Loop& a, const Loop& b) { return a.header < b.header; });
  return loops;
}

Liveness compute_liveness(const Function& fn, const Cfg& cfg) {
  const std::size_t n = fn.blocks.size();
  // Per-block gen (upward-exposed uses) and kill (definitions).
  std::vector<RegSet> gen(n, RegSet(fn.num_regs));
  std::vector<RegSet> kill(n, RegSet(fn.num_regs));
  for (std::size_t b = 0; b < n; ++b) {
    for (const Instr& inst : fn.blocks[b].insts) {
      std::array<Reg, 2 + kMaxCallArgs> uses;
      unsigned nu = 0;
      append_uses(inst, uses, nu);
      for (unsigned u = 0; u < nu; ++u)
        if (!kill[b].contains(uses[u])) gen[b].insert(uses[u]);
      if (has_dst(inst)) kill[b].insert(inst.dst);
    }
  }

  Liveness lv;
  lv.live_in.assign(n, RegSet(fn.num_regs));
  lv.live_out.assign(n, RegSet(fn.num_regs));

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t bi = n; bi-- > 0;) {
      RegSet out(fn.num_regs);
      for (BlockId s : cfg.succs[bi]) out.merge(lv.live_in[s]);
      if (!(out == lv.live_out[bi])) {
        lv.live_out[bi] = out;
        changed = true;
      }
      // in = gen ∪ (out − kill)
      RegSet in = gen[bi];
      for (Reg r = 0; r < fn.num_regs; ++r)
        if (out.contains(r) && !kill[bi].contains(r)) in.insert(r);
      if (!(in == lv.live_in[bi])) {
        lv.live_in[bi] = in;
        changed = true;
      }
    }
  }
  return lv;
}

std::vector<double> block_frequencies(const Function& fn) {
  std::vector<double> freq(fn.blocks.size(), 1.0);
  for (const Loop& loop : find_loops(fn))
    for (BlockId b : loop.blocks) freq[b] *= 10.0;
  return freq;
}

}  // namespace ilc::ir
