#include "ir/function.hpp"

#include "support/assert.hpp"

namespace ilc::ir {

bool BasicBlock::has_terminator() const {
  return !insts.empty() && is_terminator(insts.back());
}

const Instr& BasicBlock::terminator() const {
  ILC_CHECK(has_terminator());
  return insts.back();
}

Instr& BasicBlock::terminator() {
  ILC_CHECK(has_terminator());
  return insts.back();
}

std::vector<BlockId> BasicBlock::successors() const {
  const Instr& t = terminator();
  switch (t.op) {
    case Opcode::Jump:
      return {t.t1};
    case Opcode::Br:
      return {t.t1, t.t2};
    case Opcode::Ret:
      return {};
    default:
      ILC_UNREACHABLE("bad terminator");
  }
}

BlockId Function::new_block() {
  blocks.emplace_back();
  return static_cast<BlockId>(blocks.size() - 1);
}

std::size_t Function::size() const {
  std::size_t n = 0;
  for (const auto& b : blocks) n += b.insts.size();
  return n;
}

}  // namespace ilc::ir
