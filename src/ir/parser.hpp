// Parser for the textual IR form produced by printer.hpp, completing the
// round trip: modules (records, global declarations, functions) can be
// exchanged as text — e.g. stored in the knowledge base next to the
// experiment that produced them. The format serializes code and
// declarations; global *initial data* is not part of the text form (it
// belongs to the program's build recipe / the KB record).
#pragma once

#include <string>

#include "ir/module.hpp"

namespace ilc::ir {

/// Parse a module from its textual form. Throws support::CheckError with
/// a line-numbered message on malformed input.
Module parse_module(const std::string& text);

}  // namespace ilc::ir
