// Core identifier types, opcodes, and record-layout vocabulary of the ilc
// intermediate representation.
//
// The IR is a non-SSA three-address code over an unbounded virtual register
// file, organized as functions of basic blocks. Memory is a flat,
// byte-addressable address space populated from module globals; structured
// data is described by RecordTypes whose strides/field offsets appear in
// the instruction stream as *tagged immediates*, which is what allows the
// 64→32-bit pointer-compression optimization (the key transformation in
// the paper's Fig. 4 case study) to re-layout data and patch code safely.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ilc::ir {

using Reg = std::uint32_t;
using BlockId = std::uint32_t;
using FuncId = std::uint32_t;
using GlobalId = std::uint32_t;
using RecordId = std::uint16_t;
using FieldId = std::uint16_t;

inline constexpr Reg kNoReg = 0xffffffffu;
inline constexpr BlockId kNoBlock = 0xffffffffu;
inline constexpr FuncId kNoFunc = 0xffffffffu;
inline constexpr GlobalId kNoGlobal = 0xffffffffu;
inline constexpr RecordId kNoRecord = 0xffffu;
inline constexpr FieldId kNoField = 0xffffu;

/// Instruction opcodes. All arithmetic is on signed 64-bit values.
enum class Opcode : std::uint8_t {
  Nop,
  Mov,       // dst = a
  LoadImm,   // dst = imm
  // Binary arithmetic / logic: dst = a OP b
  Add, Sub, Mul, Div, Rem,
  And, Or, Xor, Shl, Shr,
  Min, Max,
  // Unary: dst = OP a
  Neg, Not,
  // Comparisons: dst = (a OP b) ? 1 : 0
  CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
  // Addressing
  GlobalAddr,  // dst = base address of global `gid`
  FrameAddr,   // dst = frame pointer + imm
  // Memory: addresses are a + imm
  Load,      // dst = mem[a + imm] (width bytes, sign-extended)
  Store,     // mem[a + imm] = b (width bytes)
  Prefetch,  // touch mem[a + imm] (non-binding, no fault)
  // Control flow (terminators)
  Jump,  // goto t1
  Br,    // if (a != 0) goto t1 else goto t2
  Ret,   // return a (or nothing if a == kNoReg)
  // Calls are not terminators.
  Call,  // dst = callee(args[0..nargs)); dst may be kNoReg
};

const char* opcode_name(Opcode op);

/// Access width for Load/Store in bytes.
enum class MemWidth : std::uint8_t { W1 = 1, W2 = 2, W4 = 4, W8 = 8 };

inline unsigned width_bytes(MemWidth w) { return static_cast<unsigned>(w); }

/// Marks an immediate as derived from a record layout so layout-changing
/// passes (pointer compression) can recompute it.
enum class ImmTag : std::uint8_t {
  None,
  RecordStride,  // imm == stride of record `rec`
  FieldOffset,   // imm == offset of field `field` of record `rec`
  PtrWidth,      // imm == module pointer width in bytes
};

/// Field element kinds. Ptr fields store addresses whose in-memory width
/// follows the module's pointer width (8 bytes, or 4 after compression).
enum class FieldKind : std::uint8_t { I8, I16, I32, I64, Ptr };

unsigned field_kind_bytes(FieldKind kind, unsigned ptr_bytes);
const char* field_kind_name(FieldKind kind);

struct RecordField {
  std::string name;
  FieldKind kind = FieldKind::I64;
};

/// A named aggregate type; layout is computed per pointer width.
struct RecordType {
  std::string name;
  std::vector<RecordField> fields;
};

/// Concrete layout of a RecordType for a given pointer width: naturally
/// aligned fields in declaration order, stride rounded up to max alignment.
struct RecordLayout {
  std::uint32_t stride = 0;
  std::vector<std::uint32_t> offsets;  // one per field
  std::vector<std::uint8_t> widths;    // bytes, one per field
};

RecordLayout layout_record(const RecordType& type, unsigned ptr_bytes);

}  // namespace ilc::ir
