#include "ir/builder.hpp"

#include "support/assert.hpp"

namespace ilc::ir {

FunctionBuilder::FunctionBuilder(Module& mod, std::string name,
                                 unsigned num_args, unsigned frame_size)
    : mod_(mod) {
  fn_.name = std::move(name);
  fn_.num_args = num_args;
  fn_.num_regs = num_args;
  fn_.frame_size = frame_size;
  cur_ = fn_.new_block();
}

BlockId FunctionBuilder::new_block() { return fn_.new_block(); }

void FunctionBuilder::switch_to(BlockId block) {
  ILC_CHECK(block < fn_.blocks.size());
  cur_ = block;
}

Reg FunctionBuilder::arg(unsigned i) const {
  ILC_CHECK(i < fn_.num_args);
  return i;
}

Instr& FunctionBuilder::emit(Instr inst) {
  ILC_CHECK(!finished_);
  BasicBlock& bb = fn_.blocks[cur_];
  ILC_CHECK_MSG(!bb.has_terminator(),
                "emitting into already-terminated block in " << fn_.name);
  bb.insts.push_back(inst);
  return bb.insts.back();
}

Reg FunctionBuilder::imm(std::int64_t value) {
  Instr i;
  i.op = Opcode::LoadImm;
  i.dst = fn_.new_reg();
  i.imm = value;
  emit(i);
  return i.dst;
}

Reg FunctionBuilder::imm_record_stride(RecordId rec) {
  Instr i;
  i.op = Opcode::LoadImm;
  i.dst = fn_.new_reg();
  i.imm = static_cast<std::int64_t>(mod_.record_layout(rec).stride);
  i.tag = ImmTag::RecordStride;
  i.rec = rec;
  emit(i);
  return i.dst;
}

Reg FunctionBuilder::imm_ptr_width() {
  Instr i;
  i.op = Opcode::LoadImm;
  i.dst = fn_.new_reg();
  i.imm = static_cast<std::int64_t>(mod_.ptr_bytes());
  i.tag = ImmTag::PtrWidth;
  emit(i);
  return i.dst;
}

Reg FunctionBuilder::binop(Opcode op, Reg lhs, Reg rhs) {
  Instr i;
  i.op = op;
  i.dst = fn_.new_reg();
  i.a = lhs;
  i.b = rhs;
  emit(i);
  return i.dst;
}

Reg FunctionBuilder::unop(Opcode op, Reg a) {
  Instr i;
  i.op = op;
  i.dst = fn_.new_reg();
  i.a = a;
  emit(i);
  return i.dst;
}

void FunctionBuilder::mov_to(Reg dst, Reg src) {
  ILC_CHECK(dst < fn_.num_regs);
  Instr i;
  i.op = Opcode::Mov;
  i.dst = dst;
  i.a = src;
  emit(i);
}

void FunctionBuilder::imm_to(Reg dst, std::int64_t value) {
  ILC_CHECK(dst < fn_.num_regs);
  Instr i;
  i.op = Opcode::LoadImm;
  i.dst = dst;
  i.imm = value;
  emit(i);
}

Reg FunctionBuilder::global_addr(GlobalId gid) {
  Instr i;
  i.op = Opcode::GlobalAddr;
  i.dst = fn_.new_reg();
  i.gid = gid;
  emit(i);
  return i.dst;
}

Reg FunctionBuilder::frame_addr(std::int64_t offset) {
  ILC_CHECK(offset >= 0 &&
            static_cast<std::uint64_t>(offset) < fn_.frame_size);
  Instr i;
  i.op = Opcode::FrameAddr;
  i.dst = fn_.new_reg();
  i.imm = offset;
  emit(i);
  return i.dst;
}

Reg FunctionBuilder::load(Reg addr, std::int64_t offset, MemWidth width,
                          bool is_ptr) {
  Instr i;
  i.op = Opcode::Load;
  i.dst = fn_.new_reg();
  i.a = addr;
  i.imm = offset;
  i.width = width;
  i.is_ptr = is_ptr;
  emit(i);
  return i.dst;
}

void FunctionBuilder::store(Reg addr, std::int64_t offset, Reg value,
                            MemWidth width, bool is_ptr) {
  Instr i;
  i.op = Opcode::Store;
  i.a = addr;
  i.b = value;
  i.imm = offset;
  i.width = width;
  i.is_ptr = is_ptr;
  emit(i);
}

void FunctionBuilder::prefetch(Reg addr, std::int64_t offset) {
  Instr i;
  i.op = Opcode::Prefetch;
  i.a = addr;
  i.imm = offset;
  emit(i);
}

Reg FunctionBuilder::record_elem_addr(GlobalId gid, Reg index) {
  const Global& g = mod_.global(gid);
  ILC_CHECK(g.kind == GlobalKind::RecordArray);
  Reg base = global_addr(gid);
  Reg stride = imm_record_stride(g.record);
  Reg off = mul(index, stride);
  return add(base, off);
}

Reg FunctionBuilder::load_field(Reg rec_addr, RecordId rec, FieldId field) {
  const RecordType& type = mod_.record(rec);
  ILC_CHECK(field < type.fields.size());
  const RecordLayout lay = mod_.record_layout(rec);
  Instr i;
  i.op = Opcode::Load;
  i.dst = fn_.new_reg();
  i.a = rec_addr;
  i.imm = lay.offsets[field];
  i.width = static_cast<MemWidth>(lay.widths[field]);
  i.is_ptr = type.fields[field].kind == FieldKind::Ptr;
  i.tag = ImmTag::FieldOffset;
  i.rec = rec;
  i.field = field;
  emit(i);
  return i.dst;
}

void FunctionBuilder::store_field(Reg rec_addr, RecordId rec, FieldId field,
                                  Reg value) {
  const RecordType& type = mod_.record(rec);
  ILC_CHECK(field < type.fields.size());
  const RecordLayout lay = mod_.record_layout(rec);
  Instr i;
  i.op = Opcode::Store;
  i.a = rec_addr;
  i.b = value;
  i.imm = lay.offsets[field];
  i.width = static_cast<MemWidth>(lay.widths[field]);
  i.is_ptr = type.fields[field].kind == FieldKind::Ptr;
  i.tag = ImmTag::FieldOffset;
  i.rec = rec;
  i.field = field;
  emit(i);
}

Reg FunctionBuilder::call(FuncId callee, std::initializer_list<Reg> args) {
  ILC_CHECK(args.size() <= kMaxCallArgs);
  Instr i;
  i.op = Opcode::Call;
  i.dst = fn_.new_reg();
  i.callee = callee;
  i.nargs = static_cast<std::uint8_t>(args.size());
  unsigned k = 0;
  for (Reg r : args) i.args[k++] = r;
  emit(i);
  return i.dst;
}

void FunctionBuilder::call_void(FuncId callee,
                                std::initializer_list<Reg> args) {
  ILC_CHECK(args.size() <= kMaxCallArgs);
  Instr i;
  i.op = Opcode::Call;
  i.dst = kNoReg;
  i.callee = callee;
  i.nargs = static_cast<std::uint8_t>(args.size());
  unsigned k = 0;
  for (Reg r : args) i.args[k++] = r;
  emit(i);
}

void FunctionBuilder::jump(BlockId target) {
  Instr i;
  i.op = Opcode::Jump;
  i.t1 = target;
  emit(i);
}

void FunctionBuilder::br(Reg cond, BlockId if_true, BlockId if_false) {
  Instr i;
  i.op = Opcode::Br;
  i.a = cond;
  i.t1 = if_true;
  i.t2 = if_false;
  emit(i);
}

void FunctionBuilder::ret(Reg value) {
  Instr i;
  i.op = Opcode::Ret;
  i.a = value;
  emit(i);
}

FuncId FunctionBuilder::finish() {
  ILC_CHECK(!finished_);
  finished_ = true;
  for (const BasicBlock& bb : fn_.blocks) {
    ILC_CHECK_MSG(bb.has_terminator(),
                  "unterminated block in " << fn_.name);
  }
  return mod_.add_function(std::move(fn_));
}

}  // namespace ilc::ir
