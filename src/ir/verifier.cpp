#include "ir/verifier.hpp"

#include <sstream>

#include "ir/printer.hpp"
#include "support/assert.hpp"

namespace ilc::ir {

namespace {

class Checker {
 public:
  Checker(const Function& fn, const Module& mod) : fn_(fn), mod_(mod) {}

  std::string run() {
    if (fn_.blocks.empty()) return fail(0, 0, "function has no blocks");
    if (fn_.num_args > fn_.num_regs)
      return fail(0, 0, "num_args exceeds num_regs");
    for (std::size_t b = 0; b < fn_.blocks.size(); ++b) {
      const BasicBlock& bb = fn_.blocks[b];
      if (bb.insts.empty()) return fail(b, 0, "empty block");
      for (std::size_t i = 0; i < bb.insts.size(); ++i) {
        const Instr& inst = bb.insts[i];
        const bool last = (i + 1 == bb.insts.size());
        if (is_terminator(inst) != last)
          return fail(b, i, last ? "block not ended by terminator"
                                 : "terminator in middle of block");
        std::string err = check_instr(inst);
        if (!err.empty()) return fail(b, i, err);
      }
    }
    return "";
  }

 private:
  std::string fail(std::size_t b, std::size_t i, const std::string& msg) {
    std::ostringstream os;
    os << "function @" << fn_.name << " bb" << b << " inst " << i << ": "
       << msg;
    if (b < fn_.blocks.size() && i < fn_.blocks[b].insts.size())
      os << " [" << to_string(fn_.blocks[b].insts[i]) << "]";
    return os.str();
  }

  bool reg_ok(Reg r) const { return r != kNoReg && r < fn_.num_regs; }

  std::string check_instr(const Instr& inst) {
    // Destination register.
    if (has_dst(inst) && !reg_ok(inst.dst)) return "bad dst register";
    // Sources.
    std::array<Reg, 2 + kMaxCallArgs> uses;
    unsigned n = 0;
    append_uses(inst, uses, n);
    for (unsigned u = 0; u < n; ++u)
      if (!reg_ok(uses[u])) return "bad source register";

    switch (inst.op) {
      case Opcode::Jump:
        if (inst.t1 >= fn_.blocks.size()) return "bad jump target";
        break;
      case Opcode::Br:
        if (inst.t1 >= fn_.blocks.size() || inst.t2 >= fn_.blocks.size())
          return "bad branch target";
        break;
      case Opcode::Call: {
        if (inst.callee >= mod_.functions().size()) return "bad callee";
        const Function& callee = mod_.function(inst.callee);
        if (inst.nargs != callee.num_args) return "call arity mismatch";
        break;
      }
      case Opcode::GlobalAddr:
        if (inst.gid >= mod_.globals().size()) return "bad global id";
        break;
      case Opcode::FrameAddr:
        if (inst.imm < 0 ||
            static_cast<std::uint64_t>(inst.imm) >= fn_.frame_size)
          return "frame offset out of range";
        break;
      case Opcode::Load:
      case Opcode::Store: {
        const unsigned w = width_bytes(inst.width);
        if (w != 1 && w != 2 && w != 4 && w != 8) return "bad access width";
        break;
      }
      default:
        break;
    }

    // Tagged immediates must reference valid records/fields and carry the
    // value the current layout implies (so passes can trust them).
    switch (inst.tag) {
      case ImmTag::None:
        break;
      case ImmTag::RecordStride: {
        if (inst.rec >= mod_.records().size()) return "bad record in tag";
        const auto lay = mod_.record_layout(inst.rec);
        if (inst.imm != static_cast<std::int64_t>(lay.stride))
          return "stale RecordStride immediate";
        break;
      }
      case ImmTag::FieldOffset: {
        if (inst.rec >= mod_.records().size()) return "bad record in tag";
        const RecordType& rec = mod_.record(inst.rec);
        if (inst.field >= rec.fields.size()) return "bad field in tag";
        const auto lay = mod_.record_layout(inst.rec);
        if (inst.imm != static_cast<std::int64_t>(lay.offsets[inst.field]))
          return "stale FieldOffset immediate";
        if ((inst.op == Opcode::Load || inst.op == Opcode::Store) &&
            width_bytes(inst.width) != lay.widths[inst.field])
          return "field access width mismatch";
        break;
      }
      case ImmTag::PtrWidth:
        if (inst.imm != static_cast<std::int64_t>(mod_.ptr_bytes()))
          return "stale PtrWidth immediate";
        break;
    }
    return "";
  }

  const Function& fn_;
  const Module& mod_;
};

}  // namespace

std::string verify(const Function& fn, const Module& mod) {
  return Checker(fn, mod).run();
}

std::string verify(const Module& mod) {
  for (const Function& fn : mod.functions()) {
    std::string err = verify(fn, mod);
    if (!err.empty()) return err;
  }
  if (mod.ptr_bytes() != 4 && mod.ptr_bytes() != 8) return "bad ptr width";
  return "";
}

void verify_or_throw(const Module& mod) {
  const std::string err = verify(mod);
  ILC_CHECK_MSG(err.empty(), err);
}

}  // namespace ilc::ir
