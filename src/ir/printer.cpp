#include "ir/printer.hpp"

#include <sstream>

namespace ilc::ir {

namespace {

std::string reg_name(Reg r) {
  if (r == kNoReg) return "_";
  return "r" + std::to_string(r);
}

}  // namespace

std::string to_string(const Instr& inst) {
  std::ostringstream os;
  switch (inst.op) {
    case Opcode::Nop:
      os << "nop";
      break;
    case Opcode::LoadImm:
      os << reg_name(inst.dst) << " = imm " << inst.imm;
      if (inst.tag == ImmTag::RecordStride) os << " !stride(rec" << inst.rec << ")";
      if (inst.tag == ImmTag::PtrWidth) os << " !ptrwidth";
      break;
    case Opcode::Mov:
    case Opcode::Neg:
    case Opcode::Not:
      os << reg_name(inst.dst) << " = " << opcode_name(inst.op) << " "
         << reg_name(inst.a);
      break;
    case Opcode::GlobalAddr:
      os << reg_name(inst.dst) << " = gaddr @" << inst.gid;
      break;
    case Opcode::FrameAddr:
      os << reg_name(inst.dst) << " = faddr +" << inst.imm;
      break;
    case Opcode::Load:
      os << reg_name(inst.dst) << " = load." << width_bytes(inst.width)
         << (inst.is_ptr ? "p" : "") << " [" << reg_name(inst.a) << " + "
         << inst.imm << "]";
      if (inst.tag == ImmTag::FieldOffset)
        os << " !field(rec" << inst.rec << "." << inst.field << ")";
      break;
    case Opcode::Store:
      os << "store." << width_bytes(inst.width) << (inst.is_ptr ? "p" : "")
         << " [" << reg_name(inst.a) << " + " << inst.imm << "], "
         << reg_name(inst.b);
      if (inst.tag == ImmTag::FieldOffset)
        os << " !field(rec" << inst.rec << "." << inst.field << ")";
      break;
    case Opcode::Prefetch:
      os << "prefetch [" << reg_name(inst.a) << " + " << inst.imm << "]";
      break;
    case Opcode::Jump:
      os << "jump bb" << inst.t1;
      break;
    case Opcode::Br:
      os << "br " << reg_name(inst.a) << ", bb" << inst.t1 << ", bb"
         << inst.t2;
      break;
    case Opcode::Ret:
      os << "ret";
      if (inst.a != kNoReg) os << " " << reg_name(inst.a);
      break;
    case Opcode::Call:
      if (inst.dst != kNoReg) os << reg_name(inst.dst) << " = ";
      os << "call @" << inst.callee << "(";
      for (unsigned i = 0; i < inst.nargs; ++i) {
        if (i) os << ", ";
        os << reg_name(inst.args[i]);
      }
      os << ")";
      break;
    default:
      os << reg_name(inst.dst) << " = " << opcode_name(inst.op) << " "
         << reg_name(inst.a) << ", " << reg_name(inst.b);
      break;
  }
  return os.str();
}

std::string to_string(const Function& fn) {
  std::ostringstream os;
  os << "func @" << fn.name << "(" << fn.num_args << ") regs=" << fn.num_regs
     << " frame=" << fn.frame_size << " {\n";
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    os << "bb" << b << ":\n";
    for (const Instr& inst : fn.blocks[b].insts)
      os << "  " << to_string(inst) << "\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_string(const Module& mod) {
  std::ostringstream os;
  os << "module " << mod.name << " ptr=" << mod.ptr_bytes() << "\n";
  for (std::size_t r = 0; r < mod.records().size(); ++r) {
    const RecordType& rec = mod.records()[r];
    os << "record rec" << r << " " << rec.name << " {";
    for (std::size_t f = 0; f < rec.fields.size(); ++f) {
      if (f) os << ", ";
      os << rec.fields[f].name << ":" << field_kind_name(rec.fields[f].kind);
    }
    os << "}\n";
  }
  for (std::size_t g = 0; g < mod.globals().size(); ++g) {
    const Global& gl = mod.globals()[g];
    os << "global @" << g << " " << gl.name << " count=" << gl.count;
    if (gl.kind == GlobalKind::RecordArray)
      os << " record=rec" << gl.record;
    else
      os << " width=" << (gl.elem_is_ptr ? mod.ptr_bytes() : gl.elem_width)
         << (gl.elem_is_ptr ? " ptr" : "");
    os << "\n";
  }
  for (const Function& fn : mod.functions()) os << to_string(fn);
  return os.str();
}

}  // namespace ilc::ir
