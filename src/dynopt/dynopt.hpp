// The dynamic optimization module (paper Section III-D): each binary
// carries multiple statically-compiled code versions, a runtime monitor
// characterizes execution intervals from performance-counter deltas, a
// phase detector finds stable regions (after Fursin et al.), and an
// online performance auditor (after Lau et al.) times each version once
// during stable phases and commits to the winner — re-auditing whenever
// the phase changes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/module.hpp"
#include "sim/interpreter.hpp"

namespace ilc::dyn {

/// One statically-compiled version of the program. Versions must share
/// the base module's memory layout (so no pointer compression here — the
/// simulator's switch_module enforces it).
struct CodeVersion {
  std::string name;
  ir::Module module;
};

/// A sensible default multi-versioning set: baseline, aggressively
/// optimized without prefetch, and aggressively optimized with prefetch —
/// the streaming-vs-chasing trade the phased workloads expose.
std::vector<CodeVersion> default_versions(const ir::Module& base);

/// Stability detector over interval signatures. An interval is "stable"
/// when the last `window` signatures all lie within `threshold` relative
/// L1 distance of their mean; a jump starts a new phase id.
class PhaseDetector {
 public:
  explicit PhaseDetector(double threshold = 0.25, unsigned window = 3);
  void feed(const std::vector<double>& signature);
  bool stable() const;
  unsigned phase_id() const { return phase_; }
  void reset();

 private:
  double distance(const std::vector<double>& a,
                  const std::vector<double>& b) const;
  double threshold_;
  unsigned window_;
  std::vector<std::vector<double>> recent_;
  unsigned phase_ = 0;
};

/// What the kernel-driving harness needs to know about the program.
struct KernelSpec {
  std::string kernel;          // kernel(i) function name
  std::string setup;           // optional one-time setup function
  std::int64_t items = 0;      // i in [0, items)
};

struct AuditReport {
  std::int64_t checksum = 0;        // fold32-accumulated kernel returns
  std::uint64_t total_cycles = 0;
  std::vector<unsigned> version_per_item;  // which version ran each item
  unsigned switches = 0;            // committed-version changes
  unsigned audits = 0;              // audit rounds triggered
  std::vector<std::uint64_t> cycles_per_version;  // attribution
};

class DynamicOptimizer {
 public:
  DynamicOptimizer(std::vector<CodeVersion> versions,
                   sim::MachineConfig machine);

  /// Run the whole workload under online performance auditing.
  AuditReport run_audited(const KernelSpec& spec);

  /// Run everything on one fixed version (the static baselines).
  AuditReport run_static(const KernelSpec& spec, unsigned version);

  const std::vector<CodeVersion>& versions() const { return versions_; }

 private:
  std::vector<CodeVersion> versions_;
  sim::MachineConfig machine_;
};

}  // namespace ilc::dyn
