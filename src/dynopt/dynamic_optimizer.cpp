#include "dynopt/dynopt.hpp"

#include "features/features.hpp"
#include "opt/pipelines.hpp"
#include "support/assert.hpp"

namespace ilc::dyn {

std::vector<CodeVersion> default_versions(const ir::Module& base) {
  std::vector<CodeVersion> versions;
  versions.push_back({"O0", base});
  {
    opt::OptFlags f = opt::fast_flags();
    f.prefetch = false;
    CodeVersion v{"fast", base};
    opt::run_sequence(v.module, opt::pipeline(f));
    versions.push_back(std::move(v));
  }
  {
    opt::OptFlags f = opt::fast_flags();
    f.prefetch = true;
    CodeVersion v{"fast+prefetch", base};
    opt::run_sequence(v.module, opt::pipeline(f));
    versions.push_back(std::move(v));
  }
  return versions;
}

DynamicOptimizer::DynamicOptimizer(std::vector<CodeVersion> versions,
                                   sim::MachineConfig machine)
    : versions_(std::move(versions)), machine_(std::move(machine)) {
  ILC_CHECK(!versions_.empty());
}

namespace {

std::int64_t fold32(std::int64_t x) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(x) &
                                   0x7fffffffULL);
}

}  // namespace

AuditReport DynamicOptimizer::run_static(const KernelSpec& spec,
                                         unsigned version) {
  ILC_CHECK(version < versions_.size());
  AuditReport rep;
  rep.cycles_per_version.assign(versions_.size(), 0);
  sim::Simulator sim(versions_[version].module, machine_);
  if (!spec.setup.empty()) sim.call(spec.setup);
  for (std::int64_t i = 0; i < spec.items; ++i) {
    const auto rr = sim.call(spec.kernel, {i});
    rep.checksum = fold32(rep.checksum + rr.ret);
    rep.total_cycles += rr.cycles;
    rep.cycles_per_version[version] += rr.cycles;
    rep.version_per_item.push_back(version);
  }
  return rep;
}

AuditReport DynamicOptimizer::run_audited(const KernelSpec& spec) {
  AuditReport rep;
  rep.cycles_per_version.assign(versions_.size(), 0);

  // One simulator; code versions are swapped in via switch_module so
  // memory, caches, and predictor state carry across, exactly like a
  // runtime code cache would behave.
  sim::Simulator sim(versions_[0].module, machine_);
  if (!spec.setup.empty()) sim.call(spec.setup);

  PhaseDetector detector;
  unsigned committed = 0;      // currently committed version
  bool auditing = true;        // start life by auditing
  unsigned audit_next = 0;     // next version to time in this audit round
  std::vector<std::uint64_t> audit_cycles(versions_.size(), 0);
  unsigned last_phase = 0;

  auto switch_to = [&](unsigned v) {
    sim.switch_module(versions_[v].module);
  };

  for (std::int64_t i = 0; i < spec.items; ++i) {
    unsigned running;
    if (auditing) {
      running = audit_next;
    } else {
      running = committed;
    }
    switch_to(running);
    const auto rr = sim.call(spec.kernel, {i});
    rep.checksum = fold32(rep.checksum + rr.ret);
    rep.total_cycles += rr.cycles;
    rep.cycles_per_version[running] += rr.cycles;
    rep.version_per_item.push_back(running);

    // Runtime monitoring: interval signature from counter deltas.
    detector.feed(feat::extract_dynamic(rr.counters));

    if (auditing) {
      audit_cycles[running] = rr.cycles;
      if (++audit_next >= versions_.size()) {
        // Audit round complete: commit to the fastest version.
        unsigned best = 0;
        for (unsigned v = 1; v < versions_.size(); ++v)
          if (audit_cycles[v] < audit_cycles[best]) best = v;
        if (best != committed) ++rep.switches;
        committed = best;
        auditing = false;
        ++rep.audits;
        last_phase = detector.phase_id();
      }
    } else if (detector.phase_id() != last_phase) {
      // Phase change: re-audit from scratch.
      auditing = true;
      audit_next = 0;
      last_phase = detector.phase_id();
    }
  }
  return rep;
}

}  // namespace ilc::dyn
