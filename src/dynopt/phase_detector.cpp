#include <cmath>

#include "dynopt/dynopt.hpp"
#include "support/assert.hpp"

namespace ilc::dyn {

PhaseDetector::PhaseDetector(double threshold, unsigned window)
    : threshold_(threshold), window_(window) {
  ILC_CHECK(window_ >= 2);
  ILC_CHECK(threshold_ > 0.0);
}

void PhaseDetector::reset() {
  recent_.clear();
  phase_ = 0;
}

double PhaseDetector::distance(const std::vector<double>& a,
                               const std::vector<double>& b) const {
  ILC_CHECK(a.size() == b.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += std::abs(a[i] - b[i]);
    den += std::abs(a[i]) + std::abs(b[i]);
  }
  return den > 1e-12 ? 2.0 * num / den : 0.0;  // relative L1
}

void PhaseDetector::feed(const std::vector<double>& signature) {
  if (!recent_.empty() &&
      distance(signature, recent_.back()) > threshold_) {
    // Behaviour jumped: new phase, history restarts.
    ++phase_;
    recent_.clear();
  }
  recent_.push_back(signature);
  if (recent_.size() > window_) recent_.erase(recent_.begin());
}

bool PhaseDetector::stable() const {
  if (recent_.size() < window_) return false;
  for (std::size_t i = 1; i < recent_.size(); ++i)
    if (distance(recent_[i], recent_[0]) > threshold_) return false;
  return true;
}

}  // namespace ilc::dyn
