#include "controller/controller.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace ilc::ctrl {

CounterModel::CounterModel(const kb::KnowledgeBase& base,
                           const std::string& exclude,
                           const std::string& machine) {
  std::vector<std::vector<double>> raw_rows;
  for (const std::string& program : base.programs()) {
    if (program == exclude) continue;
    // Profile record: the -O0 counter signature.
    const kb::ExperimentRecord* profile = nullptr;
    for (const auto* r : base.for_program(program, "profile"))
      if (r->machine == machine) profile = r;
    const kb::ExperimentRecord* best = nullptr;
    for (const auto* r : base.for_program(program, "flags")) {
      if (r->machine != machine) continue;
      if (best == nullptr || r->cycles < best->cycles) best = r;
    }
    if (profile == nullptr || best == nullptr) continue;
    raw_rows.push_back(profile->dynamic_features);
    best_flags_.push_back(
        opt::OptFlags::decode(static_cast<std::uint32_t>(
            std::stoul(best->config))));
    program_names_.push_back(program);
  }
  ILC_CHECK_MSG(!raw_rows.empty(),
                "knowledge base has no usable profile+flags records");
  scaler_.fit(raw_rows);
  for (const auto& r : raw_rows) rows_.push_back(scaler_.transform(r));
}

opt::OptFlags CounterModel::predict(
    const std::vector<double>& dynamic_features) const {
  const auto x = scaler_.transform(dynamic_features);
  std::size_t best = 0;
  double best_d = feat::euclidean(x, rows_[0]);
  for (std::size_t i = 1; i < rows_.size(); ++i) {
    const double d = feat::euclidean(x, rows_[i]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  nearest_ = program_names_[best];
  return best_flags_[best];
}

search::FocusedModel build_focused_model(const kb::KnowledgeBase& base,
                                         const std::string& exclude,
                                         const std::string& machine,
                                         search::SequenceSpace space,
                                         double top_fraction,
                                         search::FocusedKind kind) {
  ILC_CHECK(top_fraction > 0.0 && top_fraction <= 1.0);
  std::vector<search::ProgramSearchData> training;
  for (const std::string& program : base.programs()) {
    if (program == exclude) continue;
    auto recs = base.for_program(program, "sequence");
    recs.erase(std::remove_if(recs.begin(), recs.end(),
                              [&](const kb::ExperimentRecord* r) {
                                return r->machine != machine;
                              }),
               recs.end());
    if (recs.empty()) continue;
    std::sort(recs.begin(), recs.end(),
              [](const kb::ExperimentRecord* a,
                 const kb::ExperimentRecord* b) { return a->cycles < b->cycles; });
    const std::size_t keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(top_fraction *
                                    static_cast<double>(recs.size())));
    search::ProgramSearchData data;
    data.program = program;
    data.features = recs.front()->static_features;
    for (std::size_t i = 0; i < keep; ++i)
      data.good_seqs.push_back(search::sequence_from_string(recs[i]->config));
    training.push_back(std::move(data));
  }
  ILC_CHECK_MSG(!training.empty(), "no sequence search data in KB");
  return search::FocusedModel(std::move(training), std::move(space), kind);
}

opt::OptFlags IntelligentController::one_shot(
    const std::vector<double>& dynamic_features,
    const std::string& exclude_program) const {
  const CounterModel model(kb_, exclude_program, machine_);
  return model.predict(dynamic_features);
}

search::SearchTrace IntelligentController::iterative(
    search::Evaluator& eval, const std::vector<double>& static_features,
    const std::string& exclude_program, unsigned budget,
    support::Rng& rng) const {
  search::SequenceSpace space;
  search::FocusedModel model =
      build_focused_model(kb_, exclude_program, machine_, space);
  model.set_target(static_features);
  return search::generator_search(
      eval, [&] { return model.sample(rng); }, budget);
}

}  // namespace ilc::ctrl
