// The intelligent optimization controller (paper Section III-A) and the
// performance-prediction models it consults (Section III-C):
//
//  * CounterModel — the PCModel of Figs. 3/4 (after Cavazos et al.
//    CGO'07): characterizes a program by its -O0 performance-counter
//    signature, finds the nearest previously-seen program in the
//    knowledge base, and predicts that program's best optimization
//    setting. One-shot: no search on the new program.
//
//  * IntelligentController — ties the models together: one-shot flag
//    prediction, or iterative refinement via FOCUSSED search when the
//    framework decides on-target evaluations are worthwhile.
#pragma once

#include <string>
#include <vector>

#include "features/features.hpp"
#include "kb/knowledge_base.hpp"
#include "opt/pipelines.hpp"
#include "search/evaluator.hpp"
#include "search/focused.hpp"
#include "search/strategies.hpp"

namespace ilc::ctrl {

/// One-shot counter-signature model. Trained from KB "profile" records
/// (the program's -O0 dynamic features) labeled with the best "flags"
/// record found for that program.
class CounterModel {
 public:
  /// Train from all programs in the KB except `exclude` (leave-one-out).
  CounterModel(const kb::KnowledgeBase& base, const std::string& exclude,
               const std::string& machine);

  /// Predict the optimization setting for a program with the given -O0
  /// dynamic-feature signature.
  opt::OptFlags predict(const std::vector<double>& dynamic_features) const;

  /// The training program whose model was used for the last predict().
  const std::string& nearest_program() const { return nearest_; }
  std::size_t training_programs() const { return rows_.size(); }

 private:
  feat::Scaler scaler_;
  std::vector<std::vector<double>> rows_;     // scaled signatures
  std::vector<opt::OptFlags> best_flags_;     // label per row
  std::vector<std::string> program_names_;
  mutable std::string nearest_;
};

/// Build the FOCUSSED sequence model from KB "sequence" records, training
/// on every program except `exclude`. `top_fraction` selects which share
/// of each program's tried sequences count as "good" evidence.
search::FocusedModel build_focused_model(
    const kb::KnowledgeBase& base, const std::string& exclude,
    const std::string& machine, search::SequenceSpace space,
    double top_fraction = 0.1,
    search::FocusedKind kind = search::FocusedKind::Markov);

/// The controller: given a program and a knowledge base, produce an
/// optimization decision.
class IntelligentController {
 public:
  IntelligentController(const kb::KnowledgeBase& base, std::string machine)
      : kb_(base), machine_(std::move(machine)) {}

  /// One-shot compilation: predict flags from the program's -O0 counter
  /// signature; no evaluations of the new program beyond the profile run.
  opt::OptFlags one_shot(const std::vector<double>& dynamic_features,
                         const std::string& exclude_program) const;

  /// Iterative compilation: FOCUSSED search with a small budget; returns
  /// the search trace (best sequence is trace.best_seq).
  search::SearchTrace iterative(search::Evaluator& eval,
                                const std::vector<double>& static_features,
                                const std::string& exclude_program,
                                unsigned budget, support::Rng& rng) const;

 private:
  const kb::KnowledgeBase& kb_;
  std::string machine_;
};

}  // namespace ilc::ctrl
