#include "controller/kb_builder.hpp"

#include "features/features.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "obs/trace.hpp"
#include "search/evaluator.hpp"
#include "search/strategies.hpp"
#include "sim/interpreter.hpp"

namespace ilc::ctrl {

namespace {

obs::Histogram& h_program_build_us() {
  static obs::Histogram h =
      obs::Registry::instance().histogram("ctrl.program_build_us");
  return h;
}

}  // namespace

kb::ExperimentRecord make_profile_record(const std::string& name,
                                         const ir::Module& mod,
                                         const sim::MachineConfig& machine) {
  sim::Simulator sim(mod, machine);
  const sim::RunResult rr = sim.run();
  kb::ExperimentRecord rec;
  rec.program = name;
  rec.machine = machine.name;
  rec.kind = "profile";
  rec.config = "O0";
  rec.cycles = rr.cycles;
  rec.code_size = mod.code_size();
  rec.instructions = rr.instructions;
  rec.counters = rr.counters;
  rec.static_features = feat::extract_static(mod);
  rec.dynamic_features = feat::extract_dynamic(rr.counters);
  return rec;
}

namespace {

void stream_sequence_search_records(const RecordSink& sink,
                                    const std::string& name,
                                    const ir::Module& mod,
                                    const sim::MachineConfig& machine,
                                    const search::SequenceSpace& space,
                                    support::Rng& rng, unsigned budget) {
  search::Evaluator eval(mod, machine);
  const auto static_features = feat::extract_static(mod);
  for (unsigned i = 0; i < budget; ++i) {
    const auto seq = space.sample(rng);
    const auto res = eval.eval_sequence(seq);
    kb::ExperimentRecord rec;
    rec.program = name;
    rec.machine = machine.name;
    rec.kind = "sequence";
    rec.config = search::sequence_to_string(seq);
    rec.cycles = res.cycles;
    rec.code_size = res.code_size;
    rec.instructions = res.instructions;
    rec.counters = res.counters;
    rec.static_features = static_features;
    sink(std::move(rec));
  }
}

void stream_flag_search_records(const RecordSink& sink,
                                const std::string& name,
                                const ir::Module& mod,
                                const sim::MachineConfig& machine,
                                support::Rng& rng, unsigned budget) {
  search::Evaluator eval(mod, machine);
  const auto static_features = feat::extract_static(mod);
  for (const auto& pt : search::flag_search(eval, rng, budget)) {
    kb::ExperimentRecord rec;
    rec.program = name;
    rec.machine = machine.name;
    rec.kind = "flags";
    rec.config = std::to_string(pt.flags.encode());
    rec.cycles = pt.result.cycles;
    rec.code_size = pt.result.code_size;
    rec.instructions = pt.result.instructions;
    rec.counters = pt.result.counters;
    rec.static_features = static_features;
    rec.dynamic_features = feat::extract_dynamic(pt.result.counters);
    sink(std::move(rec));
  }
}

}  // namespace

void add_sequence_search_records(kb::KnowledgeBase& base,
                                 const std::string& name,
                                 const ir::Module& mod,
                                 const sim::MachineConfig& machine,
                                 const search::SequenceSpace& space,
                                 support::Rng& rng, unsigned budget) {
  stream_sequence_search_records(
      [&base](kb::ExperimentRecord rec) { base.add(std::move(rec)); }, name,
      mod, machine, space, rng, budget);
}

void add_flag_search_records(kb::KnowledgeBase& base, const std::string& name,
                             const ir::Module& mod,
                             const sim::MachineConfig& machine,
                             support::Rng& rng, unsigned budget) {
  stream_flag_search_records(
      [&base](kb::ExperimentRecord rec) { base.add(std::move(rec)); }, name,
      mod, machine, rng, budget);
}

void stream_training_records(const std::vector<SuiteProgram>& suite,
                             const sim::MachineConfig& machine,
                             unsigned sequence_budget, unsigned flag_budget,
                             std::uint64_t seed, const RecordSink& sink) {
  support::Rng root(seed);
  const search::SequenceSpace space;
  // The per-program fork is keyed by the number of records emitted so
  // far, matching the historical base.size()-keyed forks bit-for-bit.
  std::size_t emitted = 0;
  const RecordSink counting = [&](kb::ExperimentRecord rec) {
    ++emitted;
    sink(std::move(rec));
  };
  for (const SuiteProgram& prog : suite) {
    obs::Span span("ctrl.train_program");
    span.annotate("program", prog.name);
    obs::ScopedTimerUs timer(h_program_build_us());
    support::Rng rng = root.fork(emitted + 1);
    counting(make_profile_record(prog.name, *prog.module, machine));
    if (sequence_budget > 0)
      stream_sequence_search_records(counting, prog.name, *prog.module,
                                     machine, space, rng, sequence_budget);
    if (flag_budget > 0)
      stream_flag_search_records(counting, prog.name, *prog.module, machine,
                                 rng, flag_budget);
  }
}

kb::KnowledgeBase build_knowledge_base(const std::vector<SuiteProgram>& suite,
                                       const sim::MachineConfig& machine,
                                       unsigned sequence_budget,
                                       unsigned flag_budget,
                                       std::uint64_t seed) {
  kb::KnowledgeBase base;
  stream_training_records(
      suite, machine, sequence_budget, flag_budget, seed,
      [&base](kb::ExperimentRecord rec) { base.add(std::move(rec)); });
  return base;
}

void build_store(kbstore::Store& store, const std::vector<SuiteProgram>& suite,
                 const sim::MachineConfig& machine, unsigned sequence_budget,
                 unsigned flag_budget, std::uint64_t seed) {
  stream_training_records(
      suite, machine, sequence_budget, flag_budget, seed,
      [&store](kb::ExperimentRecord rec) { store.append(std::move(rec)); });
  store.sync();
}

}  // namespace ilc::ctrl
