// Knowledge-base population harness: runs the "significant training
// period" the paper describes (Section III-C) — profiling runs, sequence
// searches, and flag searches per program — and stores everything in the
// standard format. Shared by the benches, examples, and tests.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/module.hpp"
#include "kb/knowledge_base.hpp"
#include "kbstore/store.hpp"
#include "search/space.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"

namespace ilc::ctrl {

struct SuiteProgram {
  std::string name;
  const ir::Module* module = nullptr;
};

/// Consumer of experiment records as they are produced. Streaming lets a
/// long training period persist incrementally (e.g. into a
/// kbstore::Store) instead of materializing everything in memory first.
using RecordSink = std::function<void(kb::ExperimentRecord)>;

/// Profile a program at -O0: counters, static and dynamic features.
kb::ExperimentRecord make_profile_record(const std::string& name,
                                         const ir::Module& mod,
                                         const sim::MachineConfig& machine);

/// Random sequence search, recording every evaluated point.
void add_sequence_search_records(kb::KnowledgeBase& base,
                                 const std::string& name,
                                 const ir::Module& mod,
                                 const sim::MachineConfig& machine,
                                 const search::SequenceSpace& space,
                                 support::Rng& rng, unsigned budget);

/// Random flag-space search (anchored at O0/FAST/FAST+ptrcompress),
/// recording every evaluated point.
void add_flag_search_records(kb::KnowledgeBase& base, const std::string& name,
                             const ir::Module& mod,
                             const sim::MachineConfig& machine,
                             support::Rng& rng, unsigned budget);

/// Full training period over a suite — profile + sequence + flag records
/// per program, streamed to `sink` as each experiment completes.
/// Deterministic in `seed`: the sink receives exactly the records
/// build_knowledge_base would store, in the same order.
void stream_training_records(const std::vector<SuiteProgram>& suite,
                             const sim::MachineConfig& machine,
                             unsigned sequence_budget, unsigned flag_budget,
                             std::uint64_t seed, const RecordSink& sink);

/// Full training period over a suite: profile + sequence + flag records
/// per program. Deterministic in `seed`.
kb::KnowledgeBase build_knowledge_base(const std::vector<SuiteProgram>& suite,
                                       const sim::MachineConfig& machine,
                                       unsigned sequence_budget,
                                       unsigned flag_budget,
                                       std::uint64_t seed);

/// Training period streamed straight into a durable store: each record is
/// WAL-appended as its simulation finishes, so a crash mid-training keeps
/// every acknowledged experiment instead of losing the whole run.
void build_store(kbstore::Store& store, const std::vector<SuiteProgram>& suite,
                 const sim::MachineConfig& machine, unsigned sequence_budget,
                 unsigned flag_budget, std::uint64_t seed);

}  // namespace ilc::ctrl
