#include "cluster/lineio.hpp"

#include <chrono>

namespace ilc::cluster {

namespace {

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

void set_err(std::string* err, const char* what) {
  if (err) *err = what;
}

}  // namespace

net::Fd connect_endpoint(const repl::Endpoint& ep, int timeout_ms,
                         std::string* err) {
  net::Fd fd = net::connect_tcp(ep.port);
  if (!fd.valid()) {
    set_err(err, "connect refused");
    return {};
  }
  if (!net::wait_writable(fd.get(), timeout_ms)) {
    set_err(err, "connect timeout");
    return {};
  }
  return fd;
}

bool write_all(int fd, const std::string& data, int timeout_ms,
               std::string* err) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t sent = 0;
  while (sent < data.size()) {
    const net::IoResult r =
        net::write_some(fd, data.data() + sent, data.size() - sent);
    switch (r.status) {
      case net::IoStatus::Ok:
        sent += r.bytes;
        break;
      case net::IoStatus::WouldBlock: {
        const int left = remaining_ms(deadline);
        if (left == 0 || !net::wait_writable(fd, left)) {
          set_err(err, "write timeout");
          return false;
        }
        break;
      }
      default:
        set_err(err, "write error");
        return false;
    }
  }
  return true;
}

bool LineReader::next(std::string& line, int timeout_ms, std::string* err) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line.assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const net::IoResult r = net::read_some(fd_, chunk, sizeof chunk);
    switch (r.status) {
      case net::IoStatus::Ok:
        buf_.append(chunk, r.bytes);
        break;
      case net::IoStatus::WouldBlock: {
        const int left = remaining_ms(deadline);
        if (left == 0 || !net::wait_readable(fd_, left)) {
          set_err(err, "read timeout");
          return false;
        }
        break;
      }
      case net::IoStatus::Eof:
        set_err(err, "peer closed");
        return false;
      default:
        set_err(err, "read error");
        return false;
    }
  }
}

bool request_line(const repl::Endpoint& ep, std::string request,
                  int timeout_ms, std::string& reply, std::string* err) {
  if (request.empty() || request.back() != '\n') request += '\n';
  net::Fd fd = connect_endpoint(ep, timeout_ms, err);
  if (!fd.valid()) return false;
  if (!write_all(fd.get(), request, timeout_ms, err)) return false;
  LineReader reader(fd.get());
  return reader.next(reply, timeout_ms, err);
}

}  // namespace ilc::cluster
