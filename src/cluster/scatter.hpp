// cluster::ScatterClient — cross-shard queries over the sharded fleet.
// Fingerprint routing answers "which shard owns this module"; scatter
// answers the questions that span all of them: fleet-wide `metrics`
// roll-ups, `ping` sweeps, any line-protocol query whose answer is the
// union of per-shard answers.
//
// One query() fans the request line to every shard concurrently (one
// thread per shard — shard counts are small and the latency is one
// round trip, not N). Per shard the Router picks the healthy endpoint:
// the primary, or a follower (read-only) when the primary is marked
// down. An IO failure marks the endpoint down in the Router — scatter
// doubles as a passive health signal — and retries the shard once
// through the re-routed table before giving up on it.
//
// Degradation is explicit, never silent: the result carries one entry
// per shard in shard order, each flagged ok/failed, and `partial` is
// set when any shard could not answer. A caller that needs
// every-shard-or-error checks one bit; a caller that can use partial
// data (a metrics dashboard) uses what arrived.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "repl/router.hpp"

namespace ilc::cluster {

struct ScatterOptions {
  int timeout_ms = 1000;  ///< per-shard round-trip budget
  std::string metric_prefix = "cluster";
  obs::Registry* registry = nullptr;  ///< nullptr = process-wide
};

struct ShardReply {
  std::size_t shard = 0;
  repl::Endpoint endpoint;  ///< who answered (or last endpoint tried)
  bool ok = false;
  bool read_only = false;  ///< a follower answered (primary was down)
  std::string line;        ///< the response line ("" when !ok)
  std::string error;       ///< why the shard failed ("" when ok)
};

struct ScatterResult {
  std::vector<ShardReply> replies;  ///< one per shard, in shard order
  std::size_t responded = 0;
  bool partial = false;  ///< some shard did not answer

  bool complete() const { return !partial; }
};

class ScatterClient {
 public:
  /// The Router provides the topology and health view, and receives
  /// mark-downs for endpoints that fail mid-scatter. Must outlive the
  /// client.
  ScatterClient(repl::Router& router, ScatterOptions opts = {});

  /// Send one protocol line to every shard concurrently.
  ScatterResult query(const std::string& line);

  /// Merge `metrics`-shaped replies ("metrics k=v k=v ...") by summing
  /// each key across the responding shards, keys in first-seen order.
  static std::string merge_metrics(const ScatterResult& result);

 private:
  ShardReply query_shard(std::size_t shard, const std::string& line);

  repl::Router* router_;
  ScatterOptions opts_;
  obs::Counter queries_;
  obs::Counter partials_;
  obs::Counter shard_errors_;
};

}  // namespace ilc::cluster
