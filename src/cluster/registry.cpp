#include "cluster/registry.hpp"

#include <algorithm>
#include <cstdlib>

#include "cluster/lineio.hpp"
#include "support/string_utils.hpp"

namespace ilc::cluster {

namespace {

bool parse_endpoint(const std::string& text, repl::Endpoint& out) {
  const auto colon = text.rfind(':');
  if (colon == std::string::npos || colon + 1 >= text.size()) return false;
  const long port = std::strtol(text.c_str() + colon + 1, nullptr, 10);
  if (port <= 0 || port > 65535) return false;
  out.host = text.substr(0, colon);
  out.port = static_cast<std::uint16_t>(port);
  return !out.host.empty();
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 10);
  return end && *end == '\0';
}

/// `key=value` field of a response/shard line, "" when absent.
std::string field(const std::vector<std::string>& words,
                  const std::string& key) {
  const std::string prefix = key + "=";
  for (const std::string& w : words)
    if (w.rfind(prefix, 0) == 0) return w.substr(prefix.size());
  return "";
}

}  // namespace

// ---- codec ---------------------------------------------------------------

std::vector<std::string> encode_shard_map(const ShardMap& map) {
  std::vector<std::string> lines;
  lines.push_back("map epoch=" + std::to_string(map.epoch) +
                  " shards=" + std::to_string(map.shards.size()));
  for (std::size_t i = 0; i < map.shards.size(); ++i) {
    const ShardEntry& e = map.shards[i];
    std::string followers;
    for (const repl::Endpoint& f : e.followers) {
      if (!followers.empty()) followers += ',';
      followers += f.to_string();
    }
    if (followers.empty()) followers = "-";
    // A shard nobody has announced yet has no leader: encoded "-", not
    // an unconnectable host:0.
    const std::string leader =
        e.leader.port != 0 ? e.leader.to_string() : std::string("-");
    lines.push_back("shard " + std::to_string(i) + " leader=" + leader +
                    " ship=" + std::to_string(e.ship_port) +
                    " health=" + e.health + " followers=" + followers);
  }
  lines.push_back("end");
  return lines;
}

bool decode_shard_map(const std::vector<std::string>& lines, ShardMap& out) {
  if (lines.empty()) return false;
  const std::vector<std::string> head = support::split_ws(lines[0]);
  if (head.empty() || head[0] != "map") return false;
  ShardMap map;
  std::uint64_t shard_count = 0;
  if (!parse_u64(field(head, "epoch"), map.epoch) ||
      !parse_u64(field(head, "shards"), shard_count))
    return false;
  map.shards.resize(shard_count);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (lines[i] == "end") {
      out = std::move(map);
      return true;
    }
    const std::vector<std::string> words = support::split_ws(lines[i]);
    std::uint64_t idx = 0;
    if (words.size() < 2 || words[0] != "shard" || !parse_u64(words[1], idx) ||
        idx >= shard_count)
      return false;
    ShardEntry& e = map.shards[idx];
    const std::string leader = field(words, "leader");
    if (leader != "-" && !parse_endpoint(leader, e.leader)) return false;
    std::uint64_t ship = 0;
    if (!parse_u64(field(words, "ship"), ship) || ship > 65535) return false;
    e.ship_port = static_cast<std::uint16_t>(ship);
    e.health = field(words, "health");
    const std::string followers = field(words, "followers");
    if (followers != "-" && !followers.empty()) {
      std::size_t start = 0;
      while (start <= followers.size()) {
        const std::size_t comma = followers.find(',', start);
        const std::string one =
            followers.substr(start, comma == std::string::npos
                                        ? std::string::npos
                                        : comma - start);
        repl::Endpoint ep;
        if (!parse_endpoint(one, ep)) return false;
        e.followers.push_back(ep);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    }
  }
  return false;  // no "end": truncated response
}

std::vector<repl::Router::Shard> to_router_shards(const ShardMap& map) {
  std::vector<repl::Router::Shard> shards;
  shards.reserve(map.shards.size());
  for (const ShardEntry& e : map.shards)
    shards.push_back({e.leader, e.followers});
  return shards;
}

// ---- Registry ------------------------------------------------------------

Registry::Registry(std::size_t shard_count, obs::Registry* metrics) {
  map_.shards.resize(shard_count);
  lead_epoch_.resize(shard_count, 0);
  obs::Registry& reg = metrics ? *metrics : obs::Registry::instance();
  g_epoch_ = reg.gauge("cluster.registry.epoch");
  changes_ = reg.counter("cluster.registry.changes");
  fenced_ = reg.counter("cluster.registry.fenced");
}

std::uint64_t Registry::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.epoch;
}

ShardMap Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_;
}

bool Registry::lead(std::size_t shard, const repl::Endpoint& leader,
                    std::uint16_t ship_port, std::uint64_t known_epoch,
                    std::string* why) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shard >= map_.shards.size()) {
    if (why) *why = "no such shard " + std::to_string(shard);
    return false;
  }
  if (known_epoch < lead_epoch_[shard]) {
    // The announcer's view predates this shard's last leadership change:
    // a resurrected old leader (or a lost promotion race). Refuse.
    fenced_.add(1);
    if (why)
      *why = "fenced: shard " + std::to_string(shard) +
             " leadership changed at epoch " +
             std::to_string(lead_epoch_[shard]) + ", announcer knew epoch " +
             std::to_string(known_epoch);
    return false;
  }
  ShardEntry& e = map_.shards[shard];
  // The new leader stops being anyone's follower; the old leader is
  // gone until it rejoins explicitly (as a follower, post-re-sync).
  for (ShardEntry& s : map_.shards)
    s.followers.erase(
        std::remove(s.followers.begin(), s.followers.end(), leader),
        s.followers.end());
  e.leader = leader;
  e.ship_port = ship_port;
  e.health = "healthy";
  map_.epoch += 1;
  lead_epoch_[shard] = map_.epoch;
  g_epoch_.set(static_cast<std::int64_t>(map_.epoch));
  changes_.add(1);
  return true;
}

bool Registry::follow(std::size_t shard, const repl::Endpoint& ep) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shard >= map_.shards.size()) return false;
  for (ShardEntry& s : map_.shards)
    s.followers.erase(std::remove(s.followers.begin(), s.followers.end(), ep),
                      s.followers.end());
  map_.shards[shard].followers.push_back(ep);
  map_.epoch += 1;
  g_epoch_.set(static_cast<std::int64_t>(map_.epoch));
  changes_.add(1);
  return true;
}

bool Registry::health(const repl::Endpoint& ep, const std::string& state) {
  std::lock_guard<std::mutex> lock(mu_);
  bool touched = false;
  for (ShardEntry& s : map_.shards)
    if (s.leader == ep && s.health != state) {
      s.health = state;
      touched = true;
    }
  if (touched) {
    map_.epoch += 1;
    g_epoch_.set(static_cast<std::int64_t>(map_.epoch));
    changes_.add(1);
  }
  return true;
}

std::string Registry::handle(const std::string& line) {
  const std::vector<std::string> words = support::split_ws(line);
  if (words.empty()) return "err empty command\n";

  if (words[0] == "get") {
    std::string out;
    for (const std::string& l : encode_shard_map(snapshot())) {
      out += l;
      out += '\n';
    }
    return out;
  }
  if (words[0] == "epoch")
    return "epoch " + std::to_string(epoch()) + "\n";

  if (words[0] == "lead") {
    std::uint64_t shard = 0, ship = 0, known = 0;
    repl::Endpoint leader;
    if (words.size() != 5 || !parse_u64(words[1], shard) ||
        !parse_endpoint(words[2], leader) || !parse_u64(words[3], ship) ||
        ship > 65535 || !parse_u64(words[4], known))
      return "err lead: want `lead <shard> <host:port> <ship_port> "
             "<known_epoch>`\n";
    std::string why;
    if (!lead(static_cast<std::size_t>(shard), leader,
              static_cast<std::uint16_t>(ship), known, &why))
      return "err " + why + "\n";
    return "ok epoch=" + std::to_string(epoch()) + "\n";
  }
  if (words[0] == "follow") {
    std::uint64_t shard = 0;
    repl::Endpoint ep;
    if (words.size() != 3 || !parse_u64(words[1], shard) ||
        !parse_endpoint(words[2], ep))
      return "err follow: want `follow <shard> <host:port>`\n";
    if (!follow(static_cast<std::size_t>(shard), ep))
      return "err no such shard " + words[1] + "\n";
    return "ok epoch=" + std::to_string(epoch()) + "\n";
  }
  if (words[0] == "health") {
    repl::Endpoint ep;
    if (words.size() != 3 || !parse_endpoint(words[1], ep))
      return "err health: want `health <host:port> <state>`\n";
    health(ep, words[2]);
    return "ok epoch=" + std::to_string(epoch()) + "\n";
  }
  return "err unknown command '" + words[0] + "'\n";
}

// ---- RegistryServer ------------------------------------------------------

std::unique_ptr<RegistryServer> RegistryServer::start(Registry& registry,
                                                      std::uint16_t port) {
  auto s = std::unique_ptr<RegistryServer>(new RegistryServer());
  s->registry_ = &registry;
  try {
    s->listen_ = net::listen_tcp(port, s->port_);
  } catch (const std::exception&) {
    return nullptr;
  }
  s->acceptor_ = std::thread(&RegistryServer::accept_loop, s.get());
  return s;
}

RegistryServer::~RegistryServer() { stop(); }

void RegistryServer::stop() {
  if (stop_.exchange(true)) return;
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(threads_mu_);
    threads.swap(threads_);
  }
  for (auto& t : threads)
    if (t.joinable()) t.join();
  listen_.reset();
}

void RegistryServer::accept_loop() {
  while (!stop_.load()) {
    if (!net::wait_readable(listen_.get(), 50)) continue;
    bool dropped = false;
    net::Fd conn = net::accept_conn(listen_.get(), &dropped);
    if (!conn.valid()) continue;
    std::lock_guard<std::mutex> lk(threads_mu_);
    threads_.emplace_back(&RegistryServer::session, this, std::move(conn));
  }
}

void RegistryServer::session(net::Fd fd) {
  LineReader reader(fd.get());
  std::string line;
  std::string err;
  while (!stop_.load()) {
    // Short poll per line so stop() is honored on an idle connection.
    err.clear();
    if (!reader.next(line, 50, &err)) {
      if (err == "read timeout") continue;  // idle, not gone
      return;  // EOF or hard error: the peer is done
    }
    if (line == "quit") return;
    const std::string response = registry_->handle(line);
    if (!write_all(fd.get(), response, 1000)) return;
  }
}

// ---- RegistryClient ------------------------------------------------------

RegistryClient::RegistryClient(repl::Endpoint registry_ep, int timeout_ms)
    : registry_ep_(std::move(registry_ep)), timeout_ms_(timeout_ms) {}

bool RegistryClient::fetch(std::string* err) {
  net::Fd fd = connect_endpoint(registry_ep_, timeout_ms_, err);
  if (!fd.valid()) return false;
  if (!write_all(fd.get(), "get\n", timeout_ms_, err)) return false;
  LineReader reader(fd.get());
  std::vector<std::string> lines;
  std::string line;
  do {
    if (!reader.next(line, timeout_ms_, err)) return false;
    lines.push_back(line);
  } while (line != "end");
  ShardMap map;
  if (!decode_shard_map(lines, map)) {
    if (err) *err = "malformed shard map";
    return false;
  }
  cache_ = std::move(map);
  return true;
}

bool RegistryClient::refresh(std::string* err) {
  std::string reply;
  if (!request_line(registry_ep_, "epoch", timeout_ms_, reply, err))
    return false;
  const std::vector<std::string> words = support::split_ws(reply);
  std::uint64_t remote = 0;
  if (words.size() != 2 || words[0] != "epoch" || !parse_u64(words[1], remote)) {
    if (err) *err = "malformed epoch reply: " + reply;
    return false;
  }
  if (remote == cache_.epoch) return true;
  return fetch(err);
}

bool RegistryClient::command(const std::string& line, std::string* why) {
  std::string reply;
  if (!request_line(registry_ep_, line, timeout_ms_, reply, why))
    return false;
  if (reply.rfind("ok", 0) == 0) return true;
  if (why) *why = reply;
  return false;
}

bool RegistryClient::lead(std::size_t shard, const repl::Endpoint& leader,
                          std::uint16_t ship_port, std::uint64_t known_epoch,
                          std::string* why) {
  return command("lead " + std::to_string(shard) + " " + leader.to_string() +
                     " " + std::to_string(ship_port) + " " +
                     std::to_string(known_epoch),
                 why);
}

bool RegistryClient::follow(std::size_t shard, const repl::Endpoint& ep,
                            std::string* why) {
  return command("follow " + std::to_string(shard) + " " + ep.to_string(),
                 why);
}

bool RegistryClient::health(const repl::Endpoint& ep, const std::string& state,
                            std::string* why) {
  return command("health " + ep.to_string() + " " + state, why);
}

}  // namespace ilc::cluster
