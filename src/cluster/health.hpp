// cluster::HealthMonitor — active health probing for a fleet of tuning
// services, closing the PR 8 gap where repl::Router health was marked by
// whoever happened to hit an IO error. The monitor probes every endpoint
// over the existing line protocol (`ping`, answered synchronously even
// on a saturated server) and drives a per-endpoint state machine:
//
//           probe ok                    probe fail
//   Healthy ----------- Healthy   Healthy ---------- Suspect
//   Suspect ----------- Healthy   Suspect --(down_after consecutive
//   Down    ----------- Recovering            failures total)-- Down
//   Recovering --(up_after consecutive     Recovering --------- Down
//                 successes)----- Healthy  Down -------------- Down
//
// Suspect is the grace period: the endpoint keeps serving (the Router is
// not told) until `down_after` consecutive probes fail, so one dropped
// packet does not fail over a healthy leader. Recovering is the
// symmetric debounce on the way back up.
//
// Wiring: watch() points the monitor at a repl::Router — reaching Down
// calls set_down, regaining Healthy calls set_up, so follower fallback
// becomes automatic. on_change() observes every transition (the failover
// path hangs a Promoter off leader-Down). probe_all_once() runs one
// synchronous round — the deterministic unit the tests and the failover
// bench drive, with no wall-clock dependence; start() runs the same
// round on a background thread every probe_interval_ms.
//
// Failpoint: `cluster.probe` fails the default ping probe (error kind),
// making "the leader died" a deterministic event in tests.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "repl/router.hpp"

namespace ilc::cluster {

enum class Health { Healthy, Suspect, Down, Recovering };

const char* to_string(Health h);

/// One synchronous line-protocol probe: connect, send "ping", expect an
/// "ok pong ..." reply within `timeout_ms`. The `cluster.probe`
/// failpoint (error kind) fails it deterministically.
bool ping_probe(const repl::Endpoint& ep, int timeout_ms);

struct HealthOptions {
  int probe_interval_ms = 50;   ///< background round cadence
  int probe_timeout_ms = 200;   ///< per-probe reply deadline
  int down_after = 3;  ///< consecutive failures before Down
  int up_after = 2;    ///< consecutive successes before Healthy again

  /// Probe implementation; tests inject a deterministic one. Default:
  /// ping_probe over the line protocol with probe_timeout_ms.
  std::function<bool(const repl::Endpoint&)> probe;

  /// Gauge/counter name prefix (an in-process fleet gives each monitor
  /// its own) and the registry to publish into (nullptr = process-wide).
  std::string metric_prefix = "cluster";
  obs::Registry* registry = nullptr;
};

class HealthMonitor {
 public:
  /// Every state transition: (endpoint, old, new). Fired outside the
  /// monitor's lock, on the probing thread.
  using StateChange =
      std::function<void(const repl::Endpoint&, Health, Health)>;

  explicit HealthMonitor(HealthOptions opts = {});
  ~HealthMonitor();  // stop()

  /// Register an endpoint (initially Healthy). Duplicates are ignored.
  void add(const repl::Endpoint& ep);
  /// Forget an endpoint (a replica removed from the fleet).
  void remove(const repl::Endpoint& ep);

  /// Feed transitions into a Router: Down -> set_down, back to Healthy
  /// -> set_up. The Router must outlive the monitor (or be un-watched
  /// with nullptr first).
  void watch(repl::Router* router);
  void on_change(StateChange fn);

  Health state(const repl::Endpoint& ep) const;
  std::vector<std::pair<repl::Endpoint, Health>> states() const;

  /// One synchronous probe round over every endpoint. The deterministic
  /// driver for tests; also the body of the background loop.
  void probe_all_once();

  /// Start/stop the background probing thread. start() is idempotent.
  void start();
  void stop();

 private:
  struct Slot {
    repl::Endpoint ep;
    Health state = Health::Healthy;
    int fails = 0;  // consecutive probe failures
    int oks = 0;    // consecutive successes while Recovering
    obs::Gauge gauge;  // current state as an integer
  };
  struct Transition {
    repl::Endpoint ep;
    Health from;
    Health to;
  };

  /// Apply one probe result to slot `i` (mu_ held); records the
  /// transition, if any, for post-unlock delivery.
  void apply_locked(std::size_t i, bool ok, std::vector<Transition>& out);
  void loop();

  HealthOptions opts_;
  obs::Counter probes_;
  obs::Counter probe_failures_;
  obs::Counter transitions_down_;
  obs::Counter transitions_up_;

  mutable std::mutex mu_;  // guards slots_, router_, on_change_
  std::vector<Slot> slots_;
  repl::Router* router_ = nullptr;
  StateChange on_change_;

  std::thread thread_;
  std::mutex cv_mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace ilc::cluster
