#include "cluster/promote.hpp"

#include <chrono>

namespace ilc::cluster {

Promoter::Promoter(PromoterOptions opts) : opts_(std::move(opts)) {
  obs::Registry& reg =
      opts_.registry ? *opts_.registry : obs::Registry::instance();
  const std::string& p = opts_.metric_prefix;
  failovers_ = reg.counter(p + ".failovers");
  promotion_us_ = reg.histogram(p + ".promotion_us");
  last_promotion_us_ = reg.gauge(p + ".last_promotion_us");
  generation_ = reg.gauge(p + ".leader_generation");
}

std::size_t Promoter::pick(const std::vector<Replica>& replicas) {
  std::size_t best = replicas.size();
  kbstore::WalPosition best_pos;
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    if (!replicas[i].applier) continue;
    const kbstore::WalPosition pos = replicas[i].applier->position();
    const bool ahead =
        best == replicas.size() || pos.generation > best_pos.generation ||
        (pos.generation == best_pos.generation && pos.seq > best_pos.seq);
    if (ahead) {
      best = i;
      best_pos = pos;
    }
  }
  return best;
}

PromotionResult Promoter::failover(std::vector<Replica>& replicas,
                                   std::uint16_t ship_port) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point t0 = Clock::now();
  PromotionResult result;

  // 1. Drain: stop the shipping transports. ShipClient::stop joins its
  // thread, so after this loop every Applier holds everything it ever
  // received from the old leader.
  for (Replica& r : replicas)
    if (r.client) r.client->stop();

  // 2. Pick the most-caught-up survivor by durable position.
  const std::size_t chosen = pick(replicas);
  if (chosen == replicas.size()) {
    result.why = "no promotable replica";
    return result;
  }

  // 3. Flip its store out of follower mode onto a fenced generation.
  std::string why;
  std::shared_ptr<kbstore::Store> store =
      replicas[chosen].applier->promote(&why);
  if (!store) {
    result.why = "promotion of replica " + std::to_string(chosen) +
                 " failed: " + why;
    return result;
  }
  replicas[chosen].client.reset();  // nobody's follower now

  // 4. Ship from the new leader; re-point the remaining followers.
  std::unique_ptr<repl::ShipServer> ship =
      repl::ShipServer::start(replicas[chosen].dir, ship_port);
  if (!ship) {
    result.why = "ship server failed to bind";
    return result;
  }
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    if (i == chosen || !replicas[i].applier) continue;
    replicas[i].client = repl::ShipClient::start(
        *replicas[i].applier, ship->port(), opts_.ship_client);
  }

  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - t0)
                      .count();
  failovers_.add(1);
  promotion_us_.record(static_cast<std::uint64_t>(us));
  last_promotion_us_.set(static_cast<std::int64_t>(us));
  generation_.set(static_cast<std::int64_t>(store->wal_generation()));

  result.ok = true;
  result.chosen = chosen;
  result.generation = store->wal_generation();
  result.store = std::move(store);
  result.ship = std::move(ship);
  return result;
}

}  // namespace ilc::cluster
