// cluster::Promoter — automatic failover for one shard: when the leader
// dies, turn the best follower into the new leader and re-point the
// rest, without losing a single acknowledged record.
//
// Promotion protocol (failover()):
//   1. Stop every follower's ShipClient. stop() joins the shipping
//      thread, so each Applier has fully applied everything it ever
//      received — the drain step.
//   2. Pick the most-caught-up follower: max (generation, seq) of the
//      durable WalPosition. Replication acknowledges only flushed,
//      verified frames, so this is on-disk truth, not an optimistic
//      in-memory counter.
//   3. Promote its Applier: the kbstore flips out of follower mode onto
//      a *new WAL generation* (an immediate fencing compaction). From
//      here the old leader's stream is undeliverable to this store (its
//      generation is dead history), and — by the existing split-brain
//      handshake checks — this store's own stream rejects any follower
//      whose position is ahead of or divergent from the new history.
//   4. Start a ShipServer over the promoted store and restart the
//      remaining followers' ShipClients against it. A follower behind
//      the promoted position bootstraps from the promotion snapshot; a
//      follower that had applied frames the new leader never saw (it
//      was ahead of the chosen one — impossible if pick() ran after the
//      drain, but possible with a partitioned straggler) is rejected by
//      the chain/generation check, never silently rewritten.
//
// A resurrected old leader is fenced twice over: its data stream is for
// a dead generation (data plane), and its registry re-announcement
// carries a pre-failover epoch (control plane, cluster::Registry).
//
// The Promoter coordinates replicas living in this process (the
// deterministic-test and example topology; every replica in this repo
// is in-process by design — see repl's loopback transport). What it
// manipulates — Applier, ShipClient, ShipServer, store directories —
// is exactly what a multi-process supervisor would hold per replica.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kbstore/store.hpp"
#include "obs/metrics.hpp"
#include "repl/transport.hpp"

namespace ilc::cluster {

/// One follower replica of the shard, as the supervisor holds it.
struct Replica {
  std::string dir;  ///< store directory (for the new ShipServer)
  std::shared_ptr<repl::Applier> applier;
  std::unique_ptr<repl::ShipClient> client;  ///< shipping from the old leader
};

struct PromotionResult {
  bool ok = false;
  std::string why;  ///< failure reason when !ok
  std::size_t chosen = 0;  ///< index of the promoted replica
  std::uint64_t generation = 0;  ///< post-promotion (fenced) generation
  std::shared_ptr<kbstore::Store> store;  ///< the new leader store
  std::unique_ptr<repl::ShipServer> ship;  ///< its WAL-shipping server
};

struct PromoterOptions {
  std::string metric_prefix = "cluster";
  obs::Registry* registry = nullptr;  ///< nullptr = process-wide
  repl::ShipClientOptions ship_client;  ///< for the re-pointed followers
};

class Promoter {
 public:
  explicit Promoter(PromoterOptions opts = {});

  /// The most-caught-up replica: max (generation, seq), ties to the
  /// lowest index. Call after draining (clients stopped) for an exact
  /// answer. Returns replicas.size() when the vector is empty.
  static std::size_t pick(const std::vector<Replica>& replicas);

  /// Run the full promotion protocol (see file comment) over the
  /// shard's surviving replicas. On success the chosen replica's
  /// `client` is cleared (it is nobody's follower now) and the others'
  /// are replaced with clients of the new leader; the result carries
  /// the promoted store and its ShipServer (listening on `ship_port`,
  /// 0 = ephemeral). On failure the replicas are left drained
  /// (clients stopped) but otherwise untouched.
  PromotionResult failover(std::vector<Replica>& replicas,
                           std::uint16_t ship_port = 0);

  std::uint64_t failovers() const { return failovers_.value(); }

 private:
  PromoterOptions opts_;
  obs::Counter failovers_;
  obs::Histogram promotion_us_;
  obs::Gauge last_promotion_us_;
  obs::Gauge generation_;
};

}  // namespace ilc::cluster
