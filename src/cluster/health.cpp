#include "cluster/health.hpp"

#include <algorithm>
#include <chrono>

#include "cluster/lineio.hpp"
#include "support/failpoint.hpp"

namespace ilc::cluster {

const char* to_string(Health h) {
  switch (h) {
    case Health::Healthy: return "healthy";
    case Health::Suspect: return "suspect";
    case Health::Down: return "down";
    case Health::Recovering: return "recovering";
  }
  return "?";
}

bool ping_probe(const repl::Endpoint& ep, int timeout_ms) {
  // Fault injection: "cluster.probe" (error kind) is the probe packet
  // lost / endpoint frozen — the deterministic leader-death of the tests.
  if (support::failpoint("cluster.probe")) return false;
  std::string reply;
  if (!request_line(ep, "ping", timeout_ms, reply)) return false;
  return reply.rfind("ok pong", 0) == 0;
}

HealthMonitor::HealthMonitor(HealthOptions opts) : opts_(std::move(opts)) {
  if (!opts_.probe) {
    const int timeout = opts_.probe_timeout_ms;
    opts_.probe = [timeout](const repl::Endpoint& ep) {
      return ping_probe(ep, timeout);
    };
  }
  obs::Registry& reg =
      opts_.registry ? *opts_.registry : obs::Registry::instance();
  const std::string& p = opts_.metric_prefix;
  probes_ = reg.counter(p + ".probes");
  probe_failures_ = reg.counter(p + ".probe_failures");
  transitions_down_ = reg.counter(p + ".mark_down");
  transitions_up_ = reg.counter(p + ".mark_up");
}

HealthMonitor::~HealthMonitor() { stop(); }

void HealthMonitor::add(const repl::Endpoint& ep) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Slot& s : slots_)
    if (s.ep == ep) return;
  Slot slot;
  slot.ep = ep;
  obs::Registry& reg =
      opts_.registry ? *opts_.registry : obs::Registry::instance();
  slot.gauge =
      reg.gauge(opts_.metric_prefix + ".health." + ep.to_string());
  slot.gauge.set(static_cast<std::int64_t>(Health::Healthy));
  slots_.push_back(std::move(slot));
}

void HealthMonitor::remove(const repl::Endpoint& ep) {
  std::lock_guard<std::mutex> lock(mu_);
  slots_.erase(std::remove_if(slots_.begin(), slots_.end(),
                              [&](const Slot& s) { return s.ep == ep; }),
               slots_.end());
}

void HealthMonitor::watch(repl::Router* router) {
  std::lock_guard<std::mutex> lock(mu_);
  router_ = router;
}

void HealthMonitor::on_change(StateChange fn) {
  std::lock_guard<std::mutex> lock(mu_);
  on_change_ = std::move(fn);
}

Health HealthMonitor::state(const repl::Endpoint& ep) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Slot& s : slots_)
    if (s.ep == ep) return s.state;
  return Health::Down;  // unknown = not servable
}

std::vector<std::pair<repl::Endpoint, Health>> HealthMonitor::states() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<repl::Endpoint, Health>> out;
  out.reserve(slots_.size());
  for (const Slot& s : slots_) out.emplace_back(s.ep, s.state);
  return out;
}

void HealthMonitor::apply_locked(std::size_t i, bool ok,
                                 std::vector<Transition>& out) {
  Slot& s = slots_[i];
  const Health before = s.state;
  if (ok) {
    s.fails = 0;
    switch (s.state) {
      case Health::Healthy:
        break;
      case Health::Suspect:
        // One good probe clears suspicion — it never stopped serving.
        s.state = Health::Healthy;
        break;
      case Health::Down:
        s.state = Health::Recovering;
        s.oks = 1;
        if (s.oks >= opts_.up_after) s.state = Health::Healthy;
        break;
      case Health::Recovering:
        if (++s.oks >= opts_.up_after) s.state = Health::Healthy;
        break;
    }
  } else {
    s.oks = 0;
    probe_failures_.add(1);
    switch (s.state) {
      case Health::Healthy:
        s.fails = 1;
        s.state = s.fails >= opts_.down_after ? Health::Down
                                              : Health::Suspect;
        break;
      case Health::Suspect:
        if (++s.fails >= opts_.down_after) s.state = Health::Down;
        break;
      case Health::Recovering:
        s.state = Health::Down;  // relapse: restart the up_after count
        break;
      case Health::Down:
        break;
    }
  }
  if (s.state != before) {
    s.gauge.set(static_cast<std::int64_t>(s.state));
    if (s.state == Health::Down) transitions_down_.add(1);
    if (s.state == Health::Healthy && before != Health::Suspect)
      transitions_up_.add(1);
    out.push_back({s.ep, before, s.state});
  }
}

void HealthMonitor::probe_all_once() {
  // Probe without the lock (IO), then apply results under it, then
  // deliver transitions outside it again (the Router has its own lock;
  // a callback may re-enter the monitor).
  std::vector<repl::Endpoint> eps;
  std::function<bool(const repl::Endpoint&)> probe;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Slot& s : slots_) eps.push_back(s.ep);
    probe = opts_.probe;
  }
  std::vector<bool> results(eps.size());
  for (std::size_t i = 0; i < eps.size(); ++i) {
    probes_.add(1);
    results[i] = probe(eps[i]);
  }

  std::vector<Transition> transitions;
  repl::Router* router = nullptr;
  StateChange on_change;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < eps.size(); ++i)
      for (std::size_t k = 0; k < slots_.size(); ++k)
        if (slots_[k].ep == eps[i]) {
          apply_locked(k, results[i], transitions);
          break;
        }
    router = router_;
    on_change = on_change_;
  }

  for (const Transition& t : transitions) {
    if (router) {
      if (t.to == Health::Down) router->set_down(t.ep);
      if (t.to == Health::Healthy) router->set_up(t.ep);
    }
    if (on_change) on_change(t.ep, t.from, t.to);
  }
}

void HealthMonitor::start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(cv_mu_);
    stop_ = false;
  }
  thread_ = std::thread([this] { loop(); });
}

void HealthMonitor::stop() {
  {
    std::lock_guard<std::mutex> lock(cv_mu_);
    stop_ = true;
  }
  cv_.notify_one();
  if (thread_.joinable()) thread_.join();
}

void HealthMonitor::loop() {
  std::unique_lock<std::mutex> lock(cv_mu_);
  while (!stop_) {
    lock.unlock();
    probe_all_once();
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(opts_.probe_interval_ms),
                 [&] { return stop_; });
  }
}

}  // namespace ilc::cluster
