#include "cluster/scatter.hpp"

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

#include "cluster/lineio.hpp"
#include "support/string_utils.hpp"

namespace ilc::cluster {

ScatterClient::ScatterClient(repl::Router& router, ScatterOptions opts)
    : router_(&router), opts_(std::move(opts)) {
  obs::Registry& reg =
      opts_.registry ? *opts_.registry : obs::Registry::instance();
  const std::string& p = opts_.metric_prefix;
  queries_ = reg.counter(p + ".scatter.queries");
  partials_ = reg.counter(p + ".scatter.partial");
  shard_errors_ = reg.counter(p + ".scatter.shard_errors");
}

ShardReply ScatterClient::query_shard(std::size_t shard,
                                      const std::string& line) {
  ShardReply reply;
  reply.shard = shard;
  // Two passes: the routed endpoint, then — after marking a failure
  // down — whatever the Router re-routes to (a follower, typically).
  for (int attempt = 0; attempt < 2; ++attempt) {
    const auto route = router_->route_shard(shard);
    if (!route) {
      if (reply.error.empty()) reply.error = "no healthy endpoint";
      return reply;
    }
    if (attempt > 0 && route->endpoint == reply.endpoint) {
      // Re-route landed on the endpoint that just failed; don't loop.
      return reply;
    }
    reply.endpoint = route->endpoint;
    reply.read_only = route->read_only;
    std::string err;
    if (request_line(route->endpoint, line, opts_.timeout_ms, reply.line,
                     &err)) {
      reply.ok = true;
      reply.error.clear();
      return reply;
    }
    reply.error = route->endpoint.to_string() + ": " + err;
    router_->set_down(route->endpoint);  // scatter as passive health signal
  }
  return reply;
}

ScatterResult ScatterClient::query(const std::string& line) {
  queries_.add(1);
  const std::size_t n = router_->shard_count();
  ScatterResult result;
  result.replies.resize(n);

  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t s = 0; s < n; ++s)
    threads.emplace_back([this, s, &line, &result] {
      result.replies[s] = query_shard(s, line);
    });
  for (std::thread& t : threads) t.join();

  for (const ShardReply& r : result.replies) {
    if (r.ok)
      ++result.responded;
    else
      shard_errors_.add(1);
  }
  result.partial = result.responded < n;
  if (result.partial) partials_.add(1);
  return result;
}

std::string ScatterClient::merge_metrics(const ScatterResult& result) {
  std::vector<std::string> order;
  std::vector<double> sums;
  for (const ShardReply& r : result.replies) {
    if (!r.ok) continue;
    const std::vector<std::string> words = support::split_ws(r.line);
    for (const std::string& w : words) {
      const auto eq = w.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = w.substr(0, eq);
      char* end = nullptr;
      const double v = std::strtod(w.c_str() + eq + 1, &end);
      if (end == nullptr || *end != '\0') continue;  // non-numeric value
      std::size_t k = 0;
      while (k < order.size() && order[k] != key) ++k;
      if (k == order.size()) {
        order.push_back(key);
        sums.push_back(0.0);
      }
      sums[k] += v;
    }
  }
  std::string out = "metrics";
  for (std::size_t k = 0; k < order.size(); ++k) {
    const double v = sums[k];
    char buf[64];
    if (v == static_cast<double>(static_cast<long long>(v)))
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    else
      std::snprintf(buf, sizeof buf, "%g", v);
    out += " " + order[k] + "=" + buf;
  }
  if (result.partial)
    out += " partial=1 responded=" + std::to_string(result.responded) + "/" +
           std::to_string(result.replies.size());
  return out;
}

}  // namespace ilc::cluster
