// cluster::Registry — the shard map as a service, replacing the
// hand-wired --shard-of/--follower-of topology of PR 8. One node serves
// the authoritative map (shard -> {leader, ship port, followers,
// health}); every other party — clients building Routers, replicas
// joining the fleet, the promoter announcing a failover — reads and
// writes it over a tiny line protocol:
//
//   get                                   -> map epoch=<e> shards=<n>
//                                            shard <i> leader=<h:p> ship=<p>
//                                              health=<state> followers=<h:p,...|->
//                                            ... one line per shard ...
//                                            end
//   epoch                                 -> epoch <e>
//   lead <shard> <h:p> <ship_port> <ke>   -> ok epoch=<e> | err fenced: ...
//   follow <shard> <h:p>                  -> ok epoch=<e>
//   health <h:p> <state>                  -> ok epoch=<e>
//
// Every accepted change bumps the map's epoch, so clients cache the map
// and refresh only when a cheap `epoch` poll shows it moved.
//
// Fencing: `lead` carries the announcer's known epoch (`<ke>`). Each
// shard remembers the epoch of its last leadership change; an
// announcement whose known epoch is older is refused — a resurrected
// old leader, whose view of the world predates its own replacement,
// cannot reclaim the shard by simply re-announcing. This is the control
// plane half of the fence; the data plane half is the WAL generation
// bump (kbstore::Store::promote_to_leader) that makes the old leader's
// stream unacceptable to every promoted replica.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "repl/router.hpp"

namespace ilc::cluster {

struct ShardEntry {
  repl::Endpoint leader;
  std::uint16_t ship_port = 0;  ///< leader's WAL-shipping port
  std::vector<repl::Endpoint> followers;
  std::string health = "healthy";
};

struct ShardMap {
  std::uint64_t epoch = 0;
  std::vector<ShardEntry> shards;
};

/// Wire codec for the `get` response (header + shard lines + "end").
std::vector<std::string> encode_shard_map(const ShardMap& map);
bool decode_shard_map(const std::vector<std::string>& lines, ShardMap& out);

/// A Router topology from a map: one Shard per entry, followers in
/// announcement order.
std::vector<repl::Router::Shard> to_router_shards(const ShardMap& map);

/// The authoritative map. Thread-safe; the server below and in-process
/// tests share handle() for command dispatch.
class Registry {
 public:
  explicit Registry(std::size_t shard_count,
                    obs::Registry* metrics = nullptr);

  std::uint64_t epoch() const;
  ShardMap snapshot() const;

  /// Leadership announcement, fenced by `known_epoch` (see file
  /// comment). True bumps the epoch; false leaves the map untouched and
  /// puts the reason in `why`.
  bool lead(std::size_t shard, const repl::Endpoint& leader,
            std::uint16_t ship_port, std::uint64_t known_epoch,
            std::string* why = nullptr);
  /// Register a follower of `shard` (idempotent). Also removes it from
  /// any stale role it held elsewhere in the map.
  bool follow(std::size_t shard, const repl::Endpoint& ep);
  /// Record probed health for a shard leader ("healthy", "down", ...).
  bool health(const repl::Endpoint& ep, const std::string& state);

  /// Dispatch one protocol line; the full response, '\n'-terminated
  /// (multi-line for `get`).
  std::string handle(const std::string& line);

 private:
  mutable std::mutex mu_;
  ShardMap map_;
  std::vector<std::uint64_t> lead_epoch_;  // per-shard fence
  obs::Gauge g_epoch_;
  obs::Counter changes_;
  obs::Counter fenced_;
};

/// Serves a Registry over loopback TCP, thread-per-connection (control
/// plane traffic is light and long-lived sessions are unnecessary —
/// every connection handles any number of commands, one line each).
class RegistryServer {
 public:
  /// Listen on 127.0.0.1:`port` (0 = ephemeral). nullptr when the port
  /// cannot be bound. The Registry must outlive the server.
  static std::unique_ptr<RegistryServer> start(Registry& registry,
                                               std::uint16_t port);
  ~RegistryServer();

  std::uint16_t port() const { return port_; }
  void stop();

 private:
  RegistryServer() = default;
  void accept_loop();
  void session(net::Fd fd);

  Registry* registry_ = nullptr;
  net::Fd listen_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread acceptor_;
  std::mutex threads_mu_;
  std::vector<std::thread> threads_;
};

/// Client-side cache of the map with epoch-based refresh. Connection
/// per call: control plane operations are rare (a refresh happens only
/// when the epoch moved) and a pooled connection is not worth its
/// failure modes here.
class RegistryClient {
 public:
  explicit RegistryClient(repl::Endpoint registry_ep, int timeout_ms = 1000);

  /// Fetch the full map unconditionally. False on IO/parse failure (the
  /// cached map is kept).
  bool fetch(std::string* err = nullptr);
  /// Poll the epoch; fetch only when it moved. True when the cache is
  /// fresh on return.
  bool refresh(std::string* err = nullptr);

  const ShardMap& map() const { return cache_; }
  std::uint64_t epoch() const { return cache_.epoch; }
  std::vector<repl::Router::Shard> router_shards() const {
    return to_router_shards(cache_);
  }

  bool lead(std::size_t shard, const repl::Endpoint& leader,
            std::uint16_t ship_port, std::uint64_t known_epoch,
            std::string* why = nullptr);
  bool follow(std::size_t shard, const repl::Endpoint& ep,
              std::string* why = nullptr);
  bool health(const repl::Endpoint& ep, const std::string& state,
              std::string* why = nullptr);

 private:
  bool command(const std::string& line, std::string* why);

  repl::Endpoint registry_ep_;
  int timeout_ms_;
  ShardMap cache_;
};

}  // namespace ilc::cluster
