// cluster line IO — small blocking helpers for the control plane's
// request/response exchanges over loopback TCP: health probes, registry
// lookups, and scatter-gather queries all speak newline-terminated text
// to an ilc::net socket from a dedicated thread, so a deadline-bounded
// blocking style (poll + read/write in a loop) is the right shape here,
// not the epoll event loop that serves thousands of tuning clients.
//
// Every call is bounded by a deadline: a peer that accepts the
// connection and then goes silent costs `timeout_ms`, never a hang.
#pragma once

#include <string>

#include "net/socket.hpp"
#include "repl/router.hpp"

namespace ilc::cluster {

/// Connect to `ep` (loopback; the host field is a label — ilc::net
/// sockets are 127.0.0.1-only by design) with the handshake bounded by
/// `timeout_ms`. Invalid Fd on refusal or timeout; `err` says which.
net::Fd connect_endpoint(const repl::Endpoint& ep, int timeout_ms,
                         std::string* err = nullptr);

/// Write all of `data`, polling for writability under the deadline.
bool write_all(int fd, const std::string& data, int timeout_ms,
               std::string* err = nullptr);

/// Incremental line reader over a nonblocking fd: buffers partial reads
/// across calls so multi-line responses (the registry's `get`) can be
/// consumed line by line with one deadline each.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Next '\n'-terminated line (terminator stripped). False on EOF,
  /// error, or deadline; `err` says which.
  bool next(std::string& line, int timeout_ms, std::string* err = nullptr);

 private:
  int fd_;
  std::string buf_;
};

/// One-shot exchange: connect, send `request` (a '\n' is appended when
/// missing), read a single response line. The whole round trip shares
/// one `timeout_ms` budget.
bool request_line(const repl::Endpoint& ep, std::string request,
                  int timeout_ms, std::string& reply,
                  std::string* err = nullptr);

}  // namespace ilc::cluster
