// Optimization "settings" — the flag-vector space of Figs. 3/4 (modeled on
// the CGO'07 PathScale flag experiments the paper draws on), plus the
// canonical pipelines: O0, FAST (the -Ofast analogue) and the pipeline
// assembler that turns a flag vector into an ordered pass sequence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "opt/pass.hpp"

namespace ilc::opt {

/// One point in the optimization-setting space.
struct OptFlags {
  bool constprop = false;
  bool copyprop = false;
  bool cse = false;
  bool dce = false;
  bool simplifycfg = false;
  bool licm = false;
  bool strengthred = false;
  bool peephole = false;
  bool inline_fns = false;
  bool schedule = false;
  bool prefetch = false;
  bool ptrcompress = false;
  unsigned unroll = 0;  // 0 (off), 2, 4, or 8

  bool operator==(const OptFlags&) const = default;

  /// Compact encoding: 12 flag bits + 2 unroll-selector bits.
  std::uint32_t encode() const;
  static OptFlags decode(std::uint32_t bits);
  static constexpr std::uint32_t kEncodings = 1u << 14;

  /// Short human-readable form, e.g. "constprop+licm+unroll4".
  std::string to_string() const;
};

/// Assemble the ordered pass pipeline a flag vector denotes.
std::vector<PassId> pipeline(const OptFlags& flags);

/// -O0: no optimization.
OptFlags o0_flags();
/// FAST: every standard optimization plus unroll-by-4 and prefetching —
/// but never data-layout changes, like a real -Ofast.
OptFlags fast_flags();

std::vector<PassId> fast_pipeline();

/// Remove trivial redundancy (copies, duplicate expressions, dead code,
/// degenerate control flow) without touching program structure. Used to
/// canonicalize builder-generated workloads into the "-O0 of a production
/// compiler" baseline: real -O0 codegen does not emit duplicate constant
/// loads, so an optimization-space study over raw builder output would
/// overcredit cleanup passes (see the Fig. 2 benches).
void canonicalize(ir::Module& mod);

}  // namespace ilc::opt
