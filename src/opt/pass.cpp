#include "opt/pass.hpp"

#include "support/assert.hpp"

namespace ilc::opt {

const char* pass_name(PassId id) {
  switch (id) {
    case PassId::ConstProp: return "constprop";
    case PassId::CopyProp: return "copyprop";
    case PassId::Cse: return "cse";
    case PassId::Dce: return "dce";
    case PassId::SimplifyCfg: return "simplifycfg";
    case PassId::Licm: return "licm";
    case PassId::StrengthRed: return "strengthred";
    case PassId::Peephole: return "peephole";
    case PassId::Inline: return "inline";
    case PassId::Schedule: return "schedule";
    case PassId::Unroll2: return "unroll2";
    case PassId::Unroll4: return "unroll4";
    case PassId::Unroll8: return "unroll8";
    case PassId::Prefetch: return "prefetch";
    case PassId::PtrCompress: return "ptrcompress";
    case PassId::Reassoc: return "reassoc";
    case PassId::kCount: break;
  }
  return "?";
}

PassId pass_from_name(const std::string& name) {
  for (unsigned i = 0; i < kNumPasses; ++i) {
    const auto id = static_cast<PassId>(i);
    if (name == pass_name(id)) return id;
  }
  ILC_CHECK_MSG(false, "unknown pass: " << name);
  return PassId::kCount;
}

bool is_unroll(PassId id) {
  return id == PassId::Unroll2 || id == PassId::Unroll4 ||
         id == PassId::Unroll8;
}

bool run_pass(PassId id, ir::Module& mod) {
  // Module-level passes first.
  if (id == PassId::Inline) return inline_calls(mod);
  if (id == PassId::PtrCompress) return compress_pointers(mod);

  bool changed = false;
  for (ir::Function& fn : mod.functions()) {
    switch (id) {
      case PassId::ConstProp: changed |= const_prop(fn, mod); break;
      case PassId::CopyProp: changed |= copy_prop(fn); break;
      case PassId::Cse: changed |= local_cse(fn); break;
      case PassId::Dce: changed |= dce(fn); break;
      case PassId::SimplifyCfg: changed |= simplify_cfg(fn); break;
      case PassId::Licm: changed |= licm(fn); break;
      case PassId::StrengthRed: changed |= strength_reduce(fn); break;
      case PassId::Peephole: changed |= peephole(fn); break;
      case PassId::Schedule: changed |= schedule_blocks(fn); break;
      case PassId::Unroll2: changed |= unroll_loops(fn, 2); break;
      case PassId::Unroll4: changed |= unroll_loops(fn, 4); break;
      case PassId::Unroll8: changed |= unroll_loops(fn, 8); break;
      case PassId::Prefetch: changed |= insert_prefetch(fn); break;
      case PassId::Reassoc: changed |= reassociate(fn); break;
      default: ILC_UNREACHABLE("bad pass id");
    }
  }
  return changed;
}

unsigned run_sequence(ir::Module& mod, const std::vector<PassId>& seq) {
  unsigned changed = 0;
  for (PassId id : seq)
    if (run_pass(id, mod)) ++changed;
  return changed;
}

std::vector<PassId> sequence_space() {
  std::vector<PassId> out;
  for (unsigned i = 0; i < kSequenceSpacePasses; ++i)
    out.push_back(static_cast<PassId>(i));
  return out;
}

}  // namespace ilc::opt
