// Scalar optimizations: global constant propagation/folding, block-local
// copy propagation and CSE, global dead-code elimination, strength
// reduction, and peephole simplification.
//
// Tagged immediates (record strides / field offsets / pointer width) are
// treated as opaque — never folded into untagged constants — so every
// sequence containing PtrCompress stays sound regardless of order.
#include <algorithm>
#include <optional>
#include <unordered_map>

#include "ir/analysis.hpp"
#include "opt/pass.hpp"
#include "support/assert.hpp"

namespace ilc::opt {

using namespace ir;

namespace {

// --- constant-propagation lattice -------------------------------------

struct Lattice {
  enum Kind : std::uint8_t { Top, Const, Bot } kind = Top;
  std::int64_t value = 0;

  static Lattice top() { return {}; }
  static Lattice constant(std::int64_t v) { return {Const, v}; }
  static Lattice bot() { return {Bot, 0}; }

  bool operator==(const Lattice&) const = default;
};

Lattice meet(const Lattice& a, const Lattice& b) {
  if (a.kind == Lattice::Top) return b;
  if (b.kind == Lattice::Top) return a;
  if (a.kind == Lattice::Bot || b.kind == Lattice::Bot)
    return Lattice::bot();
  return a.value == b.value ? a : Lattice::bot();
}

using State = std::vector<Lattice>;

void transfer(const Instr& inst, State& state) {
  if (!has_dst(inst)) return;
  Lattice out = Lattice::bot();
  switch (inst.op) {
    case Opcode::LoadImm:
      // Tagged immediates are layout-derived; keeping them opaque keeps
      // re-layout passes sound in any order.
      if (inst.tag == ImmTag::None) out = Lattice::constant(inst.imm);
      break;
    case Opcode::Mov:
      out = state[inst.a];
      break;
    case Opcode::Neg:
    case Opcode::Not:
      if (state[inst.a].kind == Lattice::Const) {
        std::int64_t v = 0;
        fold_constant(inst.op, state[inst.a].value, 0, v);
        out = Lattice::constant(v);
      }
      break;
    default:
      if (is_pure(inst) && num_srcs(inst) == 2 &&
          state[inst.a].kind == Lattice::Const &&
          state[inst.b].kind == Lattice::Const) {
        std::int64_t v = 0;
        if (fold_constant(inst.op, state[inst.a].value, state[inst.b].value,
                          v))
          out = Lattice::constant(v);
      }
      break;
  }
  state[inst.dst] = out;
}

}  // namespace

bool const_prop(Function& fn, Module& mod) {
  (void)mod;
  const Cfg cfg(fn);
  const auto rpo = reverse_post_order(fn);
  std::vector<std::uint8_t> reachable(fn.blocks.size(), 0);
  for (BlockId b : rpo) reachable[b] = 1;

  std::vector<State> in(fn.blocks.size(), State(fn.num_regs));
  std::vector<State> out(fn.blocks.size(), State(fn.num_regs));
  // Function arguments are unknown at entry.
  for (unsigned a = 0; a < fn.num_args; ++a) in[0][a] = Lattice::bot();

  bool changed_state = true;
  while (changed_state) {
    changed_state = false;
    for (BlockId b : rpo) {
      State st(fn.num_regs);
      if (b == 0) {
        st = in[0];
      } else {
        for (BlockId p : cfg.preds[b]) {
          if (!reachable[p]) continue;
          for (Reg r = 0; r < fn.num_regs; ++r) st[r] = meet(st[r], out[p][r]);
        }
      }
      if (st != in[b]) {
        in[b] = st;
        changed_state = true;
      }
      for (const Instr& inst : fn.blocks[b].insts) transfer(inst, st);
      if (st != out[b]) {
        out[b] = st;
        changed_state = true;
      }
    }
  }

  // Rewrite: materialize constants, fold constant branches.
  bool changed = false;
  for (BlockId b : rpo) {
    State st = in[b];
    for (Instr& inst : fn.blocks[b].insts) {
      State before = st;
      transfer(inst, st);
      if (has_dst(inst) && is_pure(inst) && inst.op != Opcode::LoadImm &&
          st[inst.dst].kind == Lattice::Const) {
        Instr repl;
        repl.op = Opcode::LoadImm;
        repl.dst = inst.dst;
        repl.imm = st[inst.dst].value;
        inst = repl;
        changed = true;
      } else if (inst.op == Opcode::Br &&
                 before[inst.a].kind == Lattice::Const) {
        const BlockId target = before[inst.a].value != 0 ? inst.t1 : inst.t2;
        Instr repl;
        repl.op = Opcode::Jump;
        repl.t1 = target;
        inst = repl;
        changed = true;
      }
    }
  }
  return changed;
}

bool copy_prop(Function& fn) {
  bool changed = false;
  for (BasicBlock& bb : fn.blocks) {
    std::unordered_map<Reg, Reg> repl;  // reg -> equivalent older reg

    auto resolve = [&](Reg r) {
      auto it = repl.find(r);
      return it == repl.end() ? r : it->second;
    };
    auto kill = [&](Reg dst) {
      repl.erase(dst);
      for (auto it = repl.begin(); it != repl.end();) {
        if (it->second == dst) it = repl.erase(it);
        else ++it;
      }
    };

    for (Instr& inst : bb.insts) {
      // Rewrite uses through the copy map.
      auto rewrite = [&](Reg& r) {
        const Reg n = resolve(r);
        if (n != r) {
          r = n;
          changed = true;
        }
      };
      const unsigned n = num_srcs(inst);
      if (inst.op == Opcode::Store) {
        rewrite(inst.a);
        rewrite(inst.b);
      } else {
        if (n >= 1 && inst.a != kNoReg) rewrite(inst.a);
        if (n >= 2 && inst.b != kNoReg) rewrite(inst.b);
      }
      if (inst.op == Opcode::Call)
        for (unsigned i = 0; i < inst.nargs; ++i) rewrite(inst.args[i]);

      if (has_dst(inst)) {
        kill(inst.dst);
        if (inst.op == Opcode::Mov && inst.a != inst.dst)
          repl[inst.dst] = inst.a;
      }
    }
  }
  return changed;
}

namespace {

/// Key identifying a pure expression or a load for value numbering.
struct ExprKey {
  Opcode op;
  Reg a, b;
  std::int64_t imm;
  MemWidth width;
  bool is_ptr;
  ImmTag tag;
  RecordId rec;
  FieldId field;
  GlobalId gid;
  std::uint64_t epoch;  // memory generation, 0 for pure ops

  bool operator==(const ExprKey&) const = default;
};

ExprKey make_key(const Instr& inst, std::uint64_t epoch) {
  ExprKey k{inst.op, inst.a, inst.b, inst.imm, inst.width, inst.is_ptr,
            inst.tag, inst.rec, inst.field, inst.gid,
            reads_memory(inst) ? epoch : 0};
  if (is_commutative(inst.op) && k.a > k.b) std::swap(k.a, k.b);
  if (num_srcs(inst) < 2) k.b = kNoReg;
  if (num_srcs(inst) < 1) k.a = kNoReg;
  return k;
}

}  // namespace

bool local_cse(Function& fn) {
  bool changed = false;
  for (BasicBlock& bb : fn.blocks) {
    struct Entry {
      ExprKey key;
      Reg dst;
    };
    std::vector<Entry> table;
    std::uint64_t epoch = 1;

    auto invalidate_reg = [&](Reg dst) {
      table.erase(std::remove_if(table.begin(), table.end(),
                                 [&](const Entry& e) {
                                   return e.dst == dst || e.key.a == dst ||
                                          e.key.b == dst;
                                 }),
                  table.end());
    };

    for (Instr& inst : bb.insts) {
      const bool candidate =
          (is_pure(inst) || reads_memory(inst)) && has_dst(inst) &&
          inst.op != Opcode::Mov;  // copies are copy-prop's job
      if (candidate) {
        const ExprKey key = make_key(inst, epoch);
        const Entry* hit = nullptr;
        for (const Entry& e : table)
          if (e.key == key) {
            hit = &e;
            break;
          }
        if (hit != nullptr && hit->dst != inst.dst) {
          Instr repl;
          repl.op = Opcode::Mov;
          repl.dst = inst.dst;
          repl.a = hit->dst;
          inst = repl;
          changed = true;
          invalidate_reg(inst.dst);
          continue;
        }
        if (writes_memory(inst) || inst.op == Opcode::Call) ++epoch;
        invalidate_reg(inst.dst);
        if (hit == nullptr) table.push_back({key, inst.dst});
        continue;
      }
      if (writes_memory(inst) || inst.op == Opcode::Call) ++epoch;
      if (has_dst(inst)) invalidate_reg(inst.dst);
    }
  }
  return changed;
}

bool dce(Function& fn) {
  const Cfg cfg(fn);
  const Liveness lv = compute_liveness(fn, cfg);
  bool changed = false;

  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    BasicBlock& bb = fn.blocks[b];
    RegSet live = lv.live_out[b];
    std::vector<Instr> kept;
    kept.reserve(bb.insts.size());
    for (std::size_t i = bb.insts.size(); i-- > 0;) {
      Instr& inst = bb.insts[i];
      const bool removable =
          inst.op == Opcode::Nop ||
          ((is_pure(inst) || reads_memory(inst)) && has_dst(inst) &&
           !live.contains(inst.dst));
      if (removable) {
        changed = true;
        continue;
      }
      if (has_dst(inst)) live.erase(inst.dst);
      std::array<Reg, 2 + kMaxCallArgs> uses;
      unsigned n = 0;
      append_uses(inst, uses, n);
      for (unsigned u = 0; u < n; ++u) live.insert(uses[u]);
      kept.push_back(inst);
    }
    std::reverse(kept.begin(), kept.end());
    bb.insts = std::move(kept);
  }
  return changed;
}

namespace {

/// Track registers holding untagged compile-time constants in a block.
class LocalConsts {
 public:
  explicit LocalConsts(unsigned num_regs)
      : known_(num_regs, 0), value_(num_regs, 0) {}

  void note(const Instr& inst) {
    if (!has_dst(inst)) return;
    grow(inst.dst);
    if (inst.op == Opcode::LoadImm && inst.tag == ImmTag::None) {
      known_[inst.dst] = 1;
      value_[inst.dst] = inst.imm;
    } else {
      known_[inst.dst] = 0;
    }
  }

  std::optional<std::int64_t> get(Reg r) const {
    if (r == kNoReg || r >= known_.size() || !known_[r]) return std::nullopt;
    return value_[r];
  }

 private:
  // Passes allocate fresh registers while iterating (strength reduction),
  // so the tables grow on demand.
  void grow(Reg r) {
    if (r >= known_.size()) {
      known_.resize(r + 1, 0);
      value_.resize(r + 1, 0);
    }
  }

  std::vector<std::uint8_t> known_;
  std::vector<std::int64_t> value_;
};

bool is_pow2(std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; }

int log2_i64(std::int64_t v) {
  int s = 0;
  while ((1LL << s) < v) ++s;
  return s;
}

}  // namespace

bool strength_reduce(Function& fn) {
  bool changed = false;
  for (BasicBlock& bb : fn.blocks) {
    LocalConsts consts(fn.num_regs);
    for (std::size_t i = 0; i < bb.insts.size(); ++i) {
      Instr inst = bb.insts[i];
      if (inst.op == Opcode::Mul) {
        // Normalize constant to operand b.
        Reg var = inst.a;
        std::optional<std::int64_t> c = consts.get(inst.b);
        if (!c) {
          c = consts.get(inst.a);
          var = inst.b;
        }
        if (c && (is_pow2(*c) || *c == 3 || *c == 5 || *c == 9)) {
          std::vector<Instr> repl;
          if (is_pow2(*c)) {
            Instr sh;
            sh.op = Opcode::LoadImm;
            sh.dst = fn.new_reg();
            sh.imm = log2_i64(*c);
            Instr shl;
            shl.op = Opcode::Shl;
            shl.dst = inst.dst;
            shl.a = var;
            shl.b = sh.dst;
            repl = {sh, shl};
          } else {
            // c in {3,5,9}: dst = (var << k) + var with k = log2(c-1).
            Instr sh;
            sh.op = Opcode::LoadImm;
            sh.dst = fn.new_reg();
            sh.imm = log2_i64(*c - 1);
            Instr shl;
            shl.op = Opcode::Shl;
            shl.dst = fn.new_reg();
            shl.a = var;
            shl.b = sh.dst;
            Instr add;
            add.op = Opcode::Add;
            add.dst = inst.dst;
            add.a = shl.dst;
            add.b = var;
            repl = {sh, shl, add};
          }
          bb.insts.erase(bb.insts.begin() + static_cast<long>(i));
          bb.insts.insert(bb.insts.begin() + static_cast<long>(i),
                          repl.begin(), repl.end());
          for (const Instr& r : repl) consts.note(r);
          i += repl.size() - 1;
          changed = true;
          continue;
        }
      }
      consts.note(bb.insts[i]);
    }
  }
  return changed;
}

bool peephole(Function& fn) {
  bool changed = false;
  for (BasicBlock& bb : fn.blocks) {
    LocalConsts consts(fn.num_regs);

    auto to_mov = [&](Instr& inst, Reg src) {
      Instr repl;
      repl.op = Opcode::Mov;
      repl.dst = inst.dst;
      repl.a = src;
      inst = repl;
      changed = true;
    };
    auto to_imm = [&](Instr& inst, std::int64_t v) {
      Instr repl;
      repl.op = Opcode::LoadImm;
      repl.dst = inst.dst;
      repl.imm = v;
      inst = repl;
      changed = true;
    };

    for (Instr& inst : bb.insts) {
      const auto ca = consts.get(inst.op == Opcode::Store ? kNoReg : inst.a);
      const auto cb =
          num_srcs(inst) >= 2 && inst.op != Opcode::Store
              ? consts.get(inst.b)
              : std::nullopt;
      switch (inst.op) {
        case Opcode::Add:
          if (cb && *cb == 0) to_mov(inst, inst.a);
          else if (ca && *ca == 0) to_mov(inst, inst.b);
          break;
        case Opcode::Sub:
          if (cb && *cb == 0) to_mov(inst, inst.a);
          else if (inst.a == inst.b) to_imm(inst, 0);
          break;
        case Opcode::Mul:
          if (cb && *cb == 1) to_mov(inst, inst.a);
          else if (ca && *ca == 1) to_mov(inst, inst.b);
          else if ((cb && *cb == 0) || (ca && *ca == 0)) to_imm(inst, 0);
          break;
        case Opcode::And:
          if (cb && *cb == -1) to_mov(inst, inst.a);
          else if (ca && *ca == -1) to_mov(inst, inst.b);
          else if ((cb && *cb == 0) || (ca && *ca == 0)) to_imm(inst, 0);
          else if (inst.a == inst.b) to_mov(inst, inst.a);
          break;
        case Opcode::Or:
          if (cb && *cb == 0) to_mov(inst, inst.a);
          else if (ca && *ca == 0) to_mov(inst, inst.b);
          else if (inst.a == inst.b) to_mov(inst, inst.a);
          break;
        case Opcode::Xor:
          if (cb && *cb == 0) to_mov(inst, inst.a);
          else if (ca && *ca == 0) to_mov(inst, inst.b);
          else if (inst.a == inst.b) to_imm(inst, 0);
          break;
        case Opcode::Shl:
        case Opcode::Shr:
          if (cb && *cb == 0) to_mov(inst, inst.a);
          break;
        case Opcode::Min:
        case Opcode::Max:
          if (inst.a == inst.b) to_mov(inst, inst.a);
          break;
        case Opcode::CmpEq:
        case Opcode::CmpLe:
        case Opcode::CmpGe:
          if (inst.a == inst.b) to_imm(inst, 1);
          break;
        case Opcode::CmpNe:
        case Opcode::CmpLt:
        case Opcode::CmpGt:
          if (inst.a == inst.b) to_imm(inst, 0);
          break;
        case Opcode::Br:
          if (inst.t1 == inst.t2) {
            Instr repl;
            repl.op = Opcode::Jump;
            repl.t1 = inst.t1;
            inst = repl;
            changed = true;
          }
          break;
        default:
          break;
      }
      consts.note(inst);
    }

    // Drop self-moves and nops.
    const auto new_end = std::remove_if(
        bb.insts.begin(), bb.insts.end(), [](const Instr& inst) {
          return inst.op == Opcode::Nop ||
                 (inst.op == Opcode::Mov && inst.dst == inst.a);
        });
    if (new_end != bb.insts.end()) {
      bb.insts.erase(new_end, bb.insts.end());
      changed = true;
    }
  }
  return changed;
}

}  // namespace ilc::opt
