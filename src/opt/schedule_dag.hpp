// Intra-block dependence DAG shared between the list scheduler and the
// learned-scheduling case study (src/sched).
#pragma once

#include <cstdint>
#include <vector>

#include "ir/instruction.hpp"

namespace ilc::opt {

struct ScheduleDag {
  std::vector<std::vector<std::size_t>> succs;
  std::vector<std::vector<std::size_t>> preds;
  std::vector<unsigned> height;  // critical-path height incl. own latency
};

/// Build the dependence DAG over a terminator-free instruction list.
ScheduleDag build_dag(const std::vector<ir::Instr>& insts);

/// The scheduling cost model's latency for one instruction.
unsigned sched_latency(const ir::Instr& inst);

}  // namespace ilc::opt
