// Reassociation: rebalance chains of one associative-commutative operator
// (a+(b+(c+d)) -> (a+b)+(c+d)) so independent halves can issue in
// parallel — a transformation whose benefit exists *only* because the
// machine is multiple-issue, making it a clean ablation of the cost
// model's ILP sensitivity. Operates on wrapping two's-complement
// arithmetic, where Add/Mul/And/Or/Xor/Min/Max are fully associative.
//
// A chain link is consumed only when its register has exactly one
// function-wide definition and one function-wide use (the next link), so
// rebalancing can never change any other observer's view.
#include <algorithm>

#include "opt/pass.hpp"
#include "support/assert.hpp"

namespace ilc::opt {

using namespace ir;

namespace {

bool reassociable(Opcode op) {
  switch (op) {
    case Opcode::Add:
    case Opcode::Mul:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Min:
    case Opcode::Max:
      return true;
    default:
      return false;
  }
}

struct RegStats {
  std::vector<unsigned> defs;
  std::vector<unsigned> uses;
  explicit RegStats(const Function& fn)
      : defs(fn.num_regs, 0), uses(fn.num_regs, 0) {
    for (const BasicBlock& bb : fn.blocks) {
      for (const Instr& inst : bb.insts) {
        if (has_dst(inst)) defs[inst.dst] += 1;
        std::array<Reg, 2 + kMaxCallArgs> u;
        unsigned n = 0;
        append_uses(inst, u, n);
        for (unsigned k = 0; k < n; ++k) uses[u[k]] += 1;
      }
    }
  }
};

}  // namespace

bool reassociate(Function& fn) {
  bool changed = false;
  RegStats stats(fn);

  for (BasicBlock& bb : fn.blocks) {
    // def position of each register within this block (kNone if absent).
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    std::vector<std::size_t> def_pos(fn.num_regs, kNone);
    for (std::size_t i = 0; i < bb.insts.size(); ++i)
      if (has_dst(bb.insts[i])) def_pos[bb.insts[i].dst] = i;

    std::vector<std::uint8_t> consumed(bb.insts.size(), 0);
    struct Rewrite {
      std::size_t final_pos;
      Opcode op;
      Reg dst;
      std::vector<Reg> leaves;
    };
    std::vector<Rewrite> rewrites;

    // Walk bottom-up: the last link of a chain is an instruction whose dst
    // is NOT itself a single-use feeder of the same op later in the block.
    for (std::size_t i = bb.insts.size(); i-- > 0;) {
      const Instr& inst = bb.insts[i];
      if (consumed[i] || !reassociable(inst.op) || !has_dst(inst)) continue;

      // Expand the chain from this root.
      std::vector<Reg> leaves;
      std::vector<std::size_t> internal;
      std::vector<Reg> work = {inst.a, inst.b};
      while (!work.empty()) {
        const Reg r = work.back();
        work.pop_back();
        const std::size_t d = r < def_pos.size() ? def_pos[r] : kNone;
        const bool internal_link =
            d != kNone && d < i && !consumed[d] &&
            bb.insts[d].op == inst.op && stats.defs[r] == 1 &&
            stats.uses[r] == 1;
        if (internal_link) {
          internal.push_back(d);
          work.push_back(bb.insts[d].a);
          work.push_back(bb.insts[d].b);
        } else {
          leaves.push_back(r);
        }
      }
      if (leaves.size() < 4) continue;  // nothing to balance

      for (std::size_t d : internal) consumed[d] = 1;
      consumed[i] = 1;
      rewrites.push_back({i, inst.op, inst.dst, std::move(leaves)});
    }

    if (rewrites.empty()) continue;
    changed = true;

    // Rebuild the block: drop consumed instructions, emit a balanced tree
    // at each chain's final position. Leaves were all defined before their
    // original consumers, so the tree is legal there.
    std::vector<Instr> out;
    out.reserve(bb.insts.size());
    for (std::size_t i = 0; i < bb.insts.size(); ++i) {
      const Rewrite* rw = nullptr;
      for (const Rewrite& r : rewrites)
        if (r.final_pos == i) rw = &r;
      if (rw != nullptr) {
        // Pairwise-combine rounds: each round halves the operand count,
        // keeping both halves independent.
        std::vector<Reg> level = rw->leaves;
        std::reverse(level.begin(), level.end());  // original operand order
        while (level.size() > 1) {
          std::vector<Reg> next;
          for (std::size_t k = 0; k + 1 < level.size(); k += 2) {
            Instr combine;
            combine.op = rw->op;
            combine.a = level[k];
            combine.b = level[k + 1];
            combine.dst =
                (level.size() == 2) ? rw->dst : fn.new_reg();
            out.push_back(combine);
            next.push_back(combine.dst);
          }
          if (level.size() % 2 == 1) next.push_back(level.back());
          level = std::move(next);
        }
        continue;
      }
      if (consumed[i]) continue;
      out.push_back(bb.insts[i]);
    }
    bb.insts = std::move(out);

    // Positions changed; refresh for any later blocks (def_pos is per
    // block, stats are conservative — new regs have 1 def/1 use).
    stats = RegStats(fn);
  }
  return changed;
}

}  // namespace ilc::opt
