// The optimization-pass vocabulary: pass identifiers, the registry, and
// sequence application. The first 13 passes form the Fig. 2
// optimization-sequence space (three unroll factors counted as individual
// optimizations, mirroring the paper's footnote); Prefetch and PtrCompress
// extend the Fig. 3/4 flag space with the transformations the paper's
// counter model discovered.
#pragma once

#include <string>
#include <vector>

#include "ir/module.hpp"

namespace ilc::opt {

enum class PassId : unsigned {
  ConstProp,    // global constant propagation + folding
  CopyProp,     // block-local copy propagation
  Cse,          // block-local common-subexpression elimination
  Dce,          // liveness-based dead code elimination
  SimplifyCfg,  // branch folding, block merging, jump threading
  Licm,         // loop-invariant code motion
  StrengthRed,  // mul/const -> shift(+add) rewriting
  Peephole,     // algebraic identities, nop removal
  Inline,       // leaf-function inlining
  Schedule,     // block-local list scheduling (latency hiding)
  Unroll2,      // loop unrolling x2
  Unroll4,      // loop unrolling x4
  Unroll8,      // loop unrolling x8
  Prefetch,     // next-line prefetch insertion in innermost loops
  PtrCompress,  // module-wide 64->32-bit pointer compression
  Reassoc,      // associative-chain rebalancing for multiple issue
  kCount
};

inline constexpr unsigned kNumPasses = static_cast<unsigned>(PassId::kCount);
/// Number of passes in the Fig. 2 sequence space (the "13 optimizations").
inline constexpr unsigned kSequenceSpacePasses = 13;

const char* pass_name(PassId id);
/// Inverse of pass_name; throws on unknown names.
PassId pass_from_name(const std::string& name);

bool is_unroll(PassId id);

/// Run one pass over the module. Returns true if anything changed.
bool run_pass(PassId id, ir::Module& mod);

/// Apply a sequence of passes in order; returns number of passes that
/// reported a change.
unsigned run_sequence(ir::Module& mod, const std::vector<PassId>& seq);

/// The 13 sequence-space passes in id order.
std::vector<PassId> sequence_space();

// Individual pass entry points (exposed for unit tests).
bool const_prop(ir::Function& fn, ir::Module& mod);
bool copy_prop(ir::Function& fn);
bool local_cse(ir::Function& fn);
bool dce(ir::Function& fn);
bool simplify_cfg(ir::Function& fn);
bool licm(ir::Function& fn);
bool strength_reduce(ir::Function& fn);
bool peephole(ir::Function& fn);
bool inline_calls(ir::Module& mod);
bool schedule_blocks(ir::Function& fn);
bool unroll_loops(ir::Function& fn, unsigned factor);
/// Unroll only the innermost loop whose header is `header` (as reported
/// by ir::find_loops). Returns false if no such loop exists or it fails
/// the size constraints. The per-loop primitive behind the learned
/// unroll-factor case study (bench/unroll_factors).
bool unroll_single_loop(ir::Function& fn, ir::BlockId header,
                        unsigned factor);
bool insert_prefetch(ir::Function& fn);
bool reassociate(ir::Function& fn);
bool compress_pointers(ir::Module& mod);

}  // namespace ilc::opt
