// Control-flow graph simplification: unreachable-block removal, jump
// threading through empty forwarding blocks, straight-line block merging,
// and degenerate-branch collapsing.
#include <vector>

#include "ir/analysis.hpp"
#include "opt/pass.hpp"
#include "support/assert.hpp"

namespace ilc::opt {

using namespace ir;

namespace {

/// Follow chains of blocks that contain only `jump` — with a hop limit so
/// degenerate jump cycles cannot loop forever.
BlockId thread_target(const Function& fn, BlockId b) {
  for (int hops = 0; hops < 8; ++hops) {
    const BasicBlock& bb = fn.blocks[b];
    if (bb.insts.size() != 1 || bb.insts[0].op != Opcode::Jump) return b;
    const BlockId next = bb.insts[0].t1;
    if (next == b) return b;
    b = next;
  }
  return b;
}

bool remove_unreachable(Function& fn) {
  const auto rpo = reverse_post_order(fn);
  std::vector<std::uint8_t> keep(fn.blocks.size(), 0);
  for (BlockId b : rpo) keep[b] = 1;

  bool any_dead = false;
  for (std::uint8_t k : keep)
    if (!k) any_dead = true;
  if (!any_dead) return false;

  std::vector<BlockId> remap(fn.blocks.size(), kNoBlock);
  std::vector<BasicBlock> kept;
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    if (keep[b]) {
      remap[b] = static_cast<BlockId>(kept.size());
      kept.push_back(std::move(fn.blocks[b]));
    }
  }
  fn.blocks = std::move(kept);
  for (BasicBlock& bb : fn.blocks) {
    Instr& t = bb.terminator();
    if (t.op == Opcode::Jump) t.t1 = remap[t.t1];
    if (t.op == Opcode::Br) {
      t.t1 = remap[t.t1];
      t.t2 = remap[t.t2];
    }
  }
  return true;
}

bool thread_jumps(Function& fn) {
  bool changed = false;
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    Instr& t = fn.blocks[b].terminator();
    if (t.op == Opcode::Jump) {
      const BlockId nt = thread_target(fn, t.t1);
      if (nt != t.t1) {
        t.t1 = nt;
        changed = true;
      }
    } else if (t.op == Opcode::Br) {
      const BlockId n1 = thread_target(fn, t.t1);
      const BlockId n2 = thread_target(fn, t.t2);
      if (n1 != t.t1 || n2 != t.t2) {
        t.t1 = n1;
        t.t2 = n2;
        changed = true;
      }
      if (t.t1 == t.t2) {
        Instr repl;
        repl.op = Opcode::Jump;
        repl.t1 = t.t1;
        t = repl;
        changed = true;
      }
    }
  }
  return changed;
}

bool merge_blocks(Function& fn) {
  bool changed = false;
  const Cfg cfg(fn);
  // Recompute predecessor counts lazily as we merge.
  std::vector<std::size_t> pred_count(fn.blocks.size());
  for (std::size_t b = 0; b < fn.blocks.size(); ++b)
    pred_count[b] = cfg.preds[b].size();

  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    for (;;) {
      Instr& t = fn.blocks[b].terminator();
      if (t.op != Opcode::Jump) break;
      const BlockId s = t.t1;
      if (s == b || s == 0 || pred_count[s] != 1) break;
      // Splice s into b.
      BasicBlock& src = fn.blocks[s];
      fn.blocks[b].insts.pop_back();  // drop the jump
      fn.blocks[b].insts.insert(fn.blocks[b].insts.end(), src.insts.begin(),
                                src.insts.end());
      src.insts.clear();
      // s is now unreachable but must stay structurally valid until the
      // unreachable-removal step; park a self-loop terminator in it.
      Instr park;
      park.op = Opcode::Jump;
      park.t1 = s;
      src.insts.push_back(park);
      pred_count[s] = 0;
      changed = true;
    }
  }
  return changed;
}

}  // namespace

bool simplify_cfg(Function& fn) {
  bool changed = false;
  for (int round = 0; round < 8; ++round) {
    bool round_changed = false;
    round_changed |= thread_jumps(fn);
    round_changed |= merge_blocks(fn);
    round_changed |= remove_unreachable(fn);
    if (!round_changed) break;
    changed = true;
  }
  return changed;
}

}  // namespace ilc::opt
