// Loop optimizations: loop-invariant code motion and loop unrolling.
//
// The IR is not SSA, which makes unrolling pleasantly simple: the body is
// cloned verbatim (no renaming), and only the back edges are rewired
// through the copies. LICM is the subtle one — the hoist conditions are
// chosen so they remain sound with multiple definitions per register:
//   (a) the instruction is pure;
//   (b) none of its sources is defined anywhere in the loop;
//   (c) its destination has exactly one definition in the loop (itself);
//   (d) the destination is not live into the loop header (so every in-loop
//       use is dominated by this definition — a use reached around the
//       definition would make the register live-in);
//   (e) the destination is not used outside the loop.
#include <algorithm>

#include "ir/analysis.hpp"
#include "opt/pass.hpp"
#include "support/assert.hpp"

namespace ilc::opt {

using namespace ir;

namespace {

std::vector<unsigned> def_counts_in(const Function& fn, const Loop& loop) {
  std::vector<unsigned> defs(fn.num_regs, 0);
  for (BlockId b : loop.blocks)
    for (const Instr& inst : fn.blocks[b].insts)
      if (has_dst(inst)) defs[inst.dst] += 1;
  return defs;
}

bool used_outside_loop(const Function& fn, const Loop& loop, Reg r) {
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    if (loop.contains(static_cast<BlockId>(b))) continue;
    for (const Instr& inst : fn.blocks[b].insts) {
      std::array<Reg, 2 + kMaxCallArgs> uses;
      unsigned n = 0;
      append_uses(inst, uses, n);
      for (unsigned u = 0; u < n; ++u)
        if (uses[u] == r) return true;
    }
  }
  return false;
}

/// Ensure the loop header has a unique out-of-loop predecessor ending in a
/// Jump to the header; create one if needed. Returns its block id, or
/// kNoBlock if the header is the function entry (not handled).
BlockId ensure_preheader(Function& fn, const Loop& loop) {
  if (loop.header == 0) return kNoBlock;
  const Cfg cfg(fn);
  std::vector<BlockId> outside;
  for (BlockId p : cfg.preds[loop.header])
    if (!loop.contains(p)) outside.push_back(p);
  if (outside.empty()) return kNoBlock;  // dead loop
  if (outside.size() == 1) {
    const Instr& t = fn.blocks[outside[0]].terminator();
    if (t.op == Opcode::Jump) return outside[0];
  }
  // Create a fresh preheader and retarget outside edges through it.
  const BlockId pre = fn.new_block();
  Instr j;
  j.op = Opcode::Jump;
  j.t1 = loop.header;
  fn.blocks[pre].insts.push_back(j);
  for (BlockId p : outside) {
    Instr& t = fn.blocks[p].terminator();
    if (t.op == Opcode::Jump && t.t1 == loop.header) t.t1 = pre;
    if (t.op == Opcode::Br) {
      if (t.t1 == loop.header) t.t1 = pre;
      if (t.t2 == loop.header) t.t2 = pre;
    }
  }
  return pre;
}

}  // namespace

bool licm(Function& fn) {
  bool changed = false;
  // Loops are recomputed after each hoisted loop because preheader
  // creation adds blocks.
  for (std::size_t li = 0;; ++li) {
    const auto loops = find_loops(fn);
    if (li >= loops.size()) break;
    const Loop& loop = loops[li];

    const BlockId pre = ensure_preheader(fn, loop);
    if (pre == kNoBlock) continue;

    std::vector<unsigned> defs = def_counts_in(fn, loop);
    const Cfg cfg(fn);
    const Liveness lv = compute_liveness(fn, cfg);

    bool hoisted_any = true;
    while (hoisted_any) {
      hoisted_any = false;
      for (BlockId b : loop.blocks) {
        BasicBlock& bb = fn.blocks[b];
        for (std::size_t i = 0; i + 1 <= bb.insts.size(); ++i) {
          const Instr inst = bb.insts[i];
          if (!is_pure(inst) || !has_dst(inst)) continue;
          if (is_terminator(inst)) continue;
          std::array<Reg, 2 + kMaxCallArgs> uses;
          unsigned n = 0;
          append_uses(inst, uses, n);
          bool srcs_invariant = true;
          for (unsigned u = 0; u < n; ++u)
            if (defs[uses[u]] != 0) srcs_invariant = false;
          if (!srcs_invariant) continue;
          if (defs[inst.dst] != 1) continue;
          if (lv.live_in[loop.header].contains(inst.dst)) continue;
          if (used_outside_loop(fn, loop, inst.dst)) continue;

          // Hoist: insert before the preheader's terminator.
          BasicBlock& ph = fn.blocks[pre];
          ph.insts.insert(ph.insts.end() - 1, inst);
          bb.insts.erase(bb.insts.begin() + static_cast<long>(i));
          defs[inst.dst] = 0;
          hoisted_any = true;
          changed = true;
          --i;
        }
      }
    }
  }
  return changed;
}

namespace {

constexpr std::size_t kMaxUnrollBody = 48;    // instructions
constexpr std::size_t kMaxUnrolledSize = 240;  // factor * body cap

bool is_innermost(const Loop& loop, const std::vector<Loop>& all) {
  for (const Loop& other : all) {
    if (other.header == loop.header) continue;
    if (loop.contains(other.header)) return false;
  }
  return true;
}

std::size_t loop_size(const Function& fn, const Loop& loop) {
  std::size_t n = 0;
  for (BlockId b : loop.blocks) n += fn.blocks[b].insts.size();
  return n;
}

}  // namespace

namespace {

/// Core transform: duplicate `loop`'s body factor-1 times and rewire the
/// back edges through the copies. Assumes eligibility already checked.
void unroll_one(Function& fn, const Loop& loop, unsigned factor) {
    // Snapshot the pristine body before any rewiring.
    std::vector<std::pair<BlockId, BasicBlock>> pristine;
    for (BlockId b : loop.blocks) pristine.emplace_back(b, fn.blocks[b]);

    // Allocate clone ids: clone_map[j][original] for j in 0..factor-2.
    std::vector<std::vector<std::pair<BlockId, BlockId>>> clone_map(
        factor - 1);
    for (unsigned j = 0; j + 1 < factor; ++j)
      for (BlockId b : loop.blocks)
        clone_map[j].emplace_back(b, fn.new_block());

    auto mapped = [&](unsigned j, BlockId b) {
      for (const auto& [orig, clone] : clone_map[j])
        if (orig == b) return clone;
      return kNoBlock;
    };

    // `next_header(j)`: where copy j's back edge goes.
    auto next_header = [&](unsigned j) {
      return j + 1 < factor - 1 ? mapped(j + 1, loop.header) : loop.header;
    };

    // Fill clones.
    for (unsigned j = 0; j + 1 < factor; ++j) {
      for (const auto& [orig, bbody] : pristine) {
        BasicBlock clone = bbody;
        Instr& t = clone.terminator();
        auto rewire = [&](BlockId& target) {
          if (target == loop.header) {
            target = next_header(j);
          } else if (loop.contains(target)) {
            target = mapped(j, target);
          }  // exits stay as-is
        };
        if (t.op == Opcode::Jump) rewire(t.t1);
        if (t.op == Opcode::Br) {
          rewire(t.t1);
          rewire(t.t2);
        }
        fn.blocks[mapped(j, orig)] = std::move(clone);
      }
    }

    // Rewire the original body's back edges into copy 0.
    const BlockId first_copy_header = mapped(0, loop.header);
    for (BlockId b : loop.blocks) {
      Instr& t = fn.blocks[b].terminator();
      if (t.op == Opcode::Jump && t.t1 == loop.header)
        t.t1 = first_copy_header;
      if (t.op == Opcode::Br) {
        if (t.t1 == loop.header) t.t1 = first_copy_header;
        if (t.t2 == loop.header) t.t2 = first_copy_header;
      }
    }
}

bool eligible_for_unroll(const Function& fn, const Loop& loop,
                         const std::vector<Loop>& all, unsigned factor) {
  if (!is_innermost(loop, all)) return false;
  const std::size_t body = loop_size(fn, loop);
  return body <= kMaxUnrollBody && body * factor <= kMaxUnrolledSize;
}

}  // namespace

bool unroll_loops(Function& fn, unsigned factor) {
  ILC_CHECK(factor >= 2);
  const auto loops = find_loops(fn);
  bool changed = false;
  for (const Loop& loop : loops) {
    if (!eligible_for_unroll(fn, loop, loops, factor)) continue;
    unroll_one(fn, loop, factor);
    changed = true;
  }
  return changed;
}

bool unroll_single_loop(Function& fn, BlockId header, unsigned factor) {
  ILC_CHECK(factor >= 2);
  const auto loops = find_loops(fn);
  for (const Loop& loop : loops) {
    if (loop.header != header) continue;
    if (!eligible_for_unroll(fn, loop, loops, factor)) return false;
    unroll_one(fn, loop, factor);
    return true;
  }
  return false;
}

}  // namespace ilc::opt
