#include "opt/pipelines.hpp"

#include "support/assert.hpp"

namespace ilc::opt {

std::uint32_t OptFlags::encode() const {
  std::uint32_t bits = 0;
  unsigned shift = 0;
  auto put = [&](bool v) { bits |= (v ? 1u : 0u) << shift++; };
  put(constprop);
  put(copyprop);
  put(cse);
  put(dce);
  put(simplifycfg);
  put(licm);
  put(strengthred);
  put(peephole);
  put(inline_fns);
  put(schedule);
  put(prefetch);
  put(ptrcompress);
  std::uint32_t usel = 0;
  if (unroll == 2) usel = 1;
  else if (unroll == 4) usel = 2;
  else if (unroll == 8) usel = 3;
  bits |= usel << shift;
  return bits;
}

OptFlags OptFlags::decode(std::uint32_t bits) {
  OptFlags f;
  unsigned shift = 0;
  auto get = [&] { return ((bits >> shift++) & 1u) != 0; };
  f.constprop = get();
  f.copyprop = get();
  f.cse = get();
  f.dce = get();
  f.simplifycfg = get();
  f.licm = get();
  f.strengthred = get();
  f.peephole = get();
  f.inline_fns = get();
  f.schedule = get();
  f.prefetch = get();
  f.ptrcompress = get();
  const std::uint32_t usel = (bits >> shift) & 3u;
  static constexpr unsigned kFactors[4] = {0, 2, 4, 8};
  f.unroll = kFactors[usel];
  return f;
}

std::string OptFlags::to_string() const {
  std::string out;
  auto add = [&](bool v, const char* name) {
    if (!v) return;
    if (!out.empty()) out += "+";
    out += name;
  };
  add(inline_fns, "inline");
  add(ptrcompress, "ptrcompress");
  add(constprop, "constprop");
  add(simplifycfg, "simplifycfg");
  add(copyprop, "copyprop");
  add(cse, "cse");
  add(licm, "licm");
  if (unroll != 0) {
    if (!out.empty()) out += "+";
    out += "unroll" + std::to_string(unroll);
  }
  add(strengthred, "strengthred");
  add(peephole, "peephole");
  add(schedule, "schedule");
  add(prefetch, "prefetch");
  add(dce, "dce");
  return out.empty() ? "O0" : out;
}

std::vector<PassId> pipeline(const OptFlags& f) {
  std::vector<PassId> seq;
  if (f.inline_fns) seq.push_back(PassId::Inline);
  if (f.ptrcompress) seq.push_back(PassId::PtrCompress);
  if (f.constprop) seq.push_back(PassId::ConstProp);
  if (f.simplifycfg) seq.push_back(PassId::SimplifyCfg);
  if (f.copyprop) seq.push_back(PassId::CopyProp);
  if (f.cse) seq.push_back(PassId::Cse);
  if (f.licm) seq.push_back(PassId::Licm);
  if (f.unroll == 2) seq.push_back(PassId::Unroll2);
  if (f.unroll == 4) seq.push_back(PassId::Unroll4);
  if (f.unroll == 8) seq.push_back(PassId::Unroll8);
  if (f.unroll != 0 && f.simplifycfg) seq.push_back(PassId::SimplifyCfg);
  if (f.strengthred) seq.push_back(PassId::StrengthRed);
  if (f.peephole) seq.push_back(PassId::Peephole);
  if (f.cse) seq.push_back(PassId::Cse);
  if (f.copyprop) seq.push_back(PassId::CopyProp);
  if (f.prefetch) seq.push_back(PassId::Prefetch);
  if (f.schedule) seq.push_back(PassId::Schedule);
  if (f.dce) seq.push_back(PassId::Dce);
  if (f.simplifycfg) seq.push_back(PassId::SimplifyCfg);
  return seq;
}

OptFlags o0_flags() { return OptFlags{}; }

OptFlags fast_flags() {
  OptFlags f;
  f.constprop = f.copyprop = f.cse = f.dce = f.simplifycfg = true;
  f.licm = f.strengthred = f.peephole = f.inline_fns = f.schedule = true;
  f.prefetch = true;
  f.ptrcompress = false;  // -Ofast never changes data layout
  f.unroll = 4;
  return f;
}

std::vector<PassId> fast_pipeline() { return pipeline(fast_flags()); }

void canonicalize(ir::Module& mod) {
  for (int round = 0; round < 3; ++round) {
    bool changed = false;
    changed |= run_pass(PassId::CopyProp, mod);
    changed |= run_pass(PassId::Cse, mod);
    changed |= run_pass(PassId::Peephole, mod);
    changed |= run_pass(PassId::Dce, mod);
    changed |= run_pass(PassId::SimplifyCfg, mod);
    if (!changed) break;
  }
}

}  // namespace ilc::opt
