// Leaf-function inlining. A call site is inlined when the callee contains
// no calls of its own and is small; the callee's blocks are cloned into
// the caller with register and frame offsets, argument copies replace the
// call, and returns become jumps to the continuation block.
#include <vector>

#include "opt/pass.hpp"
#include "support/assert.hpp"

namespace ilc::opt {

using namespace ir;

namespace {

constexpr std::size_t kMaxCalleeSize = 48;    // instructions
constexpr std::size_t kMaxCallerGrowth = 512;  // added instructions budget

bool is_leaf(const Function& fn) {
  for (const BasicBlock& bb : fn.blocks)
    for (const Instr& inst : bb.insts)
      if (inst.op == Opcode::Call) return false;
  return true;
}

/// Inline one call site. `site` identifies (block, index) of the Call.
void inline_site(Function& caller, const Function& callee, BlockId block,
                 std::size_t index) {
  const Instr call = caller.blocks[block].insts[index];
  const Reg reg_off = caller.num_regs;
  caller.num_regs += callee.num_regs;
  const unsigned frame_off = caller.frame_size;
  caller.frame_size += callee.frame_size;

  // Continuation: everything after the call moves to a new block.
  const BlockId cont = caller.new_block();
  {
    BasicBlock& bb = caller.blocks[block];
    caller.blocks[cont].insts.assign(
        bb.insts.begin() + static_cast<long>(index) + 1, bb.insts.end());
    bb.insts.erase(bb.insts.begin() + static_cast<long>(index),
                   bb.insts.end());
  }

  // Clone callee blocks.
  const BlockId clone_base = static_cast<BlockId>(caller.blocks.size());
  for (std::size_t cb = 0; cb < callee.blocks.size(); ++cb)
    caller.new_block();
  for (std::size_t cb = 0; cb < callee.blocks.size(); ++cb) {
    BasicBlock clone = callee.blocks[cb];
    std::vector<Instr> rewritten;
    rewritten.reserve(clone.insts.size());
    for (Instr inst : clone.insts) {
      // Offset registers.
      auto shift = [&](Reg& r) {
        if (r != kNoReg) r += reg_off;
      };
      if (has_dst(inst)) shift(inst.dst);
      const unsigned nsrc = num_srcs(inst);
      if (inst.op == Opcode::Store) {
        shift(inst.a);
        shift(inst.b);
      } else {
        if (nsrc >= 1 && inst.a != kNoReg) shift(inst.a);
        if (nsrc >= 2 && inst.b != kNoReg) shift(inst.b);
      }
      for (unsigned i = 0; i < inst.nargs; ++i) shift(inst.args[i]);
      if (inst.op == Opcode::FrameAddr) inst.imm += frame_off;
      // Retarget control flow.
      if (inst.op == Opcode::Jump) inst.t1 += clone_base;
      if (inst.op == Opcode::Br) {
        inst.t1 += clone_base;
        inst.t2 += clone_base;
      }
      if (inst.op == Opcode::Ret) {
        if (call.dst != kNoReg) {
          Instr ret_val;
          if (inst.a != kNoReg) {
            ret_val.op = Opcode::Mov;
            ret_val.dst = call.dst;
            ret_val.a = inst.a;
          } else {
            // Void return observed through a dst: the interpreter defines
            // the value as 0 — mirror that.
            ret_val.op = Opcode::LoadImm;
            ret_val.dst = call.dst;
            ret_val.imm = 0;
          }
          rewritten.push_back(ret_val);
        }
        Instr jump;
        jump.op = Opcode::Jump;
        jump.t1 = cont;
        rewritten.push_back(jump);
        continue;
      }
      rewritten.push_back(inst);
    }
    caller.blocks[clone_base + cb].insts = std::move(rewritten);
  }

  // Replace the call with argument copies + jump into the clone.
  {
    BasicBlock& bb = caller.blocks[block];
    for (unsigned i = 0; i < call.nargs; ++i) {
      Instr mv;
      mv.op = Opcode::Mov;
      mv.dst = reg_off + i;
      mv.a = call.args[i];
      bb.insts.push_back(mv);
    }
    // Zero-arg callees with uninitialized arg regs are fine: registers
    // default to 0 in the interpreter, and the clone never reads beyond
    // its own defs — but Mov copies above cover exactly num_args.
    Instr jump;
    jump.op = Opcode::Jump;
    jump.t1 = clone_base;  // callee entry is its block 0
    bb.insts.push_back(jump);
  }
}

}  // namespace

bool inline_calls(Module& mod) {
  bool changed = false;
  for (std::size_t f = 0; f < mod.functions().size(); ++f) {
    Function& caller = mod.function(static_cast<FuncId>(f));
    std::size_t growth = 0;
    bool progress = true;
    while (progress && growth < kMaxCallerGrowth) {
      progress = false;
      for (BlockId b = 0; b < caller.blocks.size() && !progress; ++b) {
        BasicBlock& bb = caller.blocks[b];
        for (std::size_t i = 0; i < bb.insts.size(); ++i) {
          const Instr& inst = bb.insts[i];
          if (inst.op != Opcode::Call) continue;
          if (inst.callee == static_cast<FuncId>(f)) continue;  // recursion
          const Function& callee = mod.function(inst.callee);
          if (!is_leaf(callee) || callee.size() > kMaxCalleeSize) continue;
          inline_site(caller, callee, b, i);
          growth += callee.size();
          changed = true;
          progress = true;
          break;  // block structure changed; rescan
        }
      }
    }
  }
  return changed;
}

}  // namespace ilc::opt
