// Memory-oriented transformations:
//
//  * insert_prefetch — next-line prefetching for loads in innermost loops.
//    Wins on streaming access, pure overhead on pointer chasing; the
//    dynamic optimizer (Section III-D) arbitrates exactly this trade-off.
//
//  * compress_pointers — the module-wide 64→32-bit pointer conversion the
//    paper's counter model discovered for 181.mcf. Re-lays-out every
//    record type, patches all tagged immediates, and narrows pointer
//    loads/stores. Sound because tagged immediates carry their layout
//    provenance and pointer initializers are symbolic (resolved at image
//    build time under the new layout).
#include "opt/pass.hpp"

#include "ir/analysis.hpp"
#include "support/assert.hpp"

namespace ilc::opt {

using namespace ir;

namespace {

constexpr unsigned kLineAhead = 64;       // prefetch distance in bytes
constexpr unsigned kMaxPerLoop = 4;       // prefetches inserted per loop

bool is_innermost_loop(const Loop& loop, const std::vector<Loop>& all) {
  for (const Loop& other : all) {
    if (other.header == loop.header) continue;
    if (loop.contains(other.header)) return false;
  }
  return true;
}

}  // namespace

bool insert_prefetch(Function& fn) {
  const auto loops = find_loops(fn);
  bool changed = false;
  for (const Loop& loop : loops) {
    if (!is_innermost_loop(loop, loops)) continue;
    unsigned inserted = 0;
    for (BlockId b : loop.blocks) {
      BasicBlock& bb = fn.blocks[b];
      for (std::size_t i = 0; i < bb.insts.size() && inserted < kMaxPerLoop;
           ++i) {
        const Instr inst = bb.insts[i];
        if (inst.op != Opcode::Load) continue;
        // Idempotence: skip if the previous instruction is already this
        // prefetch.
        if (i > 0) {
          const Instr& prev = bb.insts[i - 1];
          if (prev.op == Opcode::Prefetch && prev.a == inst.a &&
              prev.imm == inst.imm + kLineAhead)
            continue;
        }
        Instr pf;
        pf.op = Opcode::Prefetch;
        pf.a = inst.a;
        pf.imm = inst.imm + kLineAhead;
        bb.insts.insert(bb.insts.begin() + static_cast<long>(i), pf);
        ++i;  // skip over the load we just displaced
        ++inserted;
        changed = true;
      }
    }
  }
  return changed;
}

bool compress_pointers(Module& mod) {
  if (mod.ptr_bytes() == 4) return false;
  mod.set_ptr_bytes(4);

  for (Function& fn : mod.functions()) {
    for (BasicBlock& bb : fn.blocks) {
      for (Instr& inst : bb.insts) {
        switch (inst.tag) {
          case ImmTag::RecordStride:
            inst.imm = static_cast<std::int64_t>(
                mod.record_layout(inst.rec).stride);
            break;
          case ImmTag::FieldOffset: {
            const RecordLayout lay = mod.record_layout(inst.rec);
            inst.imm = static_cast<std::int64_t>(lay.offsets[inst.field]);
            if (inst.op == Opcode::Load || inst.op == Opcode::Store)
              inst.width = static_cast<MemWidth>(lay.widths[inst.field]);
            break;
          }
          case ImmTag::PtrWidth:
            inst.imm = 4;
            break;
          case ImmTag::None:
            // Untagged pointer accesses (raw pointer-array elements)
            // narrow with the pointer width.
            if ((inst.op == Opcode::Load || inst.op == Opcode::Store) &&
                inst.is_ptr)
              inst.width = MemWidth::W4;
            break;
        }
      }
    }
  }
  return true;
}

}  // namespace ilc::opt
