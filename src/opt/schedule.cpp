// Block-local list scheduling. Builds the intra-block dependence graph
// (register RAW/WAR/WAW, conservative memory ordering, call barriers) and
// reorders by critical-path height so long-latency producers issue early —
// directly rewarded by the simulator's scoreboard.
//
// The dependence machinery is shared with the learned-scheduling case
// study (src/sched), which replays these decision points to generate
// training instances exactly as Section II of the paper prescribes.
#include "opt/schedule_dag.hpp"

#include <algorithm>

#include "opt/pass.hpp"
#include "support/assert.hpp"

namespace ilc::opt {

using namespace ir;

namespace {

bool is_mem_read(const Instr& inst) {
  return inst.op == Opcode::Load || inst.op == Opcode::Prefetch;
}
bool is_mem_write(const Instr& inst) { return inst.op == Opcode::Store; }
bool is_barrier(const Instr& inst) { return inst.op == Opcode::Call; }

}  // namespace

unsigned sched_latency(const Instr& inst) {
  switch (inst.op) {
    case Opcode::Mul: return 3;
    case Opcode::Div:
    case Opcode::Rem: return 24;  // between the two machines' divide costs
    case Opcode::Load: return 4;  // optimistic L1-hit latency
    default: return 1;
  }
}

ScheduleDag build_dag(const std::vector<Instr>& insts) {
  const std::size_t n = insts.size();
  ScheduleDag dag;
  dag.succs.resize(n);
  dag.preds.resize(n);
  dag.height.assign(n, 0);

  auto add_edge = [&](std::size_t from, std::size_t to) {
    for (std::size_t s : dag.succs[from])
      if (s == to) return;
    dag.succs[from].push_back(to);
    dag.preds[to].push_back(from);
  };

  std::vector<std::size_t> last_def(1, 0);  // resized lazily below
  std::vector<std::vector<std::size_t>> uses_since_def;
  // Track by register id; registers can be large, so use maps sized to max.
  Reg max_reg = 0;
  for (const Instr& inst : insts) {
    if (has_dst(inst)) max_reg = std::max(max_reg, inst.dst);
    std::array<Reg, 2 + kMaxCallArgs> uses;
    unsigned nu = 0;
    append_uses(inst, uses, nu);
    for (unsigned u = 0; u < nu; ++u) max_reg = std::max(max_reg, uses[u]);
  }
  const std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> def_of(max_reg + 1, kNone);
  std::vector<std::vector<std::size_t>> users_of(max_reg + 1);

  std::size_t last_store = kNone;
  std::vector<std::size_t> reads_since_store;
  std::size_t last_barrier = kNone;

  for (std::size_t i = 0; i < n; ++i) {
    const Instr& inst = insts[i];

    std::array<Reg, 2 + kMaxCallArgs> uses;
    unsigned nu = 0;
    append_uses(inst, uses, nu);
    for (unsigned u = 0; u < nu; ++u) {
      const Reg r = uses[u];
      if (def_of[r] != kNone) add_edge(def_of[r], i);  // RAW
      users_of[r].push_back(i);
    }
    if (has_dst(inst)) {
      const Reg d = inst.dst;
      if (def_of[d] != kNone) add_edge(def_of[d], i);  // WAW
      for (std::size_t u : users_of[d])
        if (u != i) add_edge(u, i);  // WAR
      def_of[d] = i;
      users_of[d].clear();
    }

    if (is_mem_read(inst)) {
      if (last_store != kNone) add_edge(last_store, i);
      if (last_barrier != kNone) add_edge(last_barrier, i);
      reads_since_store.push_back(i);
    }
    if (is_mem_write(inst) || is_barrier(inst)) {
      if (last_store != kNone) add_edge(last_store, i);
      for (std::size_t r : reads_since_store) add_edge(r, i);
      reads_since_store.clear();
      if (last_barrier != kNone) add_edge(last_barrier, i);
      if (is_barrier(inst)) last_barrier = i;
      else last_store = i;
    }
  }

  // Critical-path heights (reverse topological order = reverse index
  // order, since all edges go forward).
  for (std::size_t i = n; i-- > 0;) {
    unsigned h = sched_latency(insts[i]);
    unsigned best = 0;
    for (std::size_t s : dag.succs[i]) best = std::max(best, dag.height[s]);
    dag.height[i] = h + best;
  }
  return dag;
}

bool schedule_blocks(Function& fn) {
  bool changed = false;
  for (BasicBlock& bb : fn.blocks) {
    if (bb.insts.size() < 3) continue;
    const std::size_t n = bb.insts.size() - 1;  // exclude terminator
    std::vector<Instr> body(bb.insts.begin(), bb.insts.begin() + n);
    const ScheduleDag dag = build_dag(body);

    std::vector<unsigned> indeg(n, 0);
    for (std::size_t i = 0; i < n; ++i)
      indeg[i] = static_cast<unsigned>(dag.preds[i].size());

    std::vector<std::size_t> ready;
    for (std::size_t i = 0; i < n; ++i)
      if (indeg[i] == 0) ready.push_back(i);

    std::vector<std::size_t> order;
    order.reserve(n);
    while (!ready.empty()) {
      // Highest critical-path height wins; original order breaks ties.
      std::size_t best_pos = 0;
      for (std::size_t k = 1; k < ready.size(); ++k) {
        const std::size_t cand = ready[k], cur = ready[best_pos];
        if (dag.height[cand] > dag.height[cur] ||
            (dag.height[cand] == dag.height[cur] && cand < cur))
          best_pos = k;
      }
      const std::size_t pick = ready[best_pos];
      ready.erase(ready.begin() + static_cast<long>(best_pos));
      order.push_back(pick);
      for (std::size_t s : dag.succs[pick])
        if (--indeg[s] == 0) ready.push_back(s);
    }
    ILC_CHECK_MSG(order.size() == n, "scheduling dropped instructions");

    bool same = true;
    for (std::size_t i = 0; i < n; ++i)
      if (order[i] != i) same = false;
    if (same) continue;

    std::vector<Instr> scheduled;
    scheduled.reserve(bb.insts.size());
    for (std::size_t i : order) scheduled.push_back(body[i]);
    scheduled.push_back(bb.insts.back());
    bb.insts = std::move(scheduled);
    changed = true;
  }
  return changed;
}

}  // namespace ilc::opt
