#include "kb/knowledge_base.hpp"

#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "support/csv.hpp"
#include "support/string_utils.hpp"

namespace ilc::kb {

namespace {

constexpr const char* kHeader = "ilc-kb v1";

std::string join_doubles(const std::vector<double>& v) {
  std::ostringstream os;
  os.precision(17);
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) os << ';';
    os << v[i];
  }
  return os.str();
}

// Malformed knowledge bases must yield nullopt from parse(), never throw
// or crash, so every numeric field goes through these checked helpers.
std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return v;
}

std::optional<double> parse_double(const std::string& s) {
  if (s.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return std::nullopt;
  return v;
}

std::optional<std::vector<double>> parse_doubles(const std::string& s) {
  std::vector<double> out;
  if (s.empty()) return out;
  for (const std::string& part : support::split(s, ';')) {
    const auto v = parse_double(part);
    if (!v) return std::nullopt;
    out.push_back(*v);
  }
  return out;
}

std::string join_counters(const sim::Counters& c) {
  std::ostringstream os;
  for (unsigned i = 0; i < sim::kNumCounters; ++i) {
    if (i) os << ';';
    os << c.v[i];
  }
  return os.str();
}

std::optional<sim::Counters> parse_counters(const std::string& s) {
  sim::Counters c;
  if (s.empty()) return c;
  const auto parts = support::split(s, ';');
  for (std::size_t i = 0; i < parts.size() && i < sim::kNumCounters; ++i) {
    const auto v = parse_u64(parts[i]);
    if (!v) return std::nullopt;
    c.v[i] = *v;
  }
  return c;
}

}  // namespace

std::string KnowledgeBase::key_of(const std::string& program,
                                  const std::string& machine,
                                  const std::string& kind) {
  std::string key;
  key.reserve(program.size() + machine.size() + kind.size() + 2);
  key += program;
  key += '\x1f';
  key += machine;
  key += '\x1f';
  key += kind;
  return key;
}

void KnowledgeBase::add(ExperimentRecord rec) {
  first_by_key_.try_emplace(key_of(rec.program, rec.machine, rec.kind),
                            records_.size());
  records_.push_back(std::move(rec));
}

std::vector<const ExperimentRecord*> KnowledgeBase::for_program(
    const std::string& program, const std::string& kind) const {
  std::vector<const ExperimentRecord*> out;
  for (const auto& r : records_)
    if (r.program == program && (kind.empty() || r.kind == kind))
      out.push_back(&r);
  return out;
}

const ExperimentRecord* KnowledgeBase::best_for_program(
    const std::string& program, const std::string& kind) const {
  const ExperimentRecord* best = nullptr;
  for (const auto* r : for_program(program, kind))
    if (best == nullptr || r->cycles < best->cycles) best = r;
  return best;
}

const ExperimentRecord* KnowledgeBase::find(const std::string& program,
                                            const std::string& machine,
                                            const std::string& kind) const {
  const auto it = first_by_key_.find(key_of(program, machine, kind));
  return it == first_by_key_.end() ? nullptr : &records_[it->second];
}

bool KnowledgeBase::upsert(ExperimentRecord rec) {
  const auto it =
      first_by_key_.find(key_of(rec.program, rec.machine, rec.kind));
  if (it != first_by_key_.end()) {
    records_[it->second] = std::move(rec);
    return true;
  }
  add(std::move(rec));
  return false;
}

std::vector<std::string> KnowledgeBase::programs() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const auto& r : records_)
    if (seen.insert(r.program).second) out.push_back(r.program);
  return out;
}

std::string KnowledgeBase::serialize() const {
  support::CsvWriter w;
  w.row({kHeader});
  w.row({"program", "machine", "kind", "config", "cycles", "code_size",
         "instructions", "counters", "static_features", "dynamic_features"});
  for (const auto& r : records_) {
    w.row({r.program, r.machine, r.kind, r.config, std::to_string(r.cycles),
           std::to_string(r.code_size), std::to_string(r.instructions),
           join_counters(r.counters), join_doubles(r.static_features),
           join_doubles(r.dynamic_features)});
  }
  return w.str();
}

std::optional<KnowledgeBase> KnowledgeBase::parse(const std::string& text) {
  const auto rows = support::parse_csv(text);
  if (rows.size() < 2 || rows[0].empty() || rows[0][0] != kHeader)
    return std::nullopt;
  KnowledgeBase out;
  for (std::size_t i = 2; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() != 10) return std::nullopt;
    ExperimentRecord r;
    r.program = row[0];
    r.machine = row[1];
    r.kind = row[2];
    r.config = row[3];
    const auto cycles = parse_u64(row[4]);
    const auto code_size = parse_u64(row[5]);
    const auto instructions = parse_u64(row[6]);
    const auto counters = parse_counters(row[7]);
    auto static_features = parse_doubles(row[8]);
    auto dynamic_features = parse_doubles(row[9]);
    if (!cycles || !code_size || !instructions || !counters ||
        !static_features || !dynamic_features)
      return std::nullopt;
    r.cycles = *cycles;
    r.code_size = *code_size;
    r.instructions = *instructions;
    r.counters = *counters;
    r.static_features = std::move(*static_features);
    r.dynamic_features = std::move(*dynamic_features);
    out.add(std::move(r));
  }
  return out;
}

bool KnowledgeBase::save(const std::string& path) const {
  // Write-then-rename so a crash mid-save leaves any existing file intact;
  // rename(2) within one directory is atomic.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return false;
    f << serialize();
    f.flush();
    if (!f) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

std::optional<KnowledgeBase> KnowledgeBase::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return std::nullopt;
  std::ostringstream os;
  os << f.rdbuf();
  return parse(os.str());
}

}  // namespace ilc::kb
