// The knowledge base (paper Section III-E): a standardized store of
// optimization-experiment results — program + machine characterizations,
// the optimization configuration tried, and what it measured. The paper
// argues for a documented standard format so tools can exchange training
// data; ours is a versioned CSV dialect (one record per row, vector-valued
// fields joined with ';').
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/counters.hpp"

namespace ilc::kb {

/// One optimization experiment: configuration -> measurement.
struct ExperimentRecord {
  std::string program;
  std::string machine;
  std::string kind;    // "sequence" (Fig. 2 space) or "flags" (Fig. 3/4)
  std::string config;  // comma-joined pass names, or decimal flag encoding

  std::uint64_t cycles = 0;
  std::uint64_t code_size = 0;
  std::uint64_t instructions = 0;
  sim::Counters counters;

  std::vector<double> static_features;
  std::vector<double> dynamic_features;
};

class KnowledgeBase {
 public:
  void add(ExperimentRecord rec);
  const std::vector<ExperimentRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  /// All records of one program (optionally restricted by kind).
  std::vector<const ExperimentRecord*> for_program(
      const std::string& program, const std::string& kind = "") const;

  /// Record with minimum cycles for a program (nullptr if none).
  const ExperimentRecord* best_for_program(const std::string& program,
                                           const std::string& kind = "") const;

  /// The unique record for a (program, machine, kind) key, or nullptr.
  /// Meaningful for stores maintained via upsert(), which keeps at most
  /// one record per key.
  const ExperimentRecord* find(const std::string& program,
                               const std::string& machine,
                               const std::string& kind) const;

  /// Replace the record matching (program, machine, kind) in place, or
  /// append if no match exists. Returns true when an existing record was
  /// replaced. The serving layer uses this to keep exactly one
  /// best-configuration record per cache key.
  bool upsert(ExperimentRecord rec);

  /// Distinct program names in insertion order.
  std::vector<std::string> programs() const;

  // --- the standard format -------------------------------------------
  std::string serialize() const;
  static std::optional<KnowledgeBase> parse(const std::string& text);
  /// Atomic: writes to a temp file and renames over `path`, so a crash
  /// mid-save can never truncate an existing knowledge base.
  bool save(const std::string& path) const;
  static std::optional<KnowledgeBase> load(const std::string& path);

 private:
  static std::string key_of(const std::string& program,
                            const std::string& machine,
                            const std::string& kind);

  std::vector<ExperimentRecord> records_;
  /// Index of the *first* record per (program, machine, kind): find() and
  /// upsert() target that record, matching the historical linear-scan
  /// semantics, in O(1) instead of O(n). records_ keeps insertion order.
  std::unordered_map<std::string, std::size_t> first_by_key_;
};

}  // namespace ilc::kb
