// The event-loop core of the TCP front-end. Three pieces live in this
// translation unit, layered bottom-up:
//
//   Mailbox    the cross-thread door into a loop: accepted sockets and
//              session-completion wakeups are posted here (mutex + vector
//              + eventfd). Service workers reach a loop *only* through
//              its mailbox, so every Conn is touched by exactly one
//              thread and the whole layer needs no per-connection locks.
//   Conn       per-connection state machine: incremental line extraction
//              feeding a net::Session, bounded write buffer, flush/
//              backpressure/eviction bookkeeping. Runs strictly on its
//              owning loop's thread.
//   EventLoop  epoll_wait loop (level-triggered) over { mailbox eventfd,
//              listener (loop 0), conns }, plus a ~25ms sweep for idle /
//              write-stall eviction and the shutdown drain phases.
#include "net/server.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "net/session.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "svc/protocol.hpp"

namespace ilc::net {

namespace {

using Clock = std::chrono::steady_clock;

// epoll user-data tags for the two non-connection fds. Connection ids
// start at 1 and count up; these sit at the top of the space.
constexpr std::uint64_t kMailboxTag = ~0ULL;
constexpr std::uint64_t kListenerTag = ~0ULL - 1;

std::uint64_t us_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(b - a).count());
}

}  // namespace

/// Exact per-server accounting (the atomics Stats reads) plus mirrors in
/// the process-wide obs registry for exporters and bench artifacts.
struct Server::Counters {
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> closed{0};
  std::atomic<std::uint64_t> evicted_idle{0};
  std::atomic<std::uint64_t> evicted_slow{0};
  std::atomic<std::uint64_t> accept_faults{0};
  std::atomic<std::uint64_t> over_limit{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> responses{0};
  std::atomic<std::int64_t> active{0};

  obs::Counter g_accepted, g_closed, g_evicted, g_bytes_in, g_bytes_out,
      g_responses;
  obs::Gauge g_active;
  obs::Histogram g_request_us;

  Counters() {
    obs::Registry& r = obs::Registry::instance();
    g_accepted = r.counter("net.conns_accepted");
    g_closed = r.counter("net.conns_closed");
    g_evicted = r.counter("net.conns_evicted");
    g_bytes_in = r.counter("net.bytes_in");
    g_bytes_out = r.counter("net.bytes_out");
    g_responses = r.counter("net.responses");
    g_active = r.gauge("net.conns_active");
    g_request_us = r.histogram("net.request_us");
  }
};

namespace {

/// The only cross-thread door into an event loop. post_* may be called
/// from any thread (service workers, the acceptor, shutdown); the loop
/// drains on its own thread. Held by shared_ptr from the loop and from
/// every session wake hook, so a completion firing after its loop exited
/// lands in a closed mailbox and is dropped — never a dangling pointer.
struct Mailbox {
  Mailbox() : efd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)) {
    if (!efd.valid()) throw std::runtime_error("eventfd failed");
  }

  Fd efd;
  std::mutex mu;
  bool closed = false;
  std::vector<int> new_fds;
  std::vector<std::uint64_t> wakes;

  void post_fd(int fd) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (closed) {
        ::close(fd);
        return;
      }
      new_fds.push_back(fd);
    }
    signal();
  }

  void post_wake(std::uint64_t conn_id) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (closed) return;
      wakes.push_back(conn_id);
    }
    signal();
  }

  void kick() {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (closed) return;
    }
    signal();
  }

  /// Loop thread: consume the eventfd and take the posted work.
  void drain(std::vector<int>& fds, std::vector<std::uint64_t>& w) {
    std::uint64_t count = 0;
    while (::read(efd.get(), &count, sizeof count) > 0) {
    }
    std::lock_guard<std::mutex> lock(mu);
    fds.swap(new_fds);
    w.swap(wakes);
  }

  /// Loop thread, on exit: late posts are dropped, orphaned sockets
  /// closed (they were never registered, so they are not in any counter).
  void close_box() {
    std::vector<int> orphans;
    {
      std::lock_guard<std::mutex> lock(mu);
      closed = true;
      orphans.swap(new_fds);
      wakes.clear();
    }
    for (const int fd : orphans) ::close(fd);
  }

  void signal() {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t r = ::write(efd.get(), &one, sizeof one);
  }
};

}  // namespace

class Conn;

class EventLoop {
 public:
  EventLoop(Server& server, std::size_t index);
  ~EventLoop();

  void adopt_listener(Fd listener);  // loop 0, before start()
  void start();
  void join();
  std::shared_ptr<Mailbox>& mailbox() { return mailbox_; }
  Server& server() { return server_; }
  int epfd() const { return epfd_.get(); }

 private:
  friend class Conn;

  void run();
  void accept_ready();
  void add_conn(int raw_fd);
  void close_conn(std::uint64_t id, int reason);
  void process_mailbox();
  void begin_drain();
  void sweep(Clock::time_point now);
  void force_close_all();

  Server& server_;
  std::size_t index_;
  Fd epfd_;
  Fd listener_;
  std::shared_ptr<Mailbox> mailbox_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::thread thread_;
  std::size_t rr_next_ = 0;  // round-robin cursor (acceptor loop only)
  Clock::time_point last_sweep_{};
  bool drain_started_ = false;
};

/// Per-connection state machine. Every method runs on the owning loop's
/// thread; the only concurrency is the Session completion path, which
/// stays inside the session and reaches this class via the mailbox.
class Conn {
 public:
  // Why a connection ended; close_conn turns this into counters.
  enum Reason { kNone = 0, kNormal, kError, kEvictIdle, kEvictSlow, kForced };

  Conn(EventLoop& loop, Fd fd, std::uint64_t id)
      : loop_(loop),
        fd_(std::move(fd)),
        id_(id),
        last_activity_(Clock::now()) {
    session_ = Session::create(
        loop_.server().service_,
        {.wake = [mb = loop_.mailbox(), id] { mb->post_wake(id); }});
  }

  int fd() const { return fd_.get(); }
  int dead() const { return dead_; }

  void on_event(std::uint32_t events) {
    if (events & EPOLLERR) {
      dead_ = kError;
      return;
    }
    if (events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) read_input();
    if (dead_ != kNone) return;
    pump();
    if (dead_ != kNone) return;
    finish_or_rearm();
  }

  /// Mailbox wakeup: a deferred response became ready.
  void on_wake() {
    pump();
    if (dead_ != kNone) return;
    finish_or_rearm();
  }

  /// Graceful shutdown: no more input; finish in-flight work and flush.
  void drain_now() {
    stop_reading_ = true;
    closing_ = true;
    rbuf_.clear();
    scan_ = 0;
    pump();
    if (dead_ != kNone) return;
    finish_or_rearm();
  }

  /// Periodic timeout scan.
  void sweep(Clock::time_point now) {
    if (dead_ != kNone) return;
    const ServerOptions& o = loop_.server().opts_;
    if (o.write_stall_ms != 0 && write_blocked_ &&
        now - write_blocked_since_ >=
            std::chrono::milliseconds(o.write_stall_ms)) {
      dead_ = kEvictSlow;
      return;
    }
    if (o.idle_timeout_ms != 0 && session_->idle() && wbuf_.empty() &&
        now - last_activity_ >= std::chrono::milliseconds(o.idle_timeout_ms))
      dead_ = kEvictIdle;
  }

 private:
  void read_input() {
    if (stop_reading_ && !read_closed_) {
      // Input no longer wanted (oversize violation / quit / draining):
      // swallow and discard so the peer is not blocked mid-send, but
      // still notice EOF and errors.
      char sink[4096];
      for (;;) {
        const IoResult r = read_some(fd_.get(), sink, sizeof sink);
        if (r.status == IoStatus::Ok) continue;
        if (r.status == IoStatus::Eof) read_closed_ = true;
        if (r.status == IoStatus::Error) dead_ = kError;
        return;
      }
    }
    if (read_closed_) return;
    const Clock::time_point t_ready = Clock::now();
    char buf[16384];
    // Bounded per event for fairness across connections; level-triggered
    // epoll re-reports whatever is left.
    for (int round = 0; round < 4; ++round) {
      const IoResult r = read_some(fd_.get(), buf, sizeof buf);
      if (r.status == IoStatus::WouldBlock) break;
      if (r.status == IoStatus::Eof) {
        // Half-close: the client finished sending (shutdown(SHUT_WR))
        // but may still be reading — deliver what it is owed, then close.
        read_closed_ = true;
        break;
      }
      if (r.status == IoStatus::Error) {
        dead_ = kError;
        return;
      }
      Server::Counters& c = *loop_.server().counters_;
      c.bytes_in.fetch_add(r.bytes, std::memory_order_relaxed);
      c.g_bytes_in.add(r.bytes);
      last_activity_ = t_ready;
      rbuf_.append(buf, r.bytes);
      extract_lines(t_ready);
      if (stop_reading_ || r.bytes < sizeof buf) break;
    }
  }

  void extract_lines(Clock::time_point t_ready) {
    std::size_t pos;
    while (!stop_reading_ && (pos = rbuf_.find('\n', scan_)) !=
                                 std::string::npos) {
      std::string line = rbuf_.substr(0, pos);
      rbuf_.erase(0, pos + 1);
      scan_ = 0;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.size() > svc::kMaxRequestLine) {
        oversize(line.size());
        return;
      }
      session_->feed_line(line, t_ready);
      if (session_->quit_requested()) {
        // Anything pipelined after `quit` is dropped, as in stdin mode.
        stop_reading_ = true;
        rbuf_.clear();
        scan_ = 0;
        return;
      }
    }
    if (stop_reading_) return;
    scan_ = rbuf_.size();
    // An unterminated line must not grow a server-side buffer without
    // bound: over the protocol limit, answer and hang up.
    if (rbuf_.size() > svc::kMaxRequestLine) oversize(rbuf_.size());
  }

  void oversize(std::size_t bytes) {
    session_->fail("request line too long (" + std::to_string(bytes) +
                   " bytes, max " + std::to_string(svc::kMaxRequestLine) +
                   "); closing connection");
    stop_reading_ = true;
    closing_ = true;
    rbuf_.clear();
    scan_ = 0;
  }

  /// Move ready responses session -> write buffer, accounting latency and
  /// the per-request trace span at the moment bytes head for the socket.
  void pump() {
    std::string out;
    std::vector<Session::Done> done;
    if (session_->drain_ready(out, &done) == 0) {
      flush();
      return;
    }
    wbuf_ += out;
    const Clock::time_point now = Clock::now();
    Server::Counters& c = *loop_.server().counters_;
    for (const Session::Done& d : done) {
      if (!d.is_tune) continue;
      c.responses.fetch_add(1, std::memory_order_relaxed);
      c.g_responses.inc();
      c.g_request_us.record(us_between(d.start, now));
      obs::Tracer::record_span("net.request", d.trace, /*parent_id=*/0,
                               d.start, now, {{"program", d.program}});
    }
    flush();
  }

  void flush() {
    Server::Counters& c = *loop_.server().counters_;
    while (woff_ < wbuf_.size()) {
      const IoResult r =
          write_some(fd_.get(), wbuf_.data() + woff_, wbuf_.size() - woff_);
      if (r.status == IoStatus::Ok) {
        woff_ += r.bytes;
        c.bytes_out.fetch_add(r.bytes, std::memory_order_relaxed);
        c.g_bytes_out.add(r.bytes);
        last_activity_ = Clock::now();
        continue;
      }
      if (r.status == IoStatus::WouldBlock) break;
      dead_ = kError;
      return;
    }
    if (woff_ == wbuf_.size()) {
      wbuf_.clear();
      woff_ = 0;
      write_blocked_ = false;
    } else {
      if (woff_ > 0) {
        // Compact occasionally so a long-lived trickle flush cannot pin
        // an ever-growing buffer.
        wbuf_.erase(0, woff_);
        woff_ = 0;
      }
      if (!write_blocked_) {
        write_blocked_ = true;
        write_blocked_since_ = Clock::now();
      }
    }
  }

  /// Decide between closing and re-arming epoll interest.
  void finish_or_rearm() {
    const std::size_t outstanding = wbuf_.size() - woff_;
    if (outstanding == 0 && session_->idle() &&
        (closing_ || read_closed_ || session_->quit_requested())) {
      dead_ = kNormal;
      return;
    }
    // Backpressure with hysteresis: a full write buffer pauses reads (the
    // kernel's receive window then pushes back on the client); resume
    // below half to avoid flapping.
    const std::size_t cap = loop_.server().opts_.max_wbuf;
    if (cap != 0) {
      if (outstanding >= cap) paused_ = true;
      else if (outstanding <= cap / 2) paused_ = false;
    }
    std::uint32_t want = 0;
    if (!stop_reading_ && !read_closed_ && !paused_)
      want |= EPOLLIN | EPOLLRDHUP;
    if (outstanding > 0) want |= EPOLLOUT;
    if (want == armed_mask_) return;
    epoll_event ev{};
    ev.events = want;
    ev.data.u64 = id_;
    if (::epoll_ctl(loop_.epfd(), EPOLL_CTL_MOD, fd_.get(), &ev) == 0)
      armed_mask_ = want;
  }

  EventLoop& loop_;
  Fd fd_;
  std::uint64_t id_;
  std::shared_ptr<Session> session_;

  std::string rbuf_;
  std::size_t scan_ = 0;  // rbuf_ scanned this far without finding '\n'
  std::string wbuf_;
  std::size_t woff_ = 0;  // wbuf_ flushed this far

  bool stop_reading_ = false;  // no further input is processed
  bool read_closed_ = false;   // EOF seen (half-close until flushed)
  bool closing_ = false;       // close as soon as idle and flushed
  bool paused_ = false;        // reads paused by write-buffer backpressure
  bool write_blocked_ = false;
  Clock::time_point write_blocked_since_{};
  Clock::time_point last_activity_;
  std::uint32_t armed_mask_ = EPOLLIN | EPOLLRDHUP;  // as registered by ADD
  int dead_ = kNone;
};

// ---- EventLoop -----------------------------------------------------------

EventLoop::EventLoop(Server& server, std::size_t index)
    : server_(server),
      index_(index),
      epfd_(::epoll_create1(EPOLL_CLOEXEC)),
      mailbox_(std::make_shared<Mailbox>()) {
  if (!epfd_.valid()) throw std::runtime_error("epoll_create1 failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kMailboxTag;
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_ADD, mailbox_->efd.get(), &ev) != 0)
    throw std::runtime_error("epoll_ctl(mailbox) failed");
}

EventLoop::~EventLoop() {
  if (thread_.joinable()) {
    server_.stopping_.store(true, std::memory_order_relaxed);
    mailbox_->kick();
    thread_.join();
  }
}

void EventLoop::adopt_listener(Fd listener) {
  listener_ = std::move(listener);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_ADD, listener_.get(), &ev) != 0)
    throw std::runtime_error("epoll_ctl(listener) failed");
}

void EventLoop::start() {
  thread_ = std::thread([this] { run(); });
}

void EventLoop::join() {
  if (thread_.joinable()) thread_.join();
}

void EventLoop::run() {
  std::array<epoll_event, 128> events;
  last_sweep_ = Clock::now();
  for (;;) {
    const int n = ::epoll_wait(epfd_.get(), events.data(),
                               static_cast<int>(events.size()), 50);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself broken: abandon ship, close everything
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kMailboxTag) continue;  // drained below, once
      if (tag == kListenerTag) {
        accept_ready();
        continue;
      }
      if (const auto it = conns_.find(tag); it != conns_.end()) {
        it->second->on_event(events[i].events);
        if (it->second->dead() != Conn::kNone)
          close_conn(tag, it->second->dead());
      }
    }
    process_mailbox();
    if (server_.draining_.load(std::memory_order_relaxed)) begin_drain();
    if (server_.force_close_.load(std::memory_order_relaxed))
      force_close_all();
    const Clock::time_point now = Clock::now();
    if (now - last_sweep_ >= std::chrono::milliseconds(25)) {
      sweep(now);
      last_sweep_ = now;
    }
    if (server_.stopping_.load(std::memory_order_relaxed)) break;
  }
  mailbox_->close_box();
  force_close_all();
}

void EventLoop::accept_ready() {
  Server::Counters& c = *server_.counters_;
  for (;;) {
    if (!listener_.valid()) return;
    bool dropped = false;
    Fd fd = accept_conn(listener_.get(), &dropped);
    if (dropped) {
      c.accept_faults.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!fd.valid()) return;
    const std::size_t max_conns = server_.opts_.max_conns;
    if (max_conns != 0 &&
        c.active.load(std::memory_order_relaxed) >=
            static_cast<std::int64_t>(max_conns)) {
      c.over_limit.fetch_add(1, std::memory_order_relaxed);
      continue;  // fd closes on scope exit: refused before registration
    }
    EventLoop& target = *server_.loops_[rr_next_++ % server_.loops_.size()];
    if (&target == this) {
      add_conn(fd.release());
    } else {
      target.mailbox()->post_fd(fd.release());
    }
  }
}

void EventLoop::add_conn(int raw_fd) {
  Fd fd(raw_fd);
  if (server_.stopping_.load(std::memory_order_relaxed) ||
      server_.force_close_.load(std::memory_order_relaxed))
    return;  // refused before registration; fd closes here
  if (server_.opts_.sndbuf > 0)
    ::setsockopt(fd.get(), SOL_SOCKET, SO_SNDBUF, &server_.opts_.sndbuf,
                 sizeof server_.opts_.sndbuf);
  const std::uint64_t id =
      server_.next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  const int raw = fd.get();
  auto conn = std::make_unique<Conn>(*this, std::move(fd), id);
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP;
  ev.data.u64 = id;
  if (::epoll_ctl(epfd_.get(), EPOLL_CTL_ADD, raw, &ev) != 0)
    return;  // conn (and fd) destroyed; never registered, never counted
  Server::Counters& c = *server_.counters_;
  c.accepted.fetch_add(1, std::memory_order_relaxed);
  c.active.fetch_add(1, std::memory_order_relaxed);
  c.g_accepted.inc();
  c.g_active.add(1);
  Conn* raw_conn = conn.get();
  conns_.emplace(id, std::move(conn));
  if (drain_started_) {
    // Raced in behind shutdown: drains immediately (and typically closes,
    // having nothing in flight).
    raw_conn->drain_now();
    if (raw_conn->dead() != Conn::kNone) close_conn(id, raw_conn->dead());
  }
}

void EventLoop::close_conn(std::uint64_t id, int reason) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epfd_.get(), EPOLL_CTL_DEL, it->second->fd(), nullptr);
  conns_.erase(it);  // destroys Conn: closes the socket, drops the Session
  Server::Counters& c = *server_.counters_;
  c.closed.fetch_add(1, std::memory_order_relaxed);
  c.active.fetch_sub(1, std::memory_order_relaxed);
  c.g_closed.inc();
  c.g_active.sub(1);
  if (reason == Conn::kEvictIdle) {
    c.evicted_idle.fetch_add(1, std::memory_order_relaxed);
    c.g_evicted.inc();
  } else if (reason == Conn::kEvictSlow) {
    c.evicted_slow.fetch_add(1, std::memory_order_relaxed);
    c.g_evicted.inc();
  }
}

void EventLoop::process_mailbox() {
  std::vector<int> fds;
  std::vector<std::uint64_t> wakes;
  mailbox_->drain(fds, wakes);
  for (const int fd : fds) add_conn(fd);
  for (const std::uint64_t id : wakes) {
    if (const auto it = conns_.find(id); it != conns_.end()) {
      it->second->on_wake();
      if (it->second->dead() != Conn::kNone)
        close_conn(id, it->second->dead());
    }
    // else: completion for a connection that died mid-request — the
    // service already retired the work; nothing to deliver it to.
  }
}

void EventLoop::begin_drain() {
  if (drain_started_) return;
  drain_started_ = true;
  if (listener_.valid()) {
    ::epoll_ctl(epfd_.get(), EPOLL_CTL_DEL, listener_.get(), nullptr);
    listener_.reset();  // stop accepting before draining what is left
  }
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    const auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    it->second->drain_now();
    if (it->second->dead() != Conn::kNone) close_conn(id, it->second->dead());
  }
}

void EventLoop::sweep(Clock::time_point now) {
  std::vector<std::uint64_t> dead;
  for (const auto& [id, conn] : conns_) {
    conn->sweep(now);
    if (conn->dead() != Conn::kNone) dead.push_back(id);
  }
  for (const std::uint64_t id : dead)
    close_conn(id, conns_.at(id)->dead());
}

void EventLoop::force_close_all() {
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (const std::uint64_t id : ids) close_conn(id, Conn::kForced);
}

// ---- Server --------------------------------------------------------------

Server::Server(svc::TuningService& service, ServerOptions opts)
    : service_(service),
      opts_(std::move(opts)),
      counters_(std::make_unique<Counters>()) {
  if (opts_.loops == 0) opts_.loops = 1;
  Fd listener = listen_tcp(opts_.port, port_);
  loops_.reserve(opts_.loops);
  for (std::size_t i = 0; i < opts_.loops; ++i)
    loops_.push_back(std::make_unique<EventLoop>(*this, i));
  loops_[0]->adopt_listener(std::move(listener));
  for (const auto& loop : loops_) loop->start();
}

Server::~Server() { shutdown(); }

void Server::shutdown() {
  std::call_once(shutdown_once_, [this] {
    draining_.store(true, std::memory_order_relaxed);
    for (const auto& loop : loops_) loop->mailbox()->kick();

    // Drain phase: in-flight requests resolve (bounded by the service's
    // own lifecycle guarantee) and responses flush. Polling is fine here:
    // shutdown is not a hot path.
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(opts_.drain_timeout_ms);
    while (counters_->active.load(std::memory_order_relaxed) > 0 &&
           Clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));

    force_close_.store(true, std::memory_order_relaxed);
    for (const auto& loop : loops_) loop->mailbox()->kick();
    while (counters_->active.load(std::memory_order_relaxed) > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));

    stopping_.store(true, std::memory_order_relaxed);
    for (const auto& loop : loops_) loop->mailbox()->kick();
    for (const auto& loop : loops_) loop->join();
  });
}

Server::Stats Server::stats() const {
  const Counters& c = *counters_;
  Stats s;
  s.accepted = c.accepted.load(std::memory_order_relaxed);
  s.closed = c.closed.load(std::memory_order_relaxed);
  s.evicted_idle = c.evicted_idle.load(std::memory_order_relaxed);
  s.evicted_slow = c.evicted_slow.load(std::memory_order_relaxed);
  s.accept_faults = c.accept_faults.load(std::memory_order_relaxed);
  s.over_limit = c.over_limit.load(std::memory_order_relaxed);
  s.bytes_in = c.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = c.bytes_out.load(std::memory_order_relaxed);
  s.responses = c.responses.load(std::memory_order_relaxed);
  s.active = c.active.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ilc::net
