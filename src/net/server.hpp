// net::Server — the epoll-based TCP front-end of the tuning service: the
// piece that turns svc::TuningService from a library into a network
// server. One acceptor + N event-loop threads multiplex thousands of
// connections; each connection runs a net::Session state machine
// (incremental line parsing, request pipelining, in-order responses) and
// the loops handle buffering, backpressure, eviction, and shutdown:
//
//   accept    loop 0 owns the listener; accepted sockets are handed
//             round-robin to the loops through an eventfd mailbox.
//   read      level-triggered EPOLLIN; bytes append to a per-connection
//             buffer and complete lines feed the Session. A line (or an
//             unterminated buffer) over svc::kMaxRequestLine gets a clean
//             `err` response and the connection is closed after it flushes.
//   respond   service completions wake the owning loop via the mailbox;
//             ready responses append to a bounded write buffer, flushed
//             opportunistically and via EPOLLOUT.
//   backpressure  a write buffer at max_wbuf stops reads (the kernel
//             then pushes back on the client); a flush stalled longer
//             than write_stall_ms evicts the slow reader, an idle
//             connection longer than idle_timeout_ms is evicted too.
//   shutdown  graceful: stop accepting, stop reading, let in-flight
//             requests resolve and responses flush (bounded by
//             drain_timeout_ms), force-close stragglers, join the loops.
//             A client that disconnects mid-request just stops being
//             listened to — the service's completion guard retires the
//             work, no worker hangs, no connection leaks.
//
// Destroy order: Server before its TuningService (sessions reference the
// service; completions outliving a connection are dropped via weak_ptr).
//
// Observability: global-registry counters (net.conns_accepted /
// net.conns_active / net.conns_evicted_* / net.bytes_in / net.bytes_out /
// net.responses), a net.request_us read-to-write latency histogram, and
// a per-request `net.request` trace span rooted at socket readability
// that the service's svc.submit span parents onto.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "svc/service.hpp"

namespace ilc::net {

struct ServerOptions {
  /// 0 = kernel-assigned ephemeral port; see Server::port().
  std::uint16_t port = 0;
  /// Event-loop threads (loop 0 also accepts). The svc worker pool does
  /// the heavy lifting; loops only shuffle bytes, so a small number
  /// multiplexes thousands of connections.
  std::size_t loops = 1;
  /// Connections beyond this are closed at accept (0 = unbounded).
  std::size_t max_conns = 0;
  /// Per-connection write-buffer bound; at or above it the connection
  /// stops reading until the buffer drains below half (backpressure).
  std::size_t max_wbuf = 256 * 1024;
  /// Evict a connection whose flush has been stalled this long (slow or
  /// dead reader). 0 disables.
  std::uint64_t write_stall_ms = 5000;
  /// Evict a connection with no traffic and no pending work for this
  /// long. 0 disables.
  std::uint64_t idle_timeout_ms = 0;
  /// Graceful-shutdown budget: how long shutdown() waits for in-flight
  /// requests to resolve and responses to flush before force-closing.
  std::uint64_t drain_timeout_ms = 5000;
  /// SO_SNDBUF for accepted sockets, 0 = kernel default. Tests shrink it
  /// to make slow-reader eviction deterministic.
  int sndbuf = 0;
};

class Server {
 public:
  /// Binds 127.0.0.1 and starts the loops. Throws std::runtime_error on
  /// bind/listen failure.
  Server(svc::TuningService& service, ServerOptions opts);
  ~Server();  // shutdown() if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (the ephemeral one when ServerOptions::port was 0).
  std::uint16_t port() const { return port_; }

  /// Graceful shutdown; idempotent, safe from any non-loop thread.
  void shutdown();

  /// Point-in-time connection accounting, per server instance. The leak
  /// invariant every test and bench asserts: after shutdown,
  /// active == 0 and accepted == closed.
  struct Stats {
    std::uint64_t accepted = 0;      // registered with an event loop
    std::uint64_t closed = 0;        // every close, evictions included
    std::uint64_t evicted_idle = 0;
    std::uint64_t evicted_slow = 0;
    std::uint64_t accept_faults = 0; // net.accept failpoint drops
    std::uint64_t over_limit = 0;    // closed at accept: max_conns
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t responses = 0;     // tune responses written
    std::int64_t active = 0;
  };
  Stats stats() const;

 private:
  friend class EventLoop;
  friend class Conn;

  struct Counters;

  svc::TuningService& service_;
  ServerOptions opts_;
  std::uint16_t port_ = 0;
  std::unique_ptr<Counters> counters_;
  std::vector<std::unique_ptr<class EventLoop>> loops_;
  std::atomic<std::uint64_t> next_conn_id_{1};
  std::atomic<bool> draining_{false};
  std::atomic<bool> force_close_{false};
  std::atomic<bool> stopping_{false};
  std::once_flag shutdown_once_;
};

}  // namespace ilc::net
