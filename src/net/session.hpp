// net::Session — the transport-agnostic request-handling loop of the
// tuning server: one instance per client (a TCP connection, or the
// process's stdin), fed one protocol line at a time, producing response
// lines in submission order. Both transports share this code path, so
// the stdin mode of examples/tuning_server and the epoll front-end
// cannot drift apart.
//
// Ordering under pipelining is the point. Every command that owes the
// client output claims a *slot* in a FIFO at feed time; synchronous
// commands (a parse error) fill their slot immediately, while a `tune`
// fills its slot from the service's completion callback — on a worker
// thread, at any later time. drain_ready() releases the contiguous run
// of filled slots at the head, so responses always come back in the
// order the commands went in, no matter how the service reorders the
// work behind them (priorities, coalescing, warm hits).
//
// `metrics` and `save` are *barriers*: they observe service state, so
// they must run after every earlier pipelined command has finished (a
// `save` after a burst of tunes persists those results; `metrics` counts
// them as completed — the historical stdin behaviour). Their slots carry
// a deferred action executed the moment the last preceding slot becomes
// ready — inline at feed time when nothing is pending, otherwise on the
// service worker that completes the final preceding tune. No transport
// thread ever blocks for a barrier.
//
// Threading: feed_line/drain_ready/wait_all are called by the owning
// transport (one thread at a time); completion callbacks arrive
// concurrently from service workers. The internal mutex covers the slot
// FIFO; the Hooks::wake callback is invoked *outside* it.
//
// Lifetime: service callbacks hold weak_ptr — a Session dropped with
// requests still in flight (client disconnected mid-request) simply
// never hears the completions; the service's own completion guard
// retires the work. Hence create() and the enable_shared_from_this base.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"
#include "svc/service.hpp"

namespace ilc::net {

class Session : public std::enable_shared_from_this<Session> {
 public:
  struct Hooks {
    /// A deferred response became ready (slot filled by a service worker).
    /// May fire from any thread, including after the owning transport has
    /// begun tearing down — it must only signal (eventfd, condition
    /// variable), never touch the transport's single-threaded state.
    std::function<void()> wake;
  };

  /// Everything a transport may want to account per released response —
  /// the read-to-write latency sample and the request's trace span.
  struct Done {
    bool is_tune = false;
    std::string program;
    std::chrono::steady_clock::time_point start{};
    obs::SpanContext trace{};  // invalid unless tracing was enabled
  };

  static std::shared_ptr<Session> create(svc::TuningService& service,
                                         Hooks hooks) {
    return std::shared_ptr<Session>(new Session(service, std::move(hooks)));
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Feed one protocol line (terminator stripped). `start` is when the
  /// transport first saw the bytes (socket readability) — it anchors the
  /// request's latency sample and trace span. Consumes `module` body
  /// lines itself; submits `tune` asynchronously; fills synchronous
  /// slots inline. Never throws on bad input.
  void feed_line(const std::string& line,
                 std::chrono::steady_clock::time_point start =
                     std::chrono::steady_clock::now());

  /// Append the contiguous run of ready head slots to `out`, each
  /// newline-terminated, popping them. Per released slot, a Done record
  /// is appended to `done` when non-null. Returns the number released.
  std::size_t drain_ready(std::string& out, std::vector<Done>* done = nullptr);

  /// A `quit` command was fed: the transport should flush and close.
  bool quit_requested() const;

  /// No slot is waiting on the service (drained or unfilled — idle means
  /// nothing *pending*, there may be ready output to drain).
  bool idle() const;

  /// Slots not yet ready (in-flight tunes).
  std::size_t pending() const;

  /// A metrics/save barrier is still waiting or executing. The stdin
  /// transport blocks on it (wait_all) to keep the historical behaviour
  /// of not reading past a sync point; the TCP transport never blocks.
  bool barrier_pending() const;

  /// Block until every claimed slot is ready (stdin transport at EOF/quit;
  /// bounded by the service's own request-lifecycle guarantee).
  void wait_all();

  /// Flush any partially-read `module` body (transport hit EOF mid-module:
  /// register what arrived, matching the historical stdin behaviour).
  void finish_input();

  /// Transport-detected protocol violation (an oversized request line):
  /// claim a ready `err` slot so the message flushes after every earlier
  /// pipelined response, in order.
  void fail(const std::string& message);

 private:
  Session(svc::TuningService& service, Hooks hooks)
      : service_(service), hooks_(std::move(hooks)) {}

  struct Slot {
    bool ready = false;
    bool running = false;  // barrier action currently executing unlocked
    std::function<std::string()> deferred;  // barrier action, if any
    std::string text;  // response line, no terminator
    Done info;
  };

  /// Claim the next slot id (mu_ held).
  std::uint64_t claim_locked(Slot slot);
  /// Fill synchronously at feed time.
  void push_ready(std::string text);
  /// Barrier command: run `fn` inline if nothing is pending, else claim a
  /// deferred slot that settle_locked() executes later.
  void defer_or_run(std::function<std::string()> fn);
  /// Completion path: fill slot `id` from a service worker.
  void complete(std::uint64_t id, std::string text);
  /// Execute every barrier whose predecessors are all ready. Drops and
  /// re-takes `lock` around each action.
  void settle_locked(std::unique_lock<std::mutex>& lock);

  svc::TuningService& service_;
  Hooks hooks_;

  mutable std::mutex mu_;
  std::condition_variable all_ready_;
  std::deque<Slot> slots_;
  std::uint64_t head_id_ = 0;   // id of slots_.front()
  std::uint64_t next_id_ = 0;
  std::size_t unready_ = 0;     // slots with ready == false
  std::size_t barriers_ = 0;    // unready slots that are barriers
  bool quit_ = false;

  // Single-threaded transport state (no lock needed).
  std::unordered_map<std::string, std::string> modules_;
  bool in_module_ = false;
  std::string module_name_;
  std::size_t module_remaining_ = 0;
  std::string module_body_;
};

}  // namespace ilc::net
