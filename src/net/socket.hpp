// ilc::net sockets — the thin POSIX layer under the epoll front-end: an
// RAII fd, nonblocking loopback TCP listen/connect helpers, and
// fault-injectable read/write wrappers. Everything above this file talks
// in terms of these helpers, so the `net.accept` / `net.read` /
// `net.write` failpoints make disconnects, resets, and short writes
// deterministic in tests and benches:
//
//   net.accept=error*2   the next two accepted connections are dropped
//                        immediately (as if the handshake died)
//   net.read=error       reads report a connection reset
//   net.write=error*N    the next N writes move at most one byte (a
//                        deterministic short write; the event loop must
//                        finish the job via its write buffer + EPOLLOUT)
//
// Linux-only by design (epoll, accept4, eventfd), like the subsystem it
// serves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace ilc::net {

/// Move-only owner of a file descriptor; -1 = empty.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset();  // close if valid

 private:
  int fd_ = -1;
};

/// Outcome of a read_some/write_some call, folding errno handling into
/// four cases the connection state machine cares about.
enum class IoStatus {
  Ok,         // moved >= 1 byte
  WouldBlock, // EAGAIN/EWOULDBLOCK: wait for readiness
  Eof,        // read: orderly peer shutdown
  Error,      // reset / EPIPE / injected fault: hard-close the connection
};

struct IoResult {
  IoStatus status = IoStatus::Error;
  std::size_t bytes = 0;
};

/// Bind and listen on 127.0.0.1:`port` (0 = kernel-assigned ephemeral
/// port, reported back through `bound_port`), nonblocking, SO_REUSEADDR,
/// backlog sized for thousands of simultaneous connects. Throws
/// std::runtime_error with errno text on failure. Loopback-only on
/// purpose: the tuning protocol has no authentication.
Fd listen_tcp(std::uint16_t port, std::uint16_t& bound_port);

/// Nonblocking connect to 127.0.0.1:`port`. Returns an Fd mid-handshake
/// (poll for writability) or an empty Fd when the kernel refuses
/// immediately. Used by the load generator and tests.
Fd connect_tcp(std::uint16_t port);

/// accept4(NONBLOCK) + TCP_NODELAY. Empty Fd when nothing is pending or
/// the `net.accept` failpoint dropped the connection (`*dropped` = true).
Fd accept_conn(int listen_fd, bool* dropped);

/// read(2) with EINTR retry and the `net.read` failpoint.
IoResult read_some(int fd, char* buf, std::size_t n);

/// write(2) with EINTR retry, MSG_NOSIGNAL (no SIGPIPE), and the
/// `net.write` short-write failpoint.
IoResult write_some(int fd, const char* buf, std::size_t n);

/// poll(2) for readability / writability with a millisecond timeout
/// (negative = wait forever). True when the fd became ready (including
/// error/hup readiness — the next read/write reports the real status);
/// false on timeout. For the blocking-style loops of the replication
/// transport, which runs on dedicated threads rather than the epoll
/// event loop.
bool wait_readable(int fd, int timeout_ms);
bool wait_writable(int fd, int timeout_ms);

/// Raise RLIMIT_NOFILE's soft limit toward the hard limit until at least
/// `need` descriptors fit (best effort; returns the resulting soft
/// limit). The load generator holds thousands of sockets per process.
std::size_t ensure_fd_capacity(std::size_t need);

}  // namespace ilc::net
