#include "net/session.hpp"

#include <utility>
#include <vector>

#include "svc/protocol.hpp"

namespace ilc::net {

std::uint64_t Session::claim_locked(Slot slot) {
  const std::uint64_t id = next_id_++;
  if (!slot.ready) ++unready_;
  slots_.push_back(std::move(slot));
  return id;
}

void Session::push_ready(std::string text) {
  Slot slot;
  slot.ready = true;
  slot.text = std::move(text);
  std::lock_guard<std::mutex> lock(mu_);
  claim_locked(std::move(slot));
}

void Session::defer_or_run(std::function<std::string()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (unready_ > 0) {
      Slot slot;
      slot.deferred = std::move(fn);
      claim_locked(std::move(slot));
      ++barriers_;
      return;
    }
  }
  // Nothing pending before it: the barrier is trivially reached. Only the
  // transport thread claims slots, so no tune can sneak in ahead.
  push_ready(fn());
}

void Session::complete(std::uint64_t id, std::string text) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    // The slot can only have been released by drain_ready after it was
    // ready, and it only becomes ready here — so it must still exist.
    Slot& slot = slots_.at(static_cast<std::size_t>(id - head_id_));
    slot.ready = true;
    slot.text = std::move(text);
    --unready_;
    settle_locked(lock);
    if (unready_ == 0) all_ready_.notify_all();
  }
  // Outside the lock: the wake hook may post to an event loop's queue,
  // which takes its own mutex.
  if (hooks_.wake) hooks_.wake();
}

void Session::settle_locked(std::unique_lock<std::mutex>& lock) {
  for (;;) {
    std::size_t i = 0;
    while (i < slots_.size() && slots_[i].ready) ++i;
    if (i == slots_.size()) return;
    Slot& first_unready = slots_[i];
    // A tune still in flight, a barrier another thread is already
    // running, or nothing runnable: later barriers stay blocked behind it.
    if (!first_unready.deferred || first_unready.running) return;
    first_unready.running = true;
    const std::function<std::string()> fn = std::move(first_unready.deferred);
    const std::uint64_t id = head_id_ + i;
    lock.unlock();
    std::string text;
    try {
      text = fn();
    } catch (...) {
      text = "err internal error";
    }
    lock.lock();
    // Re-find by id: ready head slots may have been drained meanwhile
    // (this slot cannot have been — it was not ready).
    Slot& slot = slots_.at(static_cast<std::size_t>(id - head_id_));
    slot.ready = true;
    slot.running = false;
    slot.text = std::move(text);
    --unready_;
    --barriers_;
  }
}

void Session::feed_line(const std::string& line,
                        std::chrono::steady_clock::time_point start) {
  if (in_module_) {
    module_body_ += line;
    module_body_ += '\n';
    if (--module_remaining_ == 0) {
      modules_[module_name_] = std::move(module_body_);
      module_body_.clear();
      in_module_ = false;
    }
    return;
  }

  svc::Command cmd = svc::parse_command(line);
  switch (cmd.kind) {
    case svc::Command::Kind::Empty:
      break;
    case svc::Command::Kind::Invalid:
      push_ready("err " + cmd.error);
      break;
    case svc::Command::Kind::Module:
      if (cmd.module_lines == 0) {
        modules_[cmd.module_name] = "";
        break;
      }
      in_module_ = true;
      module_name_ = cmd.module_name;
      module_remaining_ = cmd.module_lines;
      module_body_.clear();
      break;
    case svc::Command::Kind::Tune: {
      if (const auto it = modules_.find(cmd.request.program);
          it != modules_.end())
        cmd.request.ir_text = it->second;

      Slot slot;
      slot.info.is_tune = true;
      slot.info.program = cmd.request.program;
      slot.info.start = start;
      // The request's trace identity is minted here, before submit, so
      // the svc.submit span (created under the TraceScope below) parents
      // onto the net.request span the transport records at write time.
      if (obs::Tracer::enabled())
        slot.info.trace = {obs::Tracer::new_id(), obs::Tracer::new_id()};
      const obs::SpanContext trace = slot.info.trace;

      std::uint64_t id = 0;
      {
        std::lock_guard<std::mutex> lock(mu_);
        id = claim_locked(std::move(slot));
      }
      // The callback may fire inline (warm hit) — the slot must already
      // be claimed, and the session reached through a weak_ptr so a
      // client that disconnects mid-request just stops listening while
      // the service's completion guard retires the job.
      obs::TraceScope scope(trace);
      service_.submit(
          std::move(cmd.request),
          [weak = weak_from_this(), id](const svc::TuningResponse& r) {
            if (const std::shared_ptr<Session> self = weak.lock())
              self->complete(id, svc::format_response(r));
          });
      break;
    }
    case svc::Command::Kind::Metrics:
      defer_or_run(
          [this] { return svc::format_metrics(service_.metrics()); });
      break;
    case svc::Command::Kind::Save: {
      defer_or_run([this, path = cmd.path] {
        const bool ok = path.empty() ? service_.save() : service_.save_to(path);
        return std::string(ok ? "ok saved" : "err save failed");
      });
      break;
    }
    case svc::Command::Kind::Ping:
      // Answered synchronously — a ping must not queue behind tunes, or
      // a merely-busy server would look dead to the health monitor.
      push_ready("ok pong shard=" + std::to_string(service_.shard_index()) +
                 "/" + std::to_string(service_.shard_count()) +
                 " read_only=" + (service_.read_only() ? "1" : "0"));
      break;
    case svc::Command::Kind::Quit: {
      std::lock_guard<std::mutex> lock(mu_);
      quit_ = true;
      break;
    }
  }
}

std::size_t Session::drain_ready(std::string& out, std::vector<Done>* done) {
  std::size_t released = 0;
  std::lock_guard<std::mutex> lock(mu_);
  while (!slots_.empty() && slots_.front().ready) {
    Slot& slot = slots_.front();
    out += slot.text;
    out += '\n';
    if (done != nullptr) done->push_back(std::move(slot.info));
    slots_.pop_front();
    ++head_id_;
    ++released;
  }
  return released;
}

bool Session::quit_requested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quit_;
}

bool Session::idle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return unready_ == 0;
}

std::size_t Session::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return unready_;
}

bool Session::barrier_pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return barriers_ > 0;
}

void Session::wait_all() {
  std::unique_lock<std::mutex> lock(mu_);
  all_ready_.wait(lock, [this] { return unready_ == 0; });
}

void Session::finish_input() {
  if (!in_module_) return;
  modules_[module_name_] = std::move(module_body_);
  module_body_.clear();
  in_module_ = false;
}

void Session::fail(const std::string& message) {
  push_ready("err " + message);
}

}  // namespace ilc::net
