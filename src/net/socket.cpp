#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "support/failpoint.hpp"

namespace ilc::net {

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

Fd listen_tcp(std::uint16_t port, std::uint16_t& bound_port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0)
    throw_errno("bind 127.0.0.1:" + std::to_string(port));
  // The netload bench connects >1000 clients in a burst; a deep backlog
  // keeps the handshakes from being refused before the acceptor drains.
  if (::listen(fd.get(), 4096) < 0) throw_errno("listen");
  socklen_t len = sizeof addr;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    throw_errno("getsockname");
  bound_port = ntohs(addr.sin_port);
  return fd;
}

Fd connect_tcp(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Fd{};
  sockaddr_in addr = loopback_addr(port);
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof addr) == 0)
      break;
    if (errno == EINPROGRESS) break;  // handshake in flight: poll for write
    if (errno == EINTR) continue;
    return Fd{};
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

Fd accept_conn(int listen_fd, bool* dropped) {
  if (dropped != nullptr) *dropped = false;
  for (;;) {
    const int fd =
        ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EAGAIN, and also the transient per-connection errors accept can
      // report (ECONNABORTED): nothing usable this round.
      return Fd{};
    }
    Fd conn(fd);
    if (support::failpoint("net.accept")) {
      // Injected accept fault: the connection dies before the server
      // ever sees a byte, exactly like a handshake torn down by the peer.
      if (dropped != nullptr) *dropped = true;
      return Fd{};
    }
    const int one = 1;
    ::setsockopt(conn.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return conn;
  }
}

IoResult read_some(int fd, char* buf, std::size_t n) {
  if (support::failpoint("net.read")) return {IoStatus::Error, 0};
  for (;;) {
    const ssize_t r = ::read(fd, buf, n);
    if (r > 0) return {IoStatus::Ok, static_cast<std::size_t>(r)};
    if (r == 0) return {IoStatus::Eof, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return {IoStatus::WouldBlock, 0};
    return {IoStatus::Error, 0};
  }
}

IoResult write_some(int fd, const char* buf, std::size_t n) {
  // Injected short write: move a single byte so the caller's buffered-
  // write machinery (partial-flush bookkeeping, EPOLLOUT re-arming) is
  // exercised deterministically rather than only under kernel pressure.
  if (n > 1 && support::failpoint("net.write")) n = 1;
  for (;;) {
    const ssize_t r = ::send(fd, buf, n, MSG_NOSIGNAL);
    if (r >= 0) return {IoStatus::Ok, static_cast<std::size_t>(r)};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return {IoStatus::WouldBlock, 0};
    return {IoStatus::Error, 0};
  }
}

namespace {

bool wait_for(int fd, short events, int timeout_ms) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  for (;;) {
    const int r = ::poll(&p, 1, timeout_ms);
    if (r > 0) return true;   // ready, or POLLERR/POLLHUP — caller's IO
    if (r == 0) return false; // will surface the condition either way
    if (errno == EINTR) continue;
    return true;  // poll itself failed: let the IO call report the error
  }
}

}  // namespace

bool wait_readable(int fd, int timeout_ms) {
  return wait_for(fd, POLLIN, timeout_ms);
}

bool wait_writable(int fd, int timeout_ms) {
  return wait_for(fd, POLLOUT, timeout_ms);
}

std::size_t ensure_fd_capacity(std::size_t need) {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  if (lim.rlim_cur != RLIM_INFINITY && lim.rlim_cur < need) {
    rlimit want = lim;
    want.rlim_cur = lim.rlim_max == RLIM_INFINITY
                        ? static_cast<rlim_t>(need)
                        : std::min<rlim_t>(lim.rlim_max,
                                           static_cast<rlim_t>(need));
    if (::setrlimit(RLIMIT_NOFILE, &want) == 0) lim = want;
  }
  return lim.rlim_cur == RLIM_INFINITY ? need
                                       : static_cast<std::size_t>(lim.rlim_cur);
}

}  // namespace ilc::net
