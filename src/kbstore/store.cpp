#include "kbstore/store.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "kbstore/log_format.hpp"
#include "obs/metrics.hpp"
#include "support/assert.hpp"
#include "support/crc32.hpp"
#include "obs/timer.hpp"
#include "support/failpoint.hpp"
#include "support/hash.hpp"

#ifdef __unix__
#include <unistd.h>
#endif

namespace ilc::kbstore {

namespace fs = std::filesystem;

namespace {

// Process-wide storage metrics (aggregated across stores): mutation and
// durability rates as counters, WAL append/flush and compaction latencies
// as histograms, crash-recovery findings as monotone counters.
obs::Counter& c_appends() {
  static obs::Counter c = obs::Registry::instance().counter("kbstore.appends");
  return c;
}
obs::Counter& c_flushes() {
  static obs::Counter c = obs::Registry::instance().counter("kbstore.flushes");
  return c;
}
obs::Counter& c_compactions() {
  static obs::Counter c =
      obs::Registry::instance().counter("kbstore.compactions");
  return c;
}
obs::Counter& c_recovered_records() {
  static obs::Counter c =
      obs::Registry::instance().counter("kbstore.recovery.records");
  return c;
}
obs::Counter& c_torn_bytes() {
  static obs::Counter c =
      obs::Registry::instance().counter("kbstore.recovery.torn_bytes");
  return c;
}
obs::Counter& c_stale_wals() {
  static obs::Counter c =
      obs::Registry::instance().counter("kbstore.recovery.stale_wals");
  return c;
}
obs::Histogram& h_append_us() {
  static obs::Histogram h =
      obs::Registry::instance().histogram("kbstore.wal.append_us");
  return h;
}
obs::Histogram& h_flush_us() {
  static obs::Histogram h =
      obs::Registry::instance().histogram("kbstore.wal.flush_us");
  return h;
}
obs::Histogram& h_compaction_us() {
  static obs::Histogram h =
      obs::Registry::instance().histogram("kbstore.compaction_us");
  return h;
}
// Durable-position gauges (replication lag is measured against these).
// Process-wide like every kbstore metric: one serving store per process
// is the deployment shape; in-process test fleets read positions via
// Store::wal_position() instead.
obs::Gauge& g_generation() {
  static obs::Gauge g =
      obs::Registry::instance().gauge("kbstore.wal_generation");
  return g;
}
obs::Gauge& g_durable_seq() {
  static obs::Gauge g = obs::Registry::instance().gauge("kbstore.durable_seq");
  return g;
}

bool read_file_bytes(const std::string& path, std::string& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream os;
  os << f.rdbuf();
  out = os.str();
  return true;
}

bool fsync_file(std::FILE* f) {
#ifdef __unix__
  return ::fsync(fileno(f)) == 0;
#else
  (void)f;
  return true;
#endif
}

}  // namespace

Store::Store(std::string dir, Options opts)
    : dir_(std::move(dir)), opts_(opts), follower_(opts.follower) {}

Store::~Store() {
  if (bg_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(bg_mu_);
      bg_stop_ = true;
    }
    bg_cv_.notify_one();
    bg_.join();
  }
  std::lock_guard<std::mutex> lock(wal_mu_);
  flush_locked();
  if (wal_) std::fclose(wal_);
}

std::unique_ptr<Store> Store::open(const std::string& dir, Options opts,
                                   RecoveryInfo* info) {
  std::unique_ptr<Store> store(new Store(dir, opts));
  RecoveryInfo ri;
  if (!store->recover(ri)) return nullptr;
  store->recovery_ = ri;
  c_recovered_records().add(ri.snapshot_records + ri.wal_records);
  c_torn_bytes().add(ri.torn_bytes);
  if (ri.stale_wal) c_stale_wals().add(1);
  if (info) *info = ri;
  if (store->opts_.background_compaction && !store->opts_.follower)
    store->bg_ = std::thread([s = store.get()] { s->background_loop(); });
  return store;
}

std::string Store::key_of(const std::string& program,
                          const std::string& machine,
                          const std::string& kind) {
  std::string key;
  key.reserve(program.size() + machine.size() + kind.size() + 2);
  key += program;
  key += '\x1f';
  key += machine;
  key += '\x1f';
  key += kind;
  return key;
}

Store::Shard& Store::shard_of(const std::string& key) {
  return shards_[support::hash_bytes(key.data(), key.size()) % kShards];
}

const Store::Shard& Store::shard_of(const std::string& key) const {
  return shards_[support::hash_bytes(key.data(), key.size()) % kShards];
}

// ---- recovery ------------------------------------------------------------

bool Store::recover(RecoveryInfo& info) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) return false;
  // A leftover snapshot.tmp is a compaction that crashed before publish.
  fs::remove(dir_ + "/snapshot.tmp", ec);

  std::uint64_t snapshot_generation = 0;
  if (fs::is_regular_file(snapshot_path())) {
    std::string bytes;
    if (!read_file_bytes(snapshot_path(), bytes)) return false;
    ScannedLog scan = scan_log(bytes, kSnapshotType);
    // Snapshots are published atomically, so damage is real corruption,
    // not a torn write: refuse to open rather than silently drop data.
    if (!scan.header_ok || !scan.clean) return false;
    for (auto& lr : scan.records) apply(std::move(lr));
    info.snapshot_records = scan.records.size();
    snapshot_generation = scan.generation;
  }
  dead_ = 0;  // snapshot contents are the baseline, not garbage

  if (fs::is_regular_file(wal_path())) {
    std::string bytes;
    if (!read_file_bytes(wal_path(), bytes)) return false;
    if (bytes.size() < kHeaderSize) {
      // Torn before the header finished: an empty log, minus the scraps.
      info.torn_tail = !bytes.empty();
      info.torn_bytes = bytes.size();
    } else {
      ScannedLog scan = scan_log(bytes, kWalType);
      if (!scan.header_ok) return false;  // full-size foreign header
      if (scan.generation <= snapshot_generation) {
        // Compaction crashed between snapshot publish and WAL truncation:
        // everything in this WAL is already in the snapshot.
        info.stale_wal = true;
      } else {
        for (auto& lr : scan.records) apply(std::move(lr));
        info.wal_records = scan.records.size();
        if (!scan.clean) {
          info.torn_tail = true;
          info.torn_bytes = bytes.size() - scan.good_bytes;
          fs::resize_file(wal_path(), scan.good_bytes, ec);
          if (ec) return false;
        }
        wal_ = std::fopen(wal_path().c_str(), "ab");
        if (!wal_) return false;
        wal_generation_ = scan.generation;
        wal_bytes_ = scan.good_bytes;
        wal_seq_ = scan.records.size();
        wal_chain_ = support::crc32(
            std::string_view(bytes).substr(kHeaderSize,
                                           scan.good_bytes - kHeaderSize));
      }
    }
  }

  if (!wal_) {  // missing, torn-at-header, or stale: fresh generation
    wal_ = std::fopen(wal_path().c_str(), "wb");
    if (!wal_) return false;
    wal_generation_ = snapshot_generation + 1;
    const std::string header = log_header(kWalType, wal_generation_);
    if (std::fwrite(header.data(), 1, header.size(), wal_) != header.size() ||
        std::fflush(wal_) != 0)
      return false;
    wal_bytes_ = kHeaderSize;
  }
  publish_position_locked();  // single-threaded here: open() owns the store
  return true;
}

// ---- index ---------------------------------------------------------------

bool Store::apply(LogRecord&& lr) {
  const std::string key = key_of(lr.rec.program, lr.rec.machine, lr.rec.kind);
  Shard& shard = shard_of(key);
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  switch (lr.op) {
    case Op::Append: {
      shard.map[key].push_back({std::move(lr.rec), next_seq_++});
      ++live_;
      return false;
    }
    case Op::Upsert: {
      auto& vec = shard.map[key];
      if (!vec.empty()) {
        vec.front().rec = std::move(lr.rec);  // seq (insertion slot) kept
        ++dead_;
        return true;
      }
      vec.push_back({std::move(lr.rec), next_seq_++});
      ++live_;
      return false;
    }
    case Op::Erase: {
      auto it = shard.map.find(key);
      if (it == shard.map.end()) {
        ++dead_;  // useless tombstone still occupies the log
        return false;
      }
      dead_ += it->second.size() + 1;
      live_ -= it->second.size();
      shard.map.erase(it);
      return true;
    }
  }
  return false;
}

bool Store::log_and_apply(LogRecord lr) {
  ILC_CHECK_MSG(!is_follower(),
                "store is a replication follower (read-only): " + dir_);
  obs::ScopedTimerUs timer(h_append_us());
  // Fault injection: "kbstore.wal_append" simulates an append that cannot
  // reach the log (disk full, I/O error). The error kind throws here too —
  // append()/upsert() report failure by exception.
  if (support::failpoint("kbstore.wal_append"))
    throw support::FailpointError("injected kbstore.wal_append failure");
  std::string payload = encode_record(lr);
  std::lock_guard<std::mutex> lock(wal_mu_);
  append_frame(pending_, payload);
  ++pending_records_;
  ++appends_;
  c_appends().add(1);
  const bool result = apply(std::move(lr));
  switch (opts_.flush) {
    case Options::Flush::EveryAppend:
      flush_locked();
      break;
    case Options::Flush::Batched:
      if (pending_records_ >= opts_.batch_appends) flush_locked();
      break;
    case Options::Flush::Manual:
      break;
  }
  maybe_request_compaction_locked();
  return result;
}

void Store::append(kb::ExperimentRecord rec) {
  log_and_apply({Op::Append, std::move(rec)});
}

bool Store::upsert(kb::ExperimentRecord rec) {
  return log_and_apply({Op::Upsert, std::move(rec)});
}

bool Store::erase(const std::string& program, const std::string& machine,
                  const std::string& kind) {
  LogRecord lr;
  lr.op = Op::Erase;
  lr.rec.program = program;
  lr.rec.machine = machine;
  lr.rec.kind = kind;
  return log_and_apply(std::move(lr));
}

std::optional<kb::ExperimentRecord> Store::find(const std::string& program,
                                                const std::string& machine,
                                                const std::string& kind) const {
  const std::string key = key_of(program, machine, kind);
  const Shard& shard = shard_of(key);
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.empty()) return std::nullopt;
  return it->second.front().rec;
}

std::vector<Store::Entry> Store::collect_entries() const {
  std::vector<Entry> out;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& [key, vec] : shard.map)
      for (const Entry& e : vec) out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
  return out;
}

std::vector<kb::ExperimentRecord> Store::records() const {
  std::vector<kb::ExperimentRecord> out;
  for (Entry& e : collect_entries()) out.push_back(std::move(e.rec));
  return out;
}

std::size_t Store::size() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return live_;
}

StoreStats Store::stats() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  StoreStats s;
  s.live = live_;
  s.dead = dead_;
  s.appends = appends_;
  s.flushes = flushes_;
  s.compactions = compactions_;
  s.wal_bytes = wal_bytes_;
  return s;
}

WalPosition Store::wal_position() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return {wal_generation_, wal_seq_, wal_chain_};
}

std::uint64_t Store::wal_generation() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return wal_generation_;
}

std::uint64_t Store::durable_seq() const {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return wal_seq_;
}

void Store::publish_position_locked() {
  g_generation().set(static_cast<std::int64_t>(wal_generation_));
  g_durable_seq().set(static_cast<std::int64_t>(wal_seq_));
}

// ---- replication follower ------------------------------------------------

void Store::clear_index_locked() {
  for (Shard& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.map.clear();
  }
  live_ = 0;
  dead_ = 0;
  next_seq_ = 0;
}

bool Store::follower_append(std::string_view frames, std::size_t count) {
  if (!is_follower()) return false;
  std::lock_guard<std::mutex> lock(wal_mu_);
  if (!wal_) return false;
  // Verify the whole batch before a byte lands: every frame complete,
  // CRC-clean, decodable, and nothing else in the buffer.
  const WalkedFrames walked = walk_frames(frames, 0);
  if (!walked.clean || walked.frames.size() != count) return false;

  // Fault injection: "kbstore.follower_torn" is the follower crashing
  // mid-apply — a prefix of the batch reaches the file (cut mid-frame),
  // the rest never does. Recovery truncates the torn tail and replication
  // resumes from the surviving position.
  if (support::failpoint("kbstore.follower_torn")) {
    const std::size_t cut =
        walked.frames.size() > 1 ? walked.frames.back().offset + 3
                                 : frames.size() / 2;
    std::fwrite(frames.data(), 1, cut, wal_);
    std::fflush(wal_);
    std::fclose(wal_);  // the "crash": no further appends land here;
    wal_ = nullptr;     // reopening the store truncates the torn tail
    return false;
  }

  if (std::fwrite(frames.data(), 1, frames.size(), wal_) != frames.size() ||
      std::fflush(wal_) != 0)
    return false;
  if (opts_.fsync_on_flush && !fsync_file(wal_)) return false;

  for (const FrameBounds& fb : walked.frames) {
    auto rec = decode_record(
        frames.substr(fb.offset + kFrameOverhead, fb.len));
    apply(std::move(*rec));  // verified decodable above
  }
  wal_bytes_ += frames.size();
  wal_seq_ += count;
  wal_chain_ = support::crc32(frames, wal_chain_);
  appends_ += count;
  ++flushes_;
  c_appends().add(count);
  c_flushes().add(1);
  publish_position_locked();
  return true;
}

bool Store::follower_install_snapshot(std::string_view snapshot,
                                      std::uint64_t wal_generation) {
  if (!is_follower() || wal_generation == 0) return false;
  std::lock_guard<std::mutex> lock(wal_mu_);

  ScannedLog scan;
  if (!snapshot.empty()) {
    scan = scan_log(snapshot, kSnapshotType);
    if (!scan.header_ok || !scan.clean) return false;  // corrupt image
    const std::string tmp = dir_ + "/snapshot.tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (!f) return false;
    const bool ok =
        std::fwrite(snapshot.data(), 1, snapshot.size(), f) ==
            snapshot.size() &&
        std::fflush(f) == 0 && (!opts_.fsync_on_flush || fsync_file(f));
    std::fclose(f);
    if (!ok) return false;
    std::error_code ec;
    fs::rename(tmp, snapshot_path(), ec);
    if (ec) return false;
  } else {
    // The leader's history starts at this WAL: no snapshot to mirror.
    std::error_code ec;
    fs::remove(snapshot_path(), ec);
  }

  clear_index_locked();
  for (auto& lr : scan.records) apply(std::move(lr));
  dead_ = 0;

  // Restart the WAL at the leader's generation; the header bytes are a
  // pure function of (type, generation), so the files stay identical.
  if (wal_) std::fclose(wal_);
  wal_ = std::fopen(wal_path().c_str(), "wb");
  if (!wal_) return false;
  wal_generation_ = wal_generation;
  const std::string header = log_header(kWalType, wal_generation_);
  if (std::fwrite(header.data(), 1, header.size(), wal_) != header.size() ||
      std::fflush(wal_) != 0)
    return false;
  if (opts_.fsync_on_flush && !fsync_file(wal_)) return false;
  wal_bytes_ = kHeaderSize;
  wal_seq_ = 0;
  wal_chain_ = 0;
  pending_.clear();
  pending_records_ = 0;
  ++compactions_;  // a follower "compaction": adopted from the leader
  publish_position_locked();
  return true;
}

// ---- durability ----------------------------------------------------------

bool Store::flush_locked() {
  if (pending_.empty()) return true;
  if (!wal_) return false;
  // Fault injection: "kbstore.wal_flush" (error kind) fails the flush the
  // way a full disk would — pending bytes stay buffered, sync() returns
  // false, and a later flush after the fault clears still commits them.
  if (support::failpoint("kbstore.wal_flush")) return false;
  obs::ScopedTimerUs timer(h_flush_us());
  if (std::fwrite(pending_.data(), 1, pending_.size(), wal_) !=
          pending_.size() ||
      std::fflush(wal_) != 0)
    return false;
  if (opts_.fsync_on_flush && !fsync_file(wal_)) return false;
  wal_bytes_ += pending_.size();
  wal_seq_ += pending_records_;
  // pending_ is a concatenation of whole frames, so chaining over the
  // flushed bytes equals chaining frame-by-frame.
  wal_chain_ = support::crc32(pending_, wal_chain_);
  pending_.clear();
  pending_records_ = 0;
  ++flushes_;
  c_flushes().add(1);
  publish_position_locked();
  return true;
}

bool Store::sync() {
  std::lock_guard<std::mutex> lock(wal_mu_);
  return flush_locked();
}

// ---- compaction ----------------------------------------------------------

void Store::maybe_request_compaction_locked() {
  if (!opts_.background_compaction || !bg_.joinable()) return;
  if (dead_ < opts_.compact_min_dead) return;
  if (static_cast<double>(dead_) <=
      opts_.compact_dead_ratio * static_cast<double>(live_))
    return;
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    bg_compact_ = true;
  }
  bg_cv_.notify_one();
}

bool Store::compact() {
  if (is_follower()) return false;  // followers mirror leader compactions
  std::lock_guard<std::mutex> lock(wal_mu_);
  return compact_locked();
}

bool Store::promote_to_leader() {
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    if (!follower_.load(std::memory_order_relaxed)) return false;
    // The fencing compaction: publish the replicated state as a snapshot
    // and restart the WAL one generation up. Any stream the old leader
    // still produces is now for a dead generation, and any follower of
    // the old history that Hellos us gets bootstrapped (or rejected by
    // the chain check) rather than silently extended.
    if (!compact_locked()) return false;
    follower_.store(false, std::memory_order_release);
  }
  if (opts_.background_compaction && !bg_.joinable())
    bg_ = std::thread([this] { background_loop(); });
  return true;
}

bool Store::compact_locked() {
  obs::ScopedTimerUs timer(h_compaction_us());
  if (!flush_locked()) return false;

  // Publish the live set as a snapshot at the current WAL generation.
  const std::vector<Entry> live = collect_entries();
  const std::string tmp = dir_ + "/snapshot.tmp";
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (!f) return false;
    std::string buf = log_header(kSnapshotType, wal_generation_);
    for (const Entry& e : live) {
      append_frame(buf, encode_record({Op::Append, e.rec}));
      if (buf.size() >= (1u << 20)) {
        if (std::fwrite(buf.data(), 1, buf.size(), f) != buf.size()) {
          std::fclose(f);
          return false;
        }
        buf.clear();
      }
    }
    const bool ok =
        std::fwrite(buf.data(), 1, buf.size(), f) == buf.size() &&
        std::fflush(f) == 0 && (!opts_.fsync_on_flush || fsync_file(f));
    std::fclose(f);
    if (!ok) return false;
  }
  std::error_code ec;
  fs::rename(tmp, snapshot_path(), ec);
  if (ec) return false;

  // Start a fresh WAL generation. If we crash before this completes, the
  // old WAL's generation <= the snapshot's and recovery discards it.
  if (wal_) {
    std::fclose(wal_);
    wal_ = nullptr;
  }
  wal_ = std::fopen(wal_path().c_str(), "wb");
  if (!wal_) return false;
  ++wal_generation_;
  const std::string header = log_header(kWalType, wal_generation_);
  if (std::fwrite(header.data(), 1, header.size(), wal_) != header.size() ||
      std::fflush(wal_) != 0)
    return false;
  if (opts_.fsync_on_flush && !fsync_file(wal_)) return false;
  wal_bytes_ = kHeaderSize;
  wal_seq_ = 0;
  wal_chain_ = 0;
  dead_ = 0;
  ++compactions_;
  c_compactions().add(1);
  publish_position_locked();
  return true;
}

void Store::background_loop() {
  std::unique_lock<std::mutex> lock(bg_mu_);
  while (true) {
    bg_cv_.wait(lock, [&] { return bg_stop_ || bg_compact_; });
    if (bg_stop_) return;
    bg_compact_ = false;
    lock.unlock();
    compact();
    lock.lock();
  }
}

// ---- legacy CSV bridge ---------------------------------------------------

bool Store::import_records(const kb::KnowledgeBase& base) {
  for (const kb::ExperimentRecord& rec : base.records()) append(rec);
  return sync();
}

kb::KnowledgeBase Store::export_kb() const {
  kb::KnowledgeBase out;
  for (kb::ExperimentRecord& rec : records()) out.add(std::move(rec));
  return out;
}

}  // namespace ilc::kbstore
