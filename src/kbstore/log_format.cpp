#include "kbstore/log_format.hpp"

#include "support/crc32.hpp"

namespace ilc::kbstore {

namespace {

constexpr char kMagic[6] = {'i', 'l', 'c', 'k', 'b', '1'};

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

}  // namespace

std::string log_header(char type, std::uint64_t generation) {
  std::string out(kMagic, sizeof(kMagic));
  out.push_back(type);
  out.push_back('\n');
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>(generation >> (8 * i)));
  return out;
}

void append_frame(std::string& out, std::string_view payload) {
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, support::crc32(payload));
  out.append(payload);
}

ScannedLog scan_log(std::string_view bytes, char type) {
  ScannedLog out;
  if (bytes.size() < kHeaderSize) return out;  // torn header
  if (std::string_view(bytes.data(), sizeof(kMagic)) !=
          std::string_view(kMagic, sizeof(kMagic)) ||
      bytes[6] != type || bytes[7] != '\n')
    return out;  // wrong magic or file type
  out.header_ok = true;
  out.generation = get_u64(bytes.data() + 8);
  out.good_bytes = kHeaderSize;

  std::size_t off = kHeaderSize;
  while (off < bytes.size()) {
    if (bytes.size() - off < kFrameOverhead) break;  // torn length/crc
    const std::uint32_t len = get_u32(bytes.data() + off);
    const std::uint32_t crc = get_u32(bytes.data() + off + 4);
    if (len > kMaxPayload || bytes.size() - off - kFrameOverhead < len)
      break;  // insane length or torn payload
    const std::string_view payload(bytes.data() + off + kFrameOverhead, len);
    if (support::crc32(payload) != crc) break;  // corrupt payload
    auto rec = decode_record(payload);
    if (!rec) break;  // checksum ok but undecodable: treat as corrupt
    out.records.push_back(std::move(*rec));
    off += kFrameOverhead + len;
    out.good_bytes = off;
  }
  out.clean = out.good_bytes == bytes.size();
  return out;
}

WalkedFrames walk_frames(std::string_view bytes, std::uint64_t start) {
  WalkedFrames out;
  out.good_bytes = start;
  std::uint64_t off = start;
  while (off < bytes.size()) {
    if (bytes.size() - off < kFrameOverhead) return out;  // torn length/crc
    FrameBounds fb;
    fb.offset = off;
    fb.len = get_u32(bytes.data() + off);
    fb.crc = get_u32(bytes.data() + off + 4);
    if (fb.len > kMaxPayload ||
        bytes.size() - off - kFrameOverhead < fb.len)
      return out;  // insane length or torn payload
    const std::string_view payload(bytes.data() + off + kFrameOverhead,
                                   fb.len);
    fb.crc_ok = support::crc32(payload) == fb.crc;
    if (fb.crc_ok) {
      if (auto rec = decode_record(payload)) {
        fb.decodable = true;
        fb.op = rec->op;
      }
    }
    const bool bad = !fb.crc_ok || !fb.decodable;
    out.frames.push_back(fb);
    if (bad) return out;  // complete but corrupt: stop, flagged
    off += fb.size();
    out.good_bytes = off;
  }
  out.clean = true;
  return out;
}

}  // namespace ilc::kbstore
