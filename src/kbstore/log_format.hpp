// On-disk format shared by the store's write-ahead log and snapshot
// files. Pure byte-level framing — no file IO — so fault-injection tests
// can corrupt buffers directly.
//
//   file   := header frame*
//   header := magic "ilckb1" | type ('W' | 'S') | '\n' | u64 generation
//   frame  := u32 payload_len | u32 crc32(payload) | payload
//
// (all integers little-endian). The generation links a snapshot to the
// WAL it covers: a snapshot at generation G contains every record from
// WAL generations <= G, and a fresh WAL is created at G+1 after each
// compaction. Recovery replays a WAL only when its generation is newer
// than the snapshot's, which makes the compaction sequence (publish
// snapshot, then truncate WAL) crash-safe at every intermediate point.
//
// scan_log stops at the first torn or checksum-failing frame and reports
// how many bytes were intact, so recovery can keep every fully-written
// record and discard only the tail.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "kbstore/record_codec.hpp"

namespace ilc::kbstore {

inline constexpr std::size_t kHeaderSize = 16;
inline constexpr std::size_t kFrameOverhead = 8;  // length + crc
inline constexpr std::uint32_t kMaxPayload = 1u << 28;
inline constexpr char kWalType = 'W';
inline constexpr char kSnapshotType = 'S';

std::string log_header(char type, std::uint64_t generation);

/// Append one length-prefixed, CRC32-checksummed frame to `out`.
void append_frame(std::string& out, std::string_view payload);

struct ScannedLog {
  std::vector<LogRecord> records;  // every intact frame, in file order
  std::uint64_t generation = 0;
  std::uint64_t good_bytes = 0;  // header + intact frames
  bool header_ok = false;        // magic/type matched (file long enough)
  bool clean = false;            // no torn or corrupt bytes after good_bytes
};

/// Decode a log image: header check, then frames until the first bad one
/// (short length prefix, length beyond buffer or kMaxPayload, CRC
/// mismatch, or undecodable payload).
ScannedLog scan_log(std::string_view bytes, char type);

/// One frame's layout within a log image — where it sits, whether its
/// checksum and payload held up — without materializing the record.
/// Replication ships raw frame bytes by these bounds, and `kb_tool
/// wal-dump` reports per-frame health from them.
struct FrameBounds {
  std::uint64_t offset = 0;  ///< of the length prefix, within the image
  std::uint32_t len = 0;     ///< payload length
  std::uint32_t crc = 0;     ///< stored checksum
  bool crc_ok = false;
  bool decodable = false;  ///< payload decoded as a LogRecord
  Op op = Op::Append;      ///< meaningful when decodable
  /// Whole frame (length prefix + crc + payload) as stored.
  std::uint64_t size() const { return kFrameOverhead + len; }
  std::uint64_t end() const { return offset + size(); }
};

struct WalkedFrames {
  /// Every complete frame in order. A complete frame that fails its CRC
  /// or decode is included — flagged — as the final element; walking
  /// stops there (everything after it is suspect).
  std::vector<FrameBounds> frames;
  std::uint64_t good_bytes = 0;  ///< `start` + intact, decodable frames
  bool clean = false;  ///< no torn, corrupt, or trailing bytes remain
};

/// Frame layout of a log image from byte `start` (pass kHeaderSize to
/// walk past the header, 0 for a bare frame stream such as a shipped
/// replication batch).
WalkedFrames walk_frames(std::string_view bytes, std::uint64_t start);

}  // namespace ilc::kbstore
