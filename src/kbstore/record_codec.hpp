// Binary codec for knowledge-base log records. Every mutation of a
// kbstore::Store is one LogRecord — an operation plus (for writes) a full
// kb::ExperimentRecord — encoded to a byte payload that the log layer
// frames with a length prefix and CRC32 (see log_format.hpp).
//
// The encoding is little-endian and self-delimiting: length-prefixed
// strings and counted arrays, doubles as IEEE-754 bit patterns. decode
// never throws; any truncated, oversized, or trailing-garbage payload
// yields nullopt so the recovery path can treat it as a torn frame.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "kb/knowledge_base.hpp"

namespace ilc::kbstore {

/// What replaying a log record does to the in-memory index.
enum class Op : std::uint8_t {
  Append = 1,  ///< add one more record under the key (duplicates allowed)
  Upsert = 2,  ///< replace the first record under the key, or append
  Erase = 3,   ///< tombstone: drop every record under the key
};

struct LogRecord {
  Op op = Op::Append;
  /// For Op::Erase only program/machine/kind (the key) are meaningful.
  kb::ExperimentRecord rec;
};

std::string encode_record(const LogRecord& lr);
std::optional<LogRecord> decode_record(std::string_view payload);

}  // namespace ilc::kbstore
