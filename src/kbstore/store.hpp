// ilc::kbstore — a durable, concurrent, embedded storage engine for
// knowledge-base ExperimentRecords (the paper's Section III-E repository
// as a real storage system rather than a whole-file CSV rewrite).
//
// On disk a store is a directory:
//
//   <dir>/snapshot.ilc   compacted baseline, written atomically (tmp+rename)
//   <dir>/wal.ilc        append-only write-ahead log of mutations
//
// both in the framed format of log_format.hpp. In memory it is a sharded
// hash index keyed by (program, machine, kind); each shard has its own
// shared_mutex, so readers proceed concurrently with each other and with
// writers touching other shards. Writers serialize on the WAL: every
// mutation is encoded, buffered for group commit, and applied to the
// index before the call returns.
//
// Durability: a record is *acknowledged* once its WAL frame reaches the
// OS (flush). The flush policy controls when that happens — every append,
// batched (group commit: one write per `batch_appends` mutations, plus
// explicit sync()), or manual. Readers may observe un-flushed writes;
// only flushed writes are guaranteed to survive a crash.
//
// Recovery: open() replays the snapshot, then every intact WAL frame of a
// newer generation, and truncates the WAL at the first torn or
// checksum-failing frame — a crash mid-append costs at most the
// un-flushed tail, never the file.
//
// Compaction: once superseded records outnumber the configured dead/live
// ratio, a background thread (or an explicit compact() call) writes the
// live set as a new snapshot and truncates the WAL to a fresh generation.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "kb/knowledge_base.hpp"
#include "kbstore/record_codec.hpp"

namespace ilc::kbstore {

struct Options {
  enum class Flush {
    EveryAppend,  ///< flush the WAL on every mutation (most durable)
    Batched,      ///< group commit: flush every `batch_appends` mutations
    Manual,       ///< flush only on sync()/compact()/close
  };
  Flush flush = Flush::Batched;
  std::size_t batch_appends = 32;
  /// fsync(2) after each flush. Off by default: flushed data survives a
  /// process crash either way; fsync additionally covers power loss.
  bool fsync_on_flush = false;

  /// Compact when dead records exceed both bounds below.
  std::size_t compact_min_dead = 1024;
  double compact_dead_ratio = 1.0;  // dead > ratio * live
  /// Run compaction on a background thread when the trigger fires.
  /// When false, compaction only happens via explicit compact() calls.
  bool background_compaction = true;
  /// Open as a replication follower: the regular write API (append /
  /// upsert / erase / import_records) throws, compaction is disabled
  /// (followers adopt the leader's compactions as snapshot installs),
  /// and mutations arrive only through follower_append /
  /// follower_install_snapshot — which mirror a leader's files
  /// byte-for-byte. A follower can later be flipped into a leader with
  /// promote_to_leader() (cluster failover).
  bool follower = false;
};

/// A durable WAL position: the generation, how many frames of it have
/// reached the file, and the CRC32 chained over their raw bytes. Two
/// stores at the same position with the same chain hold byte-identical
/// WALs — replication resumes from here and detects divergence with it.
struct WalPosition {
  std::uint64_t generation = 0;
  std::uint64_t seq = 0;        ///< durable frames in this generation
  std::uint32_t chain_crc = 0;  ///< crc32 chained over their raw bytes
};

/// What open() found on disk.
struct RecoveryInfo {
  std::size_t snapshot_records = 0;
  std::size_t wal_records = 0;   ///< intact WAL frames replayed
  bool torn_tail = false;        ///< WAL ended in a torn/corrupt frame
  std::uint64_t torn_bytes = 0;  ///< bytes discarded from the WAL tail
  /// WAL was stale (generation <= snapshot's): a crash hit the window
  /// between snapshot publish and WAL truncation; it was discarded whole.
  bool stale_wal = false;
};

struct StoreStats {
  std::size_t live = 0;  ///< records in the index
  std::size_t dead = 0;  ///< superseded/tombstoned log records since compaction
  std::uint64_t appends = 0;
  std::uint64_t flushes = 0;
  std::uint64_t compactions = 0;
  std::uint64_t wal_bytes = 0;  ///< flushed WAL size on disk
};

class Store {
 public:
  /// Open (creating if needed) the store at directory `dir`, running
  /// crash recovery. Returns nullptr when the directory cannot be
  /// created, a snapshot is corrupt, or the WAL has a foreign header.
  static std::unique_ptr<Store> open(const std::string& dir,
                                     Options opts = {},
                                     RecoveryInfo* info = nullptr);
  ~Store();  // stops compaction, flushes the WAL

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  /// Add one more record under its key; duplicates accumulate in
  /// insertion order (the general KB shape: many search points per key).
  void append(kb::ExperimentRecord rec);

  /// Replace the first record under (program, machine, kind), or append
  /// when the key is new. Returns true when a record was replaced.
  bool upsert(kb::ExperimentRecord rec);

  /// Drop every record under the key. Returns true when any existed.
  bool erase(const std::string& program, const std::string& machine,
             const std::string& kind);

  /// First record under the key (KnowledgeBase::find semantics).
  std::optional<kb::ExperimentRecord> find(const std::string& program,
                                           const std::string& machine,
                                           const std::string& kind) const;

  /// Every record in insertion order. A copy; concurrent writers may land
  /// between shard visits, so use for export/tooling, not invariants.
  std::vector<kb::ExperimentRecord> records() const;

  std::size_t size() const;

  /// Group-commit barrier: every prior append is durable on return.
  bool sync();

  /// Write the live set as a new snapshot and truncate the WAL.
  bool compact();

  StoreStats stats() const;

  /// Durable WAL position: generation, flushed frame count, chain CRC.
  /// Un-flushed group-commit bytes are not included — the position is
  /// what a crash (and therefore a replica) is guaranteed to see.
  WalPosition wal_position() const;
  std::uint64_t wal_generation() const;
  std::uint64_t durable_seq() const;

  // --- replication follower API (Options::follower only) ----------------
  /// Append a verified batch of raw WAL frames shipped from a leader:
  /// every frame must be complete, CRC-clean, and decodable, or nothing
  /// is written. Bytes land verbatim (the follower WAL stays
  /// byte-identical to the leader's) and are flushed before return, so
  /// the follower's reported position never runs ahead of its disk.
  bool follower_append(std::string_view frames, std::size_t count);

  /// Adopt a leader's compacted state: install `snapshot` (a full
  /// snapshot file image, verbatim; empty = leader has none) and restart
  /// the WAL at `wal_generation`, resetting the index to the snapshot's
  /// contents. Rejects a corrupt snapshot image without touching disk.
  bool follower_install_snapshot(std::string_view snapshot,
                                 std::uint64_t wal_generation);

  /// Whether the store is currently in follower mode. Starts as
  /// Options::follower; promote_to_leader() flips it off.
  bool is_follower() const {
    return follower_.load(std::memory_order_acquire);
  }

  /// Cluster failover: flip a follower into a leader. Starts a fresh WAL
  /// generation via an immediate compaction — the generation bump is the
  /// fence that makes the old leader's stream unacceptable here (and this
  /// store's stream reject any follower still loyal to the old leader's
  /// history, via the existing split-brain checks). After a true return
  /// the full write API is live and background compaction (when
  /// configured) is running. False when the store is not a follower or
  /// the fencing compaction could not be written.
  bool promote_to_leader();

  /// What open() found on disk for this store (same data as the open()
  /// out-parameter, kept for tooling that opens the store elsewhere).
  RecoveryInfo recovery() const { return recovery_; }

  // --- legacy CSV bridge -------------------------------------------------
  /// Append every record of a parsed legacy KB (order preserved) and sync.
  bool import_records(const kb::KnowledgeBase& base);
  /// Materialize the store as a KnowledgeBase (for CSV export / queries).
  kb::KnowledgeBase export_kb() const;

 private:
  struct Entry {
    kb::ExperimentRecord rec;
    std::uint64_t seq;  // global insertion order, survives compaction
  };
  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<std::string, std::vector<Entry>> map;
  };
  static constexpr std::size_t kShards = 16;

  Store(std::string dir, Options opts);

  static std::string key_of(const std::string& program,
                            const std::string& machine,
                            const std::string& kind);
  Shard& shard_of(const std::string& key);
  const Shard& shard_of(const std::string& key) const;

  std::string wal_path() const { return dir_ + "/wal.ilc"; }
  std::string snapshot_path() const { return dir_ + "/snapshot.ilc"; }

  bool recover(RecoveryInfo& info);
  /// Apply a log record to the index. Takes the shard lock; the caller
  /// must hold wal_mu_ (or be the single-threaded recovery path).
  bool apply(LogRecord&& lr);
  bool log_and_apply(LogRecord lr);

  bool flush_locked();
  bool compact_locked();
  void clear_index_locked();
  void publish_position_locked();
  void maybe_request_compaction_locked();
  std::vector<Entry> collect_entries() const;  // sorted by seq
  void background_loop();

  const std::string dir_;
  const Options opts_;
  /// Live follower/leader mode. Seeded from opts_.follower; flipped (at
  /// most once) by promote_to_leader(). Atomic because the write API
  /// checks it before taking wal_mu_.
  std::atomic<bool> follower_;
  RecoveryInfo recovery_;  // written once by open(), read-only after

  std::array<Shard, kShards> shards_;

  /// Serializes writers and guards all fields below. Lock order:
  /// wal_mu_ -> shard.mu (readers take only shard.mu).
  mutable std::mutex wal_mu_;
  std::FILE* wal_ = nullptr;
  std::uint64_t wal_generation_ = 1;
  std::uint64_t wal_seq_ = 0;      // durable frames this generation
  std::uint32_t wal_chain_ = 0;    // crc32 chained over their raw bytes
  std::string pending_;  // encoded frames awaiting group commit
  std::size_t pending_records_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::size_t dead_ = 0;
  std::uint64_t appends_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t wal_bytes_ = 0;

  std::thread bg_;
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool bg_stop_ = false;
  bool bg_compact_ = false;
};

}  // namespace ilc::kbstore
