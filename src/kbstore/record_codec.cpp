#include "kbstore/record_codec.hpp"

#include <cstring>

namespace ilc::kbstore {

namespace {

// ---- encoding ------------------------------------------------------------

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

void put_doubles(std::string& out, const std::vector<double>& v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  for (double d : v) {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    put_u64(out, bits);
  }
}

// ---- decoding ------------------------------------------------------------
// A cursor over the payload; every getter fails (returns false) rather
// than reading past the end, so corrupt payloads can never crash recovery.

struct Cursor {
  const char* p;
  std::size_t left;

  bool u32(std::uint32_t& v) {
    if (left < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
    p += 4;
    left -= 4;
    return true;
  }

  bool u64(std::uint64_t& v) {
    if (left < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
    p += 8;
    left -= 8;
    return true;
  }

  bool str(std::string& s) {
    std::uint32_t n = 0;
    if (!u32(n) || left < n) return false;
    s.assign(p, n);
    p += n;
    left -= n;
    return true;
  }

  bool doubles(std::vector<double>& v) {
    std::uint32_t n = 0;
    // 64-bit product: a corrupt count near 2^29 must not wrap the check
    // and trigger a giant resize.
    if (!u32(n) || left < std::uint64_t{8} * n) return false;
    v.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint64_t bits = 0;
      u64(bits);
      std::memcpy(&v[i], &bits, sizeof(double));
    }
    return true;
  }
};

}  // namespace

std::string encode_record(const LogRecord& lr) {
  std::string out;
  out.push_back(static_cast<char>(lr.op));
  put_str(out, lr.rec.program);
  put_str(out, lr.rec.machine);
  put_str(out, lr.rec.kind);
  if (lr.op == Op::Erase) return out;  // tombstones carry only the key
  put_str(out, lr.rec.config);
  put_u64(out, lr.rec.cycles);
  put_u64(out, lr.rec.code_size);
  put_u64(out, lr.rec.instructions);
  put_u32(out, sim::kNumCounters);
  for (unsigned i = 0; i < sim::kNumCounters; ++i)
    put_u64(out, lr.rec.counters.v[i]);
  put_doubles(out, lr.rec.static_features);
  put_doubles(out, lr.rec.dynamic_features);
  return out;
}

std::optional<LogRecord> decode_record(std::string_view payload) {
  if (payload.empty()) return std::nullopt;
  LogRecord lr;
  const auto op = static_cast<std::uint8_t>(payload[0]);
  if (op < static_cast<std::uint8_t>(Op::Append) ||
      op > static_cast<std::uint8_t>(Op::Erase))
    return std::nullopt;
  lr.op = static_cast<Op>(op);

  Cursor c{payload.data() + 1, payload.size() - 1};
  if (!c.str(lr.rec.program) || !c.str(lr.rec.machine) || !c.str(lr.rec.kind))
    return std::nullopt;
  if (lr.op == Op::Erase) return c.left == 0 ? std::optional(lr) : std::nullopt;

  std::uint32_t ncounters = 0;
  if (!c.str(lr.rec.config) || !c.u64(lr.rec.cycles) ||
      !c.u64(lr.rec.code_size) || !c.u64(lr.rec.instructions) ||
      !c.u32(ncounters))
    return std::nullopt;
  if (c.left < std::uint64_t{8} * ncounters) return std::nullopt;
  // Tolerate counter-set growth/shrink across versions: extra stored
  // counters are dropped, missing ones stay zero.
  for (std::uint32_t i = 0; i < ncounters; ++i) {
    std::uint64_t v = 0;
    c.u64(v);
    if (i < sim::kNumCounters) lr.rec.counters.v[i] = v;
  }
  if (!c.doubles(lr.rec.static_features) ||
      !c.doubles(lr.rec.dynamic_features))
    return std::nullopt;
  if (c.left != 0) return std::nullopt;  // trailing garbage = corrupt
  return lr;
}

}  // namespace ilc::kbstore
