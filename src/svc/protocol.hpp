// Line-oriented request/response protocol of the tuning service, so any
// transport that can move text lines (stdin, a scripted request file,
// later a socket) can drive svc::TuningService.
//
// Request lines (`#` starts a comment; blank lines are ignored):
//   tune <program> [machine=amd|c6713] [budget=N] [objective=cycles|size]
//                  [strategy=random|greedy|genetic] [priority=N] [seed=N]
//                  [timeout_ms=N]
//   module <name> <n-lines>   — the next n-lines of input are inline IR
//                               text registered under <name>; a later
//                               "tune <name>" submits it
//   metrics                   — emit a metrics snapshot line
//   save [path]               — persist the knowledge base
//   ping                      — liveness/identity probe: answered
//                               immediately (never queued), so health
//                               monitors can probe a busy server
//   quit
//
// Response lines:
//   ok program=<p> source=<warm|search|coalesced|stale> config="<seq>"
//      base=<n> best=<n> speedup=<x> sims=<n> latency_us=<n>
//   err <message>          (also: timeout / rejection / persist failures)
//   metrics requests=<n> warm_hits=<n> coalesced=<n> searches=<n>
//      errors=<n> rejected=<n> timed_out=<n> shed=<n> persist_errors=<n> ...
//   ok pong shard=<i>/<n> read_only=<0|1>     (ping)
//
// Values inside config="..." escape embedded quotes and backslashes with
// a backslash; option values with embedded control characters are
// rejected at parse time.
#pragma once

#include <cstddef>
#include <string>

#include "svc/metrics.hpp"
#include "svc/request.hpp"

namespace ilc::svc {

/// Longest request line the protocol accepts, in bytes (terminator
/// excluded). parse_command rejects longer lines as Invalid, and the
/// socket transport additionally closes the connection after answering —
/// a client that streams an unterminated line cannot grow a server-side
/// buffer without bound. Generous for real commands: the largest
/// legitimate line is `tune` with every option spelled out, well under
/// 256 bytes.
inline constexpr std::size_t kMaxRequestLine = 4096;

struct Command {
  enum class Kind {
    Empty,    // blank or comment line: no response
    Tune,     // `request` is populated
    Module,   // read `module_lines` lines of IR as `module_name`
    Metrics,
    Save,     // `path` may be empty = service default
    Ping,     // liveness/identity probe (cluster health monitoring)
    Quit,
    Invalid,  // `error` says why
  };

  Kind kind = Kind::Empty;
  TuningRequest request;
  std::string module_name;
  std::size_t module_lines = 0;
  std::string path;
  std::string error;
};

/// Parse one request line. Never throws.
Command parse_command(const std::string& line);

std::string format_response(const TuningResponse& r);
std::string format_metrics(const Metrics& m);

}  // namespace ilc::svc
