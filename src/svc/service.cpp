#include "svc/service.hpp"

#include <exception>
#include <sstream>

#include "ir/fingerprint.hpp"
#include "ir/parser.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace ilc::svc {

namespace {

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

struct TuningService::Job {
  TuningRequest request;
  std::string cache_key;   // module fingerprint + objective
  std::string flight_key;  // cache_key + machine: the single-flight key
  std::string eval_key;    // fingerprint + machine: evaluator sharing
  std::shared_ptr<ir::Module> module;
  int priority = 0;
  std::uint64_t seq = 0;
  Clock::time_point submitted;
  /// The request's root span (the submit() span): workers adopt it, so
  /// scheduling, evaluation, and KB persistence share one trace ID.
  obs::SpanContext trace;
  std::promise<TuningResponse> promise;
  std::shared_future<TuningResponse> future;
};

bool TuningService::JobOrder::operator()(
    const std::shared_ptr<Job>& a, const std::shared_ptr<Job>& b) const {
  if (a->priority != b->priority) return a->priority < b->priority;
  return a->seq > b->seq;  // earlier submissions first among equals
}

TuningService::TuningService(Options opts)
    : opts_(std::move(opts)), pool_(opts_.workers) {
  if (!opts_.kb_path.empty()) {
    kbstore::Options kopts;
    // autosave=true means "durable after every search": flush per write.
    // Otherwise group-commit in batches; save()/shutdown sync the rest.
    kopts.flush = opts_.autosave ? kbstore::Options::Flush::EveryAppend
                                 : kbstore::Options::Flush::Batched;
    auto cache = ResultCache::open_durable(opts_.kb_path, kopts);
    ILC_CHECK_MSG(cache.has_value(),
                  "not a valid knowledge base: " + opts_.kb_path);
    cache_ = std::move(*cache);
  }
}

TuningService::~TuningService() {
  pool_.wait_idle();
  if (!opts_.kb_path.empty()) save();
}

std::shared_future<TuningResponse> TuningService::ready_response(
    TuningResponse r) {
  std::promise<TuningResponse> p;
  p.set_value(std::move(r));
  return p.get_future().share();
}

std::shared_future<TuningResponse> TuningService::submit(TuningRequest req) {
  const Clock::time_point start = Clock::now();
  // Every request roots its own trace (explicit invalid parent), so a
  // server thread handling many requests never chains them together.
  obs::Span span("svc.submit", obs::SpanContext{});
  span.annotate("program", req.program);
  metrics_.on_request();

  auto module = std::make_shared<ir::Module>();
  try {
    if (!req.ir_text.empty()) {
      *module = ir::parse_module(req.ir_text);
    } else {
      *module = wl::make_workload(req.program).module;
    }
  } catch (const std::exception& e) {
    TuningResponse r;
    r.program = req.program;
    r.error = e.what();
    r.latency_us = elapsed_us(start);
    metrics_.on_error(r.latency_us);
    return ready_response(std::move(r));
  }

  const std::uint64_t fp = ir::fingerprint(*module);
  const std::string cache_key = ResultCache::key(fp, req.objective);
  const std::string flight_key = cache_key + '|' + req.machine.name;

  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    obs::Span lookup("svc.cache_lookup");

    auto it = inflight_.find(flight_key);
    if (it != inflight_.end()) {
      lookup.annotate("outcome", "coalesced");
      metrics_.on_coalesced();
      return it->second->future;
    }

    if (auto hit = cache_.lookup(cache_key, req.machine.name)) {
      lookup.annotate("outcome", "warm_hit");
      TuningResponse r;
      r.ok = true;
      r.program = req.program;
      r.config = hit->config;
      r.baseline_metric = hit->baseline_metric;
      r.best_metric = hit->best_metric;
      r.speedup = hit->best_metric
                      ? static_cast<double>(hit->baseline_metric) /
                            static_cast<double>(hit->best_metric)
                      : 0.0;
      r.source = Source::WarmCache;
      r.latency_us = elapsed_us(start);
      metrics_.on_warm_hit(r.latency_us);
      return ready_response(std::move(r));
    }
    lookup.annotate("outcome", "miss");

    job = std::make_shared<Job>();
    job->request = std::move(req);
    job->cache_key = cache_key;
    job->flight_key = flight_key;
    {
      std::ostringstream os;
      os << std::hex << fp << '|' << job->request.machine.name;
      job->eval_key = os.str();
    }
    job->module = std::move(module);
    job->priority = job->request.priority;
    job->seq = next_seq_++;
    job->submitted = start;
    job->trace = span.context();
    job->future = job->promise.get_future().share();
    inflight_.emplace(flight_key, job);
    queue_.push(job);
    metrics_.on_enqueued();
  }

  pool_.submit([this] { run_one(); });
  return job->future;
}

TuningResponse TuningService::tune(TuningRequest req) {
  return submit(std::move(req)).get();
}

void TuningService::drain() { pool_.wait_idle(); }

TuningResponse TuningService::execute(const Job& job) {
  const TuningRequest& req = job.request;
  obs::Span span("svc.eval");
  span.annotate("strategy", std::to_string(static_cast<int>(req.strategy)));
  span.annotate("budget", std::to_string(req.budget));

  std::shared_ptr<search::Evaluator> eval;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = evaluators_[job.eval_key];
    if (!slot)
      slot = std::make_shared<search::Evaluator>(*job.module, req.machine);
    eval = slot;
  }

  // Simulations attributed to this request. When two non-duplicate jobs
  // share an evaluator the split is approximate, but the metrics total is
  // exact because the evaluator's own counter is monotonic.
  const std::size_t sims_before = eval->simulations();

  const search::EvalResult baseline = eval->eval_sequence({});
  const std::uint64_t base_metric = metric_of(baseline, req.objective);

  support::Rng rng(req.seed);
  search::SequenceSpace space;
  search::SearchTrace trace;
  switch (req.strategy) {
    case Strategy::Random:
      trace = search::random_search(*eval, space, rng, req.budget,
                                    req.objective, opts_.search_workers);
      break;
    case Strategy::Greedy:
      trace = search::greedy_search(*eval, space, rng, req.budget,
                                    req.objective);
      break;
    case Strategy::Genetic: {
      search::GaParams ga;
      ga.workers = opts_.search_workers;
      trace = search::genetic_search(*eval, space, rng, req.budget,
                                     req.objective, ga);
      break;
    }
  }

  TuningResponse r;
  r.ok = true;
  r.program = req.program;
  if (trace.evaluations == 0 || trace.best_metric > base_metric) {
    // Zero budget or a search that never beat -O0: serve the baseline.
    r.config = "";
    r.best_metric = base_metric;
  } else {
    r.config = search::sequence_to_string(trace.best_seq);
    r.best_metric = trace.best_metric;
  }
  r.baseline_metric = base_metric;
  r.speedup = r.best_metric ? static_cast<double>(base_metric) /
                                  static_cast<double>(r.best_metric)
                            : 0.0;
  r.source = Source::Search;
  r.simulations = eval->simulations() - sims_before;
  span.annotate("simulations", std::to_string(r.simulations));
  return r;
}

void TuningService::run_one() {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ILC_ASSERT(!queue_.empty());
    job = queue_.top();
    queue_.pop();
  }
  // Continue the request's trace on this worker thread: the queue wait is
  // recorded as a span over [submitted, now], and everything below —
  // evaluation spans included — parents onto the submit span.
  obs::TraceScope scope(job->trace);
  obs::Tracer::record("svc.sched.wait", job->trace, job->submitted,
                      Clock::now());
  obs::Span run_span("svc.request.run");
  metrics_.on_search_started();

  TuningResponse resp;
  bool failed = false;
  try {
    resp = execute(*job);
  } catch (const std::exception& e) {
    failed = true;
    resp.ok = false;
    resp.program = job->request.program;
    resp.error = e.what();
    resp.source = Source::Error;
  }
  resp.latency_us = elapsed_us(job->submitted);

  {
    // Publish to the cache and retire the flight atomically: a concurrent
    // submit must observe either "in flight" or "cached", never neither.
    obs::Span persist("svc.kb_persist");
    std::lock_guard<std::mutex> lock(mu_);
    if (!failed) {
      CachedResult cached;
      cached.config = resp.config;
      cached.best_metric = resp.best_metric;
      cached.baseline_metric = resp.baseline_metric;
      cache_.store(job->cache_key, job->request.machine.name, cached);
    }
    inflight_.erase(job->flight_key);
    // In durable mode the store() calls above already WAL-appended the
    // result incrementally (and flushed, under autosave); nothing rewrites
    // the whole knowledge base on the hot path anymore.
    if (!failed && opts_.autosave && !opts_.kb_path.empty()) cache_.sync();
  }

  if (failed) {
    metrics_.on_search_failed(resp.latency_us);
  } else {
    metrics_.on_search_finished(resp.simulations, resp.latency_us);
  }
  job->promise.set_value(std::move(resp));
}

bool TuningService::save() const {
  if (opts_.kb_path.empty()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (cache_.durable()) return cache_.sync();
  return cache_.save(opts_.kb_path);
}

bool TuningService::save_to(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.save(path);
}

std::size_t TuningService::kb_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

}  // namespace ilc::svc
