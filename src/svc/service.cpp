#include "svc/service.hpp"

#include <exception>
#include <sstream>

#include "features/features.hpp"
#include "ir/fingerprint.hpp"
#include "ir/parser.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"
#include "support/failpoint.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace ilc::svc {

namespace {

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

// Sharding/replication counters live in the global registry rather than
// the per-service Metrics digest, whose wire format is frozen (the
// metrics line is byte-compatible across versions).
obs::Counter& c_follower_hits() {
  static obs::Counter c =
      obs::Registry::instance().counter("svc.follower_hits");
  return c;
}
obs::Counter& c_wrong_shard() {
  static obs::Counter c = obs::Registry::instance().counter("svc.wrong_shard");
  return c;
}

}  // namespace

struct TuningService::Job {
  TuningRequest request;
  std::string cache_key;   // module fingerprint + objective
  std::string flight_key;  // cache_key + machine: the single-flight key
  std::string eval_key;    // fingerprint + machine: evaluator sharing
  std::shared_ptr<ir::Module> module;
  int priority = 0;
  std::uint64_t seq = 0;
  Clock::time_point submitted;
  /// Deadline derived from TuningRequest::timeout_ms at submit time.
  bool has_deadline = false;
  Clock::time_point deadline;
  /// The request's root span (the submit() span): workers adopt it, so
  /// scheduling, evaluation, and KB persistence share one trace ID.
  obs::SpanContext trace;
  std::promise<TuningResponse> promise;
  std::shared_future<TuningResponse> future;
  /// Completion hooks registered by the submitter and by any coalesced
  /// duplicates (guarded by TuningService::mu_; moved out, exactly once,
  /// when the flight resolves).
  std::vector<ResponseCallback> callbacks;
};

bool TuningService::JobOrder::operator()(
    const std::shared_ptr<Job>& a, const std::shared_ptr<Job>& b) const {
  if (a->priority != b->priority) return a->priority < b->priority;
  return a->seq > b->seq;  // earlier submissions first among equals
}

/// RAII owner of a dequeued job's retirement: resolve() (or, on any path
/// that skips it — an exception thrown past every catch, a logic error)
/// the destructor erases the in-flight entry and sets the promise, so a
/// client future can never be left dangling and a later identical submit
/// can never coalesce onto a dead flight.
class TuningService::Completion {
 public:
  Completion(TuningService& svc, std::shared_ptr<Job> job)
      : svc_(svc), job_(std::move(job)) {}

  Completion(const Completion&) = delete;
  Completion& operator=(const Completion&) = delete;

  /// The search phase started: the abandonment fallback must balance the
  /// in_flight gauge rather than the queued gauge.
  void set_started() { started_ = true; }

  void resolve(TuningResponse resp) {
    if (done_) return;
    done_ = true;
    std::vector<ResponseCallback> callbacks;
    {
      std::lock_guard<std::mutex> lock(svc_.mu_);
      svc_.inflight_.erase(job_->flight_key);
      // Claimed in the same critical section as the in-flight erase: a
      // concurrent duplicate either registered its callback before (it
      // fires below) or finds the flight gone and takes the cache path.
      callbacks = std::move(job_->callbacks);
    }
    // Outside the lock: waiters run continuations inline on .get(), and
    // completion hooks (the socket transport) may take their own locks.
    for (const ResponseCallback& cb : callbacks) {
      try {
        cb(resp);
      } catch (...) {
        // A throwing hook must not strand the promise below.
      }
    }
    job_->promise.set_value(std::move(resp));
  }

  ~Completion() {
    if (done_) return;
    TuningResponse r;
    r.ok = false;
    r.program = job_->request.program;
    r.error = "internal error: request abandoned by worker";
    r.source = Source::Error;
    r.latency_us = elapsed_us(job_->submitted);
    if (started_) {
      svc_.metrics_.on_search_failed(r.latency_us);
    } else {
      svc_.metrics_.on_timed_out(r.latency_us);  // balances queued--
    }
    try {
      resolve(std::move(r));
    } catch (...) {
      // A promise that cannot be satisfied (impossible: resolve() runs at
      // most once) must not escape a destructor.
    }
  }

 private:
  TuningService& svc_;
  std::shared_ptr<Job> job_;
  bool started_ = false;
  bool done_ = false;
};

TuningService::TuningService(Options opts)
    : opts_(std::move(opts)), pool_(opts_.workers) {
  if (!opts_.kb_path.empty()) {
    kbstore::Options kopts;
    // autosave=true means "durable after every search": flush per write.
    // Otherwise group-commit in batches; save()/shutdown sync the rest.
    kopts.flush = opts_.autosave ? kbstore::Options::Flush::EveryAppend
                                 : kbstore::Options::Flush::Batched;
    auto cache = ResultCache::open_durable(opts_.kb_path, kopts);
    ILC_CHECK_MSG(cache.has_value(),
                  "not a valid knowledge base: " + opts_.kb_path);
    cache_ = std::move(*cache);
  }
  if (!opts_.seed_kb_path.empty()) {
    auto kb = kb::KnowledgeBase::load(opts_.seed_kb_path);
    ILC_CHECK_MSG(kb.has_value(),
                  "not a valid seed knowledge base: " + opts_.seed_kb_path);
    seed_bank_ = search::SeedBank(*kb, search::SequenceSpace{});
  }
}

TuningService::~TuningService() {
  pool_.wait_idle();
  if (!opts_.kb_path.empty()) save();
}

std::shared_future<TuningResponse> TuningService::ready_response(
    TuningResponse r) {
  std::promise<TuningResponse> p;
  p.set_value(std::move(r));
  return p.get_future().share();
}

std::shared_future<TuningResponse> TuningService::submit(
    TuningRequest req, ResponseCallback on_done) {
  const Clock::time_point start = Clock::now();
  // Parent onto the submitting thread's current span when it has one (the
  // socket front-end scopes a per-request span around submit); with no
  // enclosing span each request roots its own trace, so a plain client
  // thread submitting many requests never chains them together.
  obs::Span span("svc.submit");
  span.annotate("program", req.program);
  metrics_.on_request();

  // Requests answered without ever being scheduled still owe the
  // completion hook its exactly-once invocation — inline, on this thread.
  const auto resolved = [&on_done, this](TuningResponse r) {
    if (on_done) {
      try {
        on_done(r);
      } catch (...) {
      }
    }
    return ready_response(std::move(r));
  };

  auto module = std::make_shared<ir::Module>();
  try {
    if (!req.ir_text.empty()) {
      *module = ir::parse_module(req.ir_text);
    } else {
      *module = wl::make_workload(req.program).module;
    }
  } catch (const std::exception& e) {
    TuningResponse r;
    r.program = req.program;
    r.error = e.what();
    r.latency_us = elapsed_us(start);
    metrics_.on_error(r.latency_us);
    return resolved(std::move(r));
  }

  const std::uint64_t fp = ir::fingerprint(*module);

  // Fingerprint sharding: refuse work another shard owns, before any
  // cache or queue state is touched — a misrouted search must never land
  // results in this shard's KB (its replicas would diverge from the
  // owning shard's).
  if (opts_.shard_count > 1 && fp % opts_.shard_count != opts_.shard_index) {
    TuningResponse r;
    r.program = req.program;
    r.error = "wrong shard: owner=" + std::to_string(fp % opts_.shard_count) +
              " shards=" + std::to_string(opts_.shard_count);
    r.latency_us = elapsed_us(start);
    metrics_.on_error(r.latency_us);
    c_wrong_shard().add(1);
    return resolved(std::move(r));
  }

  const std::string cache_key = ResultCache::key(fp, req.objective);
  const std::string flight_key = cache_key + '|' + req.machine.name;

  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    obs::Span lookup("svc.cache_lookup");

    auto it = inflight_.find(flight_key);
    if (it != inflight_.end()) {
      lookup.annotate("outcome", "coalesced");
      metrics_.on_coalesced();
      if (on_done) it->second->callbacks.push_back(std::move(on_done));
      return it->second->future;
    }

    if (auto hit = cache_.lookup(cache_key, req.machine.name)) {
      lookup.annotate("outcome", "warm_hit");
      TuningResponse r;
      r.ok = true;
      r.program = req.program;
      r.config = hit->config;
      r.baseline_metric = hit->baseline_metric;
      r.best_metric = hit->best_metric;
      r.speedup = hit->best_metric
                      ? static_cast<double>(hit->baseline_metric) /
                            static_cast<double>(hit->best_metric)
                      : 0.0;
      r.source = Source::WarmCache;
      r.latency_us = elapsed_us(start);
      metrics_.on_warm_hit(r.latency_us);
      return resolved(std::move(r));
    }
    // Replication follower fallback: the replicated store answers warm
    // hits that the local cache (usually empty on a follower — its
    // kb_path is unset so the leader's store stays single-writer) misses.
    if (opts_.follower_lookup) {
      if (auto hit = opts_.follower_lookup(cache_key, req.machine.name)) {
        lookup.annotate("outcome", "follower_hit");
        TuningResponse r;
        r.ok = true;
        r.program = req.program;
        r.config = hit->config;
        r.baseline_metric = hit->baseline_metric;
        r.best_metric = hit->best_metric;
        r.speedup = hit->best_metric
                        ? static_cast<double>(hit->baseline_metric) /
                              static_cast<double>(hit->best_metric)
                        : 0.0;
        r.source = Source::Follower;
        r.latency_us = elapsed_us(start);
        metrics_.on_warm_hit(r.latency_us);
        c_follower_hits().add(1);
        return resolved(std::move(r));
      }
    }
    if (opts_.read_only) {
      lookup.annotate("outcome", "read_only_miss");
      TuningResponse r;
      r.program = req.program;
      r.error = "read-only follower: result not replicated yet; "
                "ask the owning shard's primary";
      r.latency_us = elapsed_us(start);
      metrics_.on_error(r.latency_us);
      return resolved(std::move(r));
    }
    // Bounded admission: a full queue sheds load instead of growing an
    // unbounded backlog of futures. Degrade gracefully when we can — the
    // stale map remembers the last computed result per flight (even one
    // whose KB persist failed), which beats an outright rejection.
    if (opts_.max_queue != 0 && queue_.size() >= opts_.max_queue) {
      TuningResponse r;
      r.program = req.program;
      if (const auto st = stale_.find(flight_key); st != stale_.end()) {
        lookup.annotate("outcome", "stale");
        const CachedResult& c = st->second.result;
        r.ok = true;
        r.config = c.config;
        r.baseline_metric = c.baseline_metric;
        r.best_metric = c.best_metric;
        r.speedup = c.best_metric
                        ? static_cast<double>(c.baseline_metric) /
                              static_cast<double>(c.best_metric)
                        : 0.0;
        r.source = Source::StaleCache;
        r.latency_us = elapsed_us(start);
        metrics_.on_shed(r.latency_us);
      } else {
        lookup.annotate("outcome", "rejected");
        r.ok = false;
        r.error = "overloaded: admission queue full (max_queue=" +
                  std::to_string(opts_.max_queue) + ")";
        r.source = Source::Rejected;
        r.latency_us = elapsed_us(start);
        metrics_.on_rejected(r.latency_us);
      }
      return resolved(std::move(r));
    }
    lookup.annotate("outcome", "miss");

    job = std::make_shared<Job>();
    job->request = std::move(req);
    job->cache_key = cache_key;
    job->flight_key = flight_key;
    {
      std::ostringstream os;
      os << std::hex << fp << '|' << job->request.machine.name;
      job->eval_key = os.str();
    }
    job->module = std::move(module);
    job->priority = job->request.priority;
    job->seq = next_seq_++;
    job->submitted = start;
    if (job->request.timeout_ms > 0) {
      job->has_deadline = true;
      job->deadline =
          start + std::chrono::milliseconds(job->request.timeout_ms);
    }
    job->trace = span.context();
    job->future = job->promise.get_future().share();
    if (on_done) job->callbacks.push_back(std::move(on_done));
    inflight_.emplace(flight_key, job);
    queue_.push(job);
    metrics_.on_enqueued();
  }

  pool_.submit([this] { run_one(); });
  return job->future;
}

TuningResponse TuningService::tune(TuningRequest req) {
  return submit(std::move(req)).get();
}

void TuningService::drain() { pool_.wait_idle(); }

TuningResponse TuningService::execute(const Job& job) {
  const TuningRequest& req = job.request;
  obs::Span span("svc.eval");
  span.annotate("strategy", std::to_string(static_cast<int>(req.strategy)));
  span.annotate("budget", std::to_string(req.budget));

  // Test hooks: `svc.eval` can delay, park, or fail a search here —
  // deterministic worker-occupancy and failure-path tests hang off it.
  // `svc.eval_nonstd` throws a non-std exception, exercising the
  // catch (...) path that keeps such a throw from terminating the worker.
  if (support::failpoint("svc.eval"))
    throw support::FailpointError("injected svc.eval failure");
  struct InjectedNonStdError {};
  if (support::failpoint("svc.eval_nonstd")) throw InjectedNonStdError{};

  const std::shared_ptr<search::Evaluator> eval = evaluator_for(job);

  // Simulations attributed to this request. When two non-duplicate jobs
  // share an evaluator the split is approximate, but the metrics total is
  // exact because the evaluator's own counter is monotonic.
  const std::size_t sims_before = eval->simulations();

  const search::EvalResult baseline = eval->eval_sequence({});
  const std::uint64_t base_metric = metric_of(baseline, req.objective);

  support::Rng rng(req.seed);
  search::SequenceSpace space;
  search::SearchTrace trace;
  // Clustered KB seeding: resolve the module's cluster once, up front, so
  // both the GA population and the random-search warm start draw from it.
  search::Seeding seeding;
  const bool seeded = req.seeding && !seed_bank_.empty();
  if (seeded) {
    seeding = seed_bank_.seeding_for(feat::extract_static(*job.module));
    span.annotate("seeds", std::to_string(seeding.seeds.size()));
  }
  switch (req.strategy) {
    case Strategy::Random:
      if (seeded)
        trace = search::seeded_random_search(*eval, space, seeding, rng,
                                             req.budget, req.objective,
                                             opts_.search_workers);
      else
        trace = search::random_search(*eval, space, rng, req.budget,
                                      req.objective, opts_.search_workers);
      break;
    case Strategy::Greedy:
      trace = search::greedy_search(*eval, space, rng, req.budget,
                                    req.objective);
      break;
    case Strategy::Genetic: {
      search::GaParams ga;
      ga.workers = opts_.search_workers;
      if (seeded) {
        ga.seeds = seeding.seeds;
        ga.estimator = seeding.estimator;
      }
      trace = search::genetic_search(*eval, space, rng, req.budget,
                                     req.objective, ga);
      break;
    }
  }

  TuningResponse r;
  r.ok = true;
  r.program = req.program;
  if (trace.evaluations == 0 || trace.best_metric > base_metric) {
    // Zero budget or a search that never beat -O0: serve the baseline.
    r.config = "";
    r.best_metric = base_metric;
  } else {
    r.config = search::sequence_to_string(trace.best_seq);
    r.best_metric = trace.best_metric;
  }
  r.baseline_metric = base_metric;
  r.speedup = r.best_metric ? static_cast<double>(base_metric) /
                                  static_cast<double>(r.best_metric)
                            : 0.0;
  r.source = Source::Search;
  r.simulations = eval->simulations() - sims_before;
  if (req.objective == search::Objective::Pareto) {
    // The -O0 configuration is always an available answer; folding it in
    // means the served front never sits entirely above the baseline. The
    // reference point one past the baseline then credits any front that
    // at least matches -O0 with nonzero dominated area.
    trace.pareto.insert({{}, baseline.cycles, baseline.code_size});
    r.pareto_front = trace.pareto.size();
    r.hypervolume = trace.pareto.hypervolume(baseline.cycles + 1,
                                             baseline.code_size + 1);
  }
  span.annotate("simulations", std::to_string(r.simulations));
  return r;
}

std::shared_ptr<search::Evaluator> TuningService::evaluator_for(
    const Job& job) {
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = evaluators_.find(job.eval_key);
      it != evaluators_.end()) {
    eval_lru_.splice(eval_lru_.begin(), eval_lru_, it->second.lru_it);
    return it->second.eval;
  }
  auto eval =
      std::make_shared<search::Evaluator>(*job.module, job.request.machine);
  eval_lru_.push_front(job.eval_key);
  evaluators_.emplace(job.eval_key, EvalSlot{eval, eval_lru_.begin()});
  if (opts_.evaluator_cache != 0 &&
      evaluators_.size() > opts_.evaluator_cache) {
    evaluators_.erase(eval_lru_.back());
    eval_lru_.pop_back();
  }
  return eval;
}

std::size_t TuningService::evaluator_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evaluators_.size();
}

void TuningService::remember_stale_locked(const std::string& flight_key,
                                          const TuningResponse& resp) {
  CachedResult result;
  result.config = resp.config;
  result.best_metric = resp.best_metric;
  result.baseline_metric = resp.baseline_metric;
  if (const auto it = stale_.find(flight_key); it != stale_.end()) {
    it->second.result = std::move(result);
    stale_lru_.splice(stale_lru_.begin(), stale_lru_, it->second.lru_it);
    return;
  }
  stale_lru_.push_front(flight_key);
  stale_.emplace(flight_key, StaleSlot{std::move(result), stale_lru_.begin()});
  if (opts_.evaluator_cache != 0 && stale_.size() > opts_.evaluator_cache) {
    stale_.erase(stale_lru_.back());
    stale_lru_.pop_back();
  }
}

void TuningService::run_one() {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ILC_ASSERT(!queue_.empty());
    job = queue_.top();
    queue_.pop();
  }
  // From here the guard owns retirement: whatever happens below — search
  // failure, persist failure, a non-std exception, even a path that
  // forgets to resolve — the promise is set exactly once and the
  // in-flight entry erased, so no client can hang on this job.
  Completion done(*this, job);

  // Continue the request's trace on this worker thread: the queue wait is
  // recorded as a span over [submitted, now], and everything below —
  // evaluation spans included — parents onto the submit span.
  obs::TraceScope scope(job->trace);
  obs::Tracer::record("svc.sched.wait", job->trace, job->submitted,
                      Clock::now());
  obs::Span run_span("svc.request.run");

  // Cooperative cancellation: a job whose deadline passed while queued
  // resolves TimedOut without spending a single simulation on it.
  if (job->has_deadline && Clock::now() >= job->deadline) {
    run_span.annotate("outcome", "timeout");
    TuningResponse resp;
    resp.ok = false;
    resp.program = job->request.program;
    resp.error = "deadline exceeded (timeout_ms=" +
                 std::to_string(job->request.timeout_ms) + ")";
    resp.source = Source::TimedOut;
    resp.latency_us = elapsed_us(job->submitted);
    metrics_.on_timed_out(resp.latency_us);
    done.resolve(std::move(resp));
    return;
  }

  metrics_.on_search_started();
  done.set_started();

  TuningResponse resp;
  bool failed = false;
  try {
    resp = execute(*job);
  } catch (const std::exception& e) {
    failed = true;
    resp.error = e.what();
  } catch (...) {
    // A non-std exception escaping into the pool worker would terminate
    // the process with every outstanding promise unresolved.
    failed = true;
    resp.error = "search failed: non-standard exception";
  }
  if (failed) {
    resp.ok = false;
    resp.program = job->request.program;
    resp.source = Source::Error;
    run_span.annotate("outcome", "search_error");
  }

  if (!failed) {
    // Publish to the cache under full exception protection: a throwing
    // store (disk-full WAL append, injected "svc.persist" fault) fails
    // this request — it must never strand it. The store and the
    // in-flight erase (inside Completion::resolve, which runs strictly
    // after this block) keep the submit-side invariant: a concurrent
    // duplicate observes "in flight" or "cached", never neither.
    obs::Span persist("svc.kb_persist");
    try {
      std::lock_guard<std::mutex> lock(mu_);
      // Remember the result in memory first: even when the durable
      // publish below fails, overload can still serve it as stale.
      remember_stale_locked(job->flight_key, resp);
      if (support::failpoint("svc.persist"))
        throw support::FailpointError("injected svc.persist failure");
      CachedResult cached;
      cached.config = resp.config;
      cached.best_metric = resp.best_metric;
      cached.baseline_metric = resp.baseline_metric;
      cache_.store(job->cache_key, job->request.machine.name, cached);
      // In durable mode store() WAL-appends incrementally; autosave makes
      // the result durable before the client sees its response.
      if (opts_.autosave && !opts_.kb_path.empty() && !cache_.sync())
        throw std::runtime_error("knowledge-base sync failed");
    } catch (const std::exception& e) {
      failed = true;
      resp.error = std::string("persist failed: ") + e.what();
    } catch (...) {
      failed = true;
      resp.error = "persist failed: non-standard exception";
    }
    if (failed) {
      resp.ok = false;
      resp.source = Source::Error;
      persist.annotate("outcome", "error");
      metrics_.on_persist_error();
    }
  }
  resp.latency_us = elapsed_us(job->submitted);

  if (failed) {
    metrics_.on_search_failed(resp.latency_us);
  } else {
    metrics_.on_search_finished(resp.simulations, resp.latency_us);
  }
  done.resolve(std::move(resp));
}

bool TuningService::save() const {
  if (opts_.kb_path.empty()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (cache_.durable()) return cache_.sync();
  return cache_.save(opts_.kb_path);
}

bool TuningService::save_to(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.save(path);
}

std::size_t TuningService::kb_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

}  // namespace ilc::svc
