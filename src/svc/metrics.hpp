// Live metrics of the tuning service: monotonic counters for request
// outcomes, gauges for queue depth and in-flight work, and service-latency
// percentiles. The collector is a single mutex-protected aggregate —
// snapshots are internally consistent, and every access is lock-ordered so
// the service stays clean under ThreadSanitizer.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace ilc::svc {

/// A consistent point-in-time copy of the service counters.
struct Metrics {
  std::uint64_t requests = 0;    // submitted, total
  std::uint64_t warm_hits = 0;   // answered from the KB, no search
  std::uint64_t coalesced = 0;   // joined an in-flight duplicate
  std::uint64_t searches = 0;    // searches actually run
  std::uint64_t errors = 0;      // malformed requests / failed searches

  std::uint64_t queued = 0;      // gauge: waiting for a worker
  std::uint64_t in_flight = 0;   // gauge: search running right now

  std::uint64_t simulations = 0; // real simulator runs caused by searches

  std::uint64_t p50_latency_us = 0;  // over completed requests
  std::uint64_t p95_latency_us = 0;
};

class MetricsCollector {
 public:
  void on_request();
  void on_warm_hit(std::uint64_t latency_us);
  void on_coalesced();
  void on_enqueued();              // queued++
  void on_search_started();        // queued--, in_flight++
  /// Search finished: in_flight--, searches++, record simulations/latency.
  void on_search_finished(std::uint64_t simulations,
                          std::uint64_t latency_us);
  /// Search threw: in_flight--, errors++.
  void on_search_failed(std::uint64_t latency_us);
  /// Request rejected before it was ever enqueued.
  void on_error(std::uint64_t latency_us);

  Metrics snapshot() const;

 private:
  mutable std::mutex mu_;
  Metrics m_;
  std::vector<double> latencies_us_;
};

}  // namespace ilc::svc
