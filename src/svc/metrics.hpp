// Live metrics of the tuning service, backed by an obs::Registry the
// collector owns: monotonic counters for request outcomes, gauges for
// queue depth and in-flight work, and a latency histogram whose
// bucket-interpolated p50/p95 feed the Metrics snapshot. Each service
// instance gets its own registry, so per-service counts stay exact and
// independent of the process-wide obs::Registry::instance(); the updates
// themselves are lock-free relaxed atomics (see obs/metrics.hpp).
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"

namespace ilc::svc {

/// A consistent point-in-time copy of the service counters.
struct Metrics {
  std::uint64_t requests = 0;    // submitted, total
  std::uint64_t warm_hits = 0;   // answered from the KB, no search
  std::uint64_t coalesced = 0;   // joined an in-flight duplicate
  std::uint64_t searches = 0;    // searches actually run
  std::uint64_t errors = 0;      // malformed requests / failed searches
  std::uint64_t rejected = 0;       // load shed with nothing to serve
  std::uint64_t timed_out = 0;      // deadline expired in the queue
  std::uint64_t shed = 0;           // overload served from stale results
  std::uint64_t persist_errors = 0; // KB publish failed (subset of errors)

  std::uint64_t queued = 0;      // gauge: waiting for a worker
  std::uint64_t in_flight = 0;   // gauge: search running right now

  std::uint64_t simulations = 0; // real simulator runs caused by searches

  std::uint64_t p50_latency_us = 0;  // over completed requests
  std::uint64_t p95_latency_us = 0;
};

class MetricsCollector {
 public:
  MetricsCollector();

  void on_request();
  void on_warm_hit(std::uint64_t latency_us);
  void on_coalesced();
  void on_enqueued();              // queued++
  void on_search_started();        // queued--, in_flight++
  /// Search finished: in_flight--, searches++, record simulations/latency.
  void on_search_finished(std::uint64_t simulations,
                          std::uint64_t latency_us);
  /// Search threw: in_flight--, errors++.
  void on_search_failed(std::uint64_t latency_us);
  /// Request rejected before it was ever enqueued.
  void on_error(std::uint64_t latency_us);
  /// Admission refused under overload, nothing cached: rejected++.
  void on_rejected(std::uint64_t latency_us);
  /// Queued job's deadline expired before a worker took it: queued--,
  /// timed_out++.
  void on_timed_out(std::uint64_t latency_us);
  /// Overload answered from the stale in-memory result map: shed++.
  void on_shed(std::uint64_t latency_us);
  /// KB publish of a finished search failed: persist_errors++ (the
  /// request itself is accounted via on_search_failed).
  void on_persist_error();

  Metrics snapshot() const;

  /// The backing registry, for exporters (Prometheus / JSON) that want
  /// the full per-service metric set rather than the Metrics digest.
  obs::Registry& registry() { return reg_; }
  const obs::Registry& registry() const { return reg_; }

 private:
  obs::Registry reg_;
  obs::Counter requests_;
  obs::Counter warm_hits_;
  obs::Counter coalesced_;
  obs::Counter searches_;
  obs::Counter errors_;
  obs::Counter rejected_;
  obs::Counter timed_out_;
  obs::Counter shed_;
  obs::Counter persist_errors_;
  obs::Counter simulations_;
  obs::Gauge queued_;
  obs::Gauge in_flight_;
  obs::Histogram latency_us_;
};

}  // namespace ilc::svc
