#include "svc/cache.hpp"

#include <fstream>
#include <sstream>

namespace ilc::svc {

namespace {

// Record kinds the service owns inside the shared knowledge base.
constexpr const char* kBestKind = "svc-best";
constexpr const char* kBaseKind = "svc-base";

}  // namespace

std::optional<ResultCache> ResultCache::open(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) return ResultCache();  // no file yet: start empty
  probe.close();
  auto base = kb::KnowledgeBase::load(path);
  if (!base) return std::nullopt;
  return ResultCache(std::move(*base));
}

std::string ResultCache::key(std::uint64_t fingerprint,
                             search::Objective objective) {
  std::ostringstream os;
  os << "fp:" << std::hex << fingerprint << std::dec << '+'
     << (objective == search::Objective::Cycles ? "cycles" : "size");
  return os.str();
}

std::optional<CachedResult> ResultCache::lookup(
    const std::string& key, const std::string& machine) const {
  const kb::ExperimentRecord* best = base_.find(key, machine, kBestKind);
  if (!best) return std::nullopt;
  CachedResult out;
  out.config = best->config;
  out.best_metric = best->cycles;
  const kb::ExperimentRecord* baseline = base_.find(key, machine, kBaseKind);
  out.baseline_metric = baseline ? baseline->cycles : best->cycles;
  return out;
}

void ResultCache::store(const std::string& key, const std::string& machine,
                        const CachedResult& result) {
  const kb::ExperimentRecord* prior = base_.find(key, machine, kBestKind);
  if (prior && prior->cycles <= result.best_metric) return;

  // The cycles column carries the objective metric (which the key names);
  // that keeps records honest for the default cycles objective and
  // self-describing for code size.
  kb::ExperimentRecord best;
  best.program = key;
  best.machine = machine;
  best.kind = kBestKind;
  best.config = result.config;
  best.cycles = result.best_metric;
  base_.upsert(std::move(best));

  kb::ExperimentRecord baseline;
  baseline.program = key;
  baseline.machine = machine;
  baseline.kind = kBaseKind;
  baseline.cycles = result.baseline_metric;
  base_.upsert(std::move(baseline));
}

}  // namespace ilc::svc
