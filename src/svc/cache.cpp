#include "svc/cache.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace ilc::svc {

namespace {

// Record kinds the service owns inside the shared knowledge base.
constexpr const char* kBestKind = "svc-best";
constexpr const char* kBaseKind = "svc-base";

}  // namespace

std::optional<ResultCache> ResultCache::open(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) return ResultCache();  // no file yet: start empty
  probe.close();
  auto base = kb::KnowledgeBase::load(path);
  if (!base) return std::nullopt;
  return ResultCache(std::move(*base));
}

std::optional<ResultCache> ResultCache::open_durable(
    const std::string& path, kbstore::Options opts,
    kbstore::RecoveryInfo* info) {
  namespace fs = std::filesystem;
  kb::KnowledgeBase legacy;
  bool migrate = false;
  if (fs::is_regular_file(path)) {
    // A legacy CSV knowledge base: parse it, then let the store directory
    // take over the path. An unparsable file is an error, not data loss.
    auto base = kb::KnowledgeBase::load(path);
    if (!base) return std::nullopt;
    legacy = std::move(*base);
    migrate = true;
    std::error_code ec;
    fs::remove(path, ec);
    if (ec) return std::nullopt;
  }
  auto store = kbstore::Store::open(path, opts, info);
  if (!store) return std::nullopt;
  if (migrate && !store->import_records(legacy)) return std::nullopt;
  ResultCache out;
  out.store_ = std::move(store);
  return out;
}

std::string ResultCache::key(std::uint64_t fingerprint,
                             search::Objective objective) {
  std::ostringstream os;
  const char* obj = objective == search::Objective::Cycles    ? "cycles"
                    : objective == search::Objective::CodeSize ? "size"
                                                               : "pareto";
  os << "fp:" << std::hex << fingerprint << std::dec << '+' << obj;
  return os.str();
}

std::optional<CachedResult> ResultCache::lookup_store(
    const kbstore::Store& store, const std::string& key,
    const std::string& machine) {
  const auto best = store.find(key, machine, kBestKind);
  if (!best) return std::nullopt;
  CachedResult out;
  out.config = best->config;
  out.best_metric = best->cycles;
  const auto baseline = store.find(key, machine, kBaseKind);
  out.baseline_metric = baseline ? baseline->cycles : best->cycles;
  return out;
}

std::optional<CachedResult> ResultCache::lookup(
    const std::string& key, const std::string& machine) const {
  if (store_) return lookup_store(*store_, key, machine);
  const kb::ExperimentRecord* best = base_.find(key, machine, kBestKind);
  if (!best) return std::nullopt;
  CachedResult out;
  out.config = best->config;
  out.best_metric = best->cycles;
  const kb::ExperimentRecord* baseline = base_.find(key, machine, kBaseKind);
  out.baseline_metric = baseline ? baseline->cycles : best->cycles;
  return out;
}

void ResultCache::store(const std::string& key, const std::string& machine,
                        const CachedResult& result) {
  if (store_) {
    const auto prior = store_->find(key, machine, kBestKind);
    if (prior && prior->cycles <= result.best_metric) return;
  } else {
    const kb::ExperimentRecord* prior = base_.find(key, machine, kBestKind);
    if (prior && prior->cycles <= result.best_metric) return;
  }

  // The cycles column carries the objective metric (which the key names);
  // that keeps records honest for the default cycles objective and
  // self-describing for code size.
  kb::ExperimentRecord best;
  best.program = key;
  best.machine = machine;
  best.kind = kBestKind;
  best.config = result.config;
  best.cycles = result.best_metric;

  kb::ExperimentRecord baseline;
  baseline.program = key;
  baseline.machine = machine;
  baseline.kind = kBaseKind;
  baseline.cycles = result.baseline_metric;

  if (store_) {
    store_->upsert(std::move(best));
    store_->upsert(std::move(baseline));
  } else {
    base_.upsert(std::move(best));
    base_.upsert(std::move(baseline));
  }
}

bool ResultCache::save(const std::string& path) const {
  return store_ ? store_->export_kb().save(path) : base_.save(path);
}

bool ResultCache::sync() const { return store_ ? store_->sync() : true; }

kb::KnowledgeBase ResultCache::kb() const {
  return store_ ? store_->export_kb() : base_;
}

std::size_t ResultCache::size() const {
  return store_ ? store_->size() : base_.size();
}

}  // namespace ilc::svc
