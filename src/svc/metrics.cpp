#include "svc/metrics.hpp"

#include "support/stats.hpp"

namespace ilc::svc {

void MetricsCollector::on_request() {
  std::lock_guard<std::mutex> lock(mu_);
  ++m_.requests;
}

void MetricsCollector::on_warm_hit(std::uint64_t latency_us) {
  std::lock_guard<std::mutex> lock(mu_);
  ++m_.warm_hits;
  latencies_us_.push_back(static_cast<double>(latency_us));
}

void MetricsCollector::on_coalesced() {
  std::lock_guard<std::mutex> lock(mu_);
  ++m_.coalesced;
}

void MetricsCollector::on_enqueued() {
  std::lock_guard<std::mutex> lock(mu_);
  ++m_.queued;
}

void MetricsCollector::on_search_started() {
  std::lock_guard<std::mutex> lock(mu_);
  --m_.queued;
  ++m_.in_flight;
}

void MetricsCollector::on_search_finished(std::uint64_t simulations,
                                          std::uint64_t latency_us) {
  std::lock_guard<std::mutex> lock(mu_);
  --m_.in_flight;
  ++m_.searches;
  m_.simulations += simulations;
  latencies_us_.push_back(static_cast<double>(latency_us));
}

void MetricsCollector::on_search_failed(std::uint64_t latency_us) {
  std::lock_guard<std::mutex> lock(mu_);
  --m_.in_flight;
  ++m_.errors;
  latencies_us_.push_back(static_cast<double>(latency_us));
}

void MetricsCollector::on_error(std::uint64_t latency_us) {
  std::lock_guard<std::mutex> lock(mu_);
  ++m_.errors;
  latencies_us_.push_back(static_cast<double>(latency_us));
}

Metrics MetricsCollector::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Metrics out = m_;
  if (!latencies_us_.empty()) {
    out.p50_latency_us = static_cast<std::uint64_t>(
        support::percentile(latencies_us_, 50.0));
    out.p95_latency_us = static_cast<std::uint64_t>(
        support::percentile(latencies_us_, 95.0));
  }
  return out;
}

}  // namespace ilc::svc
