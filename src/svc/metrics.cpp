#include "svc/metrics.hpp"

#include <algorithm>

namespace ilc::svc {

MetricsCollector::MetricsCollector()
    : requests_(reg_.counter("svc.requests")),
      warm_hits_(reg_.counter("svc.warm_hits")),
      coalesced_(reg_.counter("svc.coalesced")),
      searches_(reg_.counter("svc.searches")),
      errors_(reg_.counter("svc.errors")),
      rejected_(reg_.counter("svc.rejected")),
      timed_out_(reg_.counter("svc.timed_out")),
      shed_(reg_.counter("svc.shed")),
      persist_errors_(reg_.counter("svc.persist_errors")),
      simulations_(reg_.counter("svc.simulations")),
      queued_(reg_.gauge("svc.queued")),
      in_flight_(reg_.gauge("svc.in_flight")),
      latency_us_(reg_.histogram("svc.latency_us")) {}

void MetricsCollector::on_request() { requests_.add(1); }

void MetricsCollector::on_warm_hit(std::uint64_t latency_us) {
  warm_hits_.add(1);
  latency_us_.record(latency_us);
}

void MetricsCollector::on_coalesced() { coalesced_.add(1); }

void MetricsCollector::on_enqueued() { queued_.add(1); }

void MetricsCollector::on_search_started() {
  queued_.sub(1);
  in_flight_.add(1);
}

void MetricsCollector::on_search_finished(std::uint64_t simulations,
                                          std::uint64_t latency_us) {
  in_flight_.sub(1);
  searches_.add(1);
  simulations_.add(simulations);
  latency_us_.record(latency_us);
}

void MetricsCollector::on_search_failed(std::uint64_t latency_us) {
  in_flight_.sub(1);
  errors_.add(1);
  latency_us_.record(latency_us);
}

void MetricsCollector::on_error(std::uint64_t latency_us) {
  errors_.add(1);
  latency_us_.record(latency_us);
}

void MetricsCollector::on_rejected(std::uint64_t latency_us) {
  rejected_.add(1);
  latency_us_.record(latency_us);
}

void MetricsCollector::on_timed_out(std::uint64_t latency_us) {
  queued_.sub(1);
  timed_out_.add(1);
  latency_us_.record(latency_us);
}

void MetricsCollector::on_shed(std::uint64_t latency_us) {
  shed_.add(1);
  latency_us_.record(latency_us);
}

void MetricsCollector::on_persist_error() { persist_errors_.add(1); }

Metrics MetricsCollector::snapshot() const {
  Metrics out;
  out.requests = requests_.value();
  out.warm_hits = warm_hits_.value();
  out.coalesced = coalesced_.value();
  out.searches = searches_.value();
  out.errors = errors_.value();
  out.rejected = rejected_.value();
  out.timed_out = timed_out_.value();
  out.shed = shed_.value();
  out.persist_errors = persist_errors_.value();
  out.simulations = simulations_.value();
  // The gauges can only be transiently negative if a reader races the
  // queued-- / in_flight++ pair; clamp so the snapshot stays unsigned.
  out.queued = static_cast<std::uint64_t>(std::max<std::int64_t>(
      0, queued_.value()));
  out.in_flight = static_cast<std::uint64_t>(std::max<std::int64_t>(
      0, in_flight_.value()));
  const obs::RegistrySnapshot snap = reg_.snapshot();
  if (const obs::HistogramSnapshot* h = snap.histogram("svc.latency_us");
      h != nullptr && h->count > 0) {
    out.p50_latency_us = static_cast<std::uint64_t>(h->percentile(50.0));
    out.p95_latency_us = static_cast<std::uint64_t>(h->percentile(95.0));
  }
  return out;
}

}  // namespace ilc::svc
